// In situ rendering of the LULESH proxy's deforming unstructured hex mesh —
// the integration the paper's Listing 4.1 shows: explicit coordinates and
// the element energy published zero-copy, so the node tracks the Lagrangian
// mesh as it moves.
//
//   $ ./insitu_lulesh [cycles=30] [output_dir=.]
#include <cstdio>
#include <string>

#include "core/env.hpp"
#include "insitu/strawman.hpp"
#include "sims/lulesh.hpp"

using namespace isr;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [cycles=30] [output_dir=.]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 3) return usage(argv[0]);
  // Validated argv (core/env contract): garbage rejected loudly with
  // usage + exit 2, never atoi'd to 0.
  long cycles = 30;
  if (argc > 1) {
    const core::ParseStatus status =
        core::parse_long(argv[1], cycles, /*require_positive=*/true);
    if (status != core::ParseStatus::kOk || cycles > 1 << 20) {
      std::fprintf(stderr, "%s: bad cycles \"%s\" (%s)\n", argv[0], argv[1],
                   status == core::ParseStatus::kOk ? "too large"
                                                    : core::parse_status_message(status));
      return usage(argv[0]);
    }
  }
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  sims::Lulesh sim(24);
  conduit::Node data;
  sim.describe(data);  // once: coords/x..z and fields/e are external views

  insitu::Strawman strawman;
  conduit::Node options;
  options["output_dir"] = out_dir;
  strawman.open(options);
  strawman.publish(data);

  for (int c = 0; c < cycles; ++c) {
    sim.step();
    if (sim.cycle() % 5 != 0) continue;  // render every 5th cycle

    conduit::Node actions;
    conduit::Node& add = actions.append();
    add["action"] = "AddPlot";
    add["var"] = "e";  // pseudocolor of element energy, ray traced
    actions.append()["action"] = "DrawPlots";
    conduit::Node& save = actions.append();
    char name[64];
    std::snprintf(name, sizeof(name), "lulesh_%04d", sim.cycle());
    save["action"] = "SaveImage";
    save["fileName"] = name;
    save["format"] = "png";
    save["width"] = 512;
    save["height"] = 512;
    strawman.execute(actions);
    std::printf("cycle %3d: t=%.5f vis=%.0f ms (%s.png)\n", sim.cycle(), sim.time(),
                1e3 * strawman.last_stats().total_seconds(), name);
  }
  strawman.close();
  return 0;
}
