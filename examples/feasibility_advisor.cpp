// Feasibility advisor: the paper's §5.9 questions as a thin client of the
// serving layer (src/serve/). Two modes:
//
//   One-shot (the historical CLI):
//     $ ./feasibility_advisor [N_per_task=200] [tasks=32] [image_edge=1024]
//                             [budget_seconds=60]
//   answers the configuration once, for every arch x renderer of the
//   calibration corpus, via one serve_batch call.
//
//   Service:
//     $ ./feasibility_advisor --serve [--shards N] [--cache ENTRIES]
//                             [--corpus NAME=SEED]... [--imbalance-ratio R]
//                             [--streams N] [--deadline-us D]
//                             [--record FILE | --replay FILE]
//   runs the long-lived JSON-lines service on stdin/stdout (one request
//   object per line, blank line or EOF flushes a batch; schema in
//   docs/ARCHITECTURE.md). Requests route through the sharded serving
//   cluster (src/cluster/): models are fitted once per distinct corpus,
//   replicated to every shard, and repeated requests hit the LRU response
//   cache. Each repeatable --corpus flag makes another calibration corpus
//   resident under NAME (the default-calibration shape re-seeded with
//   SEED — a distinct fingerprint and its own fit); requests select it
//   with {"corpus":"NAME"}. --imbalance-ratio tunes the hot-key
//   rebalancer (a (corpus, arch) key hotter than R times a shard's fair
//   share spreads across shards; 0 pins every key to its home shard).
//   --streams N submits each batch through N concurrent StreamSessions
//   (round-robin dealing; responses come back in input order, so output
//   bytes match the serialized run). --deadline-us D stamps requests that
//   carry no deadline of their own, exercising the cluster's deadline-
//   aware shedding. --record FILE saves the admission schedule at EOF;
//   --replay FILE pins admission to a prior recording, making even shed
//   decisions reproducible (feed it the SAME input the recording saw — a
//   diverging flow blocks forever by design, like any misused barrier).
//   --recalibrate-every N schedules a live recalibration of every resident
//   corpus after each N served requests, at batch boundaries (the refit
//   runs in the background and the service waits for the swap before the
//   next batch, so the epoch schedule — and therefore every output byte —
//   is a pure function of the input; two identically-seeded runs
//   byte-match). Flags override the ISR_SHARDS (default 1),
//   ISR_CACHE_ENTRIES (default 1024; 0 disables), ISR_IMBALANCE_RATIO
//   (default 1.25), ISR_STREAMS (default 1), ISR_DEADLINE_US (default 0 =
//   none), and ISR_RECAL_EVERY (default 0 = never) environment variables;
//   a cluster-metrics JSON line (including per-corpus query counts and
//   bundle epochs) goes to stderr at EOF, keeping stdout pure responses.
//
//   Observability: --trace FILE (ISR_TRACE) records every request's
//   lifecycle (admit/queue/eval/deliver spans plus shed/failover/retry/
//   refit-swap annotations) and writes a Chrome trace_event JSON file at
//   exit — load it in chrome://tracing or ui.perfetto.dev. Live runs stamp
//   wall time; under --replay the trace carries the schedule's virtual
//   clock and is byte-identical across runs. --metrics-every N
//   (ISR_METRICS_EVERY, 0 = EOF only) additionally emits a metrics JSON
//   line to stderr after every N served requests, at batch boundaries, so
//   a long-lived serve process is monitorable mid-stream. SIGINT/SIGTERM
//   interrupt the stdin loop but still flush the metrics line (and the
//   trace file) before exiting 128+signal. Tracing never changes response
//   bytes: stdout is identical with --trace on, off, or absent.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

#include "cluster/stream.hpp"

#include "cluster/cluster.hpp"
#include "core/env.hpp"
#include "core/fault.hpp"
#include "serve/advisor.hpp"
#include "serve/jsonl.hpp"

using namespace isr;
using model::RendererKind;

namespace {

// SIGINT/SIGTERM land here: remember which signal fired so the main loop's
// blocked getline fails with EINTR (sigaction below installs the handler
// WITHOUT SA_RESTART on purpose), run_jsonl returns, and the normal
// metrics/trace flush path runs before exiting 128+signal.
volatile std::sig_atomic_t g_signal = 0;
extern "C" void on_terminate_signal(int sig) { g_signal = sig; }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [N_per_task=200] [tasks=32] [image_edge=1024] [budget_seconds=60]\n"
               "       %s --serve [--shards N] [--cache ENTRIES]\n"
               "                      [--corpus NAME=SEED]... [--imbalance-ratio R]\n"
               "                      [--streams N] [--deadline-us D]\n"
               "                      [--recalibrate-every N]\n"
               "                      [--record FILE | --replay FILE]\n"
               "                      [--trace FILE] [--metrics-every N]\n"
               "                      [--fault-seed S] [--fault-rate R] [--fault-sites CSV]\n"
               "                      (JSON-lines service on stdin/stdout; defaults come\n"
               "                       from ISR_SHARDS / ISR_CACHE_ENTRIES /\n"
               "                       ISR_IMBALANCE_RATIO / ISR_STREAMS / ISR_DEADLINE_US;\n"
               "                       0 cache = off, 0 ratio = no rebalancing; each\n"
               "                       --corpus adds a resident corpus requests select\n"
               "                       with {\"corpus\":\"NAME\"}; --streams N submits each\n"
               "                       batch over N concurrent stream sessions;\n"
               "                       --deadline-us stamps undeadlined requests;\n"
               "                       --recalibrate-every N refits every resident corpus\n"
               "                       after each N served requests, at batch boundaries\n"
               "                       (0 = never; env: ISR_RECAL_EVERY);\n"
               "                       --record/--replay save or pin the admission\n"
               "                       schedule — replay must see the recording's input;\n"
               "                       --trace FILE writes a Chrome trace_event JSON of\n"
               "                       request lifecycles at exit (env: ISR_TRACE; under\n"
               "                       --replay the trace is byte-reproducible);\n"
               "                       --metrics-every N emits a metrics line to stderr\n"
               "                       after every N served requests (0 = EOF only;\n"
               "                       env: ISR_METRICS_EVERY);\n"
               "                       --fault-seed arms deterministic fault injection\n"
               "                       (0 = off; default sites: all) at --fault-rate\n"
               "                       probability per opportunity, --fault-sites a CSV of\n"
               "                       eval-throw, queue-stall, fit-fail, worker-crash, or\n"
               "                       all; env: ISR_FAULT_SEED / ISR_FAULT_RATE /\n"
               "                       ISR_FAULT_SITES / ISR_FAULT_STALL_MS)\n",
               argv0, argv0);
  return 2;
}

// A --corpus value is NAME=SEED: NAME a nonempty [A-Za-z0-9_.-]+ token
// (it travels inside JSON metrics and request lines; keep it quoting-free),
// SEED a nonnegative integer re-seeding the default calibration shape.
bool parse_corpus_flag(const char* argv0, const char* text, std::string& name, long& seed) {
  const char* eq = std::strchr(text, '=');
  if (!eq || eq == text) {
    std::fprintf(stderr, "%s: bad --corpus \"%s\" (expected NAME=SEED)\n", argv0, text);
    return false;
  }
  name.assign(text, static_cast<std::size_t>(eq - text));
  if (name == "default") {
    std::fprintf(stderr,
                 "%s: --corpus name \"default\" is reserved (it aliases the built-in "
                 "default corpus in the metrics)\n",
                 argv0);
    return false;
  }
  for (const char c : name) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) {
      std::fprintf(stderr, "%s: bad --corpus name \"%s\" (use [A-Za-z0-9_.-]+)\n", argv0,
                   name.c_str());
      return false;
    }
  }
  const core::ParseStatus status = core::parse_long(eq + 1, seed);
  if (status != core::ParseStatus::kOk || seed < 0) {
    std::fprintf(stderr, "%s: bad --corpus seed \"%s\" (%s)\n", argv0, eq + 1,
                 status == core::ParseStatus::kOk ? "must be >= 0"
                                                  : core::parse_status_message(status));
    return false;
  }
  return true;
}

// Positional-argument parsing with the core/env contract: garbage is
// rejected loudly (usage + nonzero exit), never atoi'd to 0.
bool parse_positional_int(const char* argv0, const char* name, const char* text, int& out) {
  long v = 0;
  const core::ParseStatus status = core::parse_long(text, v, /*require_positive=*/true);
  if (status != core::ParseStatus::kOk || v > 1 << 20) {
    std::fprintf(stderr, "%s: bad %s \"%s\" (%s)\n", argv0, name, text,
                 status == core::ParseStatus::kOk ? "too large"
                                                  : core::parse_status_message(status));
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

bool parse_positional_double(const char* argv0, const char* name, const char* text,
                             double& out) {
  const core::ParseStatus status = core::parse_double(text, out, /*require_positive=*/true);
  if (status != core::ParseStatus::kOk) {
    std::fprintf(stderr, "%s: bad %s \"%s\" (%s)\n", argv0, name, text,
                 core::parse_status_message(status));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--serve") == 0) {
    // Env defaults, overridable by flags. 0 cache entries disables caching;
    // a garbled env value warns and falls back (core/env contract). The env
    // path honors the same shard cap as the flag: each shard allocates a
    // registry + queue + 64 router ring points, so an absurd value must
    // clamp loudly, not OOM silently.
    long shards = core::env_long("ISR_SHARDS", 1);
    if (shards > 4096) {
      std::fprintf(stderr, "%s: ISR_SHARDS=%ld too large, clamping to 4096\n", argv[0], shards);
      shards = 4096;
    }
    long cache_entries = core::env_long("ISR_CACHE_ENTRIES", 1024, /*require_positive=*/false);
    // <= 0 pins every key to its home shard (rebalancing off).
    double imbalance_ratio =
        core::env_double("ISR_IMBALANCE_RATIO", 1.25, /*require_positive=*/false);
    // Concurrent stream sessions per batch (1 = the plain serve_batch
    // path) and the default deadline stamped onto undeadlined requests
    // (0 = none). Capped like shards: each stream is a submitting thread.
    long streams = core::env_long("ISR_STREAMS", 1);
    if (streams > 256) {
      std::fprintf(stderr, "%s: ISR_STREAMS=%ld too large, clamping to 256\n", argv[0],
                   streams);
      streams = 256;
    }
    long deadline_us = core::env_long("ISR_DEADLINE_US", 0, /*require_positive=*/false);
    if (deadline_us < 0) deadline_us = 0;
    // Live recalibration cadence in served requests (0 = never). Applied at
    // batch boundaries with a completed swap before the next batch, so the
    // epoch schedule stays a pure function of the input stream.
    long recal_every = core::env_long("ISR_RECAL_EVERY", 0, /*require_positive=*/false);
    if (recal_every < 0) recal_every = 0;
    // Observability: a trace output path (empty = tracing absent, the
    // zero-cost default) and the periodic metrics cadence in served
    // requests (0 = the EOF line only).
    std::string trace_file;
    if (const char* env_trace = std::getenv("ISR_TRACE")) trace_file = env_trace;
    long metrics_every = core::env_long("ISR_METRICS_EVERY", 0, /*require_positive=*/false);
    if (metrics_every < 0) metrics_every = 0;
    // Deterministic fault injection: env first (ISR_FAULT_*), flags
    // override. A flag-set seed without explicit sites arms every site,
    // mirroring FaultConfig::from_env's seed-only behavior.
    core::FaultConfig fault = core::FaultConfig::from_env();
    std::string record_file, replay_file;
    std::vector<cluster::CorpusConfig> corpora;
    for (int a = 2; a < argc; ++a) {
      if (std::strcmp(argv[a], "--shards") == 0 && a + 1 < argc) {
        const core::ParseStatus status =
            core::parse_long(argv[++a], shards, /*require_positive=*/true);
        if (status != core::ParseStatus::kOk || shards > 4096) {
          std::fprintf(stderr, "%s: bad --shards \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "too large"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--cache") == 0 && a + 1 < argc) {
        const core::ParseStatus status = core::parse_long(argv[++a], cache_entries);
        if (status != core::ParseStatus::kOk || cache_entries < 0) {
          std::fprintf(stderr, "%s: bad --cache \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk
                           ? "must be >= 0"
                           : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--corpus") == 0 && a + 1 < argc) {
        std::string name;
        long seed = 0;
        if (!parse_corpus_flag(argv[0], argv[++a], name, seed)) return usage(argv[0]);
        // The cluster would silently keep the first writer; a duplicate
        // flag is operator error and must be as loud as any other bad flag.
        for (const cluster::CorpusConfig& existing : corpora)
          if (existing.name == name) {
            std::fprintf(stderr, "%s: duplicate --corpus name \"%s\"\n", argv[0],
                         name.c_str());
            return usage(argv[0]);
          }
        cluster::CorpusConfig corpus;
        corpus.name = std::move(name);
        corpus.service.calibration = serve::default_calibration();
        corpus.service.calibration.seed = static_cast<std::uint64_t>(seed);
        corpora.push_back(std::move(corpus));
      } else if (std::strcmp(argv[a], "--imbalance-ratio") == 0 && a + 1 < argc) {
        const core::ParseStatus status =
            core::parse_double(argv[++a], imbalance_ratio, /*require_positive=*/false);
        if (status != core::ParseStatus::kOk) {
          std::fprintf(stderr, "%s: bad --imbalance-ratio \"%s\" (%s)\n", argv[0], argv[a],
                       core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--streams") == 0 && a + 1 < argc) {
        const core::ParseStatus status =
            core::parse_long(argv[++a], streams, /*require_positive=*/true);
        if (status != core::ParseStatus::kOk || streams > 256) {
          std::fprintf(stderr, "%s: bad --streams \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "too large (max 256)"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--deadline-us") == 0 && a + 1 < argc) {
        const core::ParseStatus status = core::parse_long(argv[++a], deadline_us);
        if (status != core::ParseStatus::kOk || deadline_us < 0) {
          std::fprintf(stderr, "%s: bad --deadline-us \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "must be >= 0"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--recalibrate-every") == 0 && a + 1 < argc) {
        const core::ParseStatus status = core::parse_long(argv[++a], recal_every);
        if (status != core::ParseStatus::kOk || recal_every < 0) {
          std::fprintf(stderr, "%s: bad --recalibrate-every \"%s\" (%s)\n", argv[0],
                       argv[a],
                       status == core::ParseStatus::kOk ? "must be >= 0"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--record") == 0 && a + 1 < argc) {
        record_file = argv[++a];
      } else if (std::strcmp(argv[a], "--replay") == 0 && a + 1 < argc) {
        replay_file = argv[++a];
      } else if (std::strcmp(argv[a], "--trace") == 0 && a + 1 < argc) {
        trace_file = argv[++a];
      } else if (std::strcmp(argv[a], "--metrics-every") == 0 && a + 1 < argc) {
        const core::ParseStatus status = core::parse_long(argv[++a], metrics_every);
        if (status != core::ParseStatus::kOk || metrics_every < 0) {
          std::fprintf(stderr, "%s: bad --metrics-every \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "must be >= 0"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--fault-seed") == 0 && a + 1 < argc) {
        long seed = 0;
        const core::ParseStatus status = core::parse_long(argv[++a], seed);
        if (status != core::ParseStatus::kOk || seed < 0) {
          std::fprintf(stderr, "%s: bad --fault-seed \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "must be >= 0"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
        fault.seed = static_cast<std::uint64_t>(seed);
        if (fault.seed != 0 && fault.sites == 0)
          fault.sites = (1u << core::kFaultSiteCount) - 1u;
      } else if (std::strcmp(argv[a], "--fault-rate") == 0 && a + 1 < argc) {
        const core::ParseStatus status =
            core::parse_double(argv[++a], fault.rate, /*require_positive=*/false);
        if (status != core::ParseStatus::kOk || fault.rate < 0.0 || fault.rate > 1.0) {
          std::fprintf(stderr, "%s: bad --fault-rate \"%s\" (%s)\n", argv[0], argv[a],
                       status == core::ParseStatus::kOk ? "must be in [0, 1]"
                                                        : core::parse_status_message(status));
          return usage(argv[0]);
        }
      } else if (std::strcmp(argv[a], "--fault-sites") == 0 && a + 1 < argc) {
        std::string error;
        if (!core::FaultConfig::parse_sites(argv[++a], fault.sites, error)) {
          std::fprintf(stderr, "%s: bad --fault-sites \"%s\" (%s)\n", argv[0], argv[a],
                       error.c_str());
          return usage(argv[0]);
        }
      } else {
        return usage(argv[0]);
      }
    }
    if (cache_entries < 0) cache_entries = 0;
    if (!record_file.empty() && !replay_file.empty()) {
      std::fprintf(stderr, "%s: --record and --replay are mutually exclusive\n", argv[0]);
      return usage(argv[0]);
    }

    // The recalibration schedule names every resident corpus ("" selects
    // the default); capture the list before the configs move away.
    std::vector<std::string> recal_names{""};
    for (const cluster::CorpusConfig& corpus : corpora) recal_names.push_back(corpus.name);

    // The trace recorder outlives the cluster (workers record into it until
    // shard stop). Fail fast on an unwritable path BEFORE serving anything,
    // like --record does. Under --replay the recorder runs on the virtual
    // clock: the exported trace is then a pure function of
    // (schedule, requests) — byte-identical across runs.
    obs::TraceRecorder tracer;
    if (!trace_file.empty()) {
      std::ofstream probe(trace_file);
      if (!probe) {
        std::fprintf(stderr, "%s: cannot open --trace file \"%s\"\n", argv[0],
                     trace_file.c_str());
        return 1;
      }
      tracer.enable(/*virtual_clock=*/!replay_file.empty());
    }

    cluster::ClusterConfig config;
    config.shards = static_cast<int>(shards);
    config.cache_entries = static_cast<std::size_t>(cache_entries);
    config.corpora = std::move(corpora);
    config.rebalance = imbalance_ratio > 0.0;
    config.imbalance_ratio = imbalance_ratio;
    config.fault = fault;
    if (!trace_file.empty()) config.trace = &tracer;
    cluster::ServingCluster serving(std::move(config));

    // Fail fast on schedule-file problems, before any request is served.
    if (!replay_file.empty()) {
      std::ifstream in(replay_file);
      if (!in) {
        std::fprintf(stderr, "%s: cannot open --replay file \"%s\"\n", argv[0],
                     replay_file.c_str());
        return 1;
      }
      cluster::AdmissionSchedule schedule;
      std::string error;
      if (!cluster::load_schedule(in, schedule, error)) {
        std::fprintf(stderr, "%s: bad --replay file \"%s\": %s\n", argv[0],
                     replay_file.c_str(), error.c_str());
        return 1;
      }
      serving.begin_replay(std::move(schedule));
    }
    std::ofstream record_out;
    if (!record_file.empty()) {
      record_out.open(record_file);
      if (!record_out) {
        std::fprintf(stderr, "%s: cannot open --record file \"%s\"\n", argv[0],
                     record_file.c_str());
        return 1;
      }
      serving.enable_recording();
    }

    // The batch handler: stamp the default deadline, then submit either
    // through the plain serve_batch path (streams = 1 — itself one stream
    // session) or round-robin across N concurrent sessions. Dealing by
    // i % n and reassembling by the same rule keeps responses in input
    // order, so stdout is byte-comparable to the serialized run.
    const std::size_t n_streams_flag = static_cast<std::size_t>(streams);
    // --recalibrate-every bookkeeping: served requests since the last
    // recalibration. The refit fires at the first batch boundary past the
    // threshold and the handler waits for the swap, so the epoch schedule
    // is a pure function of the input stream (byte-reproducible runs).
    long served_since_recal = 0;
    const auto maybe_recalibrate = [&serving, &recal_names, recal_every,
                                    &served_since_recal](std::size_t served) {
      if (recal_every <= 0) return;
      served_since_recal += static_cast<long>(served);
      if (served_since_recal < recal_every) return;
      served_since_recal = 0;
      // Only corpora the stream has actually touched: recalibrating a
      // never-queried corpus would defeat lazy residency.
      for (const std::string& name : recal_names)
        if (serving.bundle_epoch(name) > 0) serving.recalibrate(name);
      serving.wait_refits();
    };
    // Periodic metrics: one JSON line to stderr each time another
    // --metrics-every served requests complete, at batch boundaries —
    // same schema as the EOF line, so one parser reads both.
    long served_since_metrics = 0;
    const auto maybe_emit_metrics = [&serving, metrics_every,
                                     &served_since_metrics](std::size_t served) {
      if (metrics_every <= 0) return;
      served_since_metrics += static_cast<long>(served);
      if (served_since_metrics < metrics_every) return;
      served_since_metrics = 0;
      std::fprintf(stderr, "%s\n", serving.metrics().to_jsonl().c_str());
    };
    // Interrupting the service must still report: install SIGINT/SIGTERM
    // handlers WITHOUT SA_RESTART so a blocked stdin read fails with EINTR,
    // run_jsonl returns, and the flush path below runs as on EOF.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = on_terminate_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    serve::run_jsonl(
        std::cin, std::cout,
        [&serving, n_streams_flag, deadline_us, &maybe_recalibrate,
         &maybe_emit_metrics](const std::vector<serve::AdvisorRequest>& requests) {
          std::vector<serve::AdvisorRequest> reqs = requests;
          if (deadline_us > 0)
            for (serve::AdvisorRequest& r : reqs)
              if (r.deadline_us == 0) r.deadline_us = deadline_us;
          if (n_streams_flag <= 1) {
            std::vector<serve::AdvisorResponse> responses = serving.serve_batch(reqs);
            maybe_recalibrate(reqs.size());
            maybe_emit_metrics(reqs.size());
            return responses;
          }
          if (reqs.empty()) return std::vector<serve::AdvisorResponse>();
          const std::size_t n_streams = std::min(n_streams_flag, reqs.size());
          std::vector<cluster::StreamSession> sessions;
          sessions.reserve(n_streams);
          for (std::size_t k = 0; k < n_streams; ++k)
            sessions.push_back(serving.open_stream());
          std::vector<std::thread> producers;
          producers.reserve(n_streams);
          for (std::size_t k = 0; k < n_streams; ++k)
            producers.emplace_back([&reqs, &sessions, k, n_streams] {
              for (std::size_t i = k; i < reqs.size(); i += n_streams)
                sessions[k].submit(reqs[i]);
            });
          for (std::thread& producer : producers) producer.join();
          std::vector<serve::AdvisorResponse> responses(reqs.size());
          for (std::size_t k = 0; k < n_streams; ++k) {
            std::vector<serve::AdvisorResponse> mine = sessions[k].close();
            for (std::size_t j = 0; j < mine.size(); ++j)
              responses[k + j * n_streams] = std::move(mine[j]);
          }
          maybe_recalibrate(reqs.size());
          maybe_emit_metrics(reqs.size());
          return responses;
        });
    if (!record_file.empty()) {
      cluster::save_schedule(serving.take_recording(), record_out);
      record_out.close();
    }
    // Operational snapshot on stderr so stdout stays pure response lines —
    // on EOF and on an interrupting signal alike.
    std::fprintf(stderr, "%s\n", serving.metrics().to_jsonl().c_str());
    if (!trace_file.empty()) {
      std::ofstream out(trace_file);
      tracer.export_chrome_trace(out);
      if (!out) std::fprintf(stderr, "%s: failed writing --trace file \"%s\"\n",
                             argv[0], trace_file.c_str());
    }
    return g_signal != 0 ? 128 + static_cast<int>(g_signal) : 0;
  }
  if (argc > 5) return usage(argv[0]);

  int n = 200, tasks = 32, edge = 1024;
  double budget = 60.0;
  if (argc > 1 && !parse_positional_int(argv[0], "N_per_task", argv[1], n)) return usage(argv[0]);
  if (argc > 2 && !parse_positional_int(argv[0], "tasks", argv[2], tasks)) return usage(argv[0]);
  if (argc > 3 && !parse_positional_int(argv[0], "image_edge", argv[3], edge))
    return usage(argv[0]);
  if (argc > 4 && !parse_positional_double(argv[0], "budget_seconds", argv[4], budget))
    return usage(argv[0]);

  std::printf("calibrating models (small study corpus on CPU1/GPU1 profiles)...\n");
  serve::AdvisorService service;  // default calibration; fits on first query

  // One batch answers the whole arch x renderer table.
  std::vector<serve::AdvisorRequest> requests;
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind :
         {RendererKind::kRayTrace, RendererKind::kRasterize, RendererKind::kVolume}) {
      serve::AdvisorRequest req;
      req.arch = arch;
      req.renderer = kind;
      req.n_per_task = n;
      req.tasks = tasks;
      req.image_edge = edge;
      req.budget_seconds = budget;
      req.frames = 100;
      requests.push_back(req);
    }
  }
  const std::vector<serve::AdvisorResponse> responses = service.serve_batch(requests);

  std::printf("\nconfiguration: %d^3 cells/task, %d tasks, %dx%d image, %.0fs budget\n\n",
              n, tasks, edge, edge, budget);
  std::printf("%-6s %-14s %14s %16s\n", "arch", "renderer", "sec/frame", "frames/budget");
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const serve::AdvisorRequest& req = requests[i];
    const serve::AdvisorResponse& resp = responses[i];
    if (!resp.ok()) {
      std::printf("%-6s %-14s   error: %s\n", req.arch.c_str(),
                  model::renderer_name(req.renderer), resp.error.c_str());
      continue;
    }
    std::printf("%-6s %-14s %14.4f %16ld\n", req.arch.c_str(),
                model::renderer_name(req.renderer), resp.frame_seconds,
                resp.images_in_budget);
  }

  // RT vs rasterization recommendation at this configuration (100 frames),
  // from the CPU1 response's verdict fields.
  for (std::size_t i = 0; i < responses.size(); ++i) {
    if (requests[i].arch != "CPU1" || !responses[i].ok() || !responses[i].has_verdict) continue;
    const serve::AdvisorResponse& resp = responses[i];
    std::printf("\nsurface rendering recommendation (CPU1, 100 frames): %s\n",
                resp.prefer_ray_tracing ? "RAY TRACING" : "RASTERIZATION");
    std::printf("  T_RAST / T_RT = %.2f (RT %.2fs vs RAST %.2fs for 100 frames)\n", resp.ratio,
                resp.rt_seconds, resp.rast_seconds);
    break;
  }
  return 0;
}
