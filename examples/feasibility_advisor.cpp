// Feasibility advisor: the paper's §5.9 questions as a command-line tool.
// Given a rendering configuration, fit the models from a quick calibration
// study and report (a) predicted per-frame cost for each renderer, (b) how
// many images fit a budget, and (c) the ray-tracing-vs-rasterization
// recommendation.
//
//   $ ./feasibility_advisor [N_per_task=200] [tasks=32] [image_edge=1024]
//                           [budget_seconds=60]
#include <cstdio>
#include <cstdlib>

#include "model/feasibility.hpp"
#include "model/study.hpp"

using namespace isr;
using model::RendererKind;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 200;
  const int tasks = argc > 2 ? std::atoi(argv[2]) : 32;
  const int edge = argc > 3 ? std::atoi(argv[3]) : 1024;
  const double budget = argc > 4 ? std::atof(argv[4]) : 60.0;

  std::printf("calibrating models (small study corpus on CPU1/GPU1 profiles)...\n");
  model::StudyConfig cfg;
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  const auto obs = model::run_study(cfg);

  model::MappingConstants constants;
  constants.spr_base = 0.93 * 200;
  const double pixels = static_cast<double>(edge) * edge;

  std::printf("\nconfiguration: %d^3 cells/task, %d tasks, %dx%d image, %.0fs budget\n\n",
              n, tasks, edge, edge, budget);
  std::printf("%-6s %-14s %14s %16s\n", "arch", "renderer", "sec/frame", "frames/budget");
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind :
         {RendererKind::kRayTrace, RendererKind::kRasterize, RendererKind::kVolume}) {
      const model::PerfModel m =
          model::PerfModel::fit(kind, model::samples_for(obs, arch, kind));
      const auto points = model::images_in_budget(m, budget, n, tasks, {edge}, constants);
      std::printf("%-6s %-14s %14.4f %16ld\n", arch.c_str(), model::renderer_name(kind),
                  points[0].frame_seconds, points[0].images_in_budget);
    }
  }

  // RT vs rasterization recommendation at this configuration (100 frames).
  const model::PerfModel rt = model::PerfModel::fit(
      RendererKind::kRayTrace, model::samples_for(obs, "CPU1", RendererKind::kRayTrace));
  const model::PerfModel rast = model::PerfModel::fit(
      RendererKind::kRasterize, model::samples_for(obs, "CPU1", RendererKind::kRasterize));
  const auto cells = model::rt_vs_rast(rt, rast, 100, tasks, {edge}, {n}, constants);
  const double ratio = cells[0].ratio;
  std::printf("\nsurface rendering recommendation (CPU1, 100 frames): %s\n",
              ratio > 1.0 ? "RAY TRACING" : "RASTERIZATION");
  std::printf("  T_RAST / T_RT = %.2f (RT %.2fs vs RAST %.2fs for 100 frames)\n", ratio,
              cells[0].rt_seconds, cells[0].rast_seconds);
  (void)pixels;
  return 0;
}
