// Quickstart: build a data set, render it three ways, and write images.
//
//   $ ./quickstart [output_dir]
//
// This walks the library's three layers directly (mesh -> renderers ->
// images); see insitu_cloverleaf.cpp for the simulation-facing in situ API.
#include <cstdio>
#include <string>

#include "dpp/device.hpp"
#include "math/colormap.hpp"
#include "mesh/fields.hpp"
#include "mesh/isosurface.hpp"
#include "mesh/structured.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"

using namespace isr;

namespace {
// write_png reports failure (e.g. the output directory does not exist)
// through its return value; surface it instead of claiming success.
bool write_or_complain(const render::Image& image, const std::string& path) {
  if (image.write_png(path)) return true;
  std::fprintf(stderr, "error: could not write %s\n", path.c_str());
  return false;
}
}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  bool all_written = true;

  // 1. A scalar field on a structured grid (Richtmyer-Meshkov-like
  //    perturbed interface; see mesh/fields.hpp for others).
  const int n = 96;
  mesh::StructuredGrid grid(n, n, n, {0, 0, 0}, {1.0f / n, 1.0f / n, 1.0f / n});
  mesh::fields::fill_interface(grid);
  std::printf("grid: %d^3 cells\n", n);

  // 2. An isosurface of the field, for the surface renderers.
  const mesh::TriMesh surface = mesh::isosurface(grid, 0.5f);
  std::printf("isosurface: %zu triangles\n", surface.triangle_count());

  // 3. Render. A Device is where data-parallel work runs and is timed; the
  //    host device uses every core via OpenMP.
  dpp::Device device = dpp::Device::host();
  const Camera camera = Camera::framing(surface.bounds(), 768, 768);
  const ColorTable colors = ColorTable::viridis_like();
  render::Image image;

  {  // Ray tracing with the full feature set (AO, shadows, anti-aliasing).
    render::RayTracer tracer(surface, device);
    render::RayTracerOptions options;
    options.workload = render::RayTracerOptions::Workload::kFull;
    const render::RenderStats stats = tracer.render(camera, colors, image, options);
    all_written &= write_or_complain(image, out_dir + "/quickstart_raytrace.png");
    std::printf("ray traced  %5.0f ms (active pixels: %.0f)\n",
                1e3 * stats.total_seconds(), stats.active_pixels);
  }
  {  // Rasterization of the same surface (same camera, comparable image).
    render::Rasterizer rasterizer(surface, device);
    const render::RenderStats stats = rasterizer.render(camera, colors, image);
    all_written &= write_or_complain(image, out_dir + "/quickstart_raster.png");
    std::printf("rasterized  %5.0f ms (visible triangles: %.0f)\n",
                1e3 * stats.total_seconds(), stats.visible_objects);
  }
  {  // Volume rendering of the field itself.
    render::StructuredVolumeRenderer volume(grid, device);
    const TransferFunction tf(colors, 0.0f, 0.3f);
    const render::RenderStats stats = volume.render(camera, tf, image);
    all_written &= write_or_complain(image, out_dir + "/quickstart_volume.png");
    std::printf("volume      %5.0f ms (samples/ray: %.0f)\n", 1e3 * stats.total_seconds(),
                stats.samples_per_ray);
  }
  if (!all_written) return 1;
  std::printf("wrote quickstart_{raytrace,raster,volume}.png to %s\n", out_dir.c_str());
  return 0;
}
