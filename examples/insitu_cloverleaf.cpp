// In situ visualization of the CloverLeaf3D proxy — the paper's Chapter IV
// usage pattern (Listings 4.1-4.3): the simulation owns its data, describes
// it once with zero-copy Conduit nodes, and calls Execute each cycle.
//
//   $ ./insitu_cloverleaf [cycles=20] [output_dir=.]
//
// Writes cloverleaf_0000.png ... and a stream.html index you can open in a
// browser (the WebSocket-streaming substitute).
#include <cstdio>
#include <string>

#include "insitu/strawman.hpp"
#include "sims/cloverleaf.hpp"

using namespace isr;

int main(int argc, char** argv) {
  const int cycles = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  sims::CloverLeaf sim(48, 48, 48);

  // Describe the simulation data (zero-copy; done once — the node keeps
  // seeing the simulation's live arrays).
  conduit::Node data;
  sim.describe(data);

  insitu::Strawman strawman;
  conduit::Node options;
  options["output_dir"] = out_dir;
  options["web/stream"] = "true";
  strawman.open(options);
  strawman.publish(data);

  for (int c = 0; c < cycles; ++c) {
    sim.step();

    // Describe the actions to perform this cycle.
    conduit::Node actions;
    conduit::Node& add = actions.append();
    add["action"] = "AddPlot";
    add["var"] = "energy";
    add["renderer"] = "volume";
    actions.append()["action"] = "DrawPlots";
    conduit::Node& save = actions.append();
    char name[64];
    std::snprintf(name, sizeof(name), "cloverleaf_%04d", sim.cycle());
    save["action"] = "SaveImage";
    save["fileName"] = name;
    save["format"] = "png";
    save["width"] = 512;
    save["height"] = 512;

    strawman.execute(actions);
    std::printf("cycle %3d: t=%.4f vis=%.0f ms\n", sim.cycle(), sim.time(),
                1e3 * strawman.last_stats().total_seconds());
  }

  // The performance log doubles as the model-fitting corpus.
  std::printf("\nper-render measurements (CSV):\n%s", strawman.perf_log().to_csv().c_str());
  strawman.close();
  return 0;
}
