// In situ visualization of the CloverLeaf3D proxy — the paper's Chapter IV
// usage pattern (Listings 4.1-4.3): the simulation owns its data, describes
// it once with zero-copy Conduit nodes, and calls Execute each cycle.
//
//   $ ./insitu_cloverleaf [cycles=20] [output_dir=.]
//
// Writes cloverleaf_0000.png ... and a stream.html index you can open in a
// browser (the WebSocket-streaming substitute).
#include <cstdio>
#include <string>

#include "core/env.hpp"
#include "insitu/strawman.hpp"
#include "sims/cloverleaf.hpp"

using namespace isr;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [cycles=20] [output_dir=.]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 3) return usage(argv[0]);
  // Validated argv (core/env contract): garbage rejected loudly with
  // usage + exit 2, never atoi'd to 0.
  long cycles = 20;
  if (argc > 1) {
    const core::ParseStatus status =
        core::parse_long(argv[1], cycles, /*require_positive=*/true);
    if (status != core::ParseStatus::kOk || cycles > 1 << 20) {
      std::fprintf(stderr, "%s: bad cycles \"%s\" (%s)\n", argv[0], argv[1],
                   status == core::ParseStatus::kOk ? "too large"
                                                    : core::parse_status_message(status));
      return usage(argv[0]);
    }
  }
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  sims::CloverLeaf sim(48, 48, 48);

  // Describe the simulation data (zero-copy; done once — the node keeps
  // seeing the simulation's live arrays).
  conduit::Node data;
  sim.describe(data);

  insitu::Strawman strawman;
  conduit::Node options;
  options["output_dir"] = out_dir;
  options["web/stream"] = "true";
  strawman.open(options);
  strawman.publish(data);

  for (int c = 0; c < cycles; ++c) {
    sim.step();

    // Describe the actions to perform this cycle.
    conduit::Node actions;
    conduit::Node& add = actions.append();
    add["action"] = "AddPlot";
    add["var"] = "energy";
    add["renderer"] = "volume";
    actions.append()["action"] = "DrawPlots";
    conduit::Node& save = actions.append();
    char name[64];
    std::snprintf(name, sizeof(name), "cloverleaf_%04d", sim.cycle());
    save["action"] = "SaveImage";
    save["fileName"] = name;
    save["format"] = "png";
    save["width"] = 512;
    save["height"] = 512;

    strawman.execute(actions);
    std::printf("cycle %3d: t=%.4f vis=%.0f ms\n", sim.cycle(), sim.time(),
                1e3 * strawman.last_stats().total_seconds());
  }

  // The performance log doubles as the model-fitting corpus.
  std::printf("\nper-render measurements (CSV):\n%s", strawman.perf_log().to_csv().c_str());
  strawman.close();
  return 0;
}
