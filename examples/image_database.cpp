// Cinema-style image-database extraction (the use case motivating the
// paper's feasibility question): render one time step from many camera
// angles, but first ask the performance model whether the plan fits the
// time budget — and shrink it if not.
//
//   $ ./image_database [budget_seconds=10] [output_dir=.]
#include <cmath>
#include <cstdio>
#include <string>

#include "core/env.hpp"
#include "dpp/device.hpp"
#include "math/colormap.hpp"
#include "mesh/fields.hpp"
#include "mesh/isosurface.hpp"
#include "mesh/structured.hpp"
#include "model/perfmodel.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [budget_seconds=10] [output_dir=.]\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 3) return usage(argv[0]);
  // Validated argv (core/env contract): garbage is rejected loudly with
  // usage + exit 2, never atof'd to 0 — a mistyped budget must not silently
  // produce a zero-frame database.
  double budget = 10.0;
  if (argc > 1) {
    const core::ParseStatus status =
        core::parse_double(argv[1], budget, /*require_positive=*/true);
    if (status != core::ParseStatus::kOk) {
      std::fprintf(stderr, "%s: bad budget_seconds \"%s\" (%s)\n", argv[0], argv[1],
                   core::parse_status_message(status));
      return usage(argv[0]);
    }
  }
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  const int n = 80;
  mesh::StructuredGrid grid(n, n, n, {0, 0, 0}, {1.0f / n, 1.0f / n, 1.0f / n});
  mesh::fields::fill_turbulence(grid);
  const mesh::TriMesh surface = mesh::isosurface(grid, 0.55f);
  dpp::Device device = dpp::Device::host();
  const ColorTable colors = ColorTable::cool_warm();
  render::RayTracer tracer(surface, device);

  // Calibrate a tiny model from three probe renders at this configuration
  // (the online-model idea from the dissertation's Chapter VI).
  std::vector<model::RenderSample> probes;
  const int edge = 384;
  for (int i = 0; i < 3; ++i) {
    Camera cam = Camera::framing(surface.bounds(), edge, edge, 0.6f + 0.2f * i,
                                 {0.3f + 0.3f * i, 0.4f, 1.0f});
    render::Image img;
    const render::RenderStats stats = tracer.render(cam, colors, img);
    model::RenderSample s;
    s.inputs = {stats.objects, stats.active_pixels, 0, 0, 0, 0};
    s.render_seconds = stats.total_seconds();
    probes.push_back(s);
  }
  const model::PerfModel m = model::PerfModel::fit(model::RendererKind::kRayTrace, probes);
  const double per_frame = m.ok() ? m.predict_render(probes[1].inputs)
                                  : probes[1].render_seconds;
  const long predicted = static_cast<long>(budget / per_frame);
  std::printf("model predicts %.1f ms/frame -> ~%ld frames fit the %.1fs budget\n",
              1e3 * per_frame, predicted, budget);
  const int frames = static_cast<int>(std::min<long>(predicted, 64));

  // Orbit the camera; this is the paper's image-database scenario (many
  // viewpoints of the same geometry, BVH built once).
  double spent = 0.0;
  int written = 0;
  for (int f = 0; f < frames; ++f) {
    const float angle = 6.2831853f * static_cast<float>(f) / static_cast<float>(frames);
    Camera cam = Camera::framing(surface.bounds(), edge, edge, 0.7f,
                                 {std::cos(angle), 0.35f, std::sin(angle)});
    render::Image img;
    const render::RenderStats stats = tracer.render(cam, colors, img);
    spent += stats.total_seconds();
    char name[64];
    std::snprintf(name, sizeof(name), "%s/db_%03d.png", out_dir.c_str(), f);
    if (!img.write_png(name)) {
      std::fprintf(stderr, "error: could not write %s\n", name);
      return 1;
    }
    ++written;
    if (spent > budget) break;
  }
  std::printf("rendered %d views in %.2fs (budget %.2fs) -> %s/db_*.png\n", written, spent,
              budget, out_dir.c_str());
  return 0;
}
