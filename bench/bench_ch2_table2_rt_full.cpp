// Table 2 (Chapter II): frames per second of the DPP ray tracer with all
// features enabled (WORKLOAD3: ambient occlusion x4, shadows, 4-ray
// anti-aliasing, stream compaction) on the paper's two headline devices.
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 2: ray tracing FPS, full algorithm (WORKLOAD3)",
                      "AO(4 samples) + shadows + anti-aliasing + stream compaction.");

  const int width = bench::scaled(1920, 96);
  const int height = bench::scaled(1080, 64);
  const ColorTable colors = ColorTable::cool_warm();

  std::printf("%-12s %18s %20s\n", "dataset", "CPU2 (Intel Xeon)", "GPU1 (Titan Black)");
  bench::print_rule();
  for (const mesh::SceneInfo& info : mesh::chapter2_scenes()) {
    const mesh::TriMesh scene = mesh::make_scene(info.name, static_cast<float>(bench::scale()));
    const Camera cam = Camera::framing(scene.bounds(), width, height, 1.1f);
    std::printf("%-12s", info.name.c_str());
    for (const char* profile : {"XeonE5", "TitanBlack"}) {
      dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
      render::RayTracer rt(scene, dev);
      render::Image img;
      render::RayTracerOptions opt;
      opt.workload = render::RayTracerOptions::Workload::kFull;
      const render::RenderStats stats = rt.render(cam, colors, img, opt);
      std::printf(" %18.1f", 1.0 / stats.total_seconds());
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: roughly 3-6x slower than WORKLOAD2 (Table 1) on both\n"
              "devices; the GPU stays ~5x ahead of the CPU.\n");
  return 0;
}
