// Study-harness throughput: runs one fixed §5.4 study configuration twice —
// serially (threads=1) and across the whole machine (ISR_THREADS or all
// hardware threads) — verifies the two corpora are bit-identical, and
// reports observations/sec plus the parallel speedup.
//
// The final line is machine-readable JSON (prefix "JSON ") so CI can track
// the perf trajectory across PRs:
//   JSON {"bench":"study_throughput","observations":...,"threads":...,
//         "serial_seconds":...,"parallel_seconds":...,"speedup":...,
//         "obs_per_sec_serial":...,"obs_per_sec_parallel":...,
//         "identical":true}
// Exits nonzero when the parallel corpus diverges from the serial one.
#include <chrono>
#include <cstdio>
#include <vector>

#include "common.hpp"
#include "core/thread_pool.hpp"
#include "model/study.hpp"

using namespace isr;

namespace {

model::StudyConfig fixed_config() {
  // Fixed shape; only the sizes follow ISR_BENCH_SCALE so the smoke run
  // stays short and the nightly paper-scale run is meaningful.
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf", "lulesh"};
  cfg.tasks = {1, 2, 4, 8};
  cfg.samples_per_config = 3;
  cfg.min_image = bench::scaled(256);
  cfg.max_image = bench::scaled(640);
  cfg.min_n = bench::scaled(32);
  cfg.max_n = bench::scaled(64);
  cfg.vr_samples = bench::scaled(300, 50);
  cfg.sim_steps = 2;
  cfg.seed = 1350;
  return cfg;
}

double run_once(int threads, std::vector<model::Observation>& obs) {
  model::StudyConfig cfg = fixed_config();
  cfg.threads = threads;
  const auto start = std::chrono::steady_clock::now();
  obs = model::run_study(cfg);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool identical(const std::vector<model::Observation>& a,
               const std::vector<model::Observation>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!model::observations_identical(a[i], b[i])) return false;
  return true;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  bench::print_header("Study harness throughput (beyond the paper)",
                      "One fixed study config at 1 thread vs " +
                          std::to_string(threads) + " (ISR_THREADS / hardware).");

  std::vector<model::Observation> serial_obs, parallel_obs;
  {
    // Untimed warmup so the serial run (always first) doesn't absorb
    // one-time costs — first-touch faults, allocator growth — and inflate
    // the speedup the nightly archives.
    std::vector<model::Observation> warmup;
    run_once(0, warmup);
  }
  const double t_serial = run_once(1, serial_obs);
  const double t_parallel = run_once(0, parallel_obs);
  const bool same = identical(serial_obs, parallel_obs);

  const double n = static_cast<double>(serial_obs.size());
  const double speedup = t_parallel > 0.0 ? t_serial / t_parallel : 0.0;
  std::printf("%-22s %10s %12s %10s\n", "run", "threads", "seconds", "obs/sec");
  bench::print_rule(58);
  std::printf("%-22s %10d %12.3f %10.2f\n", "serial", 1, t_serial, n / t_serial);
  std::printf("%-22s %10d %12.3f %10.2f\n", "parallel", threads, t_parallel, n / t_parallel);
  std::printf("\n%zu observations; speedup %.2fx; corpora bit-identical: %s\n",
              serial_obs.size(), speedup, same ? "yes" : "NO (BUG)");

  std::printf(
      "JSON {\"bench\":\"study_throughput\",\"observations\":%zu,\"threads\":%d,"
      "\"serial_seconds\":%.6f,\"parallel_seconds\":%.6f,\"speedup\":%.3f,"
      "\"obs_per_sec_serial\":%.3f,\"obs_per_sec_parallel\":%.3f,\"identical\":%s}\n",
      serial_obs.size(), threads, t_serial, t_parallel, speedup, n / t_serial,
      n / t_parallel, same ? "true" : "false");
  return same ? 0 : 1;
}
