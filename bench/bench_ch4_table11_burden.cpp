// Table 11 (Chapter IV): simulation burden — average seconds per cycle
// spent in visualization vs in the simulation itself, for the three proxy
// integrations. The paper ran 4096 cores / 4-8 billion cells; here each
// proxy runs at bench scale on one rank with the renderer the paper used
// for it (CloverLeaf3D: ray tracing; Kripke: rasterization (its OSMesa
// stand-in); LULESH: volume rendering).
#include <cstdio>

#include "common.hpp"
#include "dpp/timer.hpp"
#include "insitu/strawman.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/kripke.hpp"
#include "sims/lulesh.hpp"

using namespace isr;

namespace {

conduit::Node make_actions(const std::string& var, const std::string& renderer, int edge) {
  conduit::Node actions;
  conduit::Node& add = actions.append();
  add["action"] = "AddPlot";
  add["var"] = var;
  add["renderer"] = renderer;
  actions.append()["action"] = "DrawPlots";
  conduit::Node& save = actions.append();
  save["action"] = "SaveImage";
  save["fileName"] = "burden_" + renderer;
  save["format"] = "ppm";
  save["width"] = edge;
  save["height"] = edge;
  return actions;
}

template <class Sim>
void run_case(const char* label, Sim& sim, const std::string& var,
              const std::string& renderer, int cycles, int edge) {
  conduit::Node data;
  sim.describe(data);
  insitu::Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);
  const conduit::Node actions = make_actions(var, renderer, edge);

  double sim_seconds = 0.0, vis_seconds = 0.0;
  for (int c = 0; c < cycles; ++c) {
    dpp::WallTimer sim_timer;
    sim.step();
    sim_seconds += sim_timer.seconds();
    dpp::WallTimer vis_timer;
    strawman.execute(actions);
    vis_seconds += vis_timer.seconds();
  }
  std::printf("%-34s %10.3fs %10.3fs\n", label, vis_seconds / cycles, sim_seconds / cycles);
  strawman.close();
}

}  // namespace

int main() {
  bench::print_header("Table 11: simulation burden (avg seconds per cycle)",
                      "Vis = Strawman execute (render + save); Sim = one proxy cycle.");

  const int edge = bench::scaled(1024, 96);
  const int n = bench::scaled(160, 24);  // per-proxy grid edge
  const int cycles = 4;

  std::printf("%-34s %10s %10s\n", "", "Vis", "Sim");
  bench::print_rule();
  {
    sims::CloverLeaf sim(n, n, n);
    run_case("CloverLeaf3D (Ray Tracing)", sim, "energy", "raytracer", cycles, edge);
  }
  {
    sims::Kripke sim(n, n, n);
    run_case("Kripke (Rasterization)", sim, "phi", "rasterizer", cycles, edge);
  }
  {
    sims::Lulesh sim(bench::scaled(96, 16));
    run_case("LULESH (Vol. Ren.)", sim, "e", "volume", cycles, edge);
  }
  std::printf("\nExpected shape (paper Table 11): surface renders cost a fraction of a\n"
              "simulation cycle; volume rendering is the heaviest visualization and\n"
              "can exceed the cycle cost (paper: 30.85s vis vs 12.62s sim).\n");
  return 0;
}
