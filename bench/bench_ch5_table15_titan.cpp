// Table 15 (Chapter V): evaluation on the leading-edge machine — train each
// model on a small CloverLeaf3D corpus on the Titan-node profile (GPU2,
// K20-like), then predict a run at much higher concurrency (1024 ranks) and
// compare against the measured time of that configuration's slowest rank.
#include <cstdio>

#include "common.hpp"
#include "comm/compositor.hpp"
#include "conduit/blueprint.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/external_faces.hpp"
#include "model/study.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"
#include "sims/cloverleaf.hpp"

using namespace isr;
using model::RendererKind;

int main() {
  bench::print_header("Table 15: train small on GPU2 (Titan), predict at 1024 ranks",
                      "Training: CloverLeaf3D at 1-4 tasks; evaluation: the slowest of "
                      "1024 virtual ranks at 2048^2-scaled resolution.");

  // ---- Train on a small corpus --------------------------------------------
  model::StudyConfig cfg;
  cfg.archs = {"GPU2"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  // The paper evaluated inside its trained resolution range (2048^2 vs a
  // 2880^2 training max); mirror that protocol at bench scale.
  cfg.min_image = 256;
  cfg.max_image = 800;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  cfg.seed = 1015;
  const auto obs = model::run_study(cfg);

  // ---- Evaluate at scale ----------------------------------------------------
  const int tasks = 1024;
  const int n = bench::scaled(256, 24);   // paper: 16B cells total / 1024 nodes
  const int edge = bench::scaled(2048, 128);
  // Rank 512 sits mid-domain: representative (non-boundary) work.
  sims::CloverLeaf proxy(n, n, n, 512, tasks);
  proxy.step();
  conduit::Node data;
  proxy.describe(data);
  mesh::StructuredGrid grid = conduit::blueprint::to_structured(data, "energy");
  grid.normalize_scalars();
  const mesh::TriMesh surface = mesh::external_faces(grid);
  // Global camera: the full 1024-rank domain is the unit cube.
  AABB global;
  global.expand({0, 0, 0});
  global.expand({1, 1, 1});
  const Camera cam = Camera::framing(global, edge, edge, 0.8f);
  const ColorTable colors = ColorTable::cool_warm();
  const TransferFunction tf(colors, 0.05f, 0.3f);

  std::printf("%-16s %12s %12s %12s %8s\n", "Technique", "Actual", "Predicted",
              "Difference", "Samples");
  bench::print_rule();
  for (const RendererKind kind :
       {RendererKind::kRayTrace, RendererKind::kVolume, RendererKind::kRasterize}) {
    const auto samples = model::samples_for(obs, "GPU2", kind);
    const model::PerfModel m = model::PerfModel::fit(kind, samples);

    dpp::Device dev = dpp::Device::simulated(dpp::profile_gpu2(), 0x7174Au);
    render::Image img;
    render::RenderStats stats;
    double build = 0.0;
    if (kind == RendererKind::kRayTrace) {
      render::RayTracer rt(surface, dev);
      build = rt.bvh_build_stats().total_seconds();
      stats = rt.render(cam, colors, img);
    } else if (kind == RendererKind::kRasterize) {
      render::Rasterizer rast(surface, dev);
      stats = rast.render(cam, colors, img);
    } else {
      render::StructuredVolumeRenderer vr(grid, dev);
      render::VolumeRenderOptions opt;
      opt.samples = 200;
      stats = vr.render(cam, tf, img, opt);
    }
    const double actual = stats.total_seconds() + build;
    const model::ModelInputs in = {stats.objects,         stats.active_pixels,
                                   stats.visible_objects, stats.pixels_per_tri,
                                   stats.samples_per_ray, stats.cells_spanned};
    const double predicted = m.predict(in);
    std::printf("%-16s %11.5fs %11.5fs %+11.1f%% %8zu\n", model::renderer_name(kind),
                actual, predicted, 100.0 * (predicted - actual) / actual, samples.size());
  }
  std::printf("\nExpected shape (paper Table 15): surface renderers predicted within\n"
              "~6-19%%; volume rendering off the most (the small-render regime where\n"
              "launch overhead dominates and the model extrapolates worst).\n"
              "The compositing model is NOT evaluated at this scale (the paper also\n"
              "declares its corpus inadequate at 1024 tasks).\n");
  return 0;
}
