// Figures 4-5 (Chapter III): unstructured volume renderer phase breakdown
// as a function of pass count, both camera positions, CPU and GPU profiles.
// Prints the per-phase series the figures plot as stacked bars.
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Figures 4-5: UVR phase times vs pass count",
                      "Per-phase seconds; passes = memory/time trade-off.");

  const int edge = bench::scaled(1024, 96);
  const int samples = bench::scaled(1000, 64);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);
  const char* phases[] = {"initialization", "pass_selection", "screen_space", "sampling",
                          "compositing"};

  for (const char* profile : {"CPU1", "GPU1"}) {
    for (const std::string& name : {std::string("Enzo-1M"), std::string("Enzo-10M")}) {
      const mesh::TetMesh tets = bench::ch3_dataset(name);
      std::printf("\n-- %s, %s (tets=%zu) --\n", profile, name.c_str(), tets.cell_count());
      std::printf("%-6s %-6s %7s %7s %7s %7s %7s %8s\n", "passes", "view", "init", "sel",
                  "ss", "samp", "comp", "TOT");
      for (const int passes : {1, 2, 4, 8, 16}) {
        for (const bool close : {true, false}) {
          const Camera cam = close ? bench::close_camera(tets.bounds(), edge, edge)
                                   : bench::far_camera(tets.bounds(), edge, edge);
          dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
          render::UnstructuredVolumeRenderer uvr(tets, dev);
          render::Image img;
          render::UnstructuredVROptions opt;
          opt.num_passes = passes;
          opt.samples_in_depth = samples;
          const render::RenderStats stats = uvr.render(cam, tf, img, opt);
          std::printf("%-6d %-6s", passes, close ? "close" : "far");
          for (const char* phase : phases) std::printf(" %7.3f", stats.phase_seconds(phase));
          std::printf(" %8.3f\n", stats.total_seconds());
        }
      }
    }
  }
  std::printf("\nExpected shape: sampling dominates the CPU; compositing gains weight\n"
              "on the GPU; pass-selection/screen-space overheads grow with pass count\n"
              "while sampling stays roughly flat (Figures 4-5).\n");
  return 0;
}
