// Tracing-overhead tracker (beyond the paper): the observability layer's
// contract is that a wired-but-disabled TraceRecorder costs nothing on the
// serving fast path — one relaxed atomic load per probe site — and that
// tracing, on or off, never changes a single response byte. This bench
// measures the same fixed query batch through three cluster
// configurations:
//
//   absent — config.trace == nullptr (the default; probes are null checks)
//   off    — a TraceRecorder wired in but never enabled
//   on     — the recorder enabled, every lifecycle span recorded
//
// Each leg takes the best of two attempts on a fresh cluster (runner noise
// is real; a genuine regression is a bug).
//
// Health gates (exit nonzero on violation):
//   - qps_off >= 0.95 * qps_absent: the disabled recorder stays within 5%
//     of no recorder at all (in practice they are indistinguishable; the
//     floor is what catches an accidentally hot probe);
//   - responses byte-identical through serve::to_jsonl across all three
//     legs;
//   - the enabled leg actually traced: admit/queue/eval/deliver events
//     present, zero ring drops at the default capacity;
//   - exactly one registry fit.
//
// The final line is machine-readable JSON (prefix "JSON ") so the nightly
// workflow can archive the perf trajectory:
//   JSON {"bench":"trace_overhead","queries":...,"shards":...,
//         "qps_absent":...,"qps_off":...,"qps_on":...,
//         "off_over_absent":...,"on_over_absent":...,
//         "trace_events":...,"trace_dropped":0,"p99_e2e_us":...,
//         "identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "common.hpp"
#include "core/thread_pool.hpp"
#include "obs/trace.hpp"
#include "serve/advisor.hpp"

using namespace isr;

namespace {

// The disabled-tracing floor. The off leg's extra work per request is a
// handful of relaxed loads, far below timer resolution; 0.95 sits under
// runner noise while a probe that accidentally takes a lock or allocates
// lands well below it.
constexpr double kOffFloor = 0.95;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration() {
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  return cfg;
}

cluster::ClusterConfig cluster_config(int shards, obs::TraceRecorder* trace) {
  cluster::ClusterConfig cfg;
  cfg.service.calibration = calibration();
  cfg.shards = shards;
  cfg.cache_entries = 0;  // every request evaluated: the legs do equal work
  cfg.trace = trace;
  return cfg;
}

// The bench_stream_throughput query grid at half the repetitions — each of
// the three legs runs it twice.
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 10;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

bool identical(const std::vector<serve::AdvisorResponse>& a,
               const std::vector<serve::AdvisorResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!serve::responses_identical(a[i], b[i]) || serve::to_jsonl(a[i]) != serve::to_jsonl(b[i]))
      return false;
  return true;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  const int shards = std::max(2, std::min(4, threads));
  bench::print_header(
      "Request-lifecycle tracing overhead (beyond the paper)",
      "One fixed query batch on " + std::to_string(shards) +
          " shards, three ways: no TraceRecorder, recorder wired but "
          "disabled, recorder enabled. Off must stay within " +
          std::to_string(kOffFloor) + "x of absent.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const auto primary = std::make_shared<serve::ModelRegistry>();

  // Calibrate once, outside every timed region.
  const auto calib_start = std::chrono::steady_clock::now();
  const std::size_t corpus = primary->models_for(calibration()).corpus_size;
  const double t_calibrate = seconds_since(calib_start);

  // One persistent recorder serves the off and on legs; each timed attempt
  // still gets a fresh cluster so no leg inherits warmed shard state.
  obs::TraceRecorder tracer;
  const auto run_leg = [&](obs::TraceRecorder* trace, bool enable,
                           std::vector<serve::AdvisorResponse>& responses) {
    double best = 0.0;
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (trace) {
        trace->clear();
        if (enable)
          trace->enable();
        else
          trace->disable();
      }
      cluster::ServingCluster serving(cluster_config(shards, trace), primary);
      const auto start = std::chrono::steady_clock::now();
      std::vector<serve::AdvisorResponse> got = serving.serve_batch(requests);
      const double t = seconds_since(start);
      if (attempt == 0 || t < best) {
        best = t;
        responses = std::move(got);
      }
    }
    return best;
  };

  std::vector<serve::AdvisorResponse> absent_responses, off_responses, on_responses;
  const double t_absent = run_leg(nullptr, false, absent_responses);
  const double t_off = run_leg(&tracer, false, off_responses);
  const double t_on = run_leg(&tracer, true, on_responses);

  // The on leg's trace and stage histograms, from its best attempt's
  // recorder state (clear() ran before the attempt, so the buffer holds
  // exactly one run).
  const std::string trace_json = tracer.chrome_trace_json();
  const std::uint64_t trace_events = tracer.buffered();
  const std::uint64_t trace_dropped = tracer.dropped();
  const bool traced_lifecycle = trace_json.find("\"name\":\"admit\"") != std::string::npos &&
                                trace_json.find("\"name\":\"queue\"") != std::string::npos &&
                                trace_json.find("\"name\":\"eval\"") != std::string::npos &&
                                trace_json.find("\"name\":\"deliver\"") != std::string::npos;

  const int fits = primary->fits();
  const bool bytes_identical =
      identical(absent_responses, off_responses) && identical(absent_responses, on_responses);
  const double n = static_cast<double>(requests.size());
  const double qps_absent = n / t_absent;
  const double qps_off = n / t_off;
  const double qps_on = n / t_on;
  const bool off_within_floor = qps_off >= kOffFloor * qps_absent;

  // p99 end-to-end latency from the on leg's merged stage histograms — the
  // bounded-memory replacement for the old sample reservoir, reported here
  // so the nightly trajectory tracks tails alongside throughput (the gate
  // script treats p99_* as advisory: WARN past 2x, never FAIL).
  double p99_e2e_us = 0.0;
  {
    cluster::ServingCluster measured(cluster_config(shards, nullptr), primary);
    std::vector<serve::AdvisorResponse> got = measured.serve_batch(requests);
    p99_e2e_us = measured.metrics().e2e.percentile_us(99.0);
    if (!identical(absent_responses, got)) return 1;
  }

  std::size_t answered = 0;
  for (const serve::AdvisorResponse& r : absent_responses) answered += r.ok() ? 1 : 0;
  const bool all_ok = answered == requests.size();

  std::printf("calibration: %zu observations fitted in %.3fs (registry fits: %d)\n\n", corpus,
              t_calibrate, fits);
  std::printf("%-28s %12s %12s %10s\n", "leg", "seconds", "queries/sec", "vs absent");
  bench::print_rule(66);
  std::printf("%-28s %12.4f %12.0f %9.2fx\n", "tracing absent", t_absent, qps_absent, 1.0);
  std::printf("%-28s %12.4f %12.0f %9.2fx\n", "tracing off (wired)", t_off, qps_off,
              qps_off / qps_absent);
  std::printf("%-28s %12.4f %12.0f %9.2fx\n", "tracing on", t_on, qps_on,
              qps_on / qps_absent);
  std::printf(
      "\n%zu queries (%zu ok); bytes identical across legs: %s; "
      "traced %llu events (%llu dropped), lifecycle complete: %s; "
      "p99 e2e %.1f us\n",
      requests.size(), answered, bytes_identical ? "yes" : "NO (BUG)",
      static_cast<unsigned long long>(trace_events),
      static_cast<unsigned long long>(trace_dropped), traced_lifecycle ? "yes" : "NO (BUG)",
      p99_e2e_us);

  std::printf(
      "JSON {\"bench\":\"trace_overhead\",\"queries\":%zu,\"shards\":%d,"
      "\"calibration_seconds\":%.6f,\"corpus_observations\":%zu,\"registry_fits\":%d,"
      "\"absent_seconds\":%.6f,\"off_seconds\":%.6f,\"on_seconds\":%.6f,"
      "\"qps_absent\":%.1f,\"qps_off\":%.1f,\"qps_on\":%.1f,"
      "\"off_over_absent\":%.4f,\"on_over_absent\":%.4f,"
      "\"trace_events\":%llu,\"trace_dropped\":%llu,\"p99_e2e_us\":%.1f,"
      "\"identical\":%s}\n",
      requests.size(), shards, t_calibrate, corpus, fits, t_absent, t_off, t_on, qps_absent,
      qps_off, qps_on, qps_off / qps_absent, qps_on / qps_absent,
      static_cast<unsigned long long>(trace_events),
      static_cast<unsigned long long>(trace_dropped), p99_e2e_us,
      bytes_identical ? "true" : "false");

  return bytes_identical && off_within_floor && traced_lifecycle && trace_dropped == 0 &&
                 fits == 1 && all_ok
             ? 0
             : 1;
}
