// Figures 6-7 (Chapter III): the DPP unstructured volume renderer vs HAVS
// (projected tetrahedra, GPU comparator) and vs the Bunyk-style
// connectivity ray caster (CPU comparator), four data sets x two views.
#include <cstdio>

#include "baseline/bunyk.hpp"
#include "baseline/havs.hpp"
#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Figures 6-7: DPP-VR vs HAVS (GPU) and vs Bunyk ray caster (CPU)",
                      "Per-frame seconds; preprocessing (HAVS sort is timed, Bunyk "
                      "connectivity trace is excluded, as in the paper).");

  const int edge = bench::scaled(1024, 96);
  const int samples = bench::scaled(1000, 64);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);

  std::printf("%-12s %-6s %12s %12s | %12s %12s\n", "dataset", "view", "DPP-VR(GPU)",
              "HAVS(GPU)", "DPP-VR(CPU)", "Bunyk(CPU)");
  bench::print_rule(84);
  for (const std::string& name : bench::ch3_dataset_names()) {
    const mesh::TetMesh tets = bench::ch3_dataset(name);
    for (const bool close : {false, true}) {
      const Camera cam = close ? bench::close_camera(tets.bounds(), edge, edge)
                               : bench::far_camera(tets.bounds(), edge, edge);

      dpp::Device gpu = dpp::Device::simulated(dpp::profile_gpu1());
      render::UnstructuredVolumeRenderer uvr_gpu(tets, gpu);
      render::Image img;
      render::UnstructuredVROptions opt;
      opt.samples_in_depth = samples;
      opt.num_passes = 4;
      const double dpp_gpu = uvr_gpu.render(cam, tf, img, opt).total_seconds();
      baseline::HavsRenderer havs(tets, gpu);
      const double havs_t = havs.render(cam, tf, img, samples).total_seconds();

      dpp::Device cpu = dpp::Device::simulated(dpp::profile_cpu1());
      render::UnstructuredVolumeRenderer uvr_cpu(tets, cpu);
      const double dpp_cpu = uvr_cpu.render(cam, tf, img, opt).total_seconds();
      baseline::BunykRayCaster bunyk(tets, cpu);
      const double bunyk_t = bunyk.render(cam, tf, img, samples).total_seconds();

      std::printf("%-12s %-6s %11.3fs %11.3fs | %11.3fs %11.3fs\n", name.c_str(),
                  close ? "close" : "far", dpp_gpu, havs_t, dpp_cpu, bunyk_t);
    }
  }
  std::printf("\nExpected shape (Figs. 6-7): HAVS wins zoomed-in (few cells cover many\n"
              "samples), DPP-VR wins zoomed-out and degrades more slowly with data\n"
              "size; Bunyk is comparable, trending slower on larger data sets.\n");
  return 0;
}
