// Streaming-admission throughput (beyond the paper): N clients, each
// holding one slice of a fixed batch of §5.9 feasibility queries, served
// two ways — SERIALIZED, each client's serve_batch completing before the
// next begins (the batch-era contract, where concurrent callers queued
// behind a global batch barrier), and STREAMING, the same N clients
// submitting concurrently through their own StreamSessions. The streaming
// leg records its admission schedule; a third, untimed leg replays it and
// must reproduce the responses byte-for-byte. A final overload leg
// replays a synthetic 2x-overload schedule with per-request deadlines and
// checks the admission controller's shedding against the virtual-time
// model it implements (the same estimate-vs-budget framing as the
// paper's Fig 14 budget advisor, applied to queue wait instead of render
// cost).
//
// Health gates (exit nonzero on violation):
//   - concurrent streams at least match the serialized leg's throughput,
//     within a floor of kMatchFloor: on multi-core hosts the streaming leg
//     keeps the shard workers fed while the serialized leg drains the
//     whole pipeline between clients (close is a barrier), so it should
//     match or win outright; on a starved single-core host concurrency
//     cannot add wall-clock throughput — extra producer threads only add
//     scheduling overhead — and the floor is what verifies the admission
//     pipeline is not materially slower than the barrier it removed. Both
//     legs take the best of two attempts (runner noise is real, a genuine
//     collapse is a bug);
//   - the streams leg's responses, live AND replayed, are byte-identical
//     through serve::to_jsonl to the serialized run's;
//   - exactly one registry fit (replicas adopt, never refit);
//   - under the 2x-overload replay: every shed decision matches the
//     virtual-time model request for request, the shed fraction is
//     bounded away from 0 and 1 (an overloaded-but-sustainable queue
//     sheds roughly half), and the p99 virtual wait of ADMITTED requests
//     sits within the deadline — shedding is what keeps it there.
//
// The final line is machine-readable JSON (prefix "JSON ") so the nightly
// workflow can archive the perf trajectory:
//   JSON {"bench":"stream_throughput","queries":...,"streams":...,
//         "shards":...,"registry_fits":1,"serialized_seconds":...,
//         "streams_seconds":...,"qps_serialized":...,"qps_streams":...,
//         "replay_identical":true,"overload_requests":...,
//         "shed_fraction":...,"p99_virtual_wait_us":...,
//         "shed_matches_model":true,"identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/stream.hpp"
#include "common.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"

using namespace isr;

namespace {

// The concurrent-vs-serialized gate floor (see the header comment): on a
// single-core host the concurrent leg pays contention and context-switch
// overhead it cannot buy back with parallelism; measured spread there is
// 0.90-1.04x, so 0.85 sits below noise while a genuine admission-pipeline
// collapse (the contention regressions this bench exists to catch) lands
// well under it.
constexpr double kMatchFloor = 0.85;
// The overload leg's virtual-time constants: arrivals every service/2
// microseconds (2x overload), deadlines at 6x service.
constexpr double kServiceUs = 4.0;
constexpr long kDeadlineUs = 24;
constexpr int kOverloadRequests = 400;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration() {
  // The same ISR_BENCH_SCALE-following calibration shape as the other
  // cluster benches, including the max_n floor (a constant-O corpus makes
  // the rasterization regression singular).
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  return cfg;
}

cluster::ClusterConfig cluster_config(int shards) {
  cluster::ClusterConfig cfg;
  cfg.service.calibration = calibration();
  cfg.shards = shards;
  cfg.cache_entries = 0;  // every request evaluated: the legs do equal work
  cfg.replay_service_us = kServiceUs;
  return cfg;
}

// The bench_advisor_throughput query grid at half the repetitions — the
// streams leg runs it three times (timed twice, replayed once).
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 20;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

// Runs `requests` as n_streams concurrent sessions, stream k submitting
// requests k, k+S, 2S+k, ... Returns the responses reassembled into
// submission order (so they compare index for index against serve_batch).
std::vector<serve::AdvisorResponse> run_streams(
    cluster::ServingCluster& serving, const std::vector<serve::AdvisorRequest>& requests,
    const std::size_t n_streams) {
  std::vector<cluster::StreamSession> sessions;
  sessions.reserve(n_streams);
  for (std::size_t k = 0; k < n_streams; ++k) sessions.push_back(serving.open_stream());
  std::vector<std::thread> producers;
  producers.reserve(n_streams);
  for (std::size_t k = 0; k < n_streams; ++k)
    producers.emplace_back([&requests, &sessions, n_streams, k] {
      for (std::size_t i = k; i < requests.size(); i += n_streams)
        sessions[k].submit(requests[i]);
    });
  for (std::thread& producer : producers) producer.join();

  std::vector<serve::AdvisorResponse> responses(requests.size());
  for (std::size_t k = 0; k < n_streams; ++k) {
    std::vector<serve::AdvisorResponse> mine = sessions[k].close();
    for (std::size_t j = 0; j < mine.size(); ++j)
      responses[k + j * n_streams] = std::move(mine[j]);
  }
  return responses;
}

bool identical(const std::vector<serve::AdvisorResponse>& a,
               const std::vector<serve::AdvisorResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!serve::responses_identical(a[i], b[i]) || serve::to_jsonl(a[i]) != serve::to_jsonl(b[i]))
      return false;
  return true;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  const int shards = std::max(2, std::min(4, threads));
  // As many concurrent clients as the host can plausibly run, floor 2: a
  // producer count past the core count only measures scheduler churn.
  const std::size_t n_streams = static_cast<std::size_t>(std::max(2, std::min(4, threads)));
  bench::print_header(
      "Streaming-admission throughput (beyond the paper)",
      "One fixed query batch: serialized serve_batch vs " + std::to_string(n_streams) +
          " concurrent streams on " + std::to_string(shards) +
          " shards; record/replay byte-identity; replayed 2x-overload shedding.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const auto primary = std::make_shared<serve::ModelRegistry>();

  // Calibrate once, outside every timed region.
  const auto calib_start = std::chrono::steady_clock::now();
  const std::size_t corpus = primary->models_for(calibration()).corpus_size;
  const double t_calibrate = seconds_since(calib_start);

  // Each client's slice, prepared outside every timed region (the
  // streaming producers submit straight from the shared request vector, so
  // the serialized clients get their slices for free too).
  std::vector<std::vector<serve::AdvisorRequest>> slices(n_streams);
  for (std::size_t i = 0; i < requests.size(); ++i)
    slices[i % n_streams].push_back(requests[i]);

  // Throughput legs, two attempts each (best wins): fresh clusters per
  // attempt so neither leg inherits the other's warmed allocator or EWMA.
  double t_serialized = 0.0, t_streams = 0.0;
  std::vector<serve::AdvisorResponse> serialized_responses, stream_responses;
  cluster::AdmissionSchedule schedule;
  int fits = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    cluster::ServingCluster serialized(cluster_config(shards), primary);
    const auto serial_start = std::chrono::steady_clock::now();
    // The batch-era contract: client k+1 waits for client k's whole batch.
    std::vector<serve::AdvisorResponse> sr(requests.size());
    for (std::size_t k = 0; k < n_streams; ++k) {
      std::vector<serve::AdvisorResponse> mine = serialized.serve_batch(slices[k]);
      for (std::size_t j = 0; j < mine.size(); ++j)
        sr[k + j * n_streams] = std::move(mine[j]);
    }
    const double ts = seconds_since(serial_start);

    cluster::ServingCluster streaming(cluster_config(shards), primary);
    const auto streams_start = std::chrono::steady_clock::now();
    std::vector<serve::AdvisorResponse> cr = run_streams(streaming, requests, n_streams);
    const double tc = seconds_since(streams_start);

    if (attempt == 0 || ts < t_serialized) t_serialized = ts;
    if (attempt == 0 || tc < t_streams) t_streams = tc;
    if (attempt == 0) {
      serialized_responses = std::move(sr);
      stream_responses = std::move(cr);
      fits = serialized.registry_fits() + (streaming.registry_fits() - primary->fits());
    }
  }
  const bool live_identical = identical(serialized_responses, stream_responses);

  // Record/replay legs (untimed — recording serializes admission by
  // design): record one concurrent run's schedule, replay it on a fresh
  // cluster with the same concurrent producers, and require both runs to
  // reproduce the serialized responses byte for byte.
  cluster::ServingCluster recorder(cluster_config(shards), primary);
  recorder.enable_recording();
  const std::vector<serve::AdvisorResponse> recorded_run = run_streams(recorder, requests, n_streams);
  schedule = recorder.take_recording();
  cluster::ServingCluster replayer(cluster_config(shards), primary);
  replayer.begin_replay(schedule);
  const std::vector<serve::AdvisorResponse> replayed = run_streams(replayer, requests, n_streams);
  const bool replay_identical = identical(serialized_responses, recorded_run) &&
                                identical(serialized_responses, replayed) &&
                                schedule.size() == requests.size();

  // Overload leg: a synthetic single-stream schedule arriving at twice the
  // service rate, every request carrying a deadline. Replay makes shedding
  // a pure function of (schedule, requests); the virtual-time model here
  // mirrors the cluster's admission arithmetic, so the two must agree on
  // every request — and on 1 shard the admitted waits are exactly the
  // model's, so their p99 respecting the deadline is the shed gate working.
  cluster::AdmissionSchedule overload;
  overload.reserve(kOverloadRequests);
  for (int i = 0; i < kOverloadRequests; ++i)
    overload.push_back({0, static_cast<std::uint64_t>(i), static_cast<std::int64_t>(2 * i)});
  cluster::ClusterConfig overload_config = cluster_config(1);
  cluster::ServingCluster overloaded(std::move(overload_config), primary);
  overloaded.begin_replay(overload);
  cluster::StreamSession session = overloaded.open_stream();
  for (int i = 0; i < kOverloadRequests; ++i) {
    serve::AdvisorRequest req = requests[static_cast<std::size_t>(i) % requests.size()];
    req.deadline_us = kDeadlineUs;
    session.submit(req);
  }
  const std::vector<serve::AdvisorResponse> overload_responses = session.close();

  bool shed_matches_model = overload_responses.size() == static_cast<std::size_t>(kOverloadRequests);
  int shed = 0;
  std::vector<double> admitted_waits_us;
  double backlog_us = 0.0;
  for (int i = 0; i < kOverloadRequests && shed_matches_model; ++i) {
    const double t = static_cast<double>(overload[static_cast<std::size_t>(i)].t_us);
    const double done = std::max(backlog_us, t) + kServiceUs;
    const bool model_sheds = done - t > static_cast<double>(kDeadlineUs);
    if (model_sheds) ++shed;
    else {
      admitted_waits_us.push_back(done - t);
      backlog_us = done;
    }
    if (overload_responses[static_cast<std::size_t>(i)].shed() != model_sheds)
      shed_matches_model = false;
  }
  const double shed_fraction =
      static_cast<double>(shed) / static_cast<double>(kOverloadRequests);
  std::sort(admitted_waits_us.begin(), admitted_waits_us.end());
  const double p99_wait_us =
      admitted_waits_us.empty()
          ? 0.0
          : admitted_waits_us[std::min(admitted_waits_us.size() - 1,
                                       static_cast<std::size_t>(
                                           0.99 * static_cast<double>(admitted_waits_us.size())))];
  const bool shed_bounded = shed > 0 && shed_fraction <= 0.75;
  const bool p99_in_deadline =
      !admitted_waits_us.empty() && p99_wait_us <= static_cast<double>(kDeadlineUs);

  const double n = static_cast<double>(requests.size());
  const bool streams_at_least_match = n / t_streams >= kMatchFloor * (n / t_serialized);
  std::size_t answered = 0;
  for (const serve::AdvisorResponse& r : serialized_responses) answered += r.ok() ? 1 : 0;
  const bool all_ok = answered == requests.size();

  std::printf("calibration: %zu observations fitted in %.3fs (registry fits: %d)\n\n", corpus,
              t_calibrate, fits);
  std::printf("%-28s %8s %8s %12s %12s\n", "run", "streams", "shards", "seconds",
              "queries/sec");
  bench::print_rule(74);
  std::printf("%-28s %8zu %8d %12.4f %12.0f\n", "serialized clients (barrier)", n_streams,
              shards, t_serialized, n / t_serialized);
  std::printf("%-28s %8zu %8d %12.4f %12.0f\n", "concurrent streams", n_streams, shards,
              t_streams, n / t_streams);
  std::printf("\n%zu queries (%zu ok); live identical: %s; replay identical: %s\n",
              requests.size(), answered, live_identical ? "yes" : "NO (BUG)",
              replay_identical ? "yes" : "NO (BUG)");
  std::printf(
      "overload replay: %d requests at 2x service rate, deadline %ld us -> "
      "%d shed (%.2f), p99 admitted wait %.1f us, model agreement: %s\n",
      kOverloadRequests, kDeadlineUs, shed, shed_fraction, p99_wait_us,
      shed_matches_model ? "yes" : "NO (BUG)");

  std::printf(
      "JSON {\"bench\":\"stream_throughput\",\"queries\":%zu,\"streams\":%zu,\"shards\":%d,"
      "\"calibration_seconds\":%.6f,\"corpus_observations\":%zu,\"registry_fits\":%d,"
      "\"serialized_seconds\":%.6f,\"streams_seconds\":%.6f,"
      "\"qps_serialized\":%.1f,\"qps_streams\":%.1f,"
      "\"replay_identical\":%s,\"overload_requests\":%d,\"shed_fraction\":%.6f,"
      "\"p99_virtual_wait_us\":%.1f,\"shed_matches_model\":%s,\"identical\":%s}\n",
      requests.size(), n_streams, shards, t_calibrate, corpus, fits, t_serialized, t_streams,
      n / t_serialized, n / t_streams, replay_identical ? "true" : "false", kOverloadRequests,
      shed_fraction, p99_wait_us, shed_matches_model ? "true" : "false",
      live_identical ? "true" : "false");

  return live_identical && replay_identical && streams_at_least_match && fits == 1 &&
                 all_ok && shed_matches_model && shed_bounded && p99_in_deadline
             ? 0
             : 1;
}
