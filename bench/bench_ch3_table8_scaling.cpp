// Table 8 (Chapter III): strong scaling of the unstructured volume
// renderer, 1..24 threads (Enzo-10M close, one pass). "Total time" = raw
// time x threads: flat means perfect scaling; the paper saw ~50% growth by
// 24 threads. Thread counts beyond the host are simulated via the
// thread-scaled CPU profile (DESIGN.md §3).
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 8: UVR strong scaling (threads = 1..24)",
                      "Enzo-10M, close view, one pass.");

  const mesh::TetMesh tets = bench::ch3_dataset("Enzo-10M");
  const int edge = bench::scaled(1024, 96);
  const Camera cam = bench::close_camera(tets.bounds(), edge, edge);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);

  std::printf("%-10s %12s %12s %10s\n", "Threads", "Raw time", "Total time", "Efficiency");
  bench::print_rule();
  double t1 = 0.0;
  for (const int threads : {1, 2, 4, 8, 16, 24}) {
    dpp::Device dev = dpp::Device::simulated(dpp::profile_cpu_threads(threads));
    render::UnstructuredVolumeRenderer uvr(tets, dev);
    render::Image img;
    render::UnstructuredVROptions opt;
    opt.num_passes = 1;
    opt.samples_in_depth = bench::scaled(1000, 64);
    const double raw = uvr.render(cam, tf, img, opt).total_seconds();
    if (threads == 1) t1 = raw;
    std::printf("%-10d %11.3fs %11.3fs %9.2f%%\n", threads, raw, raw * threads,
                100.0 * t1 / (raw * threads));
  }
  std::printf("\nExpected shape: total time grows ~50%% from 1 to 24 threads (paper:\n"
              "43.9s -> 60.7s), i.e. good but sub-linear scaling.\n");
  return 0;
}
