// Table 7 (Chapter III): time and estimated instructions-per-cycle by
// phase for the unstructured volume renderer, CPU vs GPU (Enzo-10M close,
// 4 passes). The paper used PAPI / nvprof; we use the DPP layer's
// arithmetic-op estimates over modeled cycles (DESIGN.md §3 item 4).
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 7: UVR time + est. IPC per core by phase, GPU1 vs CPU1",
                      "Enzo-10M, close view, 4 passes. IPC = estimated ops / cycles.");

  const mesh::TetMesh tets = bench::ch3_dataset("Enzo-10M");
  const int edge = bench::scaled(1024, 96);
  const Camera cam = bench::close_camera(tets.bounds(), edge, edge);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);

  struct ArchResult {
    render::RenderStats stats;
    double clock_ghz;
    int cores;
  };
  std::vector<std::pair<std::string, ArchResult>> results;
  for (const auto& [profile, cores] : std::vector<std::pair<std::string, int>>{
           {"GPU1", 2880}, {"CPU1", 16}}) {
    dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
    render::UnstructuredVolumeRenderer uvr(tets, dev);
    render::Image img;
    render::UnstructuredVROptions opt;
    opt.num_passes = 4;
    opt.samples_in_depth = bench::scaled(1000, 64);
    ArchResult r;
    r.stats = uvr.render(cam, tf, img, opt);
    r.clock_ghz = dev.profile().clock_ghz;
    r.cores = cores;
    results.emplace_back(profile, r);
  }

  std::printf("%-16s %12s %8s %12s %8s\n", "Phase", "GPU1 time", "IPC", "CPU1 time", "IPC");
  bench::print_rule();
  for (const char* phase : {"pass_selection", "screen_space", "sampling", "compositing"}) {
    std::printf("%-16s", phase);
    for (const auto& [name, r] : results) {
      // Per-core IPC: total estimated ops spread over the device's cores.
      const double ipc =
          r.stats.timings.phase_ipc(phase, r.clock_ghz) / static_cast<double>(r.cores);
      std::printf(" %11.4fs %8.3f", r.stats.phase_seconds(phase), ipc);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper): GPU much faster on compute phases (screen\n"
              "space, sampling); compositing is the GPU's weak phase relative to its\n"
              "potential; CPU IPC highest during sampling.\n");
  return 0;
}
