// Tables 3 (Chapter II): millions of rays per second (WORKLOAD1, pure
// intersection) of the DPP ray tracer vs the tuned comparator (OptiX Prime
// stand-in) on the four GPU profiles.
#include <cstdio>

#include "baseline/tuned_rt.hpp"
#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 3: Mrays/s, DPP ray tracer vs OptiX-Prime stand-in (GPUs)",
                      "WORKLOAD1 (intersection only). 'DPP' = our data-parallel tracer, "
                      "'Tuned' = fused-kernel comparator.");

  const int width = bench::scaled(1920, 96);
  const int height = bench::scaled(1080, 64);
  const ColorTable colors = ColorTable::grayscale();
  const std::vector<std::pair<std::string, std::string>> gpus = {
      {"TitanBlack", "GPU1"}, {"GPU1", "GPU2(K40)"}, {"GTX750Ti", "GPU3"}, {"GT620M", "GPU4"}};

  std::printf("%-12s", "dataset");
  for (const auto& [profile, label] : gpus)
    std::printf(" %10s %10s", (label + ":DPP").c_str(), "Tuned");
  std::printf("\n");
  bench::print_rule(100);

  for (const mesh::SceneInfo& info : mesh::chapter2_scenes()) {
    const mesh::TriMesh scene = mesh::make_scene(info.name, static_cast<float>(bench::scale()));
    const Camera cam = Camera::framing(scene.bounds(), width, height, 1.1f);
    const double mrays = static_cast<double>(cam.pixel_count()) / 1e6;
    std::printf("%-12s", info.name.c_str());
    for (const auto& [profile, label] : gpus) {
      dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
      render::RayTracer rt(scene, dev);
      render::Image img;
      render::RayTracerOptions opt;
      opt.workload = render::RayTracerOptions::Workload::kIntersect;
      const double dpp_t = rt.render(cam, colors, img, opt).total_seconds();
      baseline::TunedRayTracer tuned(scene, dev);
      const double tuned_t = tuned.render_intersect(cam).total_seconds();
      std::printf(" %10.1f %10.1f", mrays / dpp_t, mrays / tuned_t);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: the tuned tracer wins by ~1.5-4x on the Kepler-class\n"
              "profiles (paper: 2-4x), with the gap narrowing on weaker GPUs.\n");
  return 0;
}
