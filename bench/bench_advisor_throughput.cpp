// Advisor-service throughput (beyond the paper): answers one fixed batch of
// §5.9 feasibility queries twice — serially (threads=1) and across the
// whole machine (ISR_THREADS or all hardware threads) — verifies the two
// response vectors are byte-identical, and reports queries/sec. Both
// services share one ModelRegistry, so calibration is fitted exactly once
// and the second service's first query exercises the cache-hit path.
//
// The final line is machine-readable JSON (prefix "JSON ") so CI can track
// the perf trajectory across PRs:
//   JSON {"bench":"advisor_throughput","queries":...,"threads":...,
//         "calibration_seconds":...,"corpus_observations":...,
//         "registry_fits":1,"serial_seconds":...,"parallel_seconds":...,
//         "qps_serial":...,"qps_parallel":...,"speedup":...,
//         "identical":true}
// Exits nonzero when the batched responses diverge from the serial ones.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"

using namespace isr;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

serve::ServiceConfig service_config(int threads) {
  serve::ServiceConfig cfg;
  // Fixed calibration shape; only the sizes follow ISR_BENCH_SCALE so the
  // smoke run stays short and the nightly paper-scale run is meaningful.
  cfg.calibration.min_image = bench::scaled(128);
  cfg.calibration.max_image = bench::scaled(288);
  cfg.calibration.min_n = bench::scaled(20);
  // Keep real data-size variance even when scaled() clamps both bounds to
  // its floor: a constant-O corpus makes the rasterization regression
  // singular and every rasterize query an error.
  cfg.calibration.max_n = std::max(bench::scaled(40), cfg.calibration.min_n + 12);
  cfg.calibration.vr_samples = bench::scaled(200, 50);
  cfg.threads = threads;
  return cfg;
}

// A deterministic grid of queries spanning both §5.9 questions: every
// fitted (arch, renderer) at a sweep of image sizes, data sizes, rank
// counts, and budgets. Repetitions vary the budget so no two requests in a
// repetition pair are bitwise equal.
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 40;  // 2*3*4*4*2 = 192 distinct configs, x40 = 7680 queries

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

// Byte-level identity through the wire format, plus field-level identity —
// the bench enforces the same contract test_serve does.
bool identical(const std::vector<serve::AdvisorResponse>& a,
               const std::vector<serve::AdvisorResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!serve::responses_identical(a[i], b[i]) || serve::to_jsonl(a[i]) != serve::to_jsonl(b[i]))
      return false;
  return true;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  bench::print_header("Advisor serving throughput (beyond the paper)",
                      "One fixed query batch at 1 thread vs " + std::to_string(threads) +
                          " (ISR_THREADS / hardware); shared model registry.");

  const auto registry = std::make_shared<serve::ModelRegistry>();
  serve::AdvisorService serial_service(service_config(1), registry);
  serve::AdvisorService parallel_service(service_config(0), registry);

  // Calibrate once, outside the timed region: serving must not be billed
  // for the one-time corpus fit (that is the registry's whole point).
  const auto calib_start = std::chrono::steady_clock::now();
  const std::size_t corpus =
      registry->models_for(serial_service.config().calibration).corpus_size;
  const double t_calibrate = seconds_since(calib_start);

  const std::vector<serve::AdvisorRequest> requests = query_grid();

  const auto serial_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> serial = serial_service.serve_batch(requests);
  const double t_serial = seconds_since(serial_start);

  const auto parallel_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> parallel = parallel_service.serve_batch(requests);
  const double t_parallel = seconds_since(parallel_start);

  // Serialization leg: one wire buffer reused across every line (the
  // flush-loop path in serve/jsonl.cpp) vs the allocating per-line form.
  // Both serialize identical bytes; only the buffer discipline differs.
  const int ser_passes = 20;
  std::string wire;
  std::size_t wire_bytes = 0;
  const auto reuse_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < ser_passes; ++pass) {
    wire.clear();
    for (const serve::AdvisorResponse& r : serial) {
      serve::to_jsonl(r, wire);
      wire += '\n';
    }
    wire_bytes = wire.size();
  }
  const double t_ser_reuse = seconds_since(reuse_start);

  std::size_t alloc_bytes = 0;
  const auto alloc_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < ser_passes; ++pass) {
    std::size_t total = 0;
    for (const serve::AdvisorResponse& r : serial) total += serve::to_jsonl(r).size() + 1;
    alloc_bytes = total;
  }
  const double t_ser_alloc = seconds_since(alloc_start);
  const bool ser_same_bytes = wire_bytes == alloc_bytes;

  const bool same = identical(serial, parallel);
  const int fits = registry->fits();

  std::size_t answered = 0;
  for (const serve::AdvisorResponse& r : serial) answered += r.ok() ? 1 : 0;

  const double n = static_cast<double>(requests.size());
  const double speedup = t_parallel > 0.0 ? t_serial / t_parallel : 0.0;
  std::printf("calibration: %zu observations fitted in %.3fs (registry fits: %d)\n\n", corpus,
              t_calibrate, fits);
  std::printf("%-22s %10s %12s %12s\n", "run", "threads", "seconds", "queries/sec");
  bench::print_rule(60);
  std::printf("%-22s %10d %12.4f %12.0f\n", "serial serve_batch", 1, t_serial, n / t_serial);
  std::printf("%-22s %10d %12.4f %12.0f\n", "parallel serve_batch", threads, t_parallel,
              n / t_parallel);
  const double ser_n = n * ser_passes;
  std::printf("%-22s %10d %12.4f %12.0f\n", "to_jsonl (reuse buf)", 1, t_ser_reuse,
              ser_n / t_ser_reuse);
  std::printf("%-22s %10d %12.4f %12.0f\n", "to_jsonl (allocating)", 1, t_ser_alloc,
              ser_n / t_ser_alloc);
  const bool all_ok = answered == requests.size();
  std::printf("\n%zu queries (%zu ok%s); speedup %.2fx; responses byte-identical: %s\n",
              requests.size(), answered, all_ok ? "" : " — DEGENERATE CALIBRATION",
              speedup, same ? "yes" : "NO (BUG)");

  std::printf(
      "JSON {\"bench\":\"advisor_throughput\",\"queries\":%zu,\"threads\":%d,"
      "\"calibration_seconds\":%.6f,\"corpus_observations\":%zu,\"registry_fits\":%d,"
      "\"serial_seconds\":%.6f,\"parallel_seconds\":%.6f,\"qps_serial\":%.1f,"
      "\"qps_parallel\":%.1f,\"speedup\":%.3f,"
      "\"qps_serialize_reuse\":%.1f,\"qps_serialize_alloc\":%.1f,"
      "\"serialize_bytes_per_line\":%.1f,\"identical\":%s}\n",
      requests.size(), threads, t_calibrate, corpus, fits, t_serial, t_parallel, n / t_serial,
      n / t_parallel, speedup, ser_n / t_ser_reuse, ser_n / t_ser_alloc,
      static_cast<double>(wire_bytes) / n, same ? "true" : "false");
  // Four health gates: responses identical, calibration fitted exactly
  // once (the shared-registry cache hit), every query answered ok, and the
  // two serializer forms produced the same byte count.
  return same && fits == 1 && all_ok && ser_same_bytes ? 0 : 1;
}
