// Table 10 (Chapter IV): lines of code needed to instrument each proxy app
// for in situ visualization. Counted live from the sources — the mesh
// descriptions sit between [strawman-integration-begin/end] markers in the
// sims' describe() methods; the action-description and API-call counts are
// measured from the examples' shared usage pattern (Listings 4.2-4.3).
#include <cstdio>
#include <fstream>
#include <string>

#ifndef ISR_SOURCE_DIR
#define ISR_SOURCE_DIR "."
#endif

namespace {

int count_marked_lines(const std::string& path) {
  std::ifstream is(path);
  if (!is) return -1;
  std::string line;
  bool in_block = false;
  int count = 0;
  while (std::getline(is, line)) {
    if (line.find("[strawman-integration-begin]") != std::string::npos) {
      in_block = true;
      continue;
    }
    if (line.find("[strawman-integration-end]") != std::string::npos) {
      in_block = false;
      continue;
    }
    if (in_block && line.find_first_not_of(" \t") != std::string::npos) ++count;
  }
  return count;
}

}  // namespace

int main() {
  std::printf("\n==== Table 10: lines of code to instrument the proxy apps ====\n");
  std::printf("Counted from the live sources (describe() bodies between integration\n"
              "markers); action descriptions and API calls from the shared pattern.\n");
  std::printf("%.78s\n", "--------------------------------------------------------------------------------");

  struct Proxy {
    const char* name;
    const char* source;
  };
  const Proxy proxies[] = {{"LULESH", ISR_SOURCE_DIR "/src/sims/lulesh.cpp"},
                           {"Kripke", ISR_SOURCE_DIR "/src/sims/kripke.cpp"},
                           {"CloverLeaf3D", ISR_SOURCE_DIR "/src/sims/cloverleaf.cpp"}};

  // Listings 4.2-4.3: the action list is 14 lines and the API calls are 7
  // (9 with an MPI communicator handle); identical for every proxy here.
  const int action_loc = 14;

  std::printf("%-22s %-14s %-14s %-14s\n", "", "Data Descr.", "Actions", "API Calls");
  for (const Proxy& p : proxies) {
    const int data_loc = count_marked_lines(p.source);
    const int api_loc = 7;
    if (data_loc < 0) {
      std::printf("%-22s (source not found: %s)\n", p.name, p.source);
      continue;
    }
    std::printf("%-22s %-14d %-14d %-14d\n", p.name, data_loc, action_loc, api_loc);
  }
  std::printf("\nExpected shape (paper Table 10): LULESH needs the fewest data-\n"
              "description lines (full zero-copy), Kripke more (field copy),\n"
              "CloverLeaf3D the most in the paper (ghost-zone stripping; our proxy\n"
              "publishes three fields instead). Actions/API identical across codes.\n");
  return 0;
}
