// Table 1 (Chapter II): frames per second of the DPP ray tracer with
// shading (WORKLOAD2) — the rasterization-equivalent rendering — across the
// twelve data sets and six architectures.
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 1: ray tracing FPS with shading (WORKLOAD2)",
                      "Rows: data sets. Columns: architectures (simulated device "
                      "profiles standing in for the paper's hardware; DESIGN.md §3).");

  const std::vector<std::pair<std::string, std::string>> archs = {
      {"GPU1", "TitanBlack"}, {"GPU2", "GPU1"},     {"GPU3", "GTX750Ti"},
      {"GPU4", "GT620M"},     {"CPU1", "i7-4770K"}, {"CPU2", "XeonE5"}};

  // 1080p at scale 1.0.
  const int width = bench::scaled(1920, 96);
  const int height = bench::scaled(1080, 64);
  const ColorTable colors = ColorTable::cool_warm();

  std::printf("%-12s", "dataset");
  for (const auto& [label, profile] : archs) std::printf(" %9s", label.c_str());
  std::printf("   (FPS)\n");
  bench::print_rule();

  for (const mesh::SceneInfo& info : mesh::chapter2_scenes()) {
    const mesh::TriMesh scene = mesh::make_scene(info.name, static_cast<float>(bench::scale()));
    const Camera cam = Camera::framing(scene.bounds(), width, height, 1.1f);
    std::printf("%-12s", info.name.c_str());
    for (const auto& [label, profile] : archs) {
      dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
      render::RayTracer rt(scene, dev);
      render::Image img;
      render::RayTracerOptions opt;
      opt.workload = render::RayTracerOptions::Workload::kShaded;
      const render::RenderStats stats = rt.render(cam, colors, img, opt);
      std::printf(" %9.1f", 1.0 / stats.total_seconds());
    }
    std::printf("   tris=%zu\n", scene.triangle_count());
  }
  std::printf("\nExpected shape: GPU1 > GPU2 > GPU3 >> GPU4; CPU2 > CPU1; all GPUs\n"
              "(except the mobile GPU4) comfortably above the CPUs.\n");
  return 0;
}
