// Multi-corpus cluster serving throughput (beyond the paper): the paper's
// feasibility model is one calibration corpus — one machine/configuration
// fit (Tables 12-17) — but a production advisor serves many machines at
// once. This bench makes two corpora resident (the default calibration and
// a re-seeded sibling, distinct fingerprints) and answers one fixed
// corpus-mixed batch three ways — a 1-shard serial cluster, an N-shard
// parallel cluster cold, and the same cluster warm — then runs a skewed
// stream (one hot (corpus, arch) key) against two cache-less clusters,
// rebalancing off vs on, and compares the max/mean shard-load ratio.
//
// Health gates (exit nonzero on violation):
//   - parallel responses, cold AND warm, byte-identical through
//     serve::to_jsonl to the serial cluster's with BOTH corpora resident
//     (the PR 2/3/4 determinism contract extended to corpus count);
//   - registry fits == distinct corpus fingerprints (= 2 here) across ALL
//     five clusters (one shared primary; replicas adopt, never refit);
//   - the warm pass hits the cache on every request (corpus is part of the
//     canonical key, so corpora cannot evict or serve each other);
//   - the skewed stream's max/mean shard-load ratio is STRICTLY lower with
//     rebalancing on than off, and the skewed responses are byte-identical
//     either way.
//
// The final line is machine-readable JSON (prefix "JSON ") so the nightly
// workflow can archive the perf trajectory:
//   JSON {"bench":"multicorpus_throughput","queries":...,"corpora":2,
//         "registry_fits":2,"shards":...,"threads":...,
//         "qps_serial":...,"qps_parallel_cold":...,"qps_parallel_warm":...,
//         "skew_ratio_off":...,"skew_ratio_on":...,"rebalanced":...,
//         "identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"

using namespace isr;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration(std::uint64_t seed) {
  // The bench_cluster_throughput calibration shape (ISR_BENCH_SCALE-
  // following, max_n floored against a singular rasterization fit),
  // re-seeded per corpus: each seed is a distinct fingerprint and fit.
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  cfg.seed = seed;
  return cfg;
}

cluster::ClusterConfig cluster_config(int shards, int threads, std::size_t cache_entries,
                                      bool rebalance) {
  cluster::ClusterConfig cfg;
  cfg.service.calibration = calibration(77);
  cluster::CorpusConfig titan;  // "the other machine": same shape, new seed
  titan.name = "titan";
  titan.service.calibration = calibration(1701);
  cfg.corpora.push_back(std::move(titan));
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.cache_entries = cache_entries;
  cfg.rebalance = rebalance;
  return cfg;
}

// The bench_cluster_throughput query grid, halved in repetitions and dealt
// across the two resident corpora (plus every request answered once more
// under the other corpus's name, so both corpora see every shape).
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 20;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(2 * archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts)
              for (const char* corpus : {"", "titan"}) {
                serve::AdvisorRequest req;
                req.corpus = corpus;
                req.arch = arch;
                req.renderer = kind;
                req.n_per_task = n;
                req.tasks = tasks;
                req.image_edge = edge;
                req.budget_seconds = 30.0 + rep;
                req.frames = 100;
                requests.push_back(req);
              }
  return requests;
}

// The skewed stream: 85% of the traffic is one (default corpus, CPU1) key,
// the rest spreads over the remaining (corpus, arch) keys — the "one hot
// arch pins one shard" scenario from the ROADMAP.
std::vector<serve::AdvisorRequest> skewed_stream() {
  std::vector<serve::AdvisorRequest> requests;
  const int total = 6000;
  const char* cold_corpus[3] = {"", "titan", "titan"};
  const char* cold_arch[3] = {"GPU1", "CPU1", "GPU1"};
  requests.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    serve::AdvisorRequest req;
    if (i % 20 < 17) {  // 85%: the hot key
      req.corpus = "";
      req.arch = "CPU1";
    } else {
      req.corpus = cold_corpus[i % 3];
      req.arch = cold_arch[i % 3];
    }
    // Vary the shape so the stream is not one repeated request.
    req.n_per_task = 50 + 25 * (i % 8);
    req.image_edge = 256 + 128 * (i % 4);
    req.budget_seconds = 30.0 + (i % 16);
    requests.push_back(req);
  }
  return requests;
}

bool identical(const std::vector<serve::AdvisorResponse>& a,
               const std::vector<serve::AdvisorResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!serve::responses_identical(a[i], b[i]) || serve::to_jsonl(a[i]) != serve::to_jsonl(b[i]))
      return false;
  return true;
}

// Max/mean over the per-shard evaluated-query counts: 1.0 is a perfectly
// level cluster; shards x (hot share) is one key pinning one shard.
double shard_load_ratio(const cluster::ClusterMetrics& m) {
  if (m.shard_queries.empty()) return 0.0;
  long max_q = 0, total = 0;
  for (const long q : m.shard_queries) {
    max_q = std::max(max_q, q);
    total += q;
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) / static_cast<double>(m.shard_queries.size());
  return static_cast<double>(max_q) / mean;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  const int shards = std::max(2, std::min(4, threads));
  bench::print_header(
      "Multi-corpus cluster serving throughput (beyond the paper)",
      "Two resident calibration corpora (distinct fingerprints); 1-shard serial vs " +
          std::to_string(shards) + "-shard/" + std::to_string(threads) +
          "-thread parallel, cold and warm cache; then a skewed stream (one hot key), "
          "rebalancing off vs on.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const auto primary = std::make_shared<serve::ModelRegistry>();
  cluster::ServingCluster serial(cluster_config(1, 1, 0, true), primary);
  // 2x slack on the cache, as in bench_cluster_throughput: keys hash
  // unevenly across the LRU's ways, and one overfull way would evict.
  cluster::ServingCluster parallel(
      cluster_config(shards, threads, 2 * requests.size(), true), primary);

  // Calibrate both corpora once, outside the timed region (fit-once is the
  // registry's point; replication copies bundles, never refits).
  const auto calib_start = std::chrono::steady_clock::now();
  const std::size_t corpus_a =
      primary->models_for(serial.config().service.calibration).corpus_size;
  const std::size_t corpus_b =
      primary->models_for(serial.config().corpora[0].service.calibration).corpus_size;
  const double t_calibrate = seconds_since(calib_start);

  const auto serial_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> serial_responses = serial.serve_batch(requests);
  const double t_serial = seconds_since(serial_start);

  const auto cold_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> cold = parallel.serve_batch(requests);
  const double t_cold = seconds_since(cold_start);

  const auto warm_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> warm = parallel.serve_batch(requests);
  const double t_warm = seconds_since(warm_start);

  const bool mixed_same = identical(serial_responses, cold) && identical(serial_responses, warm);
  const cluster::ClusterMetrics parallel_metrics = parallel.metrics();
  const double warm_hit_rate =
      static_cast<double>(parallel_metrics.cache_hits) /
      static_cast<double>(requests.size() > 0 ? requests.size() : 1);
  std::size_t answered = 0;
  for (const serve::AdvisorResponse& r : serial_responses) answered += r.ok() ? 1 : 0;
  const bool all_ok = answered == requests.size();

  // --- Skewed traffic: one hot (corpus, arch) key, rebalancing off vs on.
  // Cache off so every request reaches a shard and the load counts mean
  // something; same shared primary, so still no refits.
  const std::vector<serve::AdvisorRequest> skewed = skewed_stream();
  cluster::ServingCluster pinned(cluster_config(shards, threads, 0, false), primary);
  cluster::ServingCluster balanced(cluster_config(shards, threads, 0, true), primary);
  const std::vector<serve::AdvisorResponse> skew_off = pinned.serve_batch(skewed);
  const std::vector<serve::AdvisorResponse> skew_on = balanced.serve_batch(skewed);
  const bool skew_same = identical(skew_off, skew_on);
  const double ratio_off = shard_load_ratio(pinned.metrics());
  const double ratio_on = shard_load_ratio(balanced.metrics());
  const long rebalanced = balanced.metrics().rebalanced_queries;

  // Every cluster shares the primary: total fits across the fleet must be
  // exactly the two distinct fingerprints.
  const int fits = primary->fits() + (serial.registry_fits() - primary->fits()) +
                   (parallel.registry_fits() - primary->fits()) +
                   (pinned.registry_fits() - primary->fits()) +
                   (balanced.registry_fits() - primary->fits());

  const double n = static_cast<double>(requests.size());
  std::printf("calibration: %zu + %zu observations fitted in %.3fs (registry fits: %d)\n\n",
              corpus_a, corpus_b, t_calibrate, fits);
  std::printf("%-28s %8s %8s %12s %12s\n", "run", "shards", "threads", "seconds",
              "queries/sec");
  bench::print_rule(74);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "serial cluster", 1, 1, t_serial, n / t_serial);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "parallel cluster (cold)", shards, threads,
              t_cold, n / t_cold);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "parallel cluster (warm)", shards, threads,
              t_warm, n / t_warm);
  std::printf("\ncluster metrics: %s\n", parallel_metrics.to_jsonl().c_str());
  std::printf("\nskewed stream (%zu queries, 85%% one key): max/mean shard load %.3f "
              "pinned -> %.3f rebalanced (%ld requests spread)\n",
              skewed.size(), ratio_off, ratio_on, rebalanced);
  std::printf("%zu mixed queries (%zu ok%s); warm hit rate %.3f; "
              "responses byte-identical: %s (mixed) / %s (skewed)\n",
              requests.size(), answered, all_ok ? "" : " — DEGENERATE CALIBRATION",
              warm_hit_rate, mixed_same ? "yes" : "NO (BUG)", skew_same ? "yes" : "NO (BUG)");

  std::printf(
      "JSON {\"bench\":\"multicorpus_throughput\",\"queries\":%zu,\"corpora\":2,"
      "\"registry_fits\":%d,\"shards\":%d,\"threads\":%d,\"calibration_seconds\":%.6f,"
      "\"serial_seconds\":%.6f,\"parallel_cold_seconds\":%.6f,\"parallel_warm_seconds\":%.6f,"
      "\"qps_serial\":%.1f,\"qps_parallel_cold\":%.1f,\"qps_parallel_warm\":%.1f,"
      "\"warm_hit_rate\":%.6f,\"skew_ratio_off\":%.4f,\"skew_ratio_on\":%.4f,"
      "\"rebalanced\":%ld,\"identical\":%s}\n",
      requests.size(), fits, shards, threads, t_calibrate, t_serial, t_cold, t_warm,
      n / t_serial, n / t_cold, n / t_warm, warm_hit_rate, ratio_off, ratio_on, rebalanced,
      mixed_same && skew_same ? "true" : "false");

  // Health gates: byte-identity (mixed cold/warm AND skewed off/on), one
  // fit per distinct fingerprint, a fully-hitting warm pass, every query
  // ok, and rebalancing strictly levelling the skewed load.
  const bool gates = mixed_same && skew_same && fits == 2 && warm_hit_rate == 1.0 &&
                     all_ok && ratio_on < ratio_off;
  return gates ? 0 : 1;
}
