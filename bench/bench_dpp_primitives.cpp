// Micro-benchmarks of the data-parallel primitives (google-benchmark).
// Not a paper table; used to sanity-check the substrate's throughput and as
// the baseline for the DPP-overhead ablation.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "dpp/primitives.hpp"
#include "math/rng.hpp"

namespace {

using isr::dpp::Device;

void BM_Map(benchmark::State& state) {
  Device dev = Device::host();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n, 1.5f), out(n);
  for (auto _ : state) {
    isr::dpp::for_each(dev, n, [&](std::size_t i) { out[i] = in[i] * 2.0f + 1.0f; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Map)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_Reduce(benchmark::State& state) {
  Device dev = Device::host();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<float> in(n, 0.5f);
  for (auto _ : state) {
    const float r = isr::dpp::reduce_sum(dev, in.data(), n);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_Reduce)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_ScanExclusive(benchmark::State& state) {
  Device dev = Device::host();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<int> in(n, 1), out(n);
  for (auto _ : state) {
    isr::dpp::scan_exclusive(dev, in.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScanExclusive)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_SortPairs(benchmark::State& state) {
  Device dev = Device::host();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  isr::Rng rng(1);
  std::vector<std::uint32_t> keys(n);
  std::vector<int> vals(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.next_u32();
      vals[i] = static_cast<int>(i);
    }
    state.ResumeTiming();
    isr::dpp::sort_pairs(dev, keys, vals);
    benchmark::DoNotOptimize(keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_SortPairs)->Arg(1 << 12)->Arg(1 << 18);

void BM_StreamCompaction(benchmark::State& state) {
  Device dev = Device::host();
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  isr::Rng rng(2);
  std::vector<std::uint8_t> flags(n);
  for (auto& f : flags) f = rng.next_float() < 0.5f ? 1 : 0;
  for (auto _ : state) {
    const auto idx = isr::dpp::compact_indices(dev, flags.data(), n);
    benchmark::DoNotOptimize(idx.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_StreamCompaction)->Arg(1 << 12)->Arg(1 << 18);

}  // namespace

BENCHMARK_MAIN();
