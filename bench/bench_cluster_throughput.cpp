// Sharded-cluster serving throughput (beyond the paper): answers one fixed
// batch of §5.9 feasibility queries three ways — a 1-shard serial cluster,
// an N-shard parallel cluster with a cold response cache, and the same
// parallel cluster warm (every request a cache hit) — and reports
// queries/sec for each. Both clusters share one primary ModelRegistry, so
// the calibration corpus is fitted exactly once and every shard replica
// adopts the bundle.
//
// Health gates (exit nonzero on violation):
//   - the parallel cluster's responses, cold AND warm, are byte-identical
//     through serve::to_jsonl to the serial cluster's (the determinism
//     contract: shard count, thread count, and cache state change nothing);
//   - exactly one registry fit per distinct corpus fingerprint (= 1 here);
//   - the warm pass hits the cache on every request;
//   - every query is answered ok.
//
// The final line is machine-readable JSON (prefix "JSON ") so the nightly
// workflow can archive the perf trajectory:
//   JSON {"bench":"cluster_throughput","queries":...,"shards":...,
//         "threads":...,"calibration_seconds":...,"registry_fits":1,
//         "serial_seconds":...,"parallel_cold_seconds":...,
//         "parallel_warm_seconds":...,"qps_serial":...,"qps_parallel_cold":...,
//         "qps_parallel_warm":...,"warm_hit_rate":...,"identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"

using namespace isr;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration() {
  // The same ISR_BENCH_SCALE-following calibration shape as
  // bench_advisor_throughput, including its floor on max_n (a constant-O
  // corpus makes the rasterization regression singular).
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  return cfg;
}

cluster::ClusterConfig cluster_config(int shards, int threads, std::size_t cache_entries) {
  cluster::ClusterConfig cfg;
  cfg.service.calibration = calibration();
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.cache_entries = cache_entries;
  return cfg;
}

// The bench_advisor_throughput query grid: every (arch, renderer) at a
// sweep of sizes and budgets, 7680 queries at 40 repetitions.
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 40;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

bool identical(const std::vector<serve::AdvisorResponse>& a,
               const std::vector<serve::AdvisorResponse>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (!serve::responses_identical(a[i], b[i]) || serve::to_jsonl(a[i]) != serve::to_jsonl(b[i]))
      return false;
  return true;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  const int shards = std::max(2, std::min(4, threads));
  bench::print_header(
      "Sharded-cluster serving throughput (beyond the paper)",
      "One fixed query batch: 1-shard serial vs " + std::to_string(shards) + "-shard/" +
          std::to_string(threads) + "-thread parallel, cold and warm cache; shared primary registry.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const auto primary = std::make_shared<serve::ModelRegistry>();
  cluster::ServingCluster serial(cluster_config(1, 1, 0), primary);
  // The cache must hold the whole distinct-request set so the warm pass is
  // all hits; 2x slack because keys hash unevenly across the LRU's ways and
  // one overfull way would evict (and fail the warm gate).
  cluster::ServingCluster parallel(cluster_config(shards, threads, 2 * requests.size()),
                                   primary);

  // Calibrate once, outside the timed region (the fit-once contract is the
  // registry's point; replication then copies bundles, never refits).
  const auto calib_start = std::chrono::steady_clock::now();
  const std::size_t corpus = primary->models_for(serial.config().service.calibration).corpus_size;
  const double t_calibrate = seconds_since(calib_start);

  const auto serial_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> serial_responses = serial.serve_batch(requests);
  const double t_serial = seconds_since(serial_start);

  const auto cold_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> cold = parallel.serve_batch(requests);
  const double t_cold = seconds_since(cold_start);

  const auto warm_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> warm = parallel.serve_batch(requests);
  const double t_warm = seconds_since(warm_start);

  const bool same = identical(serial_responses, cold) && identical(serial_responses, warm);
  const int fits = serial.registry_fits() + (parallel.registry_fits() - primary->fits());
  const cluster::ClusterMetrics metrics = parallel.metrics();
  // The warm pass is the second half of the parallel cluster's lookups.
  const double warm_hit_rate =
      static_cast<double>(metrics.cache_hits) /
      static_cast<double>(requests.size() > 0 ? requests.size() : 1);
  std::size_t answered = 0;
  for (const serve::AdvisorResponse& r : serial_responses) answered += r.ok() ? 1 : 0;
  const bool all_ok = answered == requests.size();

  const double n = static_cast<double>(requests.size());
  std::printf("calibration: %zu observations fitted in %.3fs (registry fits: %d)\n\n", corpus,
              t_calibrate, fits);
  std::printf("%-28s %8s %8s %12s %12s\n", "run", "shards", "threads", "seconds",
              "queries/sec");
  bench::print_rule(74);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "serial cluster", 1, 1, t_serial, n / t_serial);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "parallel cluster (cold)", shards, threads,
              t_cold, n / t_cold);
  std::printf("%-28s %8d %8d %12.4f %12.0f\n", "parallel cluster (warm)", shards, threads,
              t_warm, n / t_warm);
  std::printf("\ncluster metrics: %s\n", metrics.to_jsonl().c_str());
  std::printf("\n%zu queries (%zu ok%s); warm hit rate %.3f; responses byte-identical: %s\n",
              requests.size(), answered, all_ok ? "" : " — DEGENERATE CALIBRATION",
              warm_hit_rate, same ? "yes" : "NO (BUG)");

  std::printf(
      "JSON {\"bench\":\"cluster_throughput\",\"queries\":%zu,\"shards\":%d,\"threads\":%d,"
      "\"calibration_seconds\":%.6f,\"corpus_observations\":%zu,\"registry_fits\":%d,"
      "\"serial_seconds\":%.6f,\"parallel_cold_seconds\":%.6f,\"parallel_warm_seconds\":%.6f,"
      "\"qps_serial\":%.1f,\"qps_parallel_cold\":%.1f,\"qps_parallel_warm\":%.1f,"
      "\"warm_hit_rate\":%.6f,\"p50_latency_ms\":%.6f,\"p99_latency_ms\":%.6f,"
      "\"identical\":%s}\n",
      requests.size(), shards, threads, t_calibrate, corpus, fits, t_serial, t_cold, t_warm,
      n / t_serial, n / t_cold, n / t_warm, warm_hit_rate, metrics.p50_latency_ms,
      metrics.p99_latency_ms, same ? "true" : "false");

  // Health gates: byte-identity (cold and warm), exactly one fit per
  // distinct corpus fingerprint, a fully-hitting warm pass, all queries ok.
  return same && fits == 1 && warm_hit_rate == 1.0 && all_ok ? 0 : 1;
}
