// Table 4 (Chapter II): millions of rays per second (WORKLOAD1) of the DPP
// ray tracer vs the tuned comparator (Embree stand-in) on the two CPU
// profiles. Doubles as the DPP-abstraction-overhead ablation.
#include <cstdio>

#include "baseline/tuned_rt.hpp"
#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 4: Mrays/s, DPP ray tracer vs Embree stand-in (CPUs)",
                      "WORKLOAD1 (intersection only).");

  const int width = bench::scaled(1920, 96);
  const int height = bench::scaled(1080, 64);
  const ColorTable colors = ColorTable::grayscale();

  std::printf("%-12s %12s %12s %12s %12s %8s\n", "dataset", "i7:DPP", "i7:Tuned",
              "Xeon:DPP", "Xeon:Tuned", "gap");
  bench::print_rule();
  double gap_sum = 0.0;
  int gap_n = 0;
  for (const mesh::SceneInfo& info : mesh::chapter2_scenes()) {
    const mesh::TriMesh scene = mesh::make_scene(info.name, static_cast<float>(bench::scale()));
    const Camera cam = Camera::framing(scene.bounds(), width, height, 1.1f);
    const double mrays = static_cast<double>(cam.pixel_count()) / 1e6;
    std::printf("%-12s", info.name.c_str());
    double xeon_gap = 0.0;
    for (const char* profile : {"i7-4770K", "XeonE5"}) {
      dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
      render::RayTracer rt(scene, dev);
      render::Image img;
      render::RayTracerOptions opt;
      opt.workload = render::RayTracerOptions::Workload::kIntersect;
      const double dpp_t = rt.render(cam, colors, img, opt).total_seconds();
      baseline::TunedRayTracer tuned(scene, dev);
      const double tuned_t = tuned.render_intersect(cam).total_seconds();
      std::printf(" %12.2f %12.2f", mrays / dpp_t, mrays / tuned_t);
      xeon_gap = dpp_t / tuned_t;
    }
    std::printf(" %8.2fx\n", xeon_gap);
    gap_sum += xeon_gap;
    ++gap_n;
  }
  std::printf("\nMean Xeon gap: %.2fx (paper: Embree ~2x across all configurations).\n",
              gap_sum / gap_n);
  return 0;
}
