// Figure 12, Figure 13 and Table 14 (Chapter V): the compositing study and
// model. Synthetic rank sub-images (active fraction ~ 0.55/tasks^(1/3), as
// the study's cameras produce) are composited with radix-k over the virtual
// MPI layer across a (tasks x image size) grid; the T_COMP model (Eq. 5.5)
// is fitted and cross-validated. Also prints the compositing-algorithm
// ablation (direct send / binary swap / radix-k) DESIGN.md calls out.
#include <cmath>
#include <cstdio>

#include "comm/compositor.hpp"
#include "common.hpp"
#include "math/rng.hpp"
#include "model/perfmodel.hpp"

using namespace isr;

namespace {

// A rank sub-image: a contiguous block of rows with ~55%/tasks^(1/3) of the
// pixels active (premultiplied color + depth).
std::vector<comm::RankImage> make_rank_images(int tasks, int edge, std::uint64_t seed) {
  std::vector<comm::RankImage> out(static_cast<std::size_t>(tasks));
  Rng rng(seed);
  const double frac = 0.55 / std::cbrt(static_cast<double>(tasks));
  const int block = static_cast<int>(edge * std::sqrt(frac));
  for (int r = 0; r < tasks; ++r) {
    comm::RankImage& ri = out[static_cast<std::size_t>(r)];
    ri.image.resize(edge, edge);
    ri.image.clear();
    ri.view_depth = static_cast<float>(r) + rng.next_float();
    const int x0 = rng.uniform_int(0, std::max(0, edge - block));
    const int y0 = rng.uniform_int(0, std::max(0, edge - block));
    for (int y = y0; y < std::min(edge, y0 + block); ++y)
      for (int x = x0; x < std::min(edge, x0 + block); ++x) {
        const float a = 0.4f + 0.5f * rng.next_float();
        ri.image.pixel(x, y) = {a, a * 0.5f, a * 0.25f, a};
        ri.image.depth(x, y) = ri.view_depth;
      }
  }
  return out;
}

}  // namespace

int main() {
  bench::print_header("Fig. 12 / Fig. 13 / Table 14: compositing study + T_COMP model",
                      "radix-k over virtual MPI; times are the simulated max rank clock.");

  const std::vector<int> task_counts = {1, 2, 4, 8, 16, 32, 64};
  std::vector<int> edges;
  for (const int paper_edge : {519, 1032, 1558, 2039, 2565})
    edges.push_back(bench::scaled(paper_edge, 48));

  // ---- Fig. 12: time histogram over (tasks, pixels) -----------------------
  std::printf("Fig. 12: compositing seconds by (tasks x image edge)\n%-10s", "pixels\\t");
  for (const int t : task_counts) std::printf(" %8d", t);
  std::printf("\n");
  bench::print_rule();

  std::vector<model::CompositeSample> samples;
  std::uint64_t seed = 0xC0117u;
  for (const int edge : edges) {
    std::printf("%6d^2  ", edge);
    for (const int tasks : task_counts) {
      const auto images = make_rank_images(tasks, edge, seed++);
      comm::Comm comm(tasks);
      const comm::CompositeResult result = comm::composite(
          comm, images, comm::CompositeMode::kVolume, comm::CompositeAlgorithm::kRadixK);
      std::printf(" %8.4f", result.simulated_seconds);
      model::CompositeSample s;
      s.avg_active_pixels = result.avg_active_pixels;
      s.pixels = static_cast<double>(edge) * edge;
      s.seconds = result.simulated_seconds;
      if (tasks > 1) samples.push_back(s);  // tasks=1 has no communication
    }
    std::printf("\n");
  }

  // ---- Fit Eq. 5.5 + Table 14 / Fig. 13 ------------------------------------
  const model::CompositeModel m = model::CompositeModel::fit(samples);
  std::printf("\nT_COMP = c0*avg(AP) + c1*Pixels + c2 = %.3e*AP + %.3e*P + %.3e  (R^2 = %.3f)\n",
              m.coefficients()[0], m.coefficients()[1], m.coefficients()[2], m.r_squared());

  const model::CrossValidation cv = m.cross_validate(samples);
  std::printf("\nTable 14: compositing model 3-fold CV accuracy\n");
  std::printf("%7s %7s %7s %7s %10s\n", "50%", "25%", "10%", "5%", "Avg err %");
  bench::print_rule(48);
  std::printf("%7.1f %7.1f %7.1f %7.1f %10.1f\n", 100 * cv.fraction_within(0.50),
              100 * cv.fraction_within(0.25), 100 * cv.fraction_within(0.10),
              100 * cv.fraction_within(0.05), 100 * cv.mean_abs_relative_error());

  double worst = 0;
  for (std::size_t i = 0; i < cv.actual.size(); ++i)
    if (cv.actual[i] > 0)
      worst = std::max(worst, std::abs(cv.predicted[i] - cv.actual[i]) / cv.actual[i]);
  std::printf("Fig. 13 (summary): max CV error %.1f%% over %zu held-out predictions;\n"
              "the model under-predicts small images most (as in the paper).\n",
              100 * worst, cv.actual.size());

  // ---- Ablation: compositing algorithm choice ------------------------------
  std::printf("\nAblation: algorithm comparison at 16 tasks (seconds / MB moved)\n");
  const int edge = edges[edges.size() / 2];
  const auto images = make_rank_images(16, edge, 0xAB1Au);
  for (const auto& [name, algo] :
       std::vector<std::pair<std::string, comm::CompositeAlgorithm>>{
           {"direct send", comm::CompositeAlgorithm::kDirectSend},
           {"binary swap", comm::CompositeAlgorithm::kBinarySwap},
           {"radix-k(4)", comm::CompositeAlgorithm::kRadixK}}) {
    comm::Comm comm(16);
    const comm::CompositeResult r =
        comm::composite(comm, images, comm::CompositeMode::kVolume, algo, 4);
    std::printf("  %-12s %8.4fs %8.2f MB  %5zu msgs\n", name.c_str(), r.simulated_seconds,
                static_cast<double>(r.bytes_sent) / 1e6, r.messages);
  }
  std::printf("\nExpected shape (Fig. 12): more pixels -> slower; more tasks -> faster\n"
              "at these scales (fewer active pixels per rank), reversing only at\n"
              "higher concurrency. Direct send moves the most data; binary swap and\n"
              "radix-k are close, with radix-k fewer rounds.\n");
  return 0;
}
