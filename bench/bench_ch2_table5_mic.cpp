// Table 5 (Chapter II): the Xeon Phi back-end comparison — the scalar
// OpenMP back-end vs the vectorizing ISPC back-end, as Mrays/s on
// WORKLOAD1. The point of the paper's experiment: the same DPP algorithm,
// re-targeted by a better back-end, improves 5-9x with no algorithm change.
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/scenes.hpp"
#include "render/rt/raytracer.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 5: Xeon Phi, OpenMP vs ISPC back-end (Mrays/s)",
                      "Identical DPP ray tracer; only the simulated back-end profile "
                      "changes (MIC-OpenMP wastes the 512-bit vector units).");

  const int width = bench::scaled(1920, 96);
  const int height = bench::scaled(1080, 64);
  const ColorTable colors = ColorTable::grayscale();

  std::printf("%-12s %12s %12s %10s\n", "dataset", "OpenMP", "OpenMP/ISPC", "speedup");
  bench::print_rule();
  for (const mesh::SceneInfo& info : mesh::chapter2_scenes()) {
    const mesh::TriMesh scene = mesh::make_scene(info.name, static_cast<float>(bench::scale()));
    const Camera cam = Camera::framing(scene.bounds(), width, height, 1.1f);
    const double mrays = static_cast<double>(cam.pixel_count()) / 1e6;
    double rate[2];
    int i = 0;
    for (const char* profile : {"MIC-OpenMP", "MIC-ISPC"}) {
      dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(profile));
      render::RayTracer rt(scene, dev);
      render::Image img;
      render::RayTracerOptions opt;
      opt.workload = render::RayTracerOptions::Workload::kIntersect;
      rate[i++] = mrays / rt.render(cam, colors, img, opt).total_seconds();
    }
    std::printf("%-12s %12.2f %12.2f %9.1fx\n", info.name.c_str(), rate[0], rate[1],
                rate[1] / rate[0]);
  }
  std::printf("\nExpected shape: 5-9x speedup from the vectorizing back-end (paper:\n"
              "5x-9x), with no change to the algorithm.\n");
  return 0;
}
