#include "common.hpp"

#include "core/env.hpp"
#include "mesh/fields.hpp"
#include "mesh/tetrahedralize.hpp"

namespace isr::bench {

double scale() { return core::env_double("ISR_BENCH_SCALE", 0.35); }

int scaled(int paper_value, int min_value) {
  const int v = static_cast<int>(paper_value * scale());
  return v < min_value ? min_value : v;
}

void print_header(const std::string& table, const std::string& caption) {
  std::printf("\n==== %s ====\n%s\n(ISR_BENCH_SCALE=%.2f; paper sizes = 1.0)\n",
              table.c_str(), caption.c_str(), scale());
  print_rule();
}

void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

mesh::TetMesh ch3_dataset(const std::string& name) {
  // Grid edges chosen so tet counts scale like the paper's 1.3M / 10.5M /
  // 50M / 83.9M (6 tets per cell).
  int edge = 60;
  int blobs = 8;
  if (name == "Enzo-1M") edge = 60;
  if (name == "Enzo-10M") edge = 120;
  if (name == "Nek5000") { edge = 204; blobs = 20; }
  if (name == "Enzo-80M") edge = 241;
  const int n = scaled(edge, 10);
  mesh::StructuredGrid grid(n, n, n, {0, 0, 0},
                            {1.0f / n, 1.0f / n, 1.0f / n});
  mesh::fields::fill_blobs(grid, blobs, 0xE420u + static_cast<unsigned>(edge));
  return mesh::tetrahedralize(grid);
}

std::vector<std::string> ch3_dataset_names() {
  return {"Enzo-1M", "Enzo-10M", "Nek5000", "Enzo-80M"};
}

Camera far_camera(const AABB& bounds, int width, int height) {
  return Camera::framing(bounds, width, height, 0.45f);
}

Camera close_camera(const AABB& bounds, int width, int height) {
  return Camera::framing(bounds, width, height, 1.6f);
}

}  // namespace isr::bench
