// Table 16 (Chapter V): validation of the §5.8 mapping from rendering
// configurations to model input variables. For six random configurations
// (one per architecture x renderer), compare the mapping's predicted
// variables against the variables observed in a real render, and the
// execution times predicted from both against the actual time.
#include <cstdio>

#include "common.hpp"
#include "conduit/blueprint.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "mesh/external_faces.hpp"
#include "model/mapping.hpp"
#include "model/study.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"
#include "sims/cloverleaf.hpp"

using namespace isr;
using model::RendererKind;

int main() {
  bench::print_header("Table 16: mapping validation (configuration -> model inputs)",
                      "Predicted = §5.8 mapping; Observed = measured during the render.");

  // Train per-arch models on a compact corpus.
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  cfg.seed = 516;
  const auto obs = model::run_study(cfg);

  struct TestConfig {
    const char* arch;
    RendererKind kind;
    int n, edge, tasks;
  };
  const TestConfig tests[] = {
      {"CPU1", RendererKind::kVolume, 40, 280, 4},
      {"CPU1", RendererKind::kRayTrace, 44, 200, 4},
      {"CPU1", RendererKind::kRasterize, 36, 208, 2},
      {"GPU1", RendererKind::kVolume, 44, 272, 2},
      {"GPU1", RendererKind::kRayTrace, 30, 208, 4},
      {"GPU1", RendererKind::kRasterize, 34, 336, 2},
  };

  model::MappingConstants constants;
  constants.spr_base = 0.93 * 200;  // our S=200 reference (paper's was S=1000)

  std::printf("%-3s %-5s %-14s | %10s %10s | %9s %9s %9s\n", "#", "arch", "renderer",
              "AP map", "AP obs", "T(map)", "T(obs)", "T(actual)");
  bench::print_rule(86);
  int test_id = 0;
  for (const TestConfig& t : tests) {
    const auto samples = model::samples_for(obs, t.arch, t.kind);
    const model::PerfModel m = model::PerfModel::fit(t.kind, samples);

    // Generate rank 0's block of the decomposed domain and render it.
    sims::CloverLeaf proxy(t.n, t.n, t.n, 0, t.tasks);
    proxy.step();
    conduit::Node data;
    proxy.describe(data);
    mesh::StructuredGrid grid = conduit::blueprint::to_structured(data, "energy");
    grid.normalize_scalars();
    AABB global;
    global.expand({0, 0, 0});
    global.expand({1, 1, 1});
    const Camera cam = Camera::framing(global, t.edge, t.edge, 0.8f);
    const ColorTable colors = ColorTable::cool_warm();
    const TransferFunction tf(colors, 0.05f, 0.3f);

    dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(t.arch),
                                             0x3A991u + static_cast<unsigned>(test_id));
    render::Image img;
    render::RenderStats stats;
    double build = 0.0;
    if (t.kind == RendererKind::kRayTrace) {
      const mesh::TriMesh surf = mesh::external_faces(grid);
      render::RayTracer rt(surf, dev);
      build = rt.bvh_build_stats().total_seconds();
      stats = rt.render(cam, colors, img);
    } else if (t.kind == RendererKind::kRasterize) {
      const mesh::TriMesh surf = mesh::external_faces(grid);
      render::Rasterizer rast(surf, dev);
      stats = rast.render(cam, colors, img);
    } else {
      render::StructuredVolumeRenderer vr(grid, dev);
      render::VolumeRenderOptions opt;
      opt.samples = 200;
      stats = vr.render(cam, tf, img, opt);
    }

    const model::ModelInputs mapped = model::map_configuration(
        t.kind, t.n, t.tasks, static_cast<double>(t.edge) * t.edge, constants);
    const model::ModelInputs observed = {stats.objects,         stats.active_pixels,
                                         stats.visible_objects, stats.pixels_per_tri,
                                         stats.samples_per_ray, stats.cells_spanned};
    std::printf("%-3d %-5s %-14s | %10.0f %10.0f | %8.4fs %8.4fs %8.4fs\n", test_id,
                t.arch, model::renderer_name(t.kind), mapped.active_pixels,
                observed.active_pixels, m.predict(mapped), m.predict(observed),
                stats.total_seconds() + build);
    ++test_id;
  }
  std::printf("\nExpected shape (paper Table 16): mapped variables land near observed\n"
              "ones; mapping-based predictions are conservative (slightly slower)\n"
              "because the mapping over-estimates the inputs on purpose.\n");
  return 0;
}
