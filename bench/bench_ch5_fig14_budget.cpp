// Figure 14 (Chapter V): how many images can each (architecture, renderer)
// produce inside a 60-second budget, as a function of image resolution —
// the image-database (Cinema-style) feasibility question. Uses models
// fitted from a compact study corpus plus the §5.8 mapping.
#include <cstdio>

#include "common.hpp"
#include "model/feasibility.hpp"
#include "model/study.hpp"

using namespace isr;
using model::RendererKind;

int main() {
  bench::print_header("Fig. 14: images renderable in a 60-second budget",
                      "32 tasks, 200^3 cells/task (paper's configuration), via the "
                      "fitted models + §5.8 mapping.");

  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  cfg.seed = 1460;
  const auto obs = model::run_study(cfg);

  model::MappingConstants constants;
  constants.spr_base = 0.93 * 200;

  std::vector<int> edges;
  for (int e = 1024; e <= 4096; e += 512) edges.push_back(e);

  std::printf("%-12s", "image size");
  for (const std::string arch : {"CPU1", "GPU1"})
    for (const RendererKind kind :
         {RendererKind::kRasterize, RendererKind::kRayTrace, RendererKind::kVolume})
      std::printf(" %5s:%-4s", arch.c_str(),
                  kind == RendererKind::kRasterize ? "RAST"
                  : kind == RendererKind::kRayTrace ? "RT"
                                                    : "VR");
  std::printf("\n");
  bench::print_rule();

  // Precompute budget curves per model.
  std::vector<std::vector<model::BudgetPoint>> curves;
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind :
         {RendererKind::kRasterize, RendererKind::kRayTrace, RendererKind::kVolume}) {
      const model::PerfModel m =
          model::PerfModel::fit(kind, model::samples_for(obs, arch, kind));
      curves.push_back(model::images_in_budget(m, 60.0, 200, 32, edges, constants));
    }
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::printf("%6d^2    ", edges[i]);
    for (const auto& curve : curves) std::printf(" %10ld", curve[i].images_in_budget);
    std::printf("\n");
  }
  std::printf("\nExpected shape (Fig. 14): counts fall with image size; the GPU\n"
              "sustains several times the CPU's rate; rasterization leads at large\n"
              "images, volume rendering trails everything.\n");
  return 0;
}
