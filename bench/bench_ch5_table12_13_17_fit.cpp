// Tables 12, 13, 17 and Figure 11 (Chapter V, the SC16 core result):
// run the performance study, fit the six single-node models (3 renderers x
// 2 architectures) with multiple linear regression, and report:
//   Table 12 — R^2 per model
//   Table 13 — 3-fold cross-validation accuracy buckets (50/25/10/5%)
//   Fig. 11  — CV error distribution summary per model
//   Table 17 — fitted coefficients in the paper's c0..c4 form
// The corpus is the paper's §5.4 cross product at bench scale; set
// ISR_STUDY_SCALE to enlarge it.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/thread_pool.hpp"
#include "model/study.hpp"

using namespace isr;
using model::RendererKind;

int main() {
  const double sscale = model::study_scale_from_env();
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf", "kripke", "lulesh"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = static_cast<int>(128 * sscale);
  cfg.max_image = static_cast<int>(320 * sscale);
  cfg.min_n = static_cast<int>(20 * sscale);
  cfg.max_n = static_cast<int>(44 * sscale);
  cfg.vr_samples = static_cast<int>(250 * sscale);
  cfg.seed = 77;

  bench::print_header("Tables 12/13/17 + Fig. 11: performance model fit & validation",
                      "Corpus: arch x renderer x simulation x tasks x stratified "
                      "(image, data size) samples.");
  std::printf("Running the study corpus (this is the expensive part)...\n");
  const std::vector<model::Observation> obs = model::run_study(cfg);
  std::printf("corpus: %zu observations\n\n", obs.size());

  const RendererKind kinds[] = {RendererKind::kRayTrace, RendererKind::kVolume,
                                RendererKind::kRasterize};

  // ---- Table 12: R^2 -------------------------------------------------------
  std::printf("Table 12: R^2 of the render-time regressions\n");
  std::printf("%-16s %10s %10s\n", "Renderer", "CPU1", "GPU1");
  bench::print_rule(40);
  std::vector<std::pair<std::string, model::PerfModel>> fitted;
  for (const RendererKind kind : kinds) {
    std::printf("%-16s", model::renderer_name(kind));
    for (const std::string arch : {"CPU1", "GPU1"}) {
      const auto samples = model::samples_for(obs, arch, kind);
      const model::PerfModel m = model::PerfModel::fit(kind, samples);
      std::printf(" %10.4f", m.r_squared());
      fitted.emplace_back(arch, m);
    }
    std::printf("\n");
  }

  // ---- Table 13 + Fig. 11: cross validation -------------------------------
  // CV folds fan out over the pool (ISR_THREADS); results are bit-identical
  // to a serial run at any thread count.
  core::ThreadPool cv_pool;
  std::printf("\nTable 13: 3-fold CV accuracy (%% of predictions within error bound)\n");
  std::printf("%-6s %-16s %7s %7s %7s %7s %10s\n", "Arch", "Renderer", "50%", "25%", "10%",
              "5%", "Avg err %");
  bench::print_rule();
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind : kinds) {
      const auto samples = model::samples_for(obs, arch, kind);
      const model::PerfModel m = model::PerfModel::fit(kind, samples);
      const model::CrossValidation cv = m.cross_validate(samples, 3, 0xCF01Du, &cv_pool);
      std::printf("%-6s %-16s %7.1f %7.1f %7.1f %7.1f %10.1f\n", arch.c_str(),
                  model::renderer_name(kind), 100 * cv.fraction_within(0.50),
                  100 * cv.fraction_within(0.25), 100 * cv.fraction_within(0.10),
                  100 * cv.fraction_within(0.05), 100 * cv.mean_abs_relative_error());
    }
  }

  std::printf("\nFig. 11 (summary): CV error vs predicted time, per model\n");
  std::printf("%-6s %-16s %12s %12s %12s\n", "Arch", "Renderer", "min pred", "max pred",
              "max |err|%");
  bench::print_rule();
  for (const std::string arch : {"CPU1", "GPU1"}) {
    for (const RendererKind kind : kinds) {
      const auto samples = model::samples_for(obs, arch, kind);
      const model::PerfModel m = model::PerfModel::fit(kind, samples);
      const model::CrossValidation cv = m.cross_validate(samples, 3, 0xCF01Du, &cv_pool);
      double lo = 1e30, hi = 0, worst = 0;
      for (std::size_t i = 0; i < cv.actual.size(); ++i) {
        lo = std::min(lo, cv.predicted[i]);
        hi = std::max(hi, cv.predicted[i]);
        if (cv.actual[i] > 0)
          worst = std::max(worst, std::abs(cv.predicted[i] - cv.actual[i]) / cv.actual[i]);
      }
      std::printf("%-6s %-16s %11.4fs %11.4fs %12.1f\n", arch.c_str(),
                  model::renderer_name(kind), lo, hi, 100 * worst);
    }
  }

  // ---- Table 17: coefficients ---------------------------------------------
  std::printf("\nTable 17: experimentally-determined coefficients\n");
  std::printf("%-16s %-6s %12s %12s %12s %12s %12s\n", "Technique", "Arch", "c0", "c1",
              "c2", "c3", "c4");
  bench::print_rule(92);
  for (const RendererKind kind : kinds) {
    for (const std::string arch : {"CPU1", "GPU1"}) {
      const auto samples = model::samples_for(obs, arch, kind);
      const model::PerfModel m = model::PerfModel::fit(kind, samples);
      std::printf("%-16s %-6s", model::renderer_name(kind), arch.c_str());
      for (const double c : m.paper_coefficients()) std::printf(" %12.3e", c);
      std::printf("\n");
    }
  }
  const model::CompositeModel comp = model::CompositeModel::fit(model::composite_samples(obs));
  std::printf("%-16s %-6s", "Compositing", "-");
  for (const double c : comp.coefficients()) std::printf(" %12.3e", c);
  std::printf("\n");

  std::printf("\nExpected shape (paper): R^2 >= ~0.94 for five of six models, with\n"
              "CPU rasterization the weakest (run-to-run variance); nearly all CV\n"
              "predictions within 50%%, most within 25%%.\n");
  return 0;
}
