// Shared helpers for the table/figure reproduction benches.
//
// Every binary prints the corresponding paper table's rows. Because the
// suite runs on small machines, all data/image sizes are multiplied by
// ISR_BENCH_SCALE (default 0.35; the paper's sizes correspond to 1.0).
// Absolute numbers therefore differ from the paper; the reproduction target
// is the *shape* (orderings, ratios, crossovers) — see EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "mesh/structured.hpp"
#include "mesh/trimesh.hpp"
#include "mesh/unstructured.hpp"

namespace isr::bench {

// ISR_BENCH_SCALE env var; default 0.35. Non-numeric, non-finite, or
// non-positive values warn on stderr (once) and fall back to the default.
double scale();

// Scales a paper dimension (grid edge, image edge) by scale().
int scaled(int paper_value, int min_value = 16);

void print_header(const std::string& table, const std::string& caption);
void print_rule(int width = 78);

// A blobs-field tet mesh standing in for the Chapter III data sets
// (Enzo-1M/10M, Nek5000, Enzo-80M): `edge` is the grid edge before scaling.
mesh::TetMesh ch3_dataset(const std::string& name);
std::vector<std::string> ch3_dataset_names();

// "Zoomed out" (fill 0.45) and "close up" (fill 1.6) cameras, as in the
// studies.
Camera far_camera(const AABB& bounds, int width, int height);
Camera close_camera(const AABB& bounds, int width, int height);

}  // namespace isr::bench
