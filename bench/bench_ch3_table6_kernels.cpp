// Table 6 (Chapter III): per-kernel time, registers per thread, and
// achieved occupancy of the unstructured volume renderer on the GPU
// (Enzo-10M, close view, 4 passes). Times are measured (simulated device);
// register counts and occupancy are the paper's nvprof values, reproduced
// as documented constants of the CUDA kernels we model (EXPERIMENTS.md).
#include <cstdio>

#include "common.hpp"
#include "dpp/profiles.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 6: UVR kernel statistics on GPU1 (Enzo-10M close, 4 passes)",
                      "Times measured; registers/occupancy are modeled kernel attributes.");

  const mesh::TetMesh tets = bench::ch3_dataset("Enzo-10M");
  const int edge = bench::scaled(1024, 96);
  const Camera cam = bench::close_camera(tets.bounds(), edge, edge);
  dpp::Device dev = dpp::Device::simulated(dpp::profile_gpu1());
  render::UnstructuredVolumeRenderer uvr(tets, dev);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);
  render::Image img;
  render::UnstructuredVROptions opt;
  opt.num_passes = 4;
  opt.samples_in_depth = bench::scaled(1000, 64);
  const render::RenderStats stats = uvr.render(cam, tf, img, opt);

  struct KernelInfo {
    const char* phase;
    const char* label;
    int registers;
    int occupancy;
  };
  const KernelInfo kernels[] = {{"screen_space", "Screen Space", 70, 38},
                                {"sampling", "Sampling", 57, 47},
                                {"compositing", "Compositing", 37, 68}};

  std::printf("%-14s %10s %10s %10s\n", "Kernel", "Time", "Registers", "Occupancy");
  bench::print_rule();
  for (const KernelInfo& k : kernels)
    std::printf("%-14s %9.4fs %10d %9d%%\n", k.label, stats.phase_seconds(k.phase),
                k.registers, k.occupancy);
  std::printf("\n(tets=%zu, image=%dx%d; pass selection omitted as in the paper —\n"
              "it spans multiple primitives/CUDA kernels.)\n"
              "Expected shape: compositing dominates on the GPU despite its higher\n"
              "occupancy (scattered per-sample memory traffic).\n",
              tets.cell_count(), edge, edge);
  return 0;
}
