// Chaos-recovery throughput (beyond the paper): the fault-tolerance layer
// under a deterministic fault schedule. One fixed batch of §5.9
// feasibility queries runs three ways — BASELINE, a fault-free cluster
// (the reference bytes and reference throughput); CHAOS, the same queries
// against a cluster injecting eval throws AND worker crashes at a fixed
// seed (supervised workers absorb the throws, the watchdog restarts the
// crashed workers and re-drives the batches they held, failover walks the
// rendezvous order, and requests whose three attempts all fail degrade
// explicitly); and REPLAY-CHAOS, a second fresh cluster with the SAME
// fault seed, which must reproduce the chaos leg's responses byte for
// byte — the injector keys every decision on (stream id, per-stream seq,
// attempt), so the schedule is independent of thread interleaving.
//
// Health gates (exit nonzero on violation):
//   - every request is answered, in order, in all three legs;
//   - the chaos leg really exercised the machinery: at least one injected
//     fault, at least one worker restart, at least one retry — and some
//     requests degraded while most survived (a schedule that degrades
//     nothing, or everything, gates nothing);
//   - every non-degraded chaos response is byte-identical to the baseline
//     (recovery must not bend surviving bytes);
//   - the replay-chaos leg is byte-identical to the chaos leg, degraded
//     responses included (determinism contract);
//   - chaos throughput stays within kChaosFloor of baseline: recovery
//     machinery (restarts, backoff, re-drives) costs something, but an
//     order-of-magnitude collapse means the watchdog or the retry path is
//     thrashing.
//
// The final line is machine-readable JSON (prefix "JSON ") for the
// nightly perf trajectory:
//   JSON {"bench":"chaos_recovery","queries":...,"shards":...,
//         "qps_baseline":...,"qps_chaos":...,"chaos_ratio":...,
//         "degraded":...,"worker_restarts":...,"retries":...,
//         "failovers":...,"faults_injected":...,
//         "replay_identical":true,"survivors_identical":true,
//         "identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/stream.hpp"
#include "common.hpp"
#include "core/fault.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

using namespace isr;

namespace {

// Chaos knobs: both transient sites at a rate where a request's three
// attempts all fail ~2% of the time — enough degraded responses to gate
// on, far from degrading the whole batch. The seed is part of the bench's
// identity: changing it changes which requests degrade (and the committed
// baseline's degraded count).
constexpr std::uint64_t kFaultSeed = 20160;
constexpr double kFaultRate = 0.15;
// Chaos-vs-baseline throughput floor. At this rate nearly every batch
// crashes, so the chaos leg's wall clock is dominated by crash DETECTION
// latency (~190 restarts x the 100us watchdog poll ~= 19ms against a ~1ms
// fault-free run): the measured ratio sits stably at ~0.02x and is a
// property of the knobs, not a regression. The floor guards an order-of-
// magnitude collapse below that structural cost — a watchdog that stops
// noticing crashes or a retry path gone thrashing.
constexpr double kChaosFloor = 0.004;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration() {
  // The ISR_BENCH_SCALE-following calibration shape shared by the cluster
  // benches, including the max_n floor (a constant-O corpus makes the
  // rasterization regression singular).
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  return cfg;
}

cluster::ClusterConfig cluster_config(bool chaos) {
  cluster::ClusterConfig cfg;
  cfg.service.calibration = calibration();
  cfg.shards = 2;
  cfg.cache_entries = 0;  // every request evaluated: every request can fault
  // Small batches bound a crash's blast radius (a crash re-drives its whole
  // batch); the bench measures recovery machinery, not innocent re-drives.
  cfg.batch_size = 8;
  if (chaos) {
    cfg.fault.seed = kFaultSeed;
    cfg.fault.rate = kFaultRate;
    cfg.fault.sites = 1u << static_cast<int>(core::FaultSite::kShardEvalThrow);
    cfg.fault.sites |= 1u << static_cast<int>(core::FaultSite::kWorkerCrash);
    cfg.watchdog_poll_us = 100;  // crashes are frequent; detect them fast
    // Backoff trimmed to keep the timed leg about recovery work, not sleep.
    cfg.retry_backoff_us = 5;
    cfg.retry_backoff_max_us = 50;
  }
  return cfg;
}

// A compact §5.9 query grid (the advisor-throughput grid at few
// repetitions — the chaos legs run it three times total).
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024};
  const std::vector<int> data_sizes = {50, 100, 200};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 8;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

// One serial session (stream id 0 on a fresh cluster — the injector's k0),
// submitting everything in order. Serial submission keeps the bench's
// measured cost the recovery machinery itself, not producer scheduling.
std::vector<serve::AdvisorResponse> run_leg(cluster::ServingCluster& serving,
                                            const std::vector<serve::AdvisorRequest>& requests,
                                            double& seconds) {
  const auto start = std::chrono::steady_clock::now();
  cluster::StreamSession session = serving.open_stream();
  for (const serve::AdvisorRequest& req : requests) session.submit(req);
  std::vector<serve::AdvisorResponse> responses = session.close();
  seconds = seconds_since(start);
  return responses;
}

}  // namespace

int main() {
  bench::print_header(
      "Chaos recovery (beyond the paper)",
      "One fixed query batch: fault-free baseline vs deterministic eval-throw + "
      "worker-crash injection (seed " + std::to_string(kFaultSeed) +
          ", rate " + std::to_string(kFaultRate) + "), plus a same-seed replay leg.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const auto primary = std::make_shared<serve::ModelRegistry>();
  primary->models_for(calibration());  // calibrate outside every timed region

  double t_baseline = 0.0, t_chaos = 0.0, t_replay = 0.0;
  std::vector<serve::AdvisorResponse> baseline, chaos, replayed;
  long degraded = 0;
  cluster::ClusterMetrics chaos_metrics;
  {
    cluster::ServingCluster serving(cluster_config(/*chaos=*/false), primary);
    baseline = run_leg(serving, requests, t_baseline);
  }
  {
    cluster::ServingCluster serving(cluster_config(/*chaos=*/true), primary);
    chaos = run_leg(serving, requests, t_chaos);
    chaos_metrics = serving.metrics();
  }
  {
    cluster::ServingCluster serving(cluster_config(/*chaos=*/true), primary);
    replayed = run_leg(serving, requests, t_replay);
  }

  bool ok = baseline.size() == requests.size() && chaos.size() == requests.size() &&
            replayed.size() == requests.size();
  bool replay_identical = ok;
  bool survivors_identical = ok;
  if (ok) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (serve::to_jsonl(chaos[i]) != serve::to_jsonl(replayed[i]))
        replay_identical = false;
      if (chaos[i].degraded()) {
        ++degraded;
      } else if (serve::to_jsonl(chaos[i]) != serve::to_jsonl(baseline[i])) {
        survivors_identical = false;
      }
    }
  }

  const auto n = static_cast<double>(requests.size());
  const double qps_baseline = t_baseline > 0.0 ? n / t_baseline : 0.0;
  // The chaos legs are identical by contract; the faster attempt is the
  // throughput (same best-of-N stance as the other cluster benches).
  const double chaos_seconds = std::min(t_chaos, t_replay);
  const double qps_chaos = chaos_seconds > 0.0 ? n / chaos_seconds : 0.0;
  const double chaos_ratio = qps_baseline > 0.0 ? qps_chaos / qps_baseline : 0.0;

  std::printf("%-34s %12s %12s %10s\n", "leg", "seconds", "qps", "degraded");
  bench::print_rule();
  std::printf("%-34s %12.4f %12.1f %10s\n", "baseline (no faults)", t_baseline,
              qps_baseline, "0");
  std::printf("%-34s %12.4f %12.1f %10ld\n", "chaos (throw+crash)", t_chaos,
              n / t_chaos, degraded);
  std::printf("%-34s %12.4f %12.1f %10s\n", "chaos replay (same seed)", t_replay,
              n / t_replay, replay_identical ? "=chaos" : "DIFFERS");
  bench::print_rule();
  std::printf("worker_restarts=%ld retries=%ld failovers=%ld faults_injected=%ld\n",
              chaos_metrics.worker_restarts, chaos_metrics.retries,
              chaos_metrics.failovers, chaos_metrics.faults_injected);

  // The gates.
  const bool exercised = chaos_metrics.faults_injected > 0 &&
                         chaos_metrics.worker_restarts > 0 && chaos_metrics.retries > 0;
  const bool degraded_sane =
      degraded > 0 && degraded < static_cast<long>(requests.size()) / 2;
  const bool throughput_ok = chaos_ratio >= kChaosFloor;
  if (!ok) std::printf("FAIL: a leg lost responses\n");
  if (!exercised)
    std::printf("FAIL: chaos leg injected nothing (restarts=%ld retries=%ld)\n",
                chaos_metrics.worker_restarts, chaos_metrics.retries);
  if (!degraded_sane)
    std::printf("FAIL: degraded count %ld out of %zu gates nothing\n", degraded,
                requests.size());
  if (!survivors_identical)
    std::printf("FAIL: a surviving chaos response differs from the baseline bytes\n");
  if (!replay_identical)
    std::printf("FAIL: same seed, different bytes (determinism contract broken)\n");
  if (!throughput_ok)
    std::printf("FAIL: chaos throughput collapsed (%.2fx of baseline, floor %.2fx)\n",
                chaos_ratio, kChaosFloor);

  const bool identical = ok && exercised && degraded_sane && survivors_identical &&
                         replay_identical && throughput_ok;
  std::printf(
      "\nJSON {\"bench\":\"chaos_recovery\",\"queries\":%zu,\"shards\":2,"
      "\"qps_baseline\":%.1f,\"qps_chaos\":%.1f,\"chaos_ratio\":%.4f,"
      "\"degraded\":%ld,\"worker_restarts\":%ld,\"retries\":%ld,"
      "\"failovers\":%ld,\"faults_injected\":%ld,"
      "\"replay_identical\":%s,\"survivors_identical\":%s,\"identical\":%s}\n",
      requests.size(), qps_baseline, qps_chaos, chaos_ratio, degraded,
      chaos_metrics.worker_restarts, chaos_metrics.retries, chaos_metrics.failovers,
      chaos_metrics.faults_injected, replay_identical ? "true" : "false",
      survivors_identical ? "true" : "false", identical ? "true" : "false");
  return identical ? 0 : 1;
}
