// Table 9 (Chapter III): DPP unstructured volume renderer vs the
// VisIt-style sampler, single core, four data sets x two camera positions.
// Columns as in the paper: SS = screen-space transform, S = sampling,
// C = compositing, TOT = total.
#include <cstdio>

#include "baseline/visit_sampler.hpp"
#include "common.hpp"
#include "math/colormap.hpp"
#include "render/uvr/unstructured.hpp"

using namespace isr;

int main() {
  bench::print_header("Table 9: DPP-VR vs VisIt-style sampler (single core)",
                      "SS/S/C/TOT phase seconds per frame.");

  const int edge = bench::scaled(1024, 96);
  const int samples = bench::scaled(1000, 64);
  const TransferFunction tf(ColorTable::cool_warm(), 0.0f, 0.25f);
  dpp::Device dev = dpp::Device::serial();

  std::printf("%-18s %-8s %8s %8s %8s %8s\n", "data & view", "SW", "SS", "S", "C", "TOT");
  bench::print_rule();
  for (const std::string& name : bench::ch3_dataset_names()) {
    const mesh::TetMesh tets = bench::ch3_dataset(name);
    for (const bool close : {false, true}) {
      const Camera cam = close ? bench::close_camera(tets.bounds(), edge, edge)
                               : bench::far_camera(tets.bounds(), edge, edge);
      const std::string label = name + (close ? "/Close" : "/Far");

      baseline::VisItSampler visit(tets, dev);
      render::Image vi;
      const render::RenderStats vs = visit.render(cam, tf, vi, samples);
      std::printf("%-18s %-8s %8.3f %8.3f %8.3f %8.3f\n", label.c_str(), "VisIt",
                  vs.phase_seconds("screen_space"), vs.phase_seconds("sampling"),
                  vs.phase_seconds("compositing"), vs.total_seconds());

      render::UnstructuredVolumeRenderer uvr(tets, dev);
      render::Image ui;
      render::UnstructuredVROptions opt;
      opt.samples_in_depth = samples;
      const render::RenderStats us = uvr.render(cam, tf, ui, opt);
      std::printf("%-18s %-8s %8.3f %8.3f %8.3f %8.3f\n", label.c_str(), "DPP-VR",
                  us.phase_seconds("screen_space"), us.phase_seconds("sampling"),
                  us.phase_seconds("compositing"), us.total_seconds());
    }
  }
  std::printf("\nExpected shape (paper Table 9): comparable on the small data set;\n"
              "DPP-VR increasingly ahead as cells shrink (VisIt's per-cell overhead\n"
              "stops amortizing), especially on the largest data sets.\n");
  return 0;
}
