// Throughput across a live recalibration swap (beyond the paper): one
// fixed batch of §5.9 feasibility queries served three ways on a cached
// cluster — warm at epoch 1, DURING a background recalibration (the refit
// worker fits epoch 2 and swaps it in while this pass runs), and warm
// again after the swap (epoch 2 re-populated) — reporting queries/sec for
// each. The interesting number is qps_during_refit: serving must not
// collapse while the refit worker runs a drift study and a full re-fit.
//
// Health gates (exit nonzero on violation):
//   - the pre-swap warm pass hits the cache on every request, and so does
//     the post-swap warm pass (epoch-scoped invalidation evicted the stale
//     entries exactly once, then the cache re-filled at epoch 2);
//   - every response served during the swap is byte-identical to its
//     epoch-1 OR epoch-2 reference bytes (an in-flight request finishes on
//     the epoch it was admitted under — never a blend);
//   - the post-swap passes are byte-identical to each other;
//   - exactly one refit, advancing the default corpus to epoch 2.
//
// The final line is machine-readable JSON (prefix "JSON ") for the
// bench-regression gate:
//   JSON {"bench":"recal_swap","queries":...,"shards":...,
//         "calibration_seconds":...,"refits":1,"epoch_after":2,
//         "qps_warm":...,"qps_during_refit":...,"qps_post_swap_warm":...,
//         "warm_hit_rate":1.0,"post_swap_warm_hit_rate":1.0,
//         "epoch_invalidations":...,"identical":true}
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "common.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"
#include "serve/jsonl.hpp"

using namespace isr;

namespace {

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

model::StudyConfig calibration() {
  // The bench_cluster_throughput calibration shape, ISR_BENCH_SCALE-scaled,
  // with the same floor on max_n (a constant-O corpus makes the
  // rasterization regression singular).
  model::StudyConfig cfg = serve::default_calibration();
  cfg.min_image = bench::scaled(128);
  cfg.max_image = bench::scaled(288);
  cfg.min_n = bench::scaled(20);
  cfg.max_n = std::max(bench::scaled(40), cfg.min_n + 12);
  cfg.vr_samples = bench::scaled(200, 50);
  return cfg;
}

// The cluster-bench query grid at 20 repetitions: 3840 distinct queries
// (the budget sweep makes every repetition a distinct cache key).
std::vector<serve::AdvisorRequest> query_grid() {
  const std::vector<std::string> archs = {"CPU1", "GPU1"};
  const std::vector<model::RendererKind> renderers = {model::RendererKind::kRayTrace,
                                                      model::RendererKind::kRasterize,
                                                      model::RendererKind::kVolume};
  const std::vector<int> edges = {256, 512, 1024, 2048};
  const std::vector<int> data_sizes = {50, 100, 200, 400};
  const std::vector<int> task_counts = {8, 64};
  const int repetitions = 20;

  std::vector<serve::AdvisorRequest> requests;
  requests.reserve(archs.size() * renderers.size() * edges.size() * data_sizes.size() *
                   task_counts.size() * static_cast<std::size_t>(repetitions));
  for (int rep = 0; rep < repetitions; ++rep)
    for (const std::string& arch : archs)
      for (const model::RendererKind kind : renderers)
        for (const int edge : edges)
          for (const int n : data_sizes)
            for (const int tasks : task_counts) {
              serve::AdvisorRequest req;
              req.arch = arch;
              req.renderer = kind;
              req.n_per_task = n;
              req.tasks = tasks;
              req.image_edge = edge;
              req.budget_seconds = 30.0 + rep;
              req.frames = 100;
              requests.push_back(req);
            }
  return requests;
}

std::vector<std::string> jsonl_of(const std::vector<serve::AdvisorResponse>& responses) {
  std::vector<std::string> lines;
  lines.reserve(responses.size());
  for (const serve::AdvisorResponse& r : responses) lines.push_back(serve::to_jsonl(r));
  return lines;
}

}  // namespace

int main() {
  const int threads = core::default_thread_count();
  const int shards = std::max(2, std::min(4, threads));
  bench::print_header(
      "Serving throughput across a live recalibration swap (beyond the paper)",
      "One fixed query batch on a " + std::to_string(shards) +
          "-shard cached cluster: warm at epoch 1, during the background refit, "
          "warm again at epoch 2.");

  const std::vector<serve::AdvisorRequest> requests = query_grid();
  const double n = static_cast<double>(requests.size());
  cluster::ClusterConfig config;
  config.service.calibration = calibration();
  config.shards = shards;
  // 2x slack so both warm passes are all hits even with uneven way hashing.
  config.cache_entries = 2 * requests.size();
  cluster::ServingCluster cluster(std::move(config));

  // The lazy fit, forced outside the timed region via the recalibration
  // surface (append of nothing: residency without an epoch bump).
  const auto calib_start = std::chrono::steady_clock::now();
  cluster.append_observations("", {});
  const double t_calibrate = seconds_since(calib_start);

  // Epoch 1: cold fill (the byte reference), then the timed warm pass.
  const std::vector<std::string> epoch1 = jsonl_of(cluster.serve_batch(requests));
  const long hits_cold = cluster.metrics().cache_hits;
  const auto warm_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> warm = cluster.serve_batch(requests);
  const double t_warm = seconds_since(warm_start);
  const double warm_hit_rate =
      static_cast<double>(cluster.metrics().cache_hits - hits_cold) / n;

  // The swap: schedule the recalibration, then keep serving while the
  // refit worker runs the drift study + re-fit and swaps epoch 2 in.
  const auto during_start = std::chrono::steady_clock::now();
  const std::uint64_t scheduled = cluster.recalibrate("");
  const std::vector<serve::AdvisorResponse> during = cluster.serve_batch(requests);
  const double t_during = seconds_since(during_start);
  cluster.wait_refits();

  // Epoch 2: cold re-fill (reference), then the timed warm pass.
  const std::vector<std::string> epoch2 = jsonl_of(cluster.serve_batch(requests));
  const long hits_refill = cluster.metrics().cache_hits;
  const auto post_start = std::chrono::steady_clock::now();
  const std::vector<serve::AdvisorResponse> post = cluster.serve_batch(requests);
  const double t_post = seconds_since(post_start);
  const double post_warm_hit_rate =
      static_cast<double>(cluster.metrics().cache_hits - hits_refill) / n;

  // Byte gates: warm == epoch 1; every during-swap response is epoch 1 or
  // epoch 2 bytes; post-swap warm == epoch 2.
  bool identical = warm.size() == requests.size() && post.size() == requests.size() &&
                   during.size() == requests.size();
  std::size_t served_old = 0, served_new = 0;
  for (std::size_t i = 0; identical && i < requests.size(); ++i) {
    if (serve::to_jsonl(warm[i]) != epoch1[i]) identical = false;
    if (serve::to_jsonl(post[i]) != epoch2[i]) identical = false;
    const std::string d = serve::to_jsonl(during[i]);
    if (d == epoch1[i])
      ++served_old;
    else if (d == epoch2[i])
      ++served_new;
    else
      identical = false;
  }

  const cluster::ClusterMetrics metrics = cluster.metrics();
  const std::uint64_t epoch_after = cluster.bundle_epoch("");
  const bool gates = identical && scheduled == 2 && epoch_after == 2 &&
                     metrics.refits == 1 && warm_hit_rate == 1.0 &&
                     post_warm_hit_rate == 1.0;

  std::printf("calibration (lazy, via append): %.3fs; %zu queries per pass\n\n",
              t_calibrate, requests.size());
  std::printf("%-28s %8s %12s %12s\n", "pass", "epoch", "seconds", "queries/sec");
  bench::print_rule(64);
  std::printf("%-28s %8d %12.4f %12.0f\n", "warm (pre-swap)", 1, t_warm, n / t_warm);
  std::printf("%-28s %8s %12.4f %12.0f\n", "during refit", "1->2", t_during, n / t_during);
  std::printf("%-28s %8d %12.4f %12.0f\n", "warm (post-swap)", 2, t_post, n / t_post);
  std::printf("\ncluster metrics: %s\n", metrics.to_jsonl().c_str());
  std::printf(
      "\nduring the swap: %zu responses on epoch 1, %zu on epoch 2; "
      "invalidated %ld stale entries; byte gates: %s\n",
      served_old, served_new, metrics.epoch_invalidations, identical ? "pass" : "FAIL");

  std::printf(
      "JSON {\"bench\":\"recal_swap\",\"queries\":%zu,\"shards\":%d,"
      "\"calibration_seconds\":%.6f,\"refits\":%ld,\"epoch_after\":%llu,"
      "\"qps_warm\":%.1f,\"qps_during_refit\":%.1f,\"qps_post_swap_warm\":%.1f,"
      "\"warm_hit_rate\":%.6f,\"post_swap_warm_hit_rate\":%.6f,"
      "\"epoch_invalidations\":%ld,\"identical\":%s}\n",
      requests.size(), shards, t_calibrate, metrics.refits,
      static_cast<unsigned long long>(epoch_after), n / t_warm, n / t_during, n / t_post,
      warm_hit_rate, post_warm_hit_rate, metrics.epoch_invalidations,
      identical ? "true" : "false");

  return gates ? 0 : 1;
}
