// Figure 15 (Chapter V): the ray-tracing vs rasterization heatmap — the
// predicted time ratio T_RAST/T_RT for 100 renderings at 32 tasks over a
// grid of (image size x data size), with the BVH build amortized over the
// frames. Ratio > 1: ray tracing wins; < 1: rasterization wins.
#include <cstdio>

#include "common.hpp"
#include "model/feasibility.hpp"
#include "model/study.hpp"

using namespace isr;
using model::RendererKind;

int main() {
  bench::print_header("Fig. 15: ray tracing vs rasterization (CPU1, 100 renders)",
                      "Cells: T_RAST / T_RT from the fitted models + §5.8 mapping. "
                      ">1 favors ray tracing, <1 favors rasterization.");

  model::StudyConfig cfg;
  cfg.archs = {"CPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 4;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.renderers = {RendererKind::kRayTrace, RendererKind::kRasterize};
  cfg.seed = 1500;
  const auto obs = model::run_study(cfg);

  const model::PerfModel rt = model::PerfModel::fit(
      RendererKind::kRayTrace, model::samples_for(obs, "CPU1", RendererKind::kRayTrace));
  const model::PerfModel rast = model::PerfModel::fit(
      RendererKind::kRasterize, model::samples_for(obs, "CPU1", RendererKind::kRasterize));

  std::vector<int> edges;
  for (int e = 384; e <= 4096; e += 532) edges.push_back(e);
  std::vector<int> data_sizes;
  for (int n = 100; n <= 500; n += 50) data_sizes.push_back(n);

  const auto cells = model::rt_vs_rast(rt, rast, 100, 32, edges, data_sizes);

  std::printf("%-8s", "N\\img");
  for (const int e : edges) std::printf(" %7d", e);
  std::printf("\n");
  bench::print_rule();
  std::size_t idx = 0;
  double best_rt = 0, best_rast = 1e30;
  for (const int n : data_sizes) {
    std::printf("%-8d", n);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const model::RatioCell& c = cells[idx++];
      std::printf(" %7.2f", c.ratio);
      best_rt = std::max(best_rt, c.ratio);
      best_rast = std::min(best_rast, c.ratio);
    }
    std::printf("\n");
  }
  std::printf("\nExtreme advantages: ray tracing up to %.1fx (small images, big data);\n"
              "rasterization at best %.2fx (large images, small data).\n"
              "Expected shape (Fig. 15): ray tracing dominant at small images with\n"
              "dense geometry (paper: up to 16x); rasterization's best advantage is\n"
              "modest (paper: ~1.5x, i.e. three images per two ray tracings).\n",
              best_rt, 1.0 / best_rast);
  return 0;
}
