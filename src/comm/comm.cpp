#include "comm/comm.hpp"

#include <algorithm>

namespace isr::comm {

Comm::Comm(int nranks, NetworkModel net) : net_(net) {
  clock_.assign(static_cast<std::size_t>(nranks), 0.0);
}

void Comm::add_compute(int rank, double seconds) {
  clock_[static_cast<std::size_t>(rank)] += seconds;
}

void Comm::send(int from, int to, std::size_t bytes) {
  const double transfer = net_.transfer_seconds(bytes);
  const double arrive = clock_[static_cast<std::size_t>(from)] + transfer;
  // The sender is busy for the injection overhead; the receiver cannot
  // proceed before the data lands.
  clock_[static_cast<std::size_t>(from)] += net_.latency_us * 1e-6;
  clock_[static_cast<std::size_t>(to)] = std::max(clock_[static_cast<std::size_t>(to)], arrive);
  bytes_sent_ += bytes;
  ++messages_;
}

void Comm::exchange(int a, int b, std::size_t bytes_ab, std::size_t bytes_ba) {
  const double start = std::max(clock_[static_cast<std::size_t>(a)],
                                clock_[static_cast<std::size_t>(b)]);
  const double done = start + net_.transfer_seconds(std::max(bytes_ab, bytes_ba));
  clock_[static_cast<std::size_t>(a)] = done;
  clock_[static_cast<std::size_t>(b)] = done;
  bytes_sent_ += bytes_ab + bytes_ba;
  messages_ += 2;
}

void Comm::barrier() {
  const double m = max_clock();
  std::fill(clock_.begin(), clock_.end(), m);
}

double Comm::max_clock() const {
  double m = 0.0;
  for (const double c : clock_) m = std::max(m, c);
  return m;
}

void Comm::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  bytes_sent_ = 0;
  messages_ = 0;
}

}  // namespace isr::comm
