// Virtual MPI: an in-process stand-in for a distributed communicator
// (DESIGN.md §3 item 2). Ranks are logical; algorithms written against this
// class really move and blend pixel data, while per-rank logical clocks
// advance by an alpha/beta network model plus modeled local compute. The
// maximum clock is the simulated parallel runtime.
#pragma once

#include <cstddef>
#include <vector>

namespace isr::comm {

struct NetworkModel {
  double latency_us = 4.0;        // per-message alpha
  double bandwidth_gbs = 5.0;     // per-link beta (bytes/s = 1e9 * this)
  double blend_ns_per_pixel = 1.6;  // modeled cost of compositing one pixel

  double transfer_seconds(std::size_t bytes) const {
    return latency_us * 1e-6 + static_cast<double>(bytes) / (bandwidth_gbs * 1e9);
  }
};

class Comm {
 public:
  explicit Comm(int nranks, NetworkModel net = {});

  int size() const { return static_cast<int>(clock_.size()); }
  const NetworkModel& network() const { return net_; }

  // Local computation on one rank.
  void add_compute(int rank, double seconds);

  // One-way message; the receiver's clock waits for arrival.
  void send(int from, int to, std::size_t bytes);

  // Pairwise simultaneous exchange (both directions overlap on the link
  // pair); both clocks advance to the common completion time.
  void exchange(int a, int b, std::size_t bytes_ab, std::size_t bytes_ba);

  // All ranks wait for the slowest.
  void barrier();

  double clock(int rank) const { return clock_[static_cast<std::size_t>(rank)]; }
  double max_clock() const;

  std::size_t total_bytes_sent() const { return bytes_sent_; }
  std::size_t message_count() const { return messages_; }

  void reset();

 private:
  NetworkModel net_;
  std::vector<double> clock_;
  std::size_t bytes_sent_ = 0;
  std::size_t messages_ = 0;
};

}  // namespace isr::comm
