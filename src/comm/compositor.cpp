#include "comm/compositor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "core/parallel_for.hpp"

namespace isr::comm {

namespace {

bool pixel_active(const render::Image& img, std::size_t p) {
  return img.pixels()[p].w > 0.0f || img.depths()[p] != render::kFarDepth;
}

// Working fragment: a pixel range of a partially composited image, plus the
// contiguous block of visibility-sorted ranks it already accounts for.
struct Buf {
  std::size_t lo = 0, hi = 0;
  int block_lo = 0;
  int block_size = 1;
  std::vector<Vec4f> rgba;
  std::vector<float> depth;

  std::size_t size() const { return hi - lo; }
};

Buf make_buf(const render::Image& img, std::size_t lo, std::size_t hi, int block_lo) {
  Buf b;
  b.lo = lo;
  b.hi = hi;
  b.block_lo = block_lo;
  b.rgba.assign(img.pixels().begin() + static_cast<std::ptrdiff_t>(lo),
                img.pixels().begin() + static_cast<std::ptrdiff_t>(hi));
  b.depth.assign(img.depths().begin() + static_cast<std::ptrdiff_t>(lo),
                 img.depths().begin() + static_cast<std::ptrdiff_t>(hi));
  return b;
}

bool buf_active(const Buf& b, std::size_t i) {
  return b.rgba[i].w > 0.0f || b.depth[i] != render::kFarDepth;
}

// Copies sub-range [lo, hi) (absolute pixel indices) out of a fragment.
Buf make_sub(const Buf& b, std::size_t lo, std::size_t hi) {
  Buf s;
  s.lo = lo;
  s.hi = hi;
  s.block_lo = b.block_lo;
  s.block_size = b.block_size;
  s.rgba.assign(b.rgba.begin() + static_cast<std::ptrdiff_t>(lo - b.lo),
                b.rgba.begin() + static_cast<std::ptrdiff_t>(hi - b.lo));
  s.depth.assign(b.depth.begin() + static_cast<std::ptrdiff_t>(lo - b.lo),
                 b.depth.begin() + static_cast<std::ptrdiff_t>(hi - b.lo));
  return s;
}

// Wire size of sub-range [sub_lo, sub_hi) of a fragment: 8 bytes per
// active/inactive run boundary plus a per-active-pixel payload (rgba8 for
// volume, rgba8+depth for surface), as an IceT-style compressor would emit.
std::size_t buf_compressed_bytes(const Buf& b, std::size_t sub_lo, std::size_t sub_hi,
                                 CompositeMode mode) {
  const std::size_t payload = mode == CompositeMode::kSurface ? 8 : 4;
  std::size_t runs = 0, active = 0;
  bool prev = false;
  for (std::size_t i = sub_lo; i < sub_hi; ++i) {
    const bool a = buf_active(b, i);
    if (a != prev || i == sub_lo) ++runs;
    if (a) ++active;
    prev = a;
  }
  return 16 + runs * 8 + active * payload;
}

// Same wire size computed straight from a source image over absolute pixel
// range [lo, hi), so the communication-accounting pass needs no Buf copy.
// pixel_active and buf_active test the same fields, so this matches
// buf_compressed_bytes of a Buf cut from the image exactly.
std::size_t image_compressed_bytes(const render::Image& img, std::size_t lo, std::size_t hi,
                                   CompositeMode mode) {
  const std::size_t payload = mode == CompositeMode::kSurface ? 8 : 4;
  std::size_t runs = 0, active = 0;
  bool prev = false;
  for (std::size_t i = lo; i < hi; ++i) {
    const bool a = pixel_active(img, i);
    if (a != prev || i == lo) ++runs;
    if (a) ++active;
    prev = a;
  }
  return 16 + runs * 8 + active * payload;
}

// Blends fragment `src` into `dst` over their overlapping pixel range.
// `src_in_front` gives the visibility order for volume blending.
void blend_into(Buf& dst, const Buf& src, CompositeMode mode, bool src_in_front) {
  const std::size_t lo = std::max(dst.lo, src.lo);
  const std::size_t hi = std::min(dst.hi, src.hi);
  for (std::size_t p = lo; p < hi; ++p) {
    const std::size_t di = p - dst.lo;
    const std::size_t si = p - src.lo;
    if (mode == CompositeMode::kSurface) {
      if (src.depth[si] < dst.depth[di]) {
        dst.depth[di] = src.depth[si];
        dst.rgba[di] = src.rgba[si];
      }
    } else {
      // Premultiplied "over": front + back * (1 - front.alpha).
      const Vec4f front = src_in_front ? src.rgba[si] : dst.rgba[di];
      const Vec4f back = src_in_front ? dst.rgba[di] : src.rgba[si];
      const float rem = 1.0f - front.w;
      dst.rgba[di] = {front.x + back.x * rem, front.y + back.y * rem,
                      front.z + back.z * rem, front.w + back.w * rem};
      dst.depth[di] = std::min(dst.depth[di], src.depth[si]);
    }
  }
}

double blend_cost(const Comm& comm, std::size_t pixels) {
  return static_cast<double>(pixels) * comm.network().blend_ns_per_pixel * 1e-9;
}

// Sorted-by-depth order of the input images; index in the result is the
// "virtual rank" every algorithm below operates on.
std::vector<int> visibility_order(const std::vector<RankImage>& inputs) {
  std::vector<int> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return inputs[static_cast<std::size_t>(a)].view_depth <
           inputs[static_cast<std::size_t>(b)].view_depth;
  });
  return order;
}

void buf_to_image(const Buf& b, render::Image& img) {
  std::copy(b.rgba.begin(), b.rgba.end(),
            img.pixels().begin() + static_cast<std::ptrdiff_t>(b.lo));
  std::copy(b.depth.begin(), b.depth.end(),
            img.depths().begin() + static_cast<std::ptrdiff_t>(b.lo));
}

// Final collection: every rank ships its finished piece to rank 0.
void gather_to_root(Comm& comm, const std::vector<Buf>& pieces, CompositeMode mode,
                    render::Image& out) {
  for (std::size_t r = 0; r < pieces.size(); ++r) {
    const Buf& b = pieces[r];
    if (b.size() == 0) continue;
    if (r != 0) comm.send(static_cast<int>(r), 0, buf_compressed_bytes(b, 0, b.size(), mode));
    buf_to_image(b, out);
  }
}

// Every algorithm below runs each round in two phases. Phase 1 — serial —
// performs the communication accounting (sends, exchanges, blend-compute
// charges) in the exact order the historical fused loop issued it, reading
// only wire sizes of unmodified inputs, so the simulated clocks are
// unchanged by the refactor and independent of thread count. Phase 2 fans
// the round's pure pixel blending over `pool`: work items write disjoint
// output slots and each fold runs in a fixed order inside its item, so the
// composited image is bit-identical at any thread count.
std::vector<Buf> direct_send(Comm& comm, const std::vector<const render::Image*>& img,
                             CompositeMode mode, std::size_t n_pixels,
                             core::ThreadPool* pool) {
  const int R = comm.size();
  std::vector<Buf> result(static_cast<std::size_t>(R));
  // Chunk d belongs to rank d.
  auto chunk_lo = [&](int d) { return n_pixels * static_cast<std::size_t>(d) / static_cast<std::size_t>(R); };

  // Phase 1: every chunk of every source rank goes to its destination.
  for (int d = 0; d < R; ++d) {
    const std::size_t lo = chunk_lo(d), hi = chunk_lo(d + 1);
    if (d != 0) comm.send(0, d, image_compressed_bytes(*img[0], lo, hi, mode));
    for (int s = 1; s < R; ++s) {
      if (s != d)
        comm.send(s, d, image_compressed_bytes(*img[static_cast<std::size_t>(s)], lo, hi, mode));
      comm.add_compute(d, blend_cost(comm, hi - lo));
    }
  }

  // Phase 2: per-destination blend folds, disjoint result slots.
  core::maybe_parallel_for(pool, static_cast<std::size_t>(R), [&](std::size_t di) {
    const int d = static_cast<int>(di);
    const std::size_t lo = chunk_lo(d), hi = chunk_lo(d + 1);
    // Fold chunks in strict visibility order (virtual rank 0 is closest to
    // the camera), so the over operator composes correctly.
    Buf acc = make_buf(*img[0], lo, hi, 0);
    for (int s = 1; s < R; ++s) {
      Buf frag = make_buf(*img[static_cast<std::size_t>(s)], lo, hi, s);
      blend_into(acc, frag, mode, /*src_in_front=*/false);
      acc.block_size += 1;
    }
    result[di] = std::move(acc);
  });
  return result;
}

std::vector<Buf> binary_swap(Comm& comm, const std::vector<const render::Image*>& img,
                             CompositeMode mode, std::size_t n_pixels,
                             core::ThreadPool* pool) {
  const int R = comm.size();
  if ((R & (R - 1)) != 0)
    throw std::invalid_argument("binary swap requires a power-of-two rank count");
  std::vector<Buf> bufs(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r)
    bufs[static_cast<std::size_t>(r)] = make_buf(*img[static_cast<std::size_t>(r)], 0, n_pixels, r);

  for (int bit = 0; (1 << bit) < R; ++bit) {
    std::vector<Buf> next(static_cast<std::size_t>(R));

    // Phase 1: pairwise exchanges + blend charges, ascending lower rank.
    for (int r = 0; r < R; ++r) {
      const int partner = r ^ (1 << bit);
      if (partner < r) continue;
      const Buf& a = bufs[static_cast<std::size_t>(r)];
      const Buf& b = bufs[static_cast<std::size_t>(partner)];
      const std::size_t mid = a.lo + a.size() / 2;
      comm.exchange(r, partner,
                    buf_compressed_bytes(a, mid - a.lo, a.size(), mode),
                    buf_compressed_bytes(b, 0, mid - b.lo, mode));
      comm.add_compute(r, blend_cost(comm, mid - a.lo));
      comm.add_compute(partner, blend_cost(comm, b.hi - mid));
    }

    // Phase 2: per-pair blends; each pair writes its own two next slots.
    core::maybe_parallel_for(pool, static_cast<std::size_t>(R), [&](std::size_t ri) {
      const int r = static_cast<int>(ri);
      const int partner = r ^ (1 << bit);
      if (partner < r) return;  // the lower rank of the pair fills next[r]
      Buf& a = bufs[static_cast<std::size_t>(r)];
      Buf& b = bufs[static_cast<std::size_t>(partner)];
      const std::size_t half = a.size() / 2;
      const std::size_t mid = a.lo + half;
      // Lower rank keeps the first half, upper rank the second.
      Buf a_keep = make_sub(a, a.lo, mid);
      Buf a_send = make_sub(a, mid, a.hi);
      Buf b_keep = make_sub(b, mid, b.hi);
      Buf b_send = make_sub(b, b.lo, mid);
      const bool b_front = b.block_lo < a.block_lo;
      blend_into(a_keep, b_send, mode, b_front);
      blend_into(b_keep, a_send, mode, !b_front);
      const int merged_lo = std::min(a.block_lo, b.block_lo);
      const int merged_size = a.block_size + b.block_size;
      a_keep.block_lo = b_keep.block_lo = merged_lo;
      a_keep.block_size = b_keep.block_size = merged_size;
      next[static_cast<std::size_t>(r)] = std::move(a_keep);
      next[static_cast<std::size_t>(partner)] = std::move(b_keep);
    });
    bufs = std::move(next);
  }
  return bufs;
}

std::vector<Buf> radix_k(Comm& comm, const std::vector<const render::Image*>& img,
                         CompositeMode mode, std::size_t n_pixels, int radix,
                         core::ThreadPool* pool) {
  const int R = comm.size();
  std::vector<Buf> bufs(static_cast<std::size_t>(R));
  for (int r = 0; r < R; ++r)
    bufs[static_cast<std::size_t>(r)] = make_buf(*img[static_cast<std::size_t>(r)], 0, n_pixels, r);

  // Factor R into rounds of size <= radix.
  std::vector<int> rounds;
  int rem = R;
  while (rem > 1) {
    int k = std::gcd(rem, radix);
    if (k == 1) {
      // No factor <= radix divides rem; find the smallest prime factor.
      k = rem;
      for (int f = 2; f * f <= rem; ++f)
        if (rem % f == 0) {
          k = f;
          break;
        }
    }
    rounds.push_back(k);
    rem /= k;
  }

  int stride = 1;
  for (const int k : rounds) {
    std::vector<Buf> next(static_cast<std::size_t>(R));

    // Enumerate this round's groups in order of their first member — the
    // order the historical single loop visited them.
    std::vector<int> group_base;
    {
      std::vector<bool> done(static_cast<std::size_t>(R), false);
      for (int r = 0; r < R; ++r) {
        if (done[static_cast<std::size_t>(r)]) continue;
        const int base = r - ((r / stride) % k) * stride;
        group_base.push_back(base);
        for (int j = 0; j < k; ++j) done[static_cast<std::size_t>(base + j * stride)] = true;
      }
    }
    // Every group member owns one piece of the group's pixel range; the
    // (group, piece) pairs are this round's independent work items.
    const auto piece_range = [&](int base, int j, std::size_t& plo, std::size_t& phi) {
      const Buf& ref = bufs[static_cast<std::size_t>(base)];
      const std::size_t piece = ref.size() / static_cast<std::size_t>(k);
      plo = ref.lo + piece * static_cast<std::size_t>(j);
      phi = (j == k - 1) ? ref.hi : plo + piece;
    };

    // Phase 1: each member sends every piece it does not own to that
    // piece's owner, who is charged one blend per received fragment.
    for (const int base : group_base) {
      for (int j = 0; j < k; ++j) {
        const int owner = base + j * stride;
        std::size_t plo, phi;
        piece_range(base, j, plo, phi);
        if (base != owner) {
          const Buf& sb = bufs[static_cast<std::size_t>(base)];
          comm.send(base, owner, buf_compressed_bytes(sb, plo - sb.lo, phi - sb.lo, mode));
        }
        for (int jj = 1; jj < k; ++jj) {
          const int src = base + jj * stride;
          const Buf& sb = bufs[static_cast<std::size_t>(src)];
          if (src != owner)
            comm.send(src, owner, buf_compressed_bytes(sb, plo - sb.lo, phi - sb.lo, mode));
          comm.add_compute(owner, blend_cost(comm, phi - plo));
        }
      }
    }

    // Phase 2: per-owner folds; owners are distinct across the whole
    // round, so every item writes its own next slot.
    core::maybe_parallel_for(
        pool, group_base.size() * static_cast<std::size_t>(k), [&](std::size_t item) {
          const int base = group_base[item / static_cast<std::size_t>(k)];
          const int j = static_cast<int>(item % static_cast<std::size_t>(k));
          const int owner = base + j * stride;
          std::size_t plo, phi;
          piece_range(base, j, plo, phi);
          // Group members' blocks are ordered by their index (member jj
          // holds visibility block [base + jj*stride, ...)), so folding jj
          // ascending is strict front-to-back order.
          Buf acc = make_sub(bufs[static_cast<std::size_t>(base)], plo, phi);
          int merged_size = acc.block_size;
          for (int jj = 1; jj < k; ++jj) {
            const Buf& sb = bufs[static_cast<std::size_t>(base + jj * stride)];
            Buf frag = make_sub(sb, plo, phi);
            blend_into(acc, frag, mode, /*src_in_front=*/false);
            merged_size += sb.block_size;
          }
          acc.block_size = merged_size;
          next[static_cast<std::size_t>(owner)] = std::move(acc);
        });
    bufs = std::move(next);
    stride *= k;
  }
  return bufs;
}

}  // namespace

CompositeResult composite(Comm& comm, const std::vector<RankImage>& inputs,
                          CompositeMode mode, CompositeAlgorithm algorithm, int radix,
                          core::ThreadPool* pool) {
  if (inputs.empty()) return {};
  if (static_cast<int>(inputs.size()) != comm.size())
    throw std::invalid_argument("composite: rank image count != comm size");
  const int width = inputs.front().image.width();
  const int height = inputs.front().image.height();
  const std::size_t n_pixels = inputs.front().image.pixel_count();
  for (const RankImage& ri : inputs)
    if (ri.image.pixel_count() != n_pixels)
      throw std::invalid_argument("composite: mismatched image sizes");

  comm.reset();

  // Visibility ordering (virtual rank = sorted index).
  const std::vector<int> order = visibility_order(inputs);
  std::vector<const render::Image*> img(inputs.size());
  double total_active = 0.0;
  for (std::size_t v = 0; v < order.size(); ++v) {
    img[v] = &inputs[static_cast<std::size_t>(order[v])].image;
    total_active += static_cast<double>(img[v]->active_pixel_count());
  }

  std::vector<Buf> pieces;
  switch (algorithm) {
    case CompositeAlgorithm::kDirectSend:
      pieces = direct_send(comm, img, mode, n_pixels, pool);
      break;
    case CompositeAlgorithm::kBinarySwap:
      pieces = binary_swap(comm, img, mode, n_pixels, pool);
      break;
    case CompositeAlgorithm::kRadixK:
      pieces = radix_k(comm, img, mode, n_pixels, radix, pool);
      break;
  }
  comm.barrier();

  CompositeResult result;
  result.image.resize(width, height);
  gather_to_root(comm, pieces, mode, result.image);
  result.simulated_seconds = comm.max_clock();
  result.bytes_sent = comm.total_bytes_sent();
  result.messages = comm.message_count();
  result.avg_active_pixels = total_active / static_cast<double>(inputs.size());
  return result;
}

render::Image composite_reference(const std::vector<RankImage>& inputs, CompositeMode mode) {
  render::Image out;
  if (inputs.empty()) return out;
  out.resize(inputs.front().image.width(), inputs.front().image.height());
  const std::vector<int> order = visibility_order(inputs);
  const std::size_t n = out.pixel_count();
  for (std::size_t p = 0; p < n; ++p) {
    Vec4f acc{0, 0, 0, 0};
    float depth = render::kFarDepth;
    for (const int r : order) {
      const render::Image& img = inputs[static_cast<std::size_t>(r)].image;
      if (!pixel_active(img, p)) continue;
      if (mode == CompositeMode::kSurface) {
        if (img.depths()[p] < depth) {
          depth = img.depths()[p];
          acc = img.pixels()[p];
        }
      } else {
        const Vec4f back = img.pixels()[p];
        const float rem = 1.0f - acc.w;
        acc = {acc.x + back.x * rem, acc.y + back.y * rem, acc.z + back.z * rem,
               acc.w + back.w * rem};
        depth = std::min(depth, img.depths()[p]);
      }
    }
    out.pixels()[p] = acc;
    out.depths()[p] = depth;
  }
  return out;
}

std::size_t compressed_bytes(const render::Image& image, std::size_t lo, std::size_t hi) {
  std::size_t runs = 0, active = 0;
  bool prev = false;
  for (std::size_t i = lo; i < hi; ++i) {
    const bool a = pixel_active(image, i);
    if (a != prev || i == lo) ++runs;
    if (a) ++active;
    prev = a;
  }
  return 16 + runs * 8 + active * 8;
}

}  // namespace isr::comm
