// Sort-last image compositing over the virtual MPI layer — the IceT
// stand-in (dissertation §4.2/§5.6). Implements direct send, binary swap,
// and radix-k; the SC16 study composited with radix-k.
//
// Sub-images are exchanged with active-pixel run-length compression (like
// IceT), so communication volume scales with active pixels — the behavior
// the compositing model T_COMP = c0*avg(AP) + c1*Pixels + c2 captures.
#pragma once

#include <vector>

#include "comm/comm.hpp"
#include "core/thread_pool.hpp"
#include "render/image.hpp"

namespace isr::comm {

enum class CompositeMode {
  kSurface,  // z-buffer min (ray tracing / rasterization)
  kVolume,   // ordered over-blend by domain visibility (volume rendering)
};

enum class CompositeAlgorithm {
  kDirectSend,
  kBinarySwap,  // rank count must be a power of two
  kRadixK,
};

struct RankImage {
  render::Image image;
  // Distance of the producing domain from the camera; establishes the
  // visibility order volume compositing needs.
  float view_depth = 0.0f;
};

struct CompositeResult {
  render::Image image;       // the final composited image
  double simulated_seconds = 0.0;  // max rank clock: the T_COMP measurement
  std::size_t bytes_sent = 0;
  std::size_t messages = 0;
  // Average active (non-empty) pixels per rank before compositing.
  double avg_active_pixels = 0.0;
};

// Composites rank sub-images. All images must share the final resolution.
// `radix` is the per-round group size for kRadixK (the factorization uses
// `radix` until the remainder, matching common IceT configurations).
//
// `pool` fans each round's blend loop out over core::parallel_for (null =
// serial). Communication accounting always runs serially in a fixed order,
// so the simulated clocks, byte counts, and the composited image are
// bit-identical at any thread count — the same determinism contract the
// study harness and the serving layers make.
CompositeResult composite(Comm& comm, const std::vector<RankImage>& inputs,
                          CompositeMode mode, CompositeAlgorithm algorithm, int radix = 8,
                          core::ThreadPool* pool = nullptr);

// Serial reference: composite everything on one rank with no communication.
// Used by tests to check the parallel algorithms bit-for-bit.
render::Image composite_reference(const std::vector<RankImage>& inputs, CompositeMode mode);

// RLE-compressed size in bytes of a pixel range: what a rank would actually
// put on the wire for image[lo, hi).
std::size_t compressed_bytes(const render::Image& image, std::size_t lo, std::size_t hi);

}  // namespace isr::comm
