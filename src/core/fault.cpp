#include "core/fault.hpp"

#include <cstdio>

#include "core/env.hpp"
#include "math/rng.hpp"

namespace isr::core {

namespace {

// Domain-separation salt: fault decisions must not correlate with any
// other hash_seed consumer (study jitter, router rings) sharing a seed.
constexpr std::uint64_t kFaultSalt = 0xFA171E57ull;

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kShardEvalThrow: return "eval-throw";
    case FaultSite::kQueueStall: return "queue-stall";
    case FaultSite::kCorpusFitFail: return "fit-fail";
    case FaultSite::kWorkerCrash: return "worker-crash";
    case FaultSite::kCount: break;
  }
  return "?";
}

bool fault_site_from_token(const std::string& token, FaultSite& site) {
  for (int s = 0; s < kFaultSiteCount; ++s) {
    if (token == fault_site_name(static_cast<FaultSite>(s))) {
      site = static_cast<FaultSite>(s);
      return true;
    }
  }
  return false;
}

bool FaultConfig::parse_sites(const std::string& csv, std::uint32_t& mask,
                              std::string& error) {
  std::uint32_t parsed = 0;
  std::size_t start = 0;
  bool any = false;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string token = csv.substr(start, comma - start);
    start = comma + 1;
    if (token.empty()) continue;  // tolerate "a,,b" and trailing commas
    if (token == "all") {
      parsed = (1u << kFaultSiteCount) - 1u;
      any = true;
      continue;
    }
    FaultSite site;
    if (!fault_site_from_token(token, site)) {
      error = "unknown fault site \"" + token +
              "\" (expected eval-throw, queue-stall, fit-fail, worker-crash, or all)";
      return false;
    }
    parsed |= 1u << static_cast<int>(site);
    any = true;
  }
  if (!any) {
    error = "empty fault site list";
    return false;
  }
  mask = parsed;
  error.clear();
  return true;
}

FaultConfig FaultConfig::from_env() {
  FaultConfig config;
  const long seed = env_long("ISR_FAULT_SEED", 0, /*require_positive=*/false);
  config.seed = seed > 0 ? static_cast<std::uint64_t>(seed) : 0;
  config.rate = env_double("ISR_FAULT_RATE", config.rate);
  if (config.rate > 1.0) config.rate = 1.0;
  config.stall_ms =
      static_cast<int>(env_long("ISR_FAULT_STALL_MS", config.stall_ms));
  if (const char* sites = std::getenv("ISR_FAULT_SITES")) {
    std::string error;
    if (!parse_sites(sites, config.sites, error)) {
      // Fail safe: a typo must not run half a chaos schedule silently.
      std::fprintf(stderr, "insitu-perf: ignoring ISR_FAULT_SITES=\"%s\" (%s); "
                           "fault injection disabled\n",
                   sites, error.c_str());
      config.seed = 0;
      config.sites = 0;
    }
  } else if (config.seed != 0) {
    config.sites = (1u << kFaultSiteCount) - 1u;  // seed alone = all sites
  }
  return config;
}

bool FaultInjector::should_fire(FaultSite site, std::uint64_t k0, std::uint64_t k1,
                                std::uint64_t k2) {
  if (!config_.armed() || !config_.enabled(site)) return false;
  // hash -> uniform double in [0, 1), the top-53-bits construction Rng
  // uses, so rate 1.0 always fires and rate r fires a deterministic ~r of
  // opportunities.
  const std::uint64_t h = hash_seed(config_.seed, kFaultSalt,
                                    static_cast<std::uint64_t>(site), k0, k1, k2);
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (unit >= config_.rate) return false;
  fired_[static_cast<int>(site)].fetch_add(1, std::memory_order_relaxed);
  return true;
}

long FaultInjector::total_fired() const {
  long total = 0;
  for (int s = 0; s < kFaultSiteCount; ++s)
    total += fired_[s].load(std::memory_order_relaxed);
  return total;
}

}  // namespace isr::core
