#include "core/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <system_error>

#include "core/env.hpp"

namespace isr::core {

int default_thread_count() {
  const long env = env_long("ISR_THREADS", 0);
  if (env > 0) return static_cast<int>(std::min(env, 1024L));
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

// One in-flight parallel_for. Lives on the caller's stack; the pool mutex
// guards every field. `completed` counts items (not chunks) and also
// absorbs items skipped after an exception, so it always reaches `n`.
struct ThreadPool::Loop {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t next = 0;       // first unclaimed index
  std::size_t completed = 0;  // finished + skipped items
  std::exception_ptr error;
  std::condition_variable done_cv;  // caller waits for completed == n
};

ThreadPool::ThreadPool(int threads) {
  int target = threads > 0 ? threads : default_thread_count();
  workers_.reserve(static_cast<std::size_t>(target > 0 ? target - 1 : 0));
  for (int i = 1; i < target; ++i) {
    try {
      workers_.emplace_back([this] { worker_main(); });
    } catch (const std::system_error&) {
      break;  // thread creation refused: run with the lanes we got
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::unlist(Loop& loop) {
  const auto it = std::find(active_.begin(), active_.end(), &loop);
  if (it != active_.end()) active_.erase(it);
}

bool ThreadPool::run_one_chunk(Loop& loop, std::unique_lock<std::mutex>& lock) {
  if (loop.next >= loop.n) return false;
  const std::size_t begin = loop.next;
  const std::size_t end = std::min(loop.n, begin + loop.grain);
  loop.next = end;
  if (loop.next >= loop.n) unlist(loop);

  lock.unlock();
  std::exception_ptr error;
  for (std::size_t i = begin; i < end; ++i) {
    try {
      (*loop.fn)(i);
    } catch (...) {
      error = std::current_exception();
      break;
    }
  }
  lock.lock();

  if (error && !loop.error) {
    // First failure: record it and skip everything not yet claimed.
    loop.error = error;
    loop.completed += loop.n - loop.next;
    loop.next = loop.n;
    unlist(loop);
  }
  loop.completed += end - begin;
  if (loop.completed >= loop.n) loop.done_cv.notify_all();
  return true;
}

void ThreadPool::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !active_.empty(); });
    if (shutdown_) return;
    Loop& loop = *active_.front();
    run_one_chunk(loop, lock);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain) {
    for (std::size_t i = 0; i < n; ++i) fn(i);  // serial fast path
    return;
  }

  Loop loop;
  loop.fn = &fn;
  loop.n = n;
  loop.grain = grain;

  std::unique_lock<std::mutex> lock(mutex_);
  active_.push_back(&loop);
  work_cv_.notify_all();
  while (run_one_chunk(loop, lock)) {
  }
  loop.done_cv.wait(lock, [&loop] { return loop.completed >= loop.n; });
  if (loop.error) std::rethrow_exception(loop.error);
}

}  // namespace isr::core
