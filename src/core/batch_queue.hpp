// A bounded multi-producer/multi-consumer queue whose consumers pop
// *coalesced batches*: pop_batch blocks until a full batch accumulates, the
// coalescing deadline passes with at least one item waiting, or the queue is
// closed. This is the serving-cluster admission primitive (src/cluster/
// feeds each shard's worker through one), but it is deliberately generic —
// batching-with-a-deadline is the standard latency/throughput dial for any
// streaming consumer.
//
// Backpressure contract: the queue is bounded and push never blocks —
// try_push returns false when the queue is full (or closed) and the
// *producer* decides what to do (the cluster's producer lane drains a batch
// itself, so a full queue converts the producer into a worker instead of
// deadlocking a serial pool).
//
// OrderedBatchQueue below is the streaming-admission sibling: still bounded
// and batch-popping, but items pop in a caller-supplied priority order
// instead of FIFO, push *blocks* for room (admitters are client threads with
// nothing better to do, and shedding — not helping — is the overload policy),
// and kick() flushes a partial batch immediately (how a closing stream gets
// its in-flight requests answered without waiting out the coalescing
// deadline).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace isr::core {

// Why pop_batch returned: a full batch, the coalescing deadline, a kick
// (explicit partial-batch flush), the close drain, or nothing left (closed
// and empty — the consumer's stop signal).
enum class BatchFlush { kSize, kDeadline, kKicked, kClosed, kEmpty };

template <class T>
class BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  // Enqueues one item. Returns false when the queue is full or closed; the
  // item is genuinely untouched in that case (rvalue-reference parameter:
  // nothing is moved until the push is known to succeed), so the caller can
  // retry the same object after making room.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > max_depth_) max_depth_ = items_.size();
    }
    pop_cv_.notify_one();
    return true;
  }

  // No more pushes; consumers drain what remains and then see kEmpty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
  }

  // Re-arms the queue for the next burst of pushes, discarding anything
  // still queued: leftovers can exist only when the previous burst was
  // aborted (e.g. a producer exception), and their routing context died
  // with it. The high-water mark persists across reopens (it describes the
  // queue's whole lifetime).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
    items_.clear();
  }

  // Pops up to `max_items` into `out` (cleared first). Blocks until one of:
  //   - `max_items` are waiting                      -> kSize
  //   - `deadline` passed with >= 1 item waiting     -> kDeadline
  //   - the queue is closed (drains what remains)    -> kClosed, or kEmpty
  //     when nothing remained — the consumer's signal to stop.
  // The deadline clock starts when the first item becomes available, not at
  // the call, so an idle consumer parked on an empty open queue waits
  // indefinitely without spinning.
  BatchFlush pop_batch(std::size_t max_items, std::chrono::nanoseconds deadline,
                       std::vector<T>& out) {
    out.clear();
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mutex_);
    pop_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    BatchFlush reason;
    if (items_.size() >= max_items) {
      reason = BatchFlush::kSize;
    } else if (closed_) {
      reason = items_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
    } else {
      const auto flush_at = std::chrono::steady_clock::now() + deadline;
      pop_cv_.wait_until(lock, flush_at,
                         [&] { return closed_ || items_.size() >= max_items; });
      if (items_.size() >= max_items) reason = BatchFlush::kSize;
      else if (closed_) reason = items_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
      else reason = BatchFlush::kDeadline;
    }
    const std::size_t take = items_.size() < max_items ? items_.size() : max_items;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return reason;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // Deepest the queue has ever been — the backpressure indicator the
  // cluster's metrics report.
  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;
  std::deque<T> items_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

// A bounded MPMC batch queue that pops in a caller-supplied order rather
// than FIFO: `Before(a, b)` returns true when `a` must be served before
// `b` (the cluster uses strict priority class, then earliest deadline,
// then admission sequence). Internally a binary heap, so push and pop are
// O(log n) and a batch pop is O(k log n) — insertion order never matters,
// which is what makes concurrent admitters deterministic once each item
// carries a total-order key.
//
// Contracts that differ from BatchQueue above:
//   - push() BLOCKS until the queue has room (or returns false once
//     closed). Admitters are client threads; the overload policy is the
//     cluster's admission-time shedding, not producer help-draining.
//   - kick() flushes whatever is queued to the next pop_batch as a partial
//     batch (kKicked) without waiting out the coalescing deadline — how a
//     closing stream's in-flight tail gets answered promptly. A kick on an
//     empty queue is remembered until items arrive or the queue drains.
//   - No reopen(): the streaming queue lives as long as its shard worker.
//
// Storage is a slot pool: items live in fixed slots reused across their
// lifetime (a moved-out slot keeps its strings' heap capacity for the next
// occupant), and the heap orders slot INDICES — sift operations move
// 8-byte integers, never the queued objects themselves. Both structures
// are bounded by the queue capacity and reserved up front, so a warmed-up
// queue pushes and pops with zero heap traffic — part of the serving
// path's steady-state zero-allocation contract.
template <class T, class Before>
class OrderedBatchQueue {
 public:
  explicit OrderedBatchQueue(std::size_t capacity, Before before = Before{})
      : capacity_(capacity > 0 ? capacity : 1), before_(before) {
    slots_.reserve(capacity_);
    heap_.reserve(capacity_);
    free_.reserve(capacity_);
  }

  // Blocking bounded push: waits for room, returns false only when the
  // queue is (or becomes) closed — the item is untouched in that case.
  bool push(T&& item) {
    bool wake;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      push_cv_.wait(lock, [&] { return closed_ || heap_.size() < capacity_; });
      if (closed_) return false;
      heap_push(std::move(item));
      wake = heap_.size() >= wanted_;
    }
    if (wake) pop_cv_.notify_one();
    return true;
  }

  // Non-blocking variant, same failure semantics as BatchQueue::try_push.
  bool try_push(T&& item) {
    bool wake;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || heap_.size() >= capacity_) return false;
      heap_push(std::move(item));
      wake = heap_.size() >= wanted_;
    }
    if (wake) pop_cv_.notify_one();
    return true;
  }

  // Flush whatever is queued as a partial batch now (kKicked). Sticky: a
  // kick with nothing queued arms the next pop instead of vanishing, so a
  // close() racing ahead of the last push cannot strand an item.
  void kick() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      kicked_ = true;
    }
    pop_cv_.notify_all();
  }

  // No more pushes; consumers drain what remains and then see kEmpty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
    push_cv_.notify_all();
  }

  // Pops up to `max_items` into `out` (cleared first), best-first per
  // `Before`. Blocks until a full batch, the coalescing deadline (clock
  // starts at first availability), a kick, or close — same shape as
  // BatchQueue::pop_batch with kKicked added.
  BatchFlush pop_batch(std::size_t max_items, std::chrono::nanoseconds deadline,
                       std::vector<T>& out) {
    out.clear();
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mutex_);
    // Tell producers how many items this consumer is waiting on, so a push
    // below the threshold skips its notify: without this, every push while
    // the consumer waits out the coalescing window is a futex wake (and on
    // a loaded box, a context switch) just to re-check a false predicate.
    // kick()/close() still notify unconditionally, and the timed wait's
    // deadline needs no producer signal at all.
    wanted_ = 1;
    pop_cv_.wait(lock, [&] { return closed_ || !heap_.empty(); });
    BatchFlush reason;
    if (heap_.size() >= max_items) {
      reason = BatchFlush::kSize;
    } else if (closed_) {
      reason = heap_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
    } else if (kicked_) {
      reason = BatchFlush::kKicked;
    } else {
      wanted_ = max_items;
      const auto flush_at = std::chrono::steady_clock::now() + deadline;
      pop_cv_.wait_until(lock, flush_at,
                         [&] { return closed_ || kicked_ || heap_.size() >= max_items; });
      if (heap_.size() >= max_items) reason = BatchFlush::kSize;
      else if (closed_) reason = heap_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
      else if (kicked_) reason = BatchFlush::kKicked;
      else reason = BatchFlush::kDeadline;
    }
    wanted_ = kNoConsumer;  // not waiting anymore; pushes can stay silent
    const std::size_t take = heap_.size() < max_items ? heap_.size() : max_items;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) out.push_back(heap_pop());
    // A kick's obligation is met once the queue is drained; a fresh kick
    // after new pushes re-arms it.
    if (heap_.empty()) kicked_ = false;
    if (take > 0) push_cv_.notify_all();
    return reason;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return heap_.size();
  }

  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

 private:
  // std::push_heap keeps the *greatest* element (per the comparator) at the
  // front; serving best-first therefore heapifies on the inverted order.
  // The heap holds slot indices, so every swap a sift performs moves one
  // integer; the comparator reads the slots through the indirection.
  bool heap_less(std::size_t a, std::size_t b) const {
    return before_(slots_[b], slots_[a]);
  }

  void heap_push(T&& item) {
    std::size_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      slots_[slot] = std::move(item);  // reuses the old occupant's buffers
    } else {
      slot = slots_.size();
      slots_.push_back(std::move(item));
    }
    heap_.push_back(slot);
    std::push_heap(heap_.begin(), heap_.end(),
                   [this](std::size_t a, std::size_t b) { return heap_less(a, b); });
    if (heap_.size() > max_depth_) max_depth_ = heap_.size();
  }

  T heap_pop() {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [this](std::size_t a, std::size_t b) { return heap_less(a, b); });
    const std::size_t slot = heap_.back();
    heap_.pop_back();
    free_.push_back(slot);
    return std::move(slots_[slot]);
  }

  const std::size_t capacity_;
  Before before_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;
  std::condition_variable push_cv_;
  // Slot pool (fixed homes for queued items; a freed slot keeps its
  // buffers), the index heap ordered by heap_less, and the free list.
  std::vector<T> slots_;
  std::vector<std::size_t> heap_;
  std::vector<std::size_t> free_;
  // Pop-side wake threshold (see pop_batch): the queue depth at which a
  // push must notify. kNoConsumer while no pop_batch is waiting.
  static constexpr std::size_t kNoConsumer = static_cast<std::size_t>(-1);
  std::size_t wanted_ = kNoConsumer;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
  bool kicked_ = false;
};

}  // namespace isr::core
