// A bounded multi-producer/multi-consumer queue whose consumers pop
// *coalesced batches*: pop_batch blocks until a full batch accumulates, the
// coalescing deadline passes with at least one item waiting, or the queue is
// closed. This is the serving-cluster admission primitive (src/cluster/
// feeds each shard's worker through one), but it is deliberately generic —
// batching-with-a-deadline is the standard latency/throughput dial for any
// streaming consumer.
//
// Backpressure contract: the queue is bounded and push never blocks —
// try_push returns false when the queue is full (or closed) and the
// *producer* decides what to do (the cluster's producer lane drains a batch
// itself, so a full queue converts the producer into a worker instead of
// deadlocking a serial pool).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

namespace isr::core {

// Why pop_batch returned: a full batch, the coalescing deadline, the close
// drain, or nothing left (closed and empty — the consumer's stop signal).
enum class BatchFlush { kSize, kDeadline, kClosed, kEmpty };

template <class T>
class BatchQueue {
 public:
  explicit BatchQueue(std::size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

  // Enqueues one item. Returns false when the queue is full or closed; the
  // item is genuinely untouched in that case (rvalue-reference parameter:
  // nothing is moved until the push is known to succeed), so the caller can
  // retry the same object after making room.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > max_depth_) max_depth_ = items_.size();
    }
    pop_cv_.notify_one();
    return true;
  }

  // No more pushes; consumers drain what remains and then see kEmpty.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    pop_cv_.notify_all();
  }

  // Re-arms the queue for the next burst of pushes, discarding anything
  // still queued: leftovers can exist only when the previous burst was
  // aborted (e.g. a producer exception), and their routing context died
  // with it. The high-water mark persists across reopens (it describes the
  // queue's whole lifetime).
  void reopen() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = false;
    items_.clear();
  }

  // Pops up to `max_items` into `out` (cleared first). Blocks until one of:
  //   - `max_items` are waiting                      -> kSize
  //   - `deadline` passed with >= 1 item waiting     -> kDeadline
  //   - the queue is closed (drains what remains)    -> kClosed, or kEmpty
  //     when nothing remained — the consumer's signal to stop.
  // The deadline clock starts when the first item becomes available, not at
  // the call, so an idle consumer parked on an empty open queue waits
  // indefinitely without spinning.
  BatchFlush pop_batch(std::size_t max_items, std::chrono::nanoseconds deadline,
                       std::vector<T>& out) {
    out.clear();
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mutex_);
    pop_cv_.wait(lock, [&] { return closed_ || !items_.empty(); });
    BatchFlush reason;
    if (items_.size() >= max_items) {
      reason = BatchFlush::kSize;
    } else if (closed_) {
      reason = items_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
    } else {
      const auto flush_at = std::chrono::steady_clock::now() + deadline;
      pop_cv_.wait_until(lock, flush_at,
                         [&] { return closed_ || items_.size() >= max_items; });
      if (items_.size() >= max_items) reason = BatchFlush::kSize;
      else if (closed_) reason = items_.empty() ? BatchFlush::kEmpty : BatchFlush::kClosed;
      else reason = BatchFlush::kDeadline;
    }
    const std::size_t take = items_.size() < max_items ? items_.size() : max_items;
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    return reason;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  // Deepest the queue has ever been — the backpressure indicator the
  // cluster's metrics report.
  std::size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_depth_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable pop_cv_;
  std::deque<T> items_;
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace isr::core
