// A reusable chunked-queue thread pool for coarse-grained fan-out.
//
// The DPP layer parallelizes *inside* kernels with OpenMP on real devices,
// but simulated devices deliberately execute kernels on a single thread
// (their time comes from a cost model, and bit-exact results matter more
// than wall clock). That leaves whole-configuration workloads — the §5.4
// study corpus above all — with no way to use the machine. This pool
// parallelizes *across* independent work items instead: loops are split
// into chunks pulled from a shared queue, the calling thread participates,
// and parallel_for is reentrant so a work item may fan out sub-items on the
// same pool (idle workers drain the inner loop).
//
// Thread count: explicit > ISR_THREADS env var > hardware concurrency.
// A 1-thread pool spawns no workers and runs every loop inline, so code
// written against the pool degrades gracefully to serial on machines (or
// build environments) without usable threads.
//
// Determinism contract: the pool guarantees nothing about execution order —
// callers must make each item a pure function of its index (see
// isr::hash_seed in math/rng.hpp) and reduce results in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace isr::core {

// Threads a default-constructed pool uses: the ISR_THREADS environment
// variable when set and valid, else std::thread::hardware_concurrency();
// always >= 1.
int default_thread_count();

class ThreadPool {
 public:
  // threads <= 0 selects default_thread_count(). A pool of n spawns n-1
  // worker threads; the thread calling parallel_for is the n-th lane.
  // If the OS refuses thread creation the pool degrades to fewer lanes
  // (ultimately 1) instead of throwing.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Execution width: worker threads + the calling thread.
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(i) for every i in [0, n), handing out chunks of `grain`
  // consecutive indices. Blocks until all items finished; the caller
  // participates. May be called from inside a worker (nested loops are
  // drained by the nesting caller plus any idle workers). The first
  // exception thrown by fn is rethrown here once in-flight chunks drain;
  // chunks not yet claimed at that point are skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  struct Loop;

  void worker_main();
  // Claims and runs one chunk of `loop`. Pre: `lock` held; re-held on
  // return. Returns false when no unclaimed chunk remained.
  bool run_one_chunk(Loop& loop, std::unique_lock<std::mutex>& lock);
  void unlist(Loop& loop);  // removes loop from active_ (mutex_ held)

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: new loop or shutdown
  std::vector<Loop*> active_;        // loops that still have unclaimed chunks
  bool shutdown_ = false;
};

}  // namespace isr::core
