// Header-only conveniences over ThreadPool::parallel_for so call sites can
// pass arbitrary callables (lambdas with captures) without spelling
// std::function, and can pick a sensible grain automatically.
#pragma once

#include <cstddef>

#include "core/thread_pool.hpp"

namespace isr::core {

// parallel_for(pool, n, f): f(i) for i in [0, n), one index per chunk —
// right for coarse items whose costs vary a lot (study jobs, rank renders).
template <class F>
void parallel_for(ThreadPool& pool, std::size_t n, F&& f, std::size_t grain = 1) {
  const std::function<void(std::size_t)> fn(std::forward<F>(f));
  pool.parallel_for(n, fn, grain);
}

// Auto-chunked variant for fine-grained, roughly uniform items: splits
// [0, n) into ~8 chunks per lane to amortize queue traffic while keeping
// enough slack for load balancing.
template <class F>
void parallel_for_chunked(ThreadPool& pool, std::size_t n, F&& f) {
  const std::size_t lanes = static_cast<std::size_t>(pool.size());
  const std::size_t grain = n / (lanes * 8) > 0 ? n / (lanes * 8) : 1;
  parallel_for(pool, n, std::forward<F>(f), grain);
}

// Pool-optional variant for call sites whose public API takes a nullable
// pool (e.g. comm::composite): a null pool runs the loop inline, so serial
// callers pay nothing and need no ThreadPool at hand.
template <class F>
void maybe_parallel_for(ThreadPool* pool, std::size_t n, F&& f, std::size_t grain = 1) {
  if (pool) {
    parallel_for(*pool, n, std::forward<F>(f), grain);
  } else {
    for (std::size_t i = 0; i < n; ++i) f(i);
  }
}

}  // namespace isr::core
