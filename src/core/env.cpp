#include "core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace isr::core {

namespace {

// True when `end` (the strtod/strtol end pointer) consumed the whole value:
// at least one character was parsed and only whitespace follows.
bool fully_parsed(const char* begin, const char* end) {
  if (end == begin) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

// Warns once per variable name: call sites re-read their env var freely
// (bench::scaled() hits ISR_BENCH_SCALE for every size parameter), and one
// typo must not spam stderr dozens of times per run.
void warn_ignored(const char* name, const char* value, const char* why) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr, "insitu-perf: ignoring %s=\"%s\" (%s)\n", name, value, why);
}

}  // namespace

double env_double(const char* name, double fallback, bool require_positive) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (!fully_parsed(value, end)) {
    warn_ignored(name, value, "not a number");
    return fallback;
  }
  if (!std::isfinite(v)) {  // strtod returns HUGE_VAL on overflow, accepts "inf"
    warn_ignored(name, value, "not finite");
    return fallback;
  }
  if (require_positive && !(v > 0.0)) {
    warn_ignored(name, value, "must be > 0");
    return fallback;
  }
  return v;
}

long env_long(const char* name, long fallback, bool require_positive) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(value, &end, 10);
  if (!fully_parsed(value, end)) {
    warn_ignored(name, value, "not an integer");
    return fallback;
  }
  if (errno == ERANGE) {  // strtol clamps to LONG_MIN/MAX on overflow
    warn_ignored(name, value, "out of range");
    return fallback;
  }
  if (require_positive && v <= 0) {
    warn_ignored(name, value, "must be > 0");
    return fallback;
  }
  return v;
}

}  // namespace isr::core
