#include "core/env.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

namespace isr::core {

namespace {

// True when `end` (the strtod/strtol end pointer) consumed the whole value:
// at least one character was parsed and only whitespace follows.
bool fully_parsed(const char* begin, const char* end) {
  if (end == begin) return false;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  return true;
}

// Warns once per variable name: call sites re-read their env var freely
// (bench::scaled() hits ISR_BENCH_SCALE for every size parameter), and one
// typo must not spam stderr dozens of times per run.
void warn_ignored(const char* name, const char* value, ParseStatus status) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(name).second) return;
  std::fprintf(stderr, "insitu-perf: ignoring %s=\"%s\" (%s)\n", name, value,
               parse_status_message(status));
}

}  // namespace

const char* parse_status_message(ParseStatus status) {
  switch (status) {
    case ParseStatus::kOk: return "ok";
    case ParseStatus::kNotANumber: return "not a number";
    case ParseStatus::kNotFinite: return "not finite";
    case ParseStatus::kOutOfRange: return "out of range";
    case ParseStatus::kNotPositive: return "must be > 0";
  }
  return "?";
}

ParseStatus parse_double(const char* text, double& out, bool require_positive) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (!fully_parsed(text, end)) return ParseStatus::kNotANumber;
  if (!std::isfinite(v)) return ParseStatus::kNotFinite;  // HUGE_VAL on overflow, "inf"
  if (require_positive && !(v > 0.0)) return ParseStatus::kNotPositive;
  out = v;
  return ParseStatus::kOk;
}

ParseStatus parse_long(const char* text, long& out, bool require_positive) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(text, &end, 10);
  if (!fully_parsed(text, end)) return ParseStatus::kNotANumber;
  if (errno == ERANGE) return ParseStatus::kOutOfRange;  // clamped to LONG_MIN/MAX
  if (require_positive && v <= 0) return ParseStatus::kNotPositive;
  out = v;
  return ParseStatus::kOk;
}

double env_double(const char* name, double fallback, bool require_positive) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  double v = fallback;
  const ParseStatus status = parse_double(value, v, require_positive);
  if (status != ParseStatus::kOk) {
    warn_ignored(name, value, status);
    return fallback;
  }
  return v;
}

long env_long(const char* name, long fallback, bool require_positive) {
  const char* value = std::getenv(name);
  if (!value) return fallback;
  long v = fallback;
  const ParseStatus status = parse_long(value, v, require_positive);
  if (status != ParseStatus::kOk) {
    warn_ignored(name, value, status);
    return fallback;
  }
  return v;
}

}  // namespace isr::core
