// Bump allocator over geometrically growing chunks — the per-shard /
// per-thread scratch backing for the batched evaluation path. reset()
// rewinds to empty WITHOUT releasing memory, so a steady-state workload
// (same-shaped batch after batch) allocates from the heap only during
// warmup and never again; alloc_array<T>() is then a pointer bump.
//
// Deliberately POD-oriented: allocations are uninitialized storage and no
// destructors ever run, which is exactly right for the index/feature/term
// columns the evaluator needs and statically enforced for everything else
// (alloc_array requires a trivially destructible T).
//
// Not thread-safe: one Arena per worker thread, by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace isr::core {

class Arena {
 public:
  // First chunk size; later chunks double (warmup converges in O(log
  // peak-bytes) heap allocations regardless of the initial guess).
  explicit Arena(std::size_t first_chunk_bytes = 16 * 1024)
      : next_chunk_bytes_(first_chunk_bytes > 0 ? first_chunk_bytes : 1024) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage, aligned to `align` (a power of two no larger
  // than alignof(std::max_align_t) — new[] chunk bases guarantee that
  // much). Never returns nullptr; a zero-byte request still returns a
  // valid, properly aligned pointer.
  void* allocate(std::size_t bytes, std::size_t align) {
    while (chunk_ < chunks_.size()) {
      Chunk& c = chunks_[chunk_];
      const std::size_t aligned = (offset_ + (align - 1)) & ~(align - 1);
      if (aligned + bytes <= c.size) {
        offset_ = aligned + bytes;
        used_ += bytes;
        return c.data.get() + aligned;
      }
      ++chunk_;  // spill to the next (larger) chunk; the gap stays unused
      offset_ = 0;
    }
    add_chunk(bytes + align);
    return allocate(bytes, align);
  }

  template <class T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    return static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
  }

  // Rewind to empty, keeping every chunk: the no-growth-after-warmup
  // contract. Nothing is destroyed (nothing needs to be).
  void reset() {
    chunk_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  // Bytes reserved across all chunks — constant once warmed up, which is
  // what the arena-reuse test asserts.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }
  // Bytes handed out since the last reset (excludes alignment gaps).
  std::size_t used() const { return used_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size = 0;
  };

  void add_chunk(std::size_t at_least) {
    std::size_t size = next_chunk_bytes_;
    while (size < at_least) size *= 2;
    next_chunk_bytes_ = size * 2;
    Chunk c;
    c.data = std::make_unique<unsigned char[]>(size);
    c.size = size;
    chunks_.push_back(std::move(c));
    chunk_ = chunks_.size() - 1;
    offset_ = 0;
  }

  std::vector<Chunk> chunks_;
  std::size_t chunk_ = 0;   // index of the chunk currently bumping
  std::size_t offset_ = 0;  // bump offset within that chunk
  std::size_t used_ = 0;
  std::size_t next_chunk_bytes_;
};

}  // namespace isr::core
