// Deterministic fault injection for the serving stack. A fault schedule
// must be as reproducible as the corpora and responses it disturbs, or a
// chaos test that fails once can never be debugged: every injection
// decision here is a pure function of (seed, site, identity keys) through
// the same hash_seed machinery the study harness derives its jitter from —
// NOT a shared RNG stream, whose draws would depend on which thread asked
// first. Keying decisions on a request's (stream id, per-stream sequence,
// attempt) makes the schedule identical at any shard count, thread count,
// or interleaving: the same requests fail in the same way on every run
// with the same seed, and a disabled injector (seed 0) is a handful of
// dead branches.
//
// The sites are the cluster's fault surface (src/cluster/ consumes them):
//   eval-throw   — a shard worker's per-request evaluation throws; the
//                  supervised worker converts it into a transient failure
//                  that retries/fails over instead of killing the thread.
//   queue-stall  — a shard worker sleeps mid-drain; the heartbeat watchdog
//                  sees the stale heartbeat and marks the shard degraded.
//   fit-fail     — a calibration fit fails at replication time; the corpus
//                  is served degraded responses instead of crashing boot.
//   worker-crash — a shard worker thread dies mid-batch; the watchdog
//                  joins the corpse, restarts the worker, and re-drives
//                  the batch it held.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace isr::core {

enum class FaultSite : int {
  kShardEvalThrow = 0,
  kQueueStall,
  kCorpusFitFail,
  kWorkerCrash,
  kCount,
};
constexpr int kFaultSiteCount = static_cast<int>(FaultSite::kCount);

// The CLI/env token for a site ("eval-throw", "queue-stall", "fit-fail",
// "worker-crash") and its inverse. fault_site_from_token returns false on
// anything else — a typo'd site name must be loud, not silently inert.
const char* fault_site_name(FaultSite site);
bool fault_site_from_token(const std::string& token, FaultSite& site);

struct FaultConfig {
  // Injection master switch: 0 (the default) disables every site, which is
  // what preserves the cluster's byte-identity contract — with seed 0 the
  // fault branches are never taken and responses match a build without
  // this subsystem at all.
  std::uint64_t seed = 0;
  // Per-opportunity firing probability in [0, 1]. 1.0 fires at every
  // enabled site (the "always fails" chaos mode); the decision at each
  // opportunity is still independent and deterministic.
  double rate = 0.1;
  // Bitmask of enabled sites, bit i = FaultSite(i). 0 disables injection
  // even with a seed (parse_sites("all", ...) sets every bit).
  std::uint32_t sites = 0;
  // How long a fired queue-stall site sleeps, in milliseconds — long
  // enough for the watchdog to notice, short enough that tests stay fast.
  int stall_ms = 20;

  bool enabled(FaultSite site) const {
    return (sites >> static_cast<int>(site)) & 1u;
  }
  // True when any site can ever fire.
  bool armed() const { return seed != 0 && rate > 0.0 && sites != 0; }

  // Parses a comma-separated site list ("eval-throw,worker-crash", or
  // "all") into a bitmask. Returns false (with a one-line reason) on an
  // unknown token or an empty list.
  static bool parse_sites(const std::string& csv, std::uint32_t& mask,
                          std::string& error);

  // Reads ISR_FAULT_SEED / ISR_FAULT_RATE / ISR_FAULT_SITES /
  // ISR_FAULT_STALL_MS. With a seed set but no ISR_FAULT_SITES, every site
  // is enabled; a malformed ISR_FAULT_SITES warns on stderr and disables
  // injection (fail safe — a typo must not half-enable chaos).
  static FaultConfig from_env();
};

// The decision engine. Thread-safe: should_fire is a pure hash compare
// plus a relaxed counter bump, so any number of shard workers may consult
// one injector concurrently without changing anyone's schedule.
class FaultInjector {
 public:
  FaultInjector() = default;  // disarmed: should_fire is always false
  explicit FaultInjector(FaultConfig config) : config_(config) {}

  bool armed() const { return config_.armed(); }
  const FaultConfig& config() const { return config_; }

  // Whether the fault at `site` fires for the opportunity identified by
  // (k0, k1, k2): a pure function of (seed, site, keys), so callers choose
  // keys that name the opportunity deterministically (the cluster uses
  // stream id, per-stream sequence, and attempt number — never "how many
  // times was this called", which interleaving would scramble). Counts
  // the firing when it does.
  bool should_fire(FaultSite site, std::uint64_t k0, std::uint64_t k1 = 0,
                   std::uint64_t k2 = 0);

  // Firings per site / in total since construction (relaxed counters —
  // observability, not synchronization).
  long fired(FaultSite site) const {
    return fired_[static_cast<int>(site)].load(std::memory_order_relaxed);
  }
  long total_fired() const;

 private:
  FaultConfig config_{};
  std::atomic<long> fired_[kFaultSiteCount] = {};
};

}  // namespace isr::core
