// Validated number parsing: environment variables and CLI arguments.
//
// std::atof / std::atoi silently return 0 on garbage, which call sites then
// "fix up" to a default — so a typo like ISR_BENCH_SCALE=O.5 quietly runs at
// the default scale with no hint anything was ignored. These helpers parse
// with strtod/strtol, require the whole value to be consumed (trailing
// whitespace allowed), and report rejection: the env_* helpers warn on
// stderr and fall back, the parse_* primitives return a status so CLI call
// sites can print usage text and exit nonzero instead.
#pragma once

namespace isr::core {

// Why a parse was rejected. parse_status_message gives the human-readable
// form used in env warnings and CLI errors.
enum class ParseStatus {
  kOk,
  kNotANumber,   // empty, non-numeric, or trailing junk
  kNotFinite,    // inf/nan or double overflow
  kOutOfRange,   // long overflow
  kNotPositive,  // require_positive and value <= 0
};
const char* parse_status_message(ParseStatus status);

// Parses the whole of `text` as a double / base-10 long (trailing
// whitespace allowed). On kOk fills `out`; otherwise leaves it untouched.
// Never warns — callers own the error report.
ParseStatus parse_double(const char* text, double& out, bool require_positive = false);
ParseStatus parse_long(const char* text, long& out, bool require_positive = false);

// Parses `name` from the environment as a double. Returns `fallback` when
// the variable is unset; warns on stderr (once per name) and returns
// `fallback` when it is set but rejected by parse_double.
double env_double(const char* name, double fallback, bool require_positive = true);

// Same contract for integers (base 10).
long env_long(const char* name, long fallback, bool require_positive = true);

}  // namespace isr::core
