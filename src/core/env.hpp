// Validated environment-variable parsing.
//
// std::atof / std::atoi silently return 0 on garbage, which call sites then
// "fix up" to a default — so a typo like ISR_BENCH_SCALE=O.5 quietly runs at
// the default scale with no hint anything was ignored. These helpers parse
// with strtod/strtol, require the whole value to be consumed (trailing
// whitespace allowed), and warn on stderr whenever a set variable is
// rejected, so misconfiguration is loud instead of silent.
#pragma once

namespace isr::core {

// Parses `name` as a double. Returns `fallback` when the variable is unset;
// warns and returns `fallback` when it is set but not a number, has trailing
// junk, or (with require_positive) is not > 0.
double env_double(const char* name, double fallback, bool require_positive = true);

// Same contract for integers (base 10).
long env_long(const char* name, long fallback, bool require_positive = true);

}  // namespace isr::core
