#include "baseline/havs.hpp"

#include <algorithm>
#include <cmath>

#include "baseline/tet_common.hpp"
#include "dpp/primitives.hpp"
#include "dpp/timer.hpp"

namespace isr::baseline {

render::RenderStats HavsRenderer::render(const Camera& camera, const TransferFunction& tf,
                                         render::Image& out, int reference_samples) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear();

  render::RenderStats stats;
  const std::size_t n_tets = mesh_.cell_count();
  stats.objects = static_cast<double>(n_tets);
  if (n_tets == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const Mat4 vp = camera.view_projection();
  float depth_lo, depth_hi;
  depth_range(mesh_, camera, vp, depth_lo, depth_hi);
  const int S = reference_samples;
  const float sample_scale = static_cast<float>(S) / (depth_hi - depth_lo);

  // --- Visibility sort (back to front) ------------------------------------
  std::vector<float> depth_keys(n_tets);
  std::vector<int> order(n_tets);
  {
    dpp::ScopedPhase phase(dev_, "sort");
    dpp::for_each(
        dev_, n_tets,
        [&](std::size_t t) {
          Vec3f c{0, 0, 0};
          for (int i = 0; i < 4; ++i) c += mesh_.vertex(t, i);
          // Negative centroid view-depth: ascending radix order = farthest
          // first, the back-to-front order the under-blend needs.
          depth_keys[t] = -length(c * 0.25f - camera.position);
          order[t] = static_cast<int>(t);
        },
        dpp::KernelCost{.flops_per_elem = 20, .bytes_per_elem = 56});
    dpp::sort_pairs_by_float(dev_, depth_keys, order);
  }

  // --- Rasterize back to front ---------------------------------------------
  // Sequential over cells (the GPU pipeline's ROP stage enforces the same
  // order); timing is recorded as one logical kernel with measured work.
  std::vector<Vec4f>& fb = out.pixels();
  long long pixels_touched = 0;
  dpp::WallTimer raster_timer;
  {
    dpp::ScopedPhase phase(dev_, "raster");
    for (std::size_t i = 0; i < n_tets; ++i) {
      const std::size_t t = static_cast<std::size_t>(order[i]);
      const ScreenSpaceTet st = make_screen_tet(mesh_, t, camera, vp, depth_lo, sample_scale);
      if (!st.valid) continue;
      const int x0 = std::max(0, static_cast<int>(std::floor(st.min_x)));
      const int x1 = std::min(camera.width - 1, static_cast<int>(std::ceil(st.max_x)));
      const int y0 = std::max(0, static_cast<int>(std::floor(st.min_y)));
      const int y1 = std::min(camera.height - 1, static_cast<int>(std::ceil(st.max_y)));
      for (int y = y0; y <= y1; ++y)
        for (int x = x0; x <= x1; ++x) {
          ++pixels_touched;
          float s0, s1, v0, v1;
          if (!st.column_interval(static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f,
                                  s0, s1, v0, v1))
            continue;
          const float thickness = s1 - s0;
          if (thickness <= 0.0f) continue;
          const Vec4f color = tf.sample(0.5f * (v0 + v1));
          const float alpha = TransferFunction::correct_alpha(
              color.w, thickness * 400.0f / static_cast<float>(S));
          const std::size_t p =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(camera.width) + x;
          // Back-to-front "under": new = src*a + dst*(1-a), premultiplied.
          Vec4f& dst = fb[p];
          dst = {color.x * alpha + dst.x * (1.0f - alpha),
                 color.y * alpha + dst.y * (1.0f - alpha),
                 color.z * alpha + dst.z * (1.0f - alpha),
                 alpha + dst.w * (1.0f - alpha)};
          out.depths()[p] = std::min(out.depths()[p], depth_lo + s0 / sample_scale);
        }
    }
    const double per_tet =
        static_cast<double>(pixels_touched) / static_cast<double>(std::max<std::size_t>(n_tets, 1));
    // Per-tet setup dominates small footprints: the PT pipeline moves the
    // full vertex data plus k-buffer fragment state for every cell, which
    // is why HAVS times track data size so closely (Figure 6 discussion).
    dev_.record_kernel(n_tets,
                       dpp::KernelCost{.flops_per_elem = 45.0 * per_tet + 500.0,
                                       .bytes_per_elem = 30.0 * per_tet + 1000.0,
                                       .divergence = 1.1},
                       raster_timer.seconds());
  }

  stats.active_pixels = static_cast<double>(out.active_pixel_count());
  stats.pixels_per_tri = static_cast<double>(pixels_touched) / static_cast<double>(n_tets);
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::baseline
