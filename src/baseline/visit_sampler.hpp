// VisIt-style sampling volume renderer (the Table 9 comparator): transforms
// cells into image space, then extracts samples along pixel columns by
// "rasterizing" each cell — the per-pixel depth interval is computed once
// per column and filled with samples, amortizing the per-cell setup over
// all of the cell's samples (the behavior Table 9's discussion attributes
// to VisIt: good with large cells, per-cell overhead hurts with small
// ones). Uses early ray termination during compositing like VisIt.
//
// Phase names match Table 9's columns: "screen_space" (SS), "sampling" (S),
// "compositing" (C).
#pragma once

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/unstructured.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::baseline {

class VisItSampler {
 public:
  VisItSampler(const mesh::TetMesh& mesh, dpp::Device& dev) : mesh_(mesh), dev_(dev) {}

  render::RenderStats render(const Camera& camera, const TransferFunction& tf,
                             render::Image& out, int samples_in_depth = 400);

 private:
  const mesh::TetMesh& mesh_;
  dpp::Device& dev_;
};

}  // namespace isr::baseline
