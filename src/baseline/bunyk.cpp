#include "baseline/bunyk.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "dpp/primitives.hpp"
#include "dpp/timer.hpp"

namespace isr::baseline {

namespace {

// Corners of the face opposite corner f, wound consistently.
constexpr int kFaceCorners[4][3] = {{1, 2, 3}, {0, 3, 2}, {0, 1, 3}, {0, 2, 1}};

std::uint64_t face_key(int a, int b, int c) {
  int v[3] = {a, b, c};
  std::sort(v, v + 3);
  return (static_cast<std::uint64_t>(v[0]) << 42) ^ (static_cast<std::uint64_t>(v[1]) << 21) ^
         static_cast<std::uint64_t>(v[2]);
}

}  // namespace

BunykRayCaster::BunykRayCaster(const mesh::TetMesh& mesh, dpp::Device& dev)
    : mesh_(mesh), dev_(dev) {
  dpp::WallTimer timer;
  const std::size_t n = mesh_.cell_count();
  neighbor_.assign(n * 4, -1);

  // Serial face-connectivity trace (deliberately mirrors the VTK
  // implementation's serial preprocessing).
  std::unordered_map<std::uint64_t, std::pair<int, int>> open_faces;  // key -> (tet, face)
  open_faces.reserve(n * 2);
  for (std::size_t t = 0; t < n; ++t) {
    for (int f = 0; f < 4; ++f) {
      const int a = mesh_.conn[t * 4 + static_cast<std::size_t>(kFaceCorners[f][0])];
      const int b = mesh_.conn[t * 4 + static_cast<std::size_t>(kFaceCorners[f][1])];
      const int c = mesh_.conn[t * 4 + static_cast<std::size_t>(kFaceCorners[f][2])];
      const std::uint64_t key = face_key(a, b, c);
      const auto it = open_faces.find(key);
      if (it == open_faces.end()) {
        open_faces.emplace(key, std::make_pair(static_cast<int>(t), f));
      } else {
        const auto [ot, of] = it->second;
        neighbor_[t * 4 + static_cast<std::size_t>(f)] = ot;
        neighbor_[static_cast<std::size_t>(ot) * 4 + static_cast<std::size_t>(of)] =
            static_cast<int>(t);
        open_faces.erase(it);
      }
    }
  }

  // Remaining open faces are the boundary; build the entry-search mesh.
  for (const auto& [key, tf] : open_faces) {
    const auto [t, f] = tf;
    const int base = static_cast<int>(boundary_.points.size());
    for (int i = 0; i < 3; ++i) {
      const int pid =
          mesh_.conn[static_cast<std::size_t>(t) * 4 + static_cast<std::size_t>(kFaceCorners[f][i])];
      boundary_.points.push_back(mesh_.points[static_cast<std::size_t>(pid)]);
      boundary_.scalars.push_back(0.0f);
    }
    boundary_.tris.insert(boundary_.tris.end(), {base, base + 1, base + 2});
    boundary_tet_.push_back(t);
  }
  boundary_bvh_ = render::build_lbvh(dev_, boundary_);
  dev_.reset_timings();
  preprocess_seconds_ = timer.seconds();
}

render::RenderStats BunykRayCaster::render(const Camera& camera, const TransferFunction& tf,
                                           render::Image& out, int reference_samples) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear();

  render::RenderStats stats;
  stats.objects = static_cast<double>(mesh_.cell_count());
  if (mesh_.cell_count() == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const float diag = length(mesh_.bounds().extent());
  const float unit = diag / static_cast<float>(reference_samples);
  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());
  std::atomic<long long> total_cells{0};
  std::atomic<long long> active{0};

  {
    dpp::ScopedPhase phase(dev_, "trace");
    dpp::for_each_dyn(
        dev_, n_pixels,
        [&](std::size_t p) {
          const int px = static_cast<int>(p) % camera.width;
          const int py = static_cast<int>(p) / camera.width;
          const Vec3f dir =
              camera.ray_direction(static_cast<float>(px), static_cast<float>(py));
          long long steps = 0;
          const render::HitResult entry = render::intersect_closest(
              boundary_bvh_, boundary_, camera.position, dir, camera.znear, camera.zfar,
              steps);
          if (!entry.hit()) return;

          int tet = boundary_tet_[static_cast<std::size_t>(entry.prim)];
          float t_in = entry.t;
          float v_in;
          Vec4f acc{0, 0, 0, 0};
          long long cells = 0;
          const long long max_cells = 8 * reference_samples;

          // Entry scalar via the entry face's opposite-corner barycentric.
          auto scalar_at = [&](int cell, Vec3f pos) {
            // Barycentric by solving edge matrix each time; cells are small
            // so a local solve is acceptable for a comparator.
            const Vec3f a = mesh_.vertex(static_cast<std::size_t>(cell), 0);
            const Vec3f e1 = mesh_.vertex(static_cast<std::size_t>(cell), 1) - a;
            const Vec3f e2 = mesh_.vertex(static_cast<std::size_t>(cell), 2) - a;
            const Vec3f e3 = mesh_.vertex(static_cast<std::size_t>(cell), 3) - a;
            const Vec3f d = pos - a;
            const float det = dot(e1, cross(e2, e3));
            if (std::abs(det) < 1e-20f) return mesh_.scalar(static_cast<std::size_t>(cell), 0);
            const float b1 = dot(d, cross(e2, e3)) / det;
            const float b2 = dot(e1, cross(d, e3)) / det;
            const float b3 = dot(e1, cross(e2, d)) / det;
            const float b0 = 1.0f - b1 - b2 - b3;
            return b0 * mesh_.scalar(static_cast<std::size_t>(cell), 0) +
                   b1 * mesh_.scalar(static_cast<std::size_t>(cell), 1) +
                   b2 * mesh_.scalar(static_cast<std::size_t>(cell), 2) +
                   b3 * mesh_.scalar(static_cast<std::size_t>(cell), 3);
          };
          v_in = scalar_at(tet, camera.position + dir * t_in);
          float first_t = -1.0f;

          while (tet >= 0 && cells < max_cells) {
            ++cells;
            // Exit: smallest positive intersection with the 4 face planes.
            float t_exit = camera.zfar;
            int exit_face = -1;
            for (int f = 0; f < 4; ++f) {
              const Vec3f a = mesh_.points[static_cast<std::size_t>(
                  mesh_.conn[static_cast<std::size_t>(tet) * 4 +
                             static_cast<std::size_t>(kFaceCorners[f][0])])];
              const Vec3f b = mesh_.points[static_cast<std::size_t>(
                  mesh_.conn[static_cast<std::size_t>(tet) * 4 +
                             static_cast<std::size_t>(kFaceCorners[f][1])])];
              const Vec3f c = mesh_.points[static_cast<std::size_t>(
                  mesh_.conn[static_cast<std::size_t>(tet) * 4 +
                             static_cast<std::size_t>(kFaceCorners[f][2])])];
              const Vec3f n = cross(b - a, c - a);
              const float denom = dot(n, dir);
              if (std::abs(denom) < 1e-12f) continue;
              const float t = dot(n, a - camera.position) / denom;
              if (t > t_in + 1e-5f && t < t_exit) {
                t_exit = t;
                exit_face = f;
              }
            }
            if (exit_face < 0) break;

            const float v_out = scalar_at(tet, camera.position + dir * t_exit);
            const float seg = t_exit - t_in;
            const Vec4f color = tf.sample(0.5f * (v_in + v_out));
            const float alpha =
                TransferFunction::correct_alpha(color.w, seg / unit) * (1.0f - acc.w);
            acc.x += color.x * alpha;
            acc.y += color.y * alpha;
            acc.z += color.z * alpha;
            acc.w += alpha;
            if (first_t < 0.0f && alpha > 0.001f) first_t = t_in;
            if (acc.w >= 0.98f) break;

            tet = neighbor_[static_cast<std::size_t>(tet) * 4 +
                            static_cast<std::size_t>(exit_face)];
            t_in = t_exit;
            v_in = v_out;
          }

          total_cells.fetch_add(cells, std::memory_order_relaxed);
          if (acc.w > 0.0f) {
            active.fetch_add(1, std::memory_order_relaxed);
            out.pixels()[p] = acc;
            out.depths()[p] = first_t >= 0.0f ? first_t : entry.t;
          }
        },
        [&] {
          const double per_ray = static_cast<double>(total_cells.load()) /
                                 static_cast<double>(std::max<std::size_t>(n_pixels, 1));
          // Cell march: 4 plane tests + 2 barycentric solves per cell.
          return dpp::KernelCost{.flops_per_elem = 260.0 * per_ray + 60.0,
                                 .bytes_per_elem = 200.0 * per_ray + 32.0,
                                 .divergence = 1.5};
        });
  }

  stats.active_pixels = static_cast<double>(active.load());
  stats.cells_spanned = stats.active_pixels > 0
                            ? static_cast<double>(total_cells.load()) / stats.active_pixels
                            : 0.0;
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::baseline
