// Architecture-tuned ray tracer: the stand-in for Intel Embree (CPU) and
// NVIDIA OptiX Prime (GPU) in the Chapter II comparisons (Tables 3-5).
//
// Differences from the DPP ray tracer, mirroring what the vendor tracers do
// better than a portable framework:
//  * a higher-quality BVH (recursive median/SAH-lite split, 4-triangle
//    leaves) instead of the O(n) LBVH — fewer traversal steps per ray;
//  * one fused kernel per frame (generate + traverse + shade in a single
//    loop) instead of a pipeline of primitives with intermediate arrays;
//  * on simulated devices, kernel costs with vendor-tuned SIMD efficiency
//    (lower per-step cost, no divergence penalty).
//
// This also serves as the DPP-abstraction ablation called out in DESIGN.md.
#pragma once

#include <vector>

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "mesh/trimesh.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::baseline {

class TunedRayTracer {
 public:
  TunedRayTracer(const mesh::TriMesh& mesh, dpp::Device& dev);

  // WORKLOAD1: nearest-hit index + distance per pixel, no shading. Writes a
  // depth visualization when `out` is non-null.
  render::RenderStats render_intersect(const Camera& camera, render::Image* out = nullptr);

  double build_seconds() const { return build_seconds_; }
  double avg_steps_per_ray() const { return avg_steps_; }

 private:
  struct Node {
    AABB bounds;
    int left = -1, right = -1;   // internal children
    int first = 0, count = 0;    // leaf range into prim_order_
  };

  int build_recursive(std::vector<int>& prims, int lo, int hi);
  bool intersect(Vec3f orig, Vec3f dir, float tmin, float& tmax, int& prim,
                 long long& steps) const;

  const mesh::TriMesh& mesh_;
  dpp::Device& dev_;
  std::vector<Node> nodes_;
  std::vector<int> prim_order_;
  std::vector<AABB> prim_bounds_;
  double build_seconds_ = 0.0;
  double avg_steps_ = 0.0;
};

}  // namespace isr::baseline
