// Shared screen-space tetrahedron math for the unstructured-volume
// comparators (HAVS-like projected tets, VisIt-like sampler): a tet
// transformed into (pixel_x, pixel_y, sample_depth) space, with an analytic
// per-pixel-column entry/exit interval from the barycentric half-space
// constraints.
#pragma once

#include "math/camera.hpp"
#include "mesh/unstructured.hpp"

namespace isr::baseline {

struct ScreenSpaceTet {
  Vec3f v0;
  float inv[9];  // inverse of [v1-v0 | v2-v0 | v3-v0], row-major
  float scalar[4];
  float min_x, max_x, min_y, max_y, min_s, max_s;
  bool valid = false;

  // Intersects the vertical line through (px, py) with the tet. On success
  // returns the depth interval [s0, s1] (sample units) and the linearly
  // interpolated field values at both ends.
  bool column_interval(float px, float py, float& s0, float& s1, float& val0,
                       float& val1) const {
    // Barycentric coordinates are affine in the sample coordinate s:
    // b_i(s) = base_i + slope_i * s.
    const float dx = px - v0.x;
    const float dy = py - v0.y;
    const float dz0 = -v0.z;
    float base[4], slope[4];
    base[1] = inv[0] * dx + inv[1] * dy + inv[2] * dz0;
    base[2] = inv[3] * dx + inv[4] * dy + inv[5] * dz0;
    base[3] = inv[6] * dx + inv[7] * dy + inv[8] * dz0;
    slope[1] = inv[2];
    slope[2] = inv[5];
    slope[3] = inv[8];
    base[0] = 1.0f - base[1] - base[2] - base[3];
    slope[0] = -slope[1] - slope[2] - slope[3];

    // Intersect the four half-lines b_i(s) >= 0.
    float lo = min_s, hi = max_s;
    for (int i = 0; i < 4; ++i) {
      if (slope[i] == 0.0f) {
        if (base[i] < 0.0f) return false;
      } else {
        const float root = -base[i] / slope[i];
        if (slope[i] > 0.0f)
          lo = std::max(lo, root);
        else
          hi = std::min(hi, root);
      }
    }
    if (lo >= hi) return false;
    s0 = lo;
    s1 = hi;
    auto value_at = [&](float s) {
      float v = 0.0f;
      for (int i = 0; i < 4; ++i) v += (base[i] + slope[i] * s) * scalar[i];
      return v;
    };
    val0 = value_at(lo);
    val1 = value_at(hi);
    return true;
  }
};

// Transforms tet `t` into screen space; `sample_scale` converts eye depth
// into sample units ((depth - depth_lo) * sample_scale).
inline ScreenSpaceTet make_screen_tet(const mesh::TetMesh& mesh, std::size_t t,
                                      const Camera& camera, const Mat4& vp, float depth_lo,
                                      float sample_scale) {
  ScreenSpaceTet out;
  Vec3f v[4];
  for (int c = 0; c < 4; ++c) {
    const int pid = mesh.conn[t * 4 + static_cast<std::size_t>(c)];
    const Vec4f s = camera.world_to_screen(mesh.points[static_cast<std::size_t>(pid)], vp);
    if (s.w <= 0.0f) return out;
    v[c] = {s.x, s.y, (s.z - depth_lo) * sample_scale};
    out.scalar[c] = mesh.scalars[static_cast<std::size_t>(pid)];
  }
  const Vec3f c0 = v[1] - v[0];
  const Vec3f c1 = v[2] - v[0];
  const Vec3f c2 = v[3] - v[0];
  const float det = c0.x * (c1.y * c2.z - c2.y * c1.z) - c1.x * (c0.y * c2.z - c2.y * c0.z) +
                    c2.x * (c0.y * c1.z - c1.y * c0.z);
  if (std::abs(det) < 1e-12f) return out;
  const float id = 1.0f / det;
  out.inv[0] = (c1.y * c2.z - c2.y * c1.z) * id;
  out.inv[1] = (c2.x * c1.z - c1.x * c2.z) * id;
  out.inv[2] = (c1.x * c2.y - c2.x * c1.y) * id;
  out.inv[3] = (c2.y * c0.z - c0.y * c2.z) * id;
  out.inv[4] = (c0.x * c2.z - c2.x * c0.z) * id;
  out.inv[5] = (c2.x * c0.y - c0.x * c2.y) * id;
  out.inv[6] = (c0.y * c1.z - c1.y * c0.z) * id;
  out.inv[7] = (c1.x * c0.z - c0.x * c1.z) * id;
  out.inv[8] = (c0.x * c1.y - c1.x * c0.y) * id;
  out.v0 = v[0];
  out.min_x = std::min({v[0].x, v[1].x, v[2].x, v[3].x});
  out.max_x = std::max({v[0].x, v[1].x, v[2].x, v[3].x});
  out.min_y = std::min({v[0].y, v[1].y, v[2].y, v[3].y});
  out.max_y = std::max({v[0].y, v[1].y, v[2].y, v[3].y});
  out.min_s = std::min({v[0].z, v[1].z, v[2].z, v[3].z});
  out.max_s = std::max({v[0].z, v[1].z, v[2].z, v[3].z});
  out.valid = true;
  return out;
}

// Shared depth-range computation: eye-space depth bounds of a tet mesh.
inline void depth_range(const mesh::TetMesh& mesh, const Camera& camera, const Mat4& vp,
                        float& lo, float& hi) {
  lo = 1e30f;
  hi = -1e30f;
  for (const Vec3f& p : mesh.points) {
    const Vec4f s = camera.world_to_screen(p, vp);
    if (s.w <= 0.0f) continue;
    lo = std::min(lo, s.z);
    hi = std::max(hi, s.z);
  }
  if (hi <= lo) hi = lo + 1.0f;
}

}  // namespace isr::baseline
