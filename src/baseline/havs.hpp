// HAVS-like projected-tetrahedra volume renderer (the Chapter III GPU
// comparator, Figure 6). Object-order: sort cells by view depth, then
// rasterize each cell's footprint back-to-front, blending a per-pixel slab
// contribution computed from the analytic entry/exit interval. The real
// HAVS uses a k-buffer for out-of-order fragments; with a full visibility
// sort the k-buffer is unnecessary, and the cost profile (sort + rasterize,
// work ~ cells, little dependence on sample count) is preserved — which is
// the property the Figure 6 comparison exercises.
#pragma once

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/unstructured.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::baseline {

class HavsRenderer {
 public:
  HavsRenderer(const mesh::TetMesh& mesh, dpp::Device& dev) : mesh_(mesh), dev_(dev) {}

  // `reference_samples` matches the sampling renderers' opacity scaling so
  // images are comparable.
  render::RenderStats render(const Camera& camera, const TransferFunction& tf,
                             render::Image& out, int reference_samples = 400);

 private:
  const mesh::TetMesh& mesh_;
  dpp::Device& dev_;
};

}  // namespace isr::baseline
