#include "baseline/tuned_rt.hpp"

#include "render/rt/bvh.hpp"

#include <algorithm>
#include <atomic>

#include "dpp/primitives.hpp"
#include "dpp/timer.hpp"

namespace isr::baseline {

namespace {
constexpr int kLeafSize = 4;
}

TunedRayTracer::TunedRayTracer(const mesh::TriMesh& mesh, dpp::Device& dev)
    : mesh_(mesh), dev_(dev) {
  dpp::WallTimer timer;
  const std::size_t n = mesh_.triangle_count();
  prim_bounds_.resize(n);
  prim_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    prim_bounds_[i] = mesh_.triangle_bounds(i);
    prim_order_[i] = static_cast<int>(i);
  }
  if (n > 0) {
    nodes_.reserve(2 * n);
    std::vector<int> prims = prim_order_;
    build_recursive(prims, 0, static_cast<int>(n));
    prim_order_ = std::move(prims);
  }
  build_seconds_ = timer.seconds();
}

int TunedRayTracer::build_recursive(std::vector<int>& prims, int lo, int hi) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  AABB bounds;
  AABB centroid_bounds;
  for (int i = lo; i < hi; ++i) {
    bounds.expand(prim_bounds_[static_cast<std::size_t>(prims[static_cast<std::size_t>(i)])]);
    centroid_bounds.expand(
        prim_bounds_[static_cast<std::size_t>(prims[static_cast<std::size_t>(i)])].center());
  }
  nodes_[static_cast<std::size_t>(node_id)].bounds = bounds;

  if (hi - lo <= kLeafSize) {
    nodes_[static_cast<std::size_t>(node_id)].first = lo;
    nodes_[static_cast<std::size_t>(node_id)].count = hi - lo;
    return node_id;
  }

  // Split at the centroid median along the widest axis.
  const Vec3f ext = centroid_bounds.extent();
  int axis = 0;
  if (ext.y > ext.x) axis = 1;
  if (ext.z > ext[axis]) axis = 2;
  const int mid = (lo + hi) / 2;
  std::nth_element(prims.begin() + lo, prims.begin() + mid, prims.begin() + hi,
                   [&](int a, int b) {
                     return prim_bounds_[static_cast<std::size_t>(a)].center()[axis] <
                            prim_bounds_[static_cast<std::size_t>(b)].center()[axis];
                   });

  const int left = build_recursive(prims, lo, mid);
  const int right = build_recursive(prims, mid, hi);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

bool TunedRayTracer::intersect(Vec3f orig, Vec3f dir, float tmin, float& tmax, int& prim,
                               long long& steps) const {
  if (nodes_.empty()) return false;
  const Vec3f inv = {1.0f / dir.x, 1.0f / dir.y, 1.0f / dir.z};
  int stack[64];
  int sp = 0;
  stack[sp++] = 0;
  bool hit = false;
  while (sp > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[--sp])];
    ++steps;
    float t0, t1;
    if (!node.bounds.intersect(orig, inv, tmin, tmax, t0, t1)) continue;
    if (node.left < 0) {
      for (int i = 0; i < node.count; ++i) {
        const int p = prim_order_[static_cast<std::size_t>(node.first + i)];
        float t, u, v;
        ++steps;
        if (render::intersect_triangle(orig, dir,
                                       mesh_.vertex(static_cast<std::size_t>(p), 0),
                                       mesh_.vertex(static_cast<std::size_t>(p), 1),
                                       mesh_.vertex(static_cast<std::size_t>(p), 2), tmin,
                                       tmax, t, u, v)) {
          tmax = t;
          prim = p;
          hit = true;
        }
      }
    } else if (sp + 2 <= 64) {
      stack[sp++] = node.left;
      stack[sp++] = node.right;
    }
  }
  return hit;
}

render::RenderStats TunedRayTracer::render_intersect(const Camera& camera,
                                                     render::Image* out) {
  dev_.reset_timings();
  render::RenderStats stats;
  stats.objects = static_cast<double>(mesh_.triangle_count());
  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());
  if (out) {
    out->resize(camera.width, camera.height);
    out->clear();
  }

  std::atomic<long long> total_steps{0};
  std::atomic<long long> active{0};
  {
    dpp::ScopedPhase phase(dev_, "trace");
    dpp::for_each_dyn(
        dev_, n_pixels,
        [&](std::size_t p) {
          // Fused kernel: generate, traverse, record — no intermediate
          // arrays between pipeline stages.
          const int px = static_cast<int>(p) % camera.width;
          const int py = static_cast<int>(p) / camera.width;
          const Vec3f dir =
              camera.ray_direction(static_cast<float>(px), static_cast<float>(py));
          float tmax = camera.zfar;
          int prim = -1;
          long long steps = 0;
          if (intersect(camera.position, dir, camera.znear, tmax, prim, steps)) {
            active.fetch_add(1, std::memory_order_relaxed);
            if (out) {
              const float g = 1.0f / (1.0f + 0.1f * tmax);
              out->pixels()[p] = {g, g, g, 1.0f};
              out->depths()[p] = tmax;
            }
          }
          total_steps.fetch_add(steps, std::memory_order_relaxed);
        },
        [&] {
          const double avg = static_cast<double>(total_steps.load()) /
                             static_cast<double>(std::max<std::size_t>(n_pixels, 1));
          // Vendor-tuned SIMD traversal: lower per-step cost than the DPP
          // kernels and no divergence penalty (packetized/warp-coherent).
          return dpp::KernelCost{.flops_per_elem = 7.0 * avg + 18.0,
                                 .bytes_per_elem = 2.5 * avg + 16.0,
                                 .divergence = 1.0};
        });
    avg_steps_ = static_cast<double>(total_steps.load()) /
                 static_cast<double>(std::max<std::size_t>(n_pixels, 1));
  }
  stats.active_pixels = static_cast<double>(active.load());
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::baseline
