// Bunyk-style unstructured ray caster (the Chapter III CPU comparator,
// Figure 7): a serial-preprocessing connectivity walk. Face adjacency is
// traced once up front (the paper notes this step took 50+ minutes for
// their largest data set); rendering then marches each pixel ray cell-to-
// cell through shared faces, integrating the linear field between entry and
// exit of every tet.
#pragma once

#include <vector>

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/unstructured.hpp"
#include "render/image.hpp"
#include "render/rt/bvh.hpp"
#include "render/stats.hpp"

namespace isr::baseline {

class BunykRayCaster {
 public:
  // Builds face connectivity and the boundary-face search structure;
  // preprocessing time is reported separately (the paper omits it from
  // render timings).
  BunykRayCaster(const mesh::TetMesh& mesh, dpp::Device& dev);

  render::RenderStats render(const Camera& camera, const TransferFunction& tf,
                             render::Image& out, int reference_samples = 400);

  double preprocess_seconds() const { return preprocess_seconds_; }

 private:
  const mesh::TetMesh& mesh_;
  dpp::Device& dev_;
  // neighbor_[4*t + f]: tet across face f of tet t (-1 = boundary). Face f
  // is opposite corner f.
  std::vector<int> neighbor_;
  // Boundary faces as a triangle mesh + BVH for entry-point search;
  // boundary_tet_[i] is the tet owning boundary triangle i.
  mesh::TriMesh boundary_;
  std::vector<int> boundary_tet_;
  render::Bvh boundary_bvh_;
  double preprocess_seconds_ = 0.0;
};

}  // namespace isr::baseline
