#include "baseline/visit_sampler.hpp"

#include <atomic>
#include <cmath>

#include "baseline/tet_common.hpp"
#include "dpp/primitives.hpp"

namespace isr::baseline {

namespace {
constexpr float kEmptySample = -1e30f;
}

render::RenderStats VisItSampler::render(const Camera& camera, const TransferFunction& tf,
                                         render::Image& out, int samples_in_depth) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear();

  render::RenderStats stats;
  const std::size_t n_tets = mesh_.cell_count();
  stats.objects = static_cast<double>(n_tets);
  if (n_tets == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const Mat4 vp = camera.view_projection();
  float depth_lo, depth_hi;
  depth_range(mesh_, camera, vp, depth_lo, depth_hi);
  const int S = samples_in_depth;
  const float sample_scale = static_cast<float>(S) / (depth_hi - depth_lo);
  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());

  // --- Screen-space transformation ----------------------------------------
  std::vector<ScreenSpaceTet> st(n_tets);
  {
    dpp::ScopedPhase phase(dev_, "screen_space");
    dpp::for_each(
        dev_, n_tets,
        [&](std::size_t t) { st[t] = make_screen_tet(mesh_, t, camera, vp, depth_lo, sample_scale); },
        dpp::KernelCost{.flops_per_elem = 140, .bytes_per_elem = 150});
  }

  // --- Sampling: column rasterization into the sample buffer --------------
  std::vector<float> samples(n_pixels * static_cast<std::size_t>(S), kEmptySample);
  std::atomic<long long> written{0};
  {
    dpp::ScopedPhase phase(dev_, "sampling");
    dpp::for_each_dyn(
        dev_, n_tets,
        [&](std::size_t t) {
          const ScreenSpaceTet& s = st[t];
          if (!s.valid) return;
          const int x0 = std::max(0, static_cast<int>(std::floor(s.min_x)));
          const int x1 = std::min(camera.width - 1, static_cast<int>(std::ceil(s.max_x)));
          const int y0 = std::max(0, static_cast<int>(std::floor(s.min_y)));
          const int y1 = std::min(camera.height - 1, static_cast<int>(std::ceil(s.max_y)));
          long long local = 0;
          for (int y = y0; y <= y1; ++y)
            for (int x = x0; x <= x1; ++x) {
              float s0, s1, v0, v1;
              if (!s.column_interval(static_cast<float>(x) + 0.5f,
                                     static_cast<float>(y) + 0.5f, s0, s1, v0, v1))
                continue;
              // Fill integer sample slots inside [s0, s1]; the value varies
              // linearly along the column, amortizing the interval setup.
              const int lo = std::max(0, static_cast<int>(std::ceil(s0 - 0.5f)));
              const int hi = std::min(S - 1, static_cast<int>(std::floor(s1 - 0.5f)));
              const float dv = s1 > s0 ? (v1 - v0) / (s1 - s0) : 0.0f;
              const std::size_t pixel =
                  static_cast<std::size_t>(y) * static_cast<std::size_t>(camera.width) + x;
              for (int sm = lo; sm <= hi; ++sm) {
                samples[static_cast<std::size_t>(sm) * n_pixels + pixel] =
                    v0 + dv * (static_cast<float>(sm) + 0.5f - s0);
                ++local;
              }
            }
          written.fetch_add(local, std::memory_order_relaxed);
        },
        [&] {
          const double per = static_cast<double>(written.load()) /
                             static_cast<double>(std::max<std::size_t>(n_tets, 1));
          // Interval setup ~60 flops per covered column; ~6 per filled
          // sample (the amortization VisIt's rasterization buys).
          return dpp::KernelCost{.flops_per_elem = 6.0 * per + 120.0,
                                 .bytes_per_elem = 5.0 * per + 150.0,
                                 .divergence = 1.2};
        });
  }

  // --- Compositing with early ray termination ------------------------------
  std::atomic<long long> blended{0};
  {
    dpp::ScopedPhase phase(dev_, "compositing");
    dpp::for_each_dyn(
        dev_, n_pixels,
        [&](std::size_t p) {
          Vec4f acc{0, 0, 0, 0};
          float first = -1.0f;
          long long local = 0;
          for (int sm = 0; sm < S; ++sm) {
            const float v = samples[static_cast<std::size_t>(sm) * n_pixels + p];
            if (v == kEmptySample) continue;
            ++local;
            const Vec4f c = tf.sample(v);
            const float alpha =
                TransferFunction::correct_alpha(c.w, 400.0f / static_cast<float>(S)) *
                (1.0f - acc.w);
            acc.x += c.x * alpha;
            acc.y += c.y * alpha;
            acc.z += c.z * alpha;
            acc.w += alpha;
            if (first < 0.0f && alpha > 0.001f) first = static_cast<float>(sm);
            if (acc.w >= 0.98f) break;  // early ray termination
          }
          blended.fetch_add(local, std::memory_order_relaxed);
          if (acc.w > 0.0f) {
            out.pixels()[p] = acc;
            out.depths()[p] = depth_lo + first / sample_scale;
          }
        },
        [&] {
          const double per = static_cast<double>(blended.load()) /
                             static_cast<double>(std::max<std::size_t>(n_pixels, 1));
          return dpp::KernelCost{.flops_per_elem = 10.0 * per + 4.0 * S / 8.0,
                                 .bytes_per_elem = 4.0 * S + 16.0,
                                 .divergence = 1.1};
        });
  }

  stats.active_pixels = static_cast<double>(out.active_pixel_count());
  stats.samples_per_ray = stats.active_pixels > 0
                              ? static_cast<double>(blended.load()) / stats.active_pixels
                              : 0.0;
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::baseline
