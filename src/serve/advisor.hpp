// Batch feasibility-prediction serving: the paper's §5.9 questions ("how
// many images fit the budget?", "ray tracing or rasterization?") as a
// typed request/response service. An in situ framework faces these
// decisions online every cycle; this layer answers them at query rates by
// fitting models once (serve/registry.hpp) and fanning request batches out
// over the core thread pool.
//
// Determinism contract: a response is a pure function of (request, fitted
// models, mapping constants). serve_batch writes responses into pre-sized
// slots, so a batched multi-thread run is bit-identical — and, through
// to_jsonl, byte-identical — to a serial run of the same requests, the same
// guarantee model/study.* makes for the calibration corpus itself.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "model/mapping.hpp"
#include "model/perfmodel.hpp"
#include "serve/registry.hpp"

namespace isr::serve {

// One feasibility query: a rendering configuration (the user-facing terms
// of §5.8 — per-task data size, rank count, image resolution) plus the
// question parameters (time budget, amortization horizon).
struct AdvisorRequest {
  // Which resident calibration corpus answers this request. Empty selects
  // the server's default corpus; a multi-corpus cluster (src/cluster/)
  // resolves names to fitted bundles, and an unknown name yields an
  // in-slot error response. A single AdvisorService ignores the selector —
  // it has exactly one corpus.
  std::string corpus;
  std::string arch = "CPU1";
  model::RendererKind renderer = model::RendererKind::kRayTrace;
  int n_per_task = 200;        // N of the N^3 cells-per-task block
  int tasks = 32;              // simulated MPI ranks
  int image_edge = 1024;       // square image edge in pixels
  double budget_seconds = 60;  // Fig 14's budget question
  int frames = 100;            // Fig 15's BVH-amortization horizon

  // Streaming-admission QoS (src/cluster/ honors these; the batch paths
  // ignore them, and the canonical cache key deliberately excludes them —
  // the *answer* is the same whether the client was in a hurry).
  // deadline_us: answer-by budget in microseconds from admission; 0 (the
  // default) means no deadline, and a request whose estimated completion
  // exceeds its deadline at admission is shed (an explicit response, never
  // a silent stall). priority: class 0 (most urgent) .. 7; strict across
  // classes, earliest-deadline-first within one.
  long deadline_us = 0;
  int priority = 1;
};

struct AdvisorResponse {
  bool ok = false;
  std::string error;  // set when !ok; every other field is then zero
  // Load shedding (streaming admission only): true when the cluster
  // refused the request because its estimated completion would miss the
  // deadline. Always an error response (!ok), so the ok-path wire bytes
  // are untouched by the flag's existence.
  bool shed = false;
  // Fault tolerance (streaming admission only): true when the cluster
  // admitted the request but could not evaluate it within its
  // fault-tolerance budget — retry budget exhausted, per-request deadline
  // passed during retry, the corpus's calibration fit failed, or shutdown
  // raced the admission. Always an error response (!ok), never cached, and
  // the error text starts with "degraded: ".
  bool degraded = false;

  // Fig 14: predicted cost of the requested (arch, renderer) configuration.
  double frame_seconds = 0.0;  // per frame, build amortized away
  double build_seconds = 0.0;  // one-time BVH build (ray tracing only)
  long images_in_budget = 0;

  // Fig 15: the RT-vs-RAST verdict on the requested arch over `frames`
  // frames. has_verdict is false when the calibration corpus lacks either
  // surface model for this arch.
  bool has_verdict = false;
  double rt_seconds = 0.0;    // frames * render + one build
  double rast_seconds = 0.0;  // frames * render
  double ratio = 0.0;         // rast / rt; > 1 means ray tracing wins
  bool prefer_ray_tracing = false;
};

// Exact equality of every field — the serial-vs-batched identity contract,
// single source of truth for test_serve and bench_advisor_throughput.
bool responses_identical(const AdvisorResponse& a, const AdvisorResponse& b);

// The pure per-request evaluation every serving path runs: a function of
// (fitted models, mapping constants, request) only, so execution order,
// thread count, shard assignment, and cache state cannot change a response.
// serve_one/serve_batch call it internally; src/cluster/ shards call it
// against their replicated registries.
AdvisorResponse answer_request(const FittedModels& fitted,
                               const model::MappingConstants& constants,
                               const AdvisorRequest& request);

// One response as a JSON line (no trailing newline). Fixed field order and
// printf-formatted numbers, so identical responses serialize to identical
// bytes. Schema documented in docs/ARCHITECTURE.md.
std::string to_jsonl(const AdvisorResponse& response);

// The wire format's JSON string escaping (quote, backslash, \u00xx control
// characters) — one definition for every line this repo emits, so error
// messages and metrics can never diverge on escaping.
std::string json_escape(const std::string& s);

// Renderer tokens used by the wire format: "raytrace" / "rasterize" /
// "volume". renderer_from_token returns false on anything else.
const char* renderer_token(model::RendererKind kind);
bool renderer_from_token(const std::string& token, model::RendererKind& kind);

struct ServiceConfig {
  // The calibration study the models are fitted from. The default is the
  // advisor's quick CPU1/GPU1 corpus (see default_calibration()).
  model::StudyConfig calibration;
  // §5.8 configuration -> model-variable mapping constants. spr_base <= 0
  // (the default) derives it from calibration.vr_samples at service
  // construction, keeping the SPR mapping consistent with the sampling
  // density the corpus was rendered at.
  model::MappingConstants constants;
  // Worker threads for serve_batch: 0 = ISR_THREADS env / hardware,
  // 1 = serial (the pool runs inline).
  int threads = 0;

  ServiceConfig();
};

// The quick calibration corpus the one-shot advisor CLI has always used:
// cloverleaf on CPU1/GPU1 at small sizes, all three renderers. Fits in
// about a second; pass a bigger StudyConfig for production-grade models.
model::StudyConfig default_calibration();

// A long-lived advisor: owns the registry (fitted models) and the pool.
// Thread-safe for concurrent serve_one calls; serve_batch is the intended
// high-throughput entry point.
class AdvisorService {
 public:
  // A registry may be shared between services (e.g. one serial and one
  // parallel service answering from the same fitted models); by default
  // the service creates its own.
  explicit AdvisorService(ServiceConfig config = {},
                          std::shared_ptr<ModelRegistry> registry = nullptr);

  // Answers one request serially.
  AdvisorResponse serve_one(const AdvisorRequest& request);

  // Answers a batch: responses land in pre-sized slots, response[i] for
  // request[i], fanned out over the service's thread pool. Bit-identical
  // to calling serve_one in a loop, at any thread count.
  std::vector<AdvisorResponse> serve_batch(const std::vector<AdvisorRequest>& requests);

  ModelRegistry& registry() { return *registry_; }
  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  core::ThreadPool pool_;
};

}  // namespace isr::serve
