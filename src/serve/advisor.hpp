// Batch feasibility-prediction serving: the paper's §5.9 questions ("how
// many images fit the budget?", "ray tracing or rasterization?") as a
// typed request/response service. An in situ framework faces these
// decisions online every cycle; this layer answers them at query rates by
// fitting models once (serve/registry.hpp) and fanning request batches out
// over the core thread pool.
//
// Determinism contract: a response is a pure function of (request, fitted
// models, mapping constants). serve_batch writes responses into pre-sized
// slots, so a batched multi-thread run is bit-identical — and, through
// to_jsonl, byte-identical — to a serial run of the same requests, the same
// guarantee model/study.* makes for the calibration corpus itself.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/arena.hpp"
#include "core/thread_pool.hpp"
#include "model/mapping.hpp"
#include "model/perfmodel.hpp"
#include "serve/registry.hpp"

namespace isr::serve {

// One feasibility query: a rendering configuration (the user-facing terms
// of §5.8 — per-task data size, rank count, image resolution) plus the
// question parameters (time budget, amortization horizon).
struct AdvisorRequest {
  // Which resident calibration corpus answers this request. Empty selects
  // the server's default corpus; a multi-corpus cluster (src/cluster/)
  // resolves names to fitted bundles, and an unknown name yields an
  // in-slot error response. A single AdvisorService ignores the selector —
  // it has exactly one corpus.
  std::string corpus;
  std::string arch = "CPU1";
  model::RendererKind renderer = model::RendererKind::kRayTrace;
  int n_per_task = 200;        // N of the N^3 cells-per-task block
  int tasks = 32;              // simulated MPI ranks
  int image_edge = 1024;       // square image edge in pixels
  double budget_seconds = 60;  // Fig 14's budget question
  int frames = 100;            // Fig 15's BVH-amortization horizon

  // Streaming-admission QoS (src/cluster/ honors these; the batch paths
  // ignore them, and the canonical cache key deliberately excludes them —
  // the *answer* is the same whether the client was in a hurry).
  // deadline_us: answer-by budget in microseconds from admission; 0 (the
  // default) means no deadline, and a request whose estimated completion
  // exceeds its deadline at admission is shed (an explicit response, never
  // a silent stall). priority: class 0 (most urgent) .. 7; strict across
  // classes, earliest-deadline-first within one.
  long deadline_us = 0;
  int priority = 1;
};

struct AdvisorResponse {
  // Typed request outcome, replacing the old ok-bool + shed/degraded flag
  // trio (and the error-string sniffing that came with it):
  //   kOk       — answered; the prediction fields below are valid.
  //   kShed     — refused at admission: the cluster estimated completion
  //               would miss the request's deadline (streaming only).
  //   kDegraded — admitted but unanswerable within the fault-tolerance
  //               budget: retries exhausted, deadline passed during retry,
  //               a failed calibration fit, or shutdown raced the
  //               admission; never cached, error text starts "degraded: ".
  //   kError    — invalid request, unknown corpus/model, or an evaluation
  //               failure.
  // Shed and degraded serialize as error lines with their marker key
  // ("shed":true / "degraded":true), so the enum changes no wire bytes.
  enum class Status : unsigned char { kOk = 0, kShed = 1, kDegraded = 2, kError = 3 };

  Status status = Status::kError;
  std::string error;  // set when !ok(); every other field is then zero

  bool ok() const { return status == Status::kOk; }
  bool shed() const { return status == Status::kShed; }
  bool degraded() const { return status == Status::kDegraded; }

  // Fig 14: predicted cost of the requested (arch, renderer) configuration.
  double frame_seconds = 0.0;  // per frame, build amortized away
  double build_seconds = 0.0;  // one-time BVH build (ray tracing only)
  long images_in_budget = 0;

  // Fig 15: the RT-vs-RAST verdict on the requested arch over `frames`
  // frames. has_verdict is false when the calibration corpus lacks either
  // surface model for this arch.
  bool has_verdict = false;
  double rt_seconds = 0.0;    // frames * render + one build
  double rast_seconds = 0.0;  // frames * render
  double ratio = 0.0;         // rast / rt; > 1 means ray tracing wins
  bool prefer_ray_tracing = false;
};

// Wire token for a status ("ok"/"shed"/"degraded"/"error") — metrics and
// diagnostics share one spelling.
const char* status_name(AdvisorResponse::Status status);

// Exact equality of every field — the serial-vs-batched identity contract,
// single source of truth for test_serve and bench_advisor_throughput.
bool responses_identical(const AdvisorResponse& a, const AdvisorResponse& b);

// Reusable scratch for answer_batch: an arena backing the grouping indices
// and the per-model SoA prediction columns. One per worker thread (it is
// not thread-safe); rewound and refilled every batch, so a warmed-up
// worker evaluates batch after batch with zero heap allocation.
struct EvalScratch {
  core::Arena arena;
};

// The CANONICAL evaluation entry point: answers `count` requests into
// pre-sized response slots. Internally the batch is grouped by
// (arch, renderer); per group the fitted-model and verdict-model lookups
// and their error strings are hoisted out of the item loop, configurations
// are mapped once into an arena-backed column, and each fitted model's
// polynomial terms are evaluated across the whole group in SoA layout
// (one prediction column per model). Each response is still a pure
// function of (fitted models, mapping constants, request[i]) — grouping,
// batch composition, and evaluation order cannot change a byte, which is
// what keeps the serial-vs-batched identity contract checkable.
//
// Gather form: requests[i]/responses[i] are pointers, so callers holding
// items in non-contiguous storage (cluster shards draining a mixed-corpus
// batch) can evaluate without copying requests.
void answer_batch(const FittedModels& fitted, const model::MappingConstants& constants,
                  const AdvisorRequest* const* requests, std::size_t count,
                  AdvisorResponse* const* responses, EvalScratch& scratch);

// Contiguous-span convenience overload of the same evaluator.
void answer_batch(const FittedModels& fitted, const model::MappingConstants& constants,
                  const AdvisorRequest* requests, std::size_t count,
                  AdvisorResponse* responses, EvalScratch& scratch);

// Single-item compatibility wrapper over answer_batch (count = 1), kept so
// the byte-identity contract stays checkable item by item: a function of
// (fitted models, mapping constants, request) only, so execution order,
// thread count, shard assignment, and cache state cannot change a
// response. New call sites should prefer answer_batch.
AdvisorResponse answer_request(const FittedModels& fitted,
                               const model::MappingConstants& constants,
                               const AdvisorRequest& request);

// One response as a JSON line (no trailing newline). Fixed field order and
// printf-formatted numbers, so identical responses serialize to identical
// bytes. Schema documented in docs/ARCHITECTURE.md.
std::string to_jsonl(const AdvisorResponse& response);

// Zero-copy form: appends the line to a caller-owned reusable buffer (no
// temporary string churn — an ok line is one snprintf into a stack buffer
// plus one append). The allocating signature above delegates here; batch
// serializers reuse one buffer across a whole flush.
void to_jsonl(const AdvisorResponse& response, std::string& out);

// The wire format's JSON string escaping (quote, backslash, \u00xx control
// characters) — one definition for every line this repo emits, so error
// messages and metrics can never diverge on escaping.
std::string json_escape(const std::string& s);

// Appending form used by the zero-copy serializers.
void json_escape(const std::string& s, std::string& out);

// Renderer tokens used by the wire format: "raytrace" / "rasterize" /
// "volume". renderer_from_token returns false on anything else.
const char* renderer_token(model::RendererKind kind);
bool renderer_from_token(const std::string& token, model::RendererKind& kind);

struct ServiceConfig {
  // The calibration study the models are fitted from. The default is the
  // advisor's quick CPU1/GPU1 corpus (see default_calibration()).
  model::StudyConfig calibration;
  // §5.8 configuration -> model-variable mapping constants. spr_base <= 0
  // (the default) derives it from calibration.vr_samples at service
  // construction, keeping the SPR mapping consistent with the sampling
  // density the corpus was rendered at.
  model::MappingConstants constants;
  // Worker threads for serve_batch: 0 = ISR_THREADS env / hardware,
  // 1 = serial (the pool runs inline).
  int threads = 0;

  ServiceConfig();
};

// The quick calibration corpus the one-shot advisor CLI has always used:
// cloverleaf on CPU1/GPU1 at small sizes, all three renderers. Fits in
// about a second; pass a bigger StudyConfig for production-grade models.
model::StudyConfig default_calibration();

// A long-lived advisor: owns the registry (fitted models) and the pool.
// Thread-safe for concurrent serve_one calls; serve_batch is the intended
// high-throughput entry point.
class AdvisorService {
 public:
  // A registry may be shared between services (e.g. one serial and one
  // parallel service answering from the same fitted models); by default
  // the service creates its own.
  explicit AdvisorService(ServiceConfig config = {},
                          std::shared_ptr<ModelRegistry> registry = nullptr);

  // Answers one request serially.
  AdvisorResponse serve_one(const AdvisorRequest& request);

  // Answers a batch: responses land in pre-sized slots, response[i] for
  // request[i], fanned out over the service's thread pool. Bit-identical
  // to calling serve_one in a loop, at any thread count.
  std::vector<AdvisorResponse> serve_batch(const std::vector<AdvisorRequest>& requests);

  ModelRegistry& registry() { return *registry_; }
  const ServiceConfig& config() const { return config_; }

 private:
  ServiceConfig config_;
  std::shared_ptr<ModelRegistry> registry_;
  core::ThreadPool pool_;
};

}  // namespace isr::serve
