#include "serve/jsonl.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "core/env.hpp"

namespace isr::serve {

namespace {

// A minimal scanner for the wire format: one flat JSON object per line,
// values restricted to strings and numbers. Hand-rolled because
// the repo takes no external dependencies and the schema is fixed — this
// is a parser for ten known keys, not a JSON library.
struct Scanner {
  const char* p;
  const char* end;

  explicit Scanner(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  }

  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out, std::string& error) {
    if (!eat('"')) {
      error = "expected string";
      return false;
    }
    out.clear();
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) break;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          default: error = "unsupported string escape"; return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) {
      error = "unterminated string";
      return false;
    }
    ++p;  // closing quote
    return true;
  }

  bool parse_number(double& out, std::string& error) {
    skip_ws();
    const char* start = p;
    // Consume alphabetic characters too, so non-finite spellings ("nan",
    // "NaN", "inf", "Infinity", "1e999") form one token and earn the
    // precise rejection below rather than a generic parse failure at the
    // stray letters.
    while (p < end &&
           (*p == '-' || *p == '+' || *p == '.' || (*p >= '0' && *p <= '9') ||
            (*p >= 'a' && *p <= 'z') || (*p >= 'A' && *p <= 'Z')))
      ++p;
    const std::string token(start, p);
    const core::ParseStatus status = core::parse_double(token.c_str(), out);
    if (status == core::ParseStatus::kNotFinite) {
      error = "must be finite (NaN/Infinity and overflowing values are rejected)";
      return false;
    }
    if (status != core::ParseStatus::kOk) {
      error = "expected number";
      return false;
    }
    return true;
  }
};

bool parse_int_value(Scanner& sc, const char* key, int& out, std::string& error) {
  double v = 0.0;
  if (!sc.parse_number(v, error)) {
    error = std::string(key) + ": " + error;
    return false;
  }
  if (v != std::floor(v) || v < -2147483648.0 || v > 2147483647.0) {
    error = std::string(key) + ": expected an integer";
    return false;
  }
  out = static_cast<int>(v);
  return true;
}

}  // namespace

bool parse_request_line(const std::string& line, AdvisorRequest& request, std::string& error) {
  AdvisorRequest req;  // schema defaults; assigned to `request` only on success
  Scanner sc(line);
  if (!sc.eat('{')) {
    error = "expected a JSON object";
    return false;
  }
  if (!sc.eat('}')) {  // non-empty object: key:value pairs
    std::vector<std::string> seen;
    do {
      std::string key;
      if (!sc.parse_string(key, error)) return false;
      // Duplicate keys are as silent a failure mode as unknown ones: a
      // request-builder bug merging defaults with overrides would get
      // last-wins semantics and a confidently wrong prediction.
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) {
        error = "duplicate key \"" + key + "\"";
        return false;
      }
      seen.push_back(key);
      if (!sc.eat(':')) {
        error = key + ": expected ':'";
        return false;
      }
      if (key == "corpus") {
        if (!sc.parse_string(req.corpus, error)) {
          error = "corpus: " + error;
          return false;
        }
      } else if (key == "arch") {
        if (!sc.parse_string(req.arch, error)) {
          error = "arch: " + error;
          return false;
        }
      } else if (key == "renderer") {
        std::string token;
        if (!sc.parse_string(token, error)) {
          error = "renderer: " + error;
          return false;
        }
        if (!renderer_from_token(token, req.renderer)) {
          error = "renderer: unknown token \"" + token +
                  "\" (expected raytrace, rasterize, or volume)";
          return false;
        }
      } else if (key == "n_per_task") {
        if (!parse_int_value(sc, "n_per_task", req.n_per_task, error)) return false;
      } else if (key == "tasks") {
        if (!parse_int_value(sc, "tasks", req.tasks, error)) return false;
      } else if (key == "image_edge") {
        if (!parse_int_value(sc, "image_edge", req.image_edge, error)) return false;
      } else if (key == "frames") {
        if (!parse_int_value(sc, "frames", req.frames, error)) return false;
      } else if (key == "budget_seconds") {
        if (!sc.parse_number(req.budget_seconds, error)) {
          error = "budget_seconds: " + error;
          return false;
        }
      } else if (key == "deadline_us") {
        // Streaming QoS (src/cluster/): 0 = no deadline. Negative budgets
        // are a client bug, not "very urgent" — reject loudly.
        int v = 0;
        if (!parse_int_value(sc, "deadline_us", v, error)) return false;
        if (v < 0) {
          error = "deadline_us: must be >= 0";
          return false;
        }
        req.deadline_us = v;
      } else if (key == "priority") {
        int v = 0;
        if (!parse_int_value(sc, "priority", v, error)) return false;
        if (v < 0 || v > 7) {
          error = "priority: must be in 0..7 (0 most urgent)";
          return false;
        }
        req.priority = v;
      } else {
        // Strict schema: a typo'd key must not silently fall back to a
        // default (the same loud-over-silent stance core/env takes).
        error = "unknown key \"" + key + "\"";
        return false;
      }
    } while (sc.eat(','));
    if (!sc.eat('}')) {
      error = "expected ',' or '}'";
      return false;
    }
  }
  sc.skip_ws();
  if (sc.p != sc.end) {
    error = "trailing characters after object";
    return false;
  }
  request = std::move(req);
  return true;
}

AdvisorResponse::Status response_line_status(const std::string& line) {
  // The wire format is fixed (to_jsonl): ok lines open {"ok":true, error
  // lines open {"ok":false, with the shed/degraded marker key (in that
  // order) directly after — so prefix checks classify without a parse.
  if (line.rfind("{\"ok\":true,", 0) == 0) return AdvisorResponse::Status::kOk;
  if (line.rfind("{\"ok\":false,\"shed\":true,", 0) == 0) return AdvisorResponse::Status::kShed;
  if (line.rfind("{\"ok\":false,\"shed\":true,\"degraded\":true,", 0) == 0 ||
      line.rfind("{\"ok\":false,\"degraded\":true,", 0) == 0)
    return AdvisorResponse::Status::kDegraded;
  return AdvisorResponse::Status::kError;
}

namespace {

// Serves one accumulated batch: parse failures get error responses in
// their slots, everything else goes through the handler, and responses
// come out in request order. `wire` is the caller-owned serialization
// buffer: every line appends into it (to_jsonl's zero-copy form) and the
// batch leaves through one ostream write — the buffer's capacity survives
// across flushes, so a steady-state stream serializes without allocating.
std::size_t flush_batch(const std::vector<std::string>& lines, const BatchHandler& handler,
                        std::ostream& out, std::string& wire) {
  std::vector<AdvisorResponse> responses(lines.size());
  std::vector<AdvisorRequest> valid;
  std::vector<std::size_t> slot;
  valid.reserve(lines.size());
  slot.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    AdvisorRequest req;
    std::string error;
    if (parse_request_line(lines[i], req, error)) {
      valid.push_back(req);
      slot.push_back(i);
    } else {
      responses[i].status = AdvisorResponse::Status::kError;
      responses[i].error = "parse error: " + error;
    }
  }
  const std::vector<AdvisorResponse> served = handler(valid);
  for (std::size_t j = 0; j < served.size() && j < slot.size(); ++j)
    responses[slot[j]] = served[j];
  wire.clear();
  for (const AdvisorResponse& r : responses) {
    to_jsonl(r, wire);
    wire += '\n';
  }
  out.write(wire.data(), static_cast<std::streamsize>(wire.size()));
  out.flush();
  return responses.size();
}

}  // namespace

std::size_t run_jsonl(std::istream& in, std::ostream& out, const BatchHandler& handler) {
  std::size_t answered = 0;
  std::vector<std::string> batch;
  std::string line;
  std::string wire;  // reused serialization buffer, one per stream
  while (std::getline(in, line)) {
    const bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (blank) {
      if (!batch.empty()) {
        answered += flush_batch(batch, handler, out, wire);
        batch.clear();
      }
      continue;
    }
    batch.push_back(line);
  }
  if (!batch.empty()) answered += flush_batch(batch, handler, out, wire);
  return answered;
}

std::size_t run_jsonl(std::istream& in, std::ostream& out, AdvisorService& service) {
  return run_jsonl(in, out, [&service](const std::vector<AdvisorRequest>& requests) {
    return service.serve_batch(requests);
  });
}

std::size_t run_jsonl(std::istream& in, std::ostream& out, ServiceConfig config) {
  AdvisorService service(std::move(config));
  return run_jsonl(in, out, service);
}

}  // namespace isr::serve
