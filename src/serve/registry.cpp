#include "serve/registry.hpp"

#include <utility>

#include "math/rng.hpp"

namespace isr::serve {

const model::PerfModel* FittedModels::find(const std::string& arch,
                                           model::RendererKind kind) const {
  for (const Entry& e : entries)
    if (e.arch == arch && e.kind == kind) return &e.model;
  return nullptr;
}

std::uint64_t ModelRegistry::fingerprint(const model::StudyConfig& config) {
  // Length-prefix every list so ({"a","b"},{}) and ({"a"},{"b"}) cannot
  // collide by concatenation.
  std::uint64_t h = hash_seed(config.seed, std::uint64_t{0x5EBEDull});
  h = hash_combine(h, config.archs.size());
  for (const std::string& a : config.archs) h = hash_combine(h, a);
  h = hash_combine(h, config.renderers.size());
  for (const model::RendererKind k : config.renderers)
    h = hash_combine(h, static_cast<std::uint64_t>(k));
  h = hash_combine(h, config.sims.size());
  for (const std::string& s : config.sims) h = hash_combine(h, s);
  h = hash_combine(h, config.tasks.size());
  for (const int t : config.tasks) h = hash_combine(h, static_cast<std::uint64_t>(t));
  h = hash_combine(h, static_cast<std::uint64_t>(config.samples_per_config));
  h = hash_combine(h, static_cast<std::uint64_t>(config.min_image));
  h = hash_combine(h, static_cast<std::uint64_t>(config.max_image));
  h = hash_combine(h, static_cast<std::uint64_t>(config.min_n));
  h = hash_combine(h, static_cast<std::uint64_t>(config.max_n));
  h = hash_combine(h, static_cast<std::uint64_t>(config.vr_samples));
  h = hash_combine(h, static_cast<std::uint64_t>(config.sim_steps));
  return h;
}

FittedModels fit_bundle(const model::StudyConfig& config,
                        const std::vector<model::Observation>& observations,
                        std::uint64_t epoch) {
  FittedModels fitted;
  fitted.fingerprint = ModelRegistry::fingerprint(config);
  fitted.epoch = epoch;
  fitted.corpus_size = observations.size();
  for (const std::string& arch : config.archs) {
    for (const model::RendererKind kind : config.renderers) {
      const std::vector<model::RenderSample> samples =
          model::samples_for(observations, arch, kind);
      if (samples.empty()) continue;  // combination excluded from the corpus
      FittedModels::Entry entry;
      entry.arch = arch;
      entry.kind = kind;
      entry.model = model::PerfModel::fit(kind, samples);
      fitted.entries.push_back(std::move(entry));
    }
  }
  fitted.composite = model::CompositeModel::fit(model::composite_samples(observations));
  return fitted;
}

ModelRegistry::Record& ModelRegistry::fit_locked(const model::StudyConfig& config,
                                                 std::uint64_t key) {
  // Caller holds mutex_ and has already missed the cache. The fit runs
  // under the lock: concurrent first queries for the same config must not
  // both pay for (or race on) a calibration study. Fits are rare (once per
  // config) and the study uses its own pool, so the coarse critical section
  // costs nothing in steady state.
  Record record;
  record.config = config;
  record.refittable = true;
  record.observations = model::run_study(config);
  record.bundle = std::make_shared<const FittedModels>(
      fit_bundle(config, record.observations, /*epoch=*/1));
  ++fits_;
  return cache_.emplace(key, std::move(record)).first->second;
}

const FittedModels& ModelRegistry::models_for(const model::StudyConfig& config) {
  const std::uint64_t key = fingerprint(config);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return *it->second.bundle;
  return *fit_locked(config, key).bundle;
}

BundlePtr ModelRegistry::bundle_for(const model::StudyConfig& config) {
  const std::uint64_t key = fingerprint(config);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second.bundle;
  return fit_locked(config, key).bundle;
}

BundlePtr ModelRegistry::current(std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  return it == cache_.end() ? nullptr : it->second.bundle;
}

const FittedModels& ModelRegistry::adopt(const FittedModels& bundle) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(bundle.fingerprint);
  if (it != cache_.end()) return *it->second.bundle;
  Record record;
  record.bundle = std::make_shared<const FittedModels>(bundle);
  return *cache_.emplace(bundle.fingerprint, std::move(record)).first->second.bundle;
}

bool ModelRegistry::append_observations(std::uint64_t fingerprint,
                                        std::vector<model::Observation> observations) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  if (it == cache_.end() || !it->second.refittable) return false;
  Record& record = it->second;
  record.pending.insert(record.pending.end(),
                        std::make_move_iterator(observations.begin()),
                        std::make_move_iterator(observations.end()));
  return true;
}

std::size_t ModelRegistry::pending_observations(std::uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  return it == cache_.end() ? 0 : it->second.pending.size();
}

BundlePtr ModelRegistry::refit(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(fingerprint);
  if (it == cache_.end() || !it->second.refittable) return nullptr;
  Record& record = it->second;
  // Fold the pending observations into the corpus, then fit exactly the
  // way the initial fit did — the new bundle is bit-identical to a fresh
  // fit_bundle() of the appended corpus. The regressions are linear solves
  // over a few dozen samples, so fitting under the lock is fine; heavy
  // observation GENERATION (a drift study) belongs to the caller, outside.
  record.observations.insert(record.observations.end(),
                             std::make_move_iterator(record.pending.begin()),
                             std::make_move_iterator(record.pending.end()));
  record.pending.clear();
  BundlePtr fresh = std::make_shared<const FittedModels>(
      fit_bundle(record.config, record.observations, record.bundle->epoch + 1));
  retired_.push_back(std::move(record.bundle));  // keep old references valid
  record.bundle = fresh;
  ++refits_;
  return fresh;
}

int ModelRegistry::fits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fits_;
}

int ModelRegistry::refits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return refits_;
}

}  // namespace isr::serve
