#include "serve/registry.hpp"

#include "math/rng.hpp"

namespace isr::serve {

const model::PerfModel* FittedModels::find(const std::string& arch,
                                           model::RendererKind kind) const {
  for (const Entry& e : entries)
    if (e.arch == arch && e.kind == kind) return &e.model;
  return nullptr;
}

std::uint64_t ModelRegistry::fingerprint(const model::StudyConfig& config) {
  // Length-prefix every list so ({"a","b"},{}) and ({"a"},{"b"}) cannot
  // collide by concatenation.
  std::uint64_t h = hash_seed(config.seed, std::uint64_t{0x5EBEDull});
  h = hash_combine(h, config.archs.size());
  for (const std::string& a : config.archs) h = hash_combine(h, a);
  h = hash_combine(h, config.renderers.size());
  for (const model::RendererKind k : config.renderers)
    h = hash_combine(h, static_cast<std::uint64_t>(k));
  h = hash_combine(h, config.sims.size());
  for (const std::string& s : config.sims) h = hash_combine(h, s);
  h = hash_combine(h, config.tasks.size());
  for (const int t : config.tasks) h = hash_combine(h, static_cast<std::uint64_t>(t));
  h = hash_combine(h, static_cast<std::uint64_t>(config.samples_per_config));
  h = hash_combine(h, static_cast<std::uint64_t>(config.min_image));
  h = hash_combine(h, static_cast<std::uint64_t>(config.max_image));
  h = hash_combine(h, static_cast<std::uint64_t>(config.min_n));
  h = hash_combine(h, static_cast<std::uint64_t>(config.max_n));
  h = hash_combine(h, static_cast<std::uint64_t>(config.vr_samples));
  h = hash_combine(h, static_cast<std::uint64_t>(config.sim_steps));
  return h;
}

const FittedModels& ModelRegistry::models_for(const model::StudyConfig& config) {
  const std::uint64_t key = fingerprint(config);
  // The fit runs under the lock: concurrent first queries for the same
  // config must not both pay for (or race on) a calibration study. Fits
  // are rare (once per config) and the study uses its own pool, so the
  // coarse critical section costs nothing in steady state.
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return *it->second;

  auto fitted = std::make_unique<FittedModels>();
  fitted->fingerprint = key;
  const std::vector<model::Observation> obs = model::run_study(config);
  fitted->corpus_size = obs.size();
  for (const std::string& arch : config.archs) {
    for (const model::RendererKind kind : config.renderers) {
      const std::vector<model::RenderSample> samples = model::samples_for(obs, arch, kind);
      if (samples.empty()) continue;  // combination excluded from the corpus
      FittedModels::Entry entry;
      entry.arch = arch;
      entry.kind = kind;
      entry.model = model::PerfModel::fit(kind, samples);
      fitted->entries.push_back(std::move(entry));
    }
  }
  fitted->composite = model::CompositeModel::fit(model::composite_samples(obs));
  ++fits_;
  return *cache_.emplace(key, std::move(fitted)).first->second;
}

const FittedModels& ModelRegistry::adopt(const FittedModels& bundle) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = cache_.find(bundle.fingerprint);
  if (it != cache_.end()) return *it->second;
  return *cache_.emplace(bundle.fingerprint, std::make_unique<FittedModels>(bundle))
              .first->second;
}

int ModelRegistry::fits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fits_;
}

}  // namespace isr::serve
