// Fitted-model ownership for the serving layer: a ModelRegistry fits the
// §5.5 models from a calibration corpus ONCE and hands out the fitted
// bundle on every subsequent query. The old advisor CLI refit from scratch
// per invocation — fine for one question, fatal for query traffic, since a
// calibration study is seconds of work and a prediction is nanoseconds.
//
// Cache key: a hash_seed-derived fingerprint over every StudyConfig field
// that shapes the corpus. `threads` is deliberately excluded — run_study
// guarantees the corpus is bit-identical at any thread count, so a config
// that differs only in worker count must hit the same cache entry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/perfmodel.hpp"
#include "model/study.hpp"

namespace isr::serve {

// Everything fitted from one calibration corpus: the up-to-six single-node
// models (arch x renderer, §5.5-§5.6) plus the compositing model (Eq. 5.5).
struct FittedModels {
  std::uint64_t fingerprint = 0;
  std::size_t corpus_size = 0;  // observations the fits consumed

  struct Entry {
    std::string arch;
    model::RendererKind kind = model::RendererKind::kRayTrace;
    model::PerfModel model;
  };
  std::vector<Entry> entries;  // calibration-config order (archs x renderers)
  model::CompositeModel composite;

  // Fitted model for (arch, kind), or nullptr when the calibration config
  // never produced samples for that combination (e.g. the volume renderer
  // on a surface-only corpus, or an arch outside the config).
  const model::PerfModel* find(const std::string& arch, model::RendererKind kind) const;
};

class ModelRegistry {
 public:
  // Corpus fingerprint: pure function of the config fields that determine
  // the observations (sims, archs, renderers, tasks, sizes, seed — not
  // `threads`, see header comment).
  static std::uint64_t fingerprint(const model::StudyConfig& config);

  // The fitted bundle for `config`, running the calibration study and the
  // regressions at most once per fingerprint. Thread-safe; the returned
  // reference stays valid for the registry's lifetime (entries are never
  // evicted — calibration configs are few and bundles are tiny).
  const FittedModels& models_for(const model::StudyConfig& config);

  // Replication path: installs a copy of an already-fitted bundle under its
  // own fingerprint, so a replica registry (one per cluster shard) answers
  // from the primary's models without re-running the calibration study.
  // Does NOT count as a fit; an existing entry for the fingerprint is kept
  // (first writer wins — bundles for one fingerprint are identical).
  const FittedModels& adopt(const FittedModels& bundle);

  // Number of calibration fits performed so far (cache misses; adopted
  // bundles excluded).
  int fits() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::unique_ptr<FittedModels>> cache_;
  int fits_ = 0;
};

}  // namespace isr::serve
