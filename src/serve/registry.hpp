// Fitted-model ownership for the serving layer: a ModelRegistry fits the
// §5.5 models from a calibration corpus ONCE and hands out the fitted
// bundle on every subsequent query. The old advisor CLI refit from scratch
// per invocation — fine for one question, fatal for query traffic, since a
// calibration study is seconds of work and a prediction is nanoseconds.
//
// Cache key: a hash_seed-derived fingerprint over every StudyConfig field
// that shapes the corpus. `threads` is deliberately excluded — run_study
// guarantees the corpus is bit-identical at any thread count, so a config
// that differs only in worker count must hit the same cache entry.
//
// Live recalibration: bundles are EPOCH-VERSIONED. The initial fit is
// epoch 1; append_observations() queues new measurements against a fitted
// fingerprint, and refit() folds them into the corpus and fits a fresh
// bundle at epoch + 1. The refitted bundle is bit-identical to a fresh
// fit_bundle() of the same appended corpus — refitting is re-fitting, not
// an incremental approximation. Old bundles stay alive (shared_ptr + a
// retired list), so both the reference-returning API and any in-flight
// request pinning an old epoch remain valid across swaps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/perfmodel.hpp"
#include "model/study.hpp"

namespace isr::serve {

// Everything fitted from one calibration corpus: the up-to-six single-node
// models (arch x renderer, §5.5-§5.6) plus the compositing model (Eq. 5.5).
struct FittedModels {
  std::uint64_t fingerprint = 0;
  // Version of this bundle within its fingerprint: 1 = the initial fit,
  // +1 per refit. 0 only on a default-constructed (unfitted) value, so it
  // doubles as "no bundle" in cache-entry and metrics contexts.
  std::uint64_t epoch = 0;
  std::size_t corpus_size = 0;  // observations the fits consumed

  struct Entry {
    std::string arch;
    model::RendererKind kind = model::RendererKind::kRayTrace;
    model::PerfModel model;
  };
  std::vector<Entry> entries;  // calibration-config order (archs x renderers)
  model::CompositeModel composite;

  // Fitted model for (arch, kind), or nullptr when the calibration config
  // never produced samples for that combination (e.g. the volume renderer
  // on a surface-only corpus, or an arch outside the config).
  const model::PerfModel* find(const std::string& arch, model::RendererKind kind) const;
};

// Shared, immutable ownership of one bundle version. In-flight requests pin
// the epoch they were admitted under by holding one of these; swapping the
// registry's current bundle can never tear or invalidate what they read.
using BundlePtr = std::shared_ptr<const FittedModels>;

// The fitting core every path shares: fit each (arch, renderer) model that
// has samples in `observations`, then the compositing model, exactly in
// calibration-config order. A pure function of its arguments — the same
// observations produce bit-identical coefficients whether they arrive as
// one fresh corpus or as a fitted corpus plus appended measurements (the
// refit-vs-fresh-fit identity test_recal gates). `epoch` is stamped on the
// result; fingerprint is derived from `config`.
FittedModels fit_bundle(const model::StudyConfig& config,
                        const std::vector<model::Observation>& observations,
                        std::uint64_t epoch = 1);

class ModelRegistry {
 public:
  // Corpus fingerprint: pure function of the config fields that determine
  // the observations (sims, archs, renderers, tasks, sizes, seed — not
  // `threads`, see header comment).
  static std::uint64_t fingerprint(const model::StudyConfig& config);

  // The fitted bundle for `config`, running the calibration study and the
  // regressions at most once per fingerprint. Thread-safe; the returned
  // reference stays valid for the registry's lifetime (entries are never
  // evicted, and refits retire — never destroy — superseded bundles).
  // Returns the CURRENT epoch's bundle; callers that must survive a
  // concurrent refit should take shared ownership via bundle_for().
  const FittedModels& models_for(const model::StudyConfig& config);

  // Same fit-once contract, shared ownership: the serving cluster pins one
  // of these per admitted request so an in-flight request finishes on the
  // epoch it was admitted under even while a refit swaps the current.
  BundlePtr bundle_for(const model::StudyConfig& config);

  // The current bundle for an already-fitted (or adopted) fingerprint;
  // nullptr when the fingerprint is unknown here. Never fits.
  BundlePtr current(std::uint64_t fingerprint) const;

  // Replication path: installs a copy of an already-fitted bundle under its
  // own fingerprint, so a replica registry answers from the primary's
  // models without re-running the calibration study. Does NOT count as a
  // fit; an existing entry for the fingerprint is kept (first writer wins —
  // bundles for one fingerprint are identical). Adopted entries carry no
  // corpus, so they cannot be refitted (append/refit return false/nullptr).
  const FittedModels& adopt(const FittedModels& bundle);

  // Queues new observations against a fitted fingerprint for the next
  // refit. Returns false when the fingerprint is unknown or was adopted
  // rather than fitted here (no corpus to append to). Cheap: no fitting
  // happens until refit().
  bool append_observations(std::uint64_t fingerprint,
                           std::vector<model::Observation> observations);

  // Observations appended but not yet folded in by a refit.
  std::size_t pending_observations(std::uint64_t fingerprint) const;

  // Folds every pending observation into the fingerprint's corpus and fits
  // a fresh bundle at epoch + 1, atomically replacing the current one (the
  // superseded bundle is retired, keeping old references and pins valid).
  // Returns the new bundle, or nullptr when the fingerprint is unknown or
  // not refittable (adopted). Bit-identical to fit_bundle() of the same
  // appended corpus.
  BundlePtr refit(std::uint64_t fingerprint);

  // Number of calibration fits performed so far (cache misses; adopted
  // bundles and refits excluded).
  int fits() const;
  // Number of refits performed so far.
  int refits() const;

 private:
  // One fingerprint's record: the config and corpus it was fitted from
  // (absent for adopted entries), observations queued for the next refit,
  // and the current bundle.
  struct Record {
    model::StudyConfig config;
    bool refittable = false;  // fitted here (config + corpus retained)
    std::vector<model::Observation> observations;  // the fitted corpus
    std::vector<model::Observation> pending;       // appended, not yet fitted
    BundlePtr bundle;
  };

  Record& fit_locked(const model::StudyConfig& config, std::uint64_t key);

  mutable std::mutex mutex_;
  std::map<std::uint64_t, Record> cache_;
  // Superseded bundles, pinned for the registry's lifetime so the
  // reference-returning API stays valid across refits. Bundles are tiny
  // (a few coefficient vectors) and refits are rare.
  std::vector<BundlePtr> retired_;
  int fits_ = 0;
  int refits_ = 0;
};

}  // namespace isr::serve
