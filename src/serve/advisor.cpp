#include "serve/advisor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "core/parallel_for.hpp"
#include "model/feasibility.hpp"

namespace isr::serve {

namespace {

AdvisorResponse error_response(std::string message) {
  AdvisorResponse r;
  r.status = AdvisorResponse::Status::kError;
  r.error = std::move(message);
  return r;
}

// Per-item validation shared by every path, in the historical check order
// (so error text never depends on which entry point rejected the request).
// Returns nullptr for a valid request.
const char* validation_error(const AdvisorRequest& req) {
  if (req.n_per_task <= 0) return "n_per_task must be > 0";
  if (req.tasks <= 0) return "tasks must be > 0";
  if (req.image_edge <= 0) return "image_edge must be > 0";
  // Finiteness before sign: a NaN or +/-inf budget must be rejected here —
  // +inf satisfies ">= 0" and would reach a float->long cast (UB), and the
  // C++ API can be called with values the wire-format parser never admits.
  if (!std::isfinite(req.budget_seconds)) return "budget_seconds must be finite";
  if (req.budget_seconds < 0.0) return "budget_seconds must be >= 0";
  if (req.frames <= 0) return "frames must be > 0";
  return nullptr;
}

// Writes the same error response into every slot of the group — the
// message is a function of (arch, renderer) only, so it is built once and
// copied, where the per-item path rebuilt it per request.
void fill_group_error(const std::string& message, AdvisorResponse* const* responses,
                      const std::uint32_t* idx, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    AdvisorResponse& r = *responses[idx[k]];
    r = AdvisorResponse{};
    r.status = AdvisorResponse::Status::kError;
    r.error = message;
  }
}

// Evaluates one (arch, renderer) group: the model lookups and their error
// strings are hoisted out of the item loop, configurations map once into
// an arena column, and each fitted model's terms are evaluated across the
// whole group as one SoA prediction column.
void evaluate_group(const FittedModels& fitted, const model::MappingConstants& constants,
                    const AdvisorRequest* const* requests,
                    AdvisorResponse* const* responses, const std::uint32_t* idx,
                    std::size_t n, core::Arena& arena) {
  const AdvisorRequest& head = *requests[idx[0]];

  const model::PerfModel* m = fitted.find(head.arch, head.renderer);
  if (!m) {
    fill_group_error("no fitted model for arch \"" + head.arch + "\" renderer \"" +
                         renderer_token(head.renderer) + "\" in the calibration corpus",
                     responses, idx, n);
    return;
  }
  if (!m->ok()) {
    fill_group_error("model fit failed for arch \"" + head.arch + "\" renderer \"" +
                         renderer_token(head.renderer) + "\" (degenerate calibration corpus)",
                     responses, idx, n);
    return;
  }

  // Fig 14 columns: map each configuration to model variables (§5.8) once,
  // then one render and one build prediction column for the whole group.
  model::ModelInputs* in = arena.alloc_array<model::ModelInputs>(n);
  for (std::size_t k = 0; k < n; ++k) {
    const AdvisorRequest& req = *requests[idx[k]];
    const double pixels = static_cast<double>(req.image_edge) * req.image_edge;
    in[k] = model::map_configuration(m->kind(), req.n_per_task, req.tasks, pixels, constants);
  }
  double* frame = arena.alloc_array<double>(n);
  double* build = arena.alloc_array<double>(n);
  m->predict_render_batch(in, n, frame);
  m->predict_build_batch(in, n, build);

  // Fig 15 columns: the surface-rendering verdict, when the corpus fitted
  // both surface models for this arch. kRayTrace and kRasterize share the
  // §5.8 surface mapping (map_configuration is pure and branches only on
  // volume-vs-surface), so one input column serves both models — and when
  // the request itself is a surface renderer, the budget column above IS
  // that column.
  const model::PerfModel* rt = fitted.find(head.arch, model::RendererKind::kRayTrace);
  const model::PerfModel* rast = fitted.find(head.arch, model::RendererKind::kRasterize);
  const bool has_verdict = rt && rt->ok() && rast && rast->ok();
  double* rt_render = nullptr;
  double* rt_build = nullptr;
  double* rast_render = nullptr;
  if (has_verdict) {
    const model::ModelInputs* surface = in;
    if (head.renderer == model::RendererKind::kVolume) {
      model::ModelInputs* s = arena.alloc_array<model::ModelInputs>(n);
      for (std::size_t k = 0; k < n; ++k) {
        const AdvisorRequest& req = *requests[idx[k]];
        const double pixels = static_cast<double>(req.image_edge) * req.image_edge;
        s[k] = model::map_configuration(model::RendererKind::kRayTrace, req.n_per_task,
                                        req.tasks, pixels, constants);
      }
      surface = s;
    }
    rt_render = arena.alloc_array<double>(n);
    rt_build = arena.alloc_array<double>(n);
    rast_render = arena.alloc_array<double>(n);
    rt->predict_render_batch(surface, n, rt_render);
    rt->predict_build_batch(surface, n, rt_build);
    rast->predict_render_batch(surface, n, rast_render);
  }

  // Finalize per item — pure arithmetic on the columns, identical to the
  // historical per-item path (model/feasibility.cpp) term for term.
  for (std::size_t k = 0; k < n; ++k) {
    const AdvisorRequest& req = *requests[idx[k]];
    AdvisorResponse& resp = *responses[idx[k]];
    resp = AdvisorResponse{};
    resp.status = AdvisorResponse::Status::kOk;
    resp.frame_seconds = frame[k];
    resp.build_seconds = build[k];
    resp.images_in_budget = model::images_for_budget(req.budget_seconds, frame[k], build[k]);
    if (has_verdict) {
      const double frames = static_cast<double>(req.frames);
      resp.has_verdict = true;
      resp.rt_seconds = rt_build[k] + frames * rt_render[k];
      resp.rast_seconds = frames * rast_render[k];
      resp.ratio = resp.rt_seconds > 0.0 ? resp.rast_seconds / resp.rt_seconds : 0.0;
      resp.prefer_ray_tracing = resp.ratio > 1.0;
    }
  }
}

// The grouped evaluator behind both public answer_batch forms. Assumes the
// arena was already rewound by the caller.
void answer_batch_impl(const FittedModels& fitted, const model::MappingConstants& constants,
                       const AdvisorRequest* const* requests, std::size_t count,
                       AdvisorResponse* const* responses, core::Arena& arena) {
  // Pass 1: validation, item by item; valid items enter the grouping pool.
  std::uint32_t* pool = arena.alloc_array<std::uint32_t>(count);
  std::size_t pooled = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (const char* err = validation_error(*requests[i])) {
      *responses[i] = error_response(err);
    } else {
      pool[pooled++] = static_cast<std::uint32_t>(i);
    }
  }

  // Pass 2: group by (arch, renderer) with stable selection sweeps —
  // O(groups x pooled) key compares, and the group count is bounded by the
  // corpus's (arch, renderer) spread, not the batch size.
  std::uint32_t* order = arena.alloc_array<std::uint32_t>(pooled);
  unsigned char* taken = arena.alloc_array<unsigned char>(pooled);
  for (std::size_t k = 0; k < pooled; ++k) taken[k] = 0;
  std::size_t done = 0;
  std::size_t first = 0;  // rolling first-unclaimed cursor
  while (done < pooled) {
    while (taken[first]) ++first;
    const AdvisorRequest& key = *requests[pool[first]];
    const std::size_t group_begin = done;
    for (std::size_t k = first; k < pooled; ++k) {
      if (taken[k]) continue;
      const AdvisorRequest& req = *requests[pool[k]];
      if (req.renderer == key.renderer && req.arch == key.arch) {
        taken[k] = 1;
        order[done++] = pool[k];
      }
    }
    evaluate_group(fitted, constants, requests, responses, order + group_begin,
                   done - group_begin, arena);
  }
}

}  // namespace

const char* status_name(AdvisorResponse::Status status) {
  switch (status) {
    case AdvisorResponse::Status::kOk: return "ok";
    case AdvisorResponse::Status::kShed: return "shed";
    case AdvisorResponse::Status::kDegraded: return "degraded";
    case AdvisorResponse::Status::kError: return "error";
  }
  return "?";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  json_escape(s, out);
  return out;
}

void json_escape(const std::string& s, std::string& out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
}

void answer_batch(const FittedModels& fitted, const model::MappingConstants& constants,
                  const AdvisorRequest* const* requests, std::size_t count,
                  AdvisorResponse* const* responses, EvalScratch& scratch) {
  scratch.arena.reset();
  answer_batch_impl(fitted, constants, requests, count, responses, scratch.arena);
}

void answer_batch(const FittedModels& fitted, const model::MappingConstants& constants,
                  const AdvisorRequest* requests, std::size_t count,
                  AdvisorResponse* responses, EvalScratch& scratch) {
  scratch.arena.reset();
  const AdvisorRequest** rp = scratch.arena.alloc_array<const AdvisorRequest*>(count);
  AdvisorResponse** sp = scratch.arena.alloc_array<AdvisorResponse*>(count);
  for (std::size_t i = 0; i < count; ++i) {
    rp[i] = requests + i;
    sp[i] = responses + i;
  }
  answer_batch_impl(fitted, constants, rp, count, sp, scratch.arena);
}

AdvisorResponse answer_request(const FittedModels& fitted,
                               const model::MappingConstants& constants,
                               const AdvisorRequest& request) {
  // One-item batch through the canonical evaluator; the thread-local
  // scratch keeps the wrapper allocation-free at steady state too.
  thread_local EvalScratch scratch;
  AdvisorResponse response;
  const AdvisorRequest* rp = &request;
  AdvisorResponse* sp = &response;
  answer_batch(fitted, constants, &rp, 1, &sp, scratch);
  return response;
}

bool responses_identical(const AdvisorResponse& a, const AdvisorResponse& b) {
  return a.status == b.status && a.error == b.error &&
         a.frame_seconds == b.frame_seconds &&
         a.build_seconds == b.build_seconds && a.images_in_budget == b.images_in_budget &&
         a.has_verdict == b.has_verdict && a.rt_seconds == b.rt_seconds &&
         a.rast_seconds == b.rast_seconds && a.ratio == b.ratio &&
         a.prefer_ray_tracing == b.prefer_ray_tracing;
}

std::string to_jsonl(const AdvisorResponse& r) {
  std::string line;
  to_jsonl(r, line);
  return line;
}

void to_jsonl(const AdvisorResponse& r, std::string& out) {
  // Shed and degraded responses carry explicit markers clients can branch
  // on without parsing the error text; ordinary errors keep their
  // historical bytes.
  if (!r.ok()) {
    out += "{\"ok\":false,";
    if (r.shed()) out += "\"shed\":true,";
    if (r.degraded()) out += "\"degraded\":true,";
    out += "\"error\":\"";
    json_escape(r.error, out);
    out += "\"}";
    return;
  }
  const char* recommendation =
      r.has_verdict ? (r.prefer_ray_tracing ? "raytrace" : "rasterize") : "";
  const char* fmt =
      "{\"ok\":true,\"frame_seconds\":%.9g,\"build_seconds\":%.9g,"
      "\"images_in_budget\":%ld,\"has_verdict\":%s,\"rt_seconds\":%.9g,"
      "\"rast_seconds\":%.9g,\"ratio\":%.9g,\"recommendation\":\"%s\"}";
  const char* verdict = r.has_verdict ? "true" : "false";
  // One snprintf into a stack buffer covers every real line (~135 bytes of
  // fixed text, six %.9g fields of <= 16 chars, one saturating long): the
  // two-pass fallback exists only for pathological formats, never pays on
  // the hot path.
  char buf[320];
  const int len = std::snprintf(buf, sizeof(buf), fmt, r.frame_seconds, r.build_seconds,
                                r.images_in_budget, verdict, r.rt_seconds, r.rast_seconds,
                                r.ratio, recommendation);
  if (len > 0 && static_cast<std::size_t>(len) < sizeof(buf)) {
    out.append(buf, static_cast<std::size_t>(len));
    return;
  }
  std::string line(static_cast<std::size_t>(len > 0 ? len : 0), '\0');
  std::snprintf(&line[0], line.size() + 1, fmt, r.frame_seconds, r.build_seconds,
                r.images_in_budget, verdict, r.rt_seconds, r.rast_seconds, r.ratio,
                recommendation);
  out += line;
}

const char* renderer_token(model::RendererKind kind) {
  switch (kind) {
    case model::RendererKind::kRayTrace: return "raytrace";
    case model::RendererKind::kRasterize: return "rasterize";
    case model::RendererKind::kVolume: return "volume";
  }
  return "?";
}

bool renderer_from_token(const std::string& token, model::RendererKind& kind) {
  if (token == "raytrace") kind = model::RendererKind::kRayTrace;
  else if (token == "rasterize") kind = model::RendererKind::kRasterize;
  else if (token == "volume") kind = model::RendererKind::kVolume;
  else return false;
  return true;
}

model::StudyConfig default_calibration() {
  model::StudyConfig cfg;
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  return cfg;
}

ServiceConfig::ServiceConfig() : calibration(default_calibration()) {
  // 0 = derive from the calibration corpus at service construction. The
  // SPR mapping must assume the sampling density the corpus was actually
  // rendered at, so overriding calibration.vr_samples alone stays
  // consistent; set spr_base explicitly to decouple them.
  constants.spr_base = 0.0;
}

AdvisorService::AdvisorService(ServiceConfig config, std::shared_ptr<ModelRegistry> registry)
    : config_(std::move(config)),
      registry_(registry ? std::move(registry) : std::make_shared<ModelRegistry>()),
      pool_(config_.threads) {
  // The advisor's historical density->SPR factor (0.93 * vr_samples; 186
  // for the default 200-sample calibration).
  if (config_.constants.spr_base <= 0.0)
    config_.constants.spr_base = 0.93 * config_.calibration.vr_samples;
}

AdvisorResponse AdvisorService::serve_one(const AdvisorRequest& request) {
  const FittedModels& fitted = registry_->models_for(config_.calibration);
  return answer_request(fitted, config_.constants, request);
}

std::vector<AdvisorResponse> AdvisorService::serve_batch(
    const std::vector<AdvisorRequest>& requests) {
  // A batch of zero answerable requests (e.g. every line of a JSONL batch
  // failed to parse) must not pay for a calibration fit.
  if (requests.empty()) return {};
  // Fit (or cache-hit) once, before the fan-out, so workers never contend
  // on the registry lock.
  const FittedModels& fitted = registry_->models_for(config_.calibration);
  const std::size_t n = requests.size();
  std::vector<AdvisorResponse> responses(n);
  // Contiguous chunks through the batched evaluator — the same ~8 chunks
  // per lane the old per-item fan-out used, but each chunk is one
  // answer_batch call with per-thread scratch. Responses are pure per
  // request, so any chunking is bit-identical at any thread count.
  const std::size_t lanes = static_cast<std::size_t>(pool_.size());
  const std::size_t grain = n / (lanes * 8) > 0 ? n / (lanes * 8) : 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  core::parallel_for(pool_, chunks, [&](std::size_t c) {
    const std::size_t begin = c * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    thread_local EvalScratch scratch;
    answer_batch(fitted, config_.constants, requests.data() + begin, end - begin,
                 responses.data() + begin, scratch);
  });
  return responses;
}

}  // namespace isr::serve
