#include "serve/advisor.hpp"

#include <cmath>
#include <cstdio>

#include "core/parallel_for.hpp"
#include "model/feasibility.hpp"

namespace isr::serve {

namespace {

AdvisorResponse error_response(std::string message) {
  AdvisorResponse r;
  r.ok = false;
  r.error = std::move(message);
  return r;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

AdvisorResponse answer_request(const FittedModels& fitted,
                               const model::MappingConstants& constants,
                               const AdvisorRequest& req) {
  if (req.n_per_task <= 0) return error_response("n_per_task must be > 0");
  if (req.tasks <= 0) return error_response("tasks must be > 0");
  if (req.image_edge <= 0) return error_response("image_edge must be > 0");
  // Finiteness before sign: a NaN or +/-inf budget must be rejected here —
  // +inf satisfies ">= 0" and would reach a float->long cast (UB), and the
  // C++ API can be called with values the wire-format parser never admits.
  if (!std::isfinite(req.budget_seconds))
    return error_response("budget_seconds must be finite");
  if (req.budget_seconds < 0.0) return error_response("budget_seconds must be >= 0");
  if (req.frames <= 0) return error_response("frames must be > 0");

  const model::PerfModel* m = fitted.find(req.arch, req.renderer);
  if (!m)
    return error_response("no fitted model for arch \"" + req.arch + "\" renderer \"" +
                          renderer_token(req.renderer) + "\" in the calibration corpus");
  if (!m->ok())
    return error_response("model fit failed for arch \"" + req.arch + "\" renderer \"" +
                          renderer_token(req.renderer) + "\" (degenerate calibration corpus)");

  AdvisorResponse resp;
  resp.ok = true;

  // Fig 14: one frame and the images-in-budget count at this configuration.
  const std::vector<model::BudgetPoint> points = model::images_in_budget(
      *m, req.budget_seconds, req.n_per_task, req.tasks, {req.image_edge}, constants);
  resp.frame_seconds = points[0].frame_seconds;
  resp.build_seconds = points[0].build_seconds;
  resp.images_in_budget = points[0].images_in_budget;

  // Fig 15: the surface-rendering verdict on this arch, when the corpus
  // fitted both surface models.
  const model::PerfModel* rt = fitted.find(req.arch, model::RendererKind::kRayTrace);
  const model::PerfModel* rast = fitted.find(req.arch, model::RendererKind::kRasterize);
  if (rt && rt->ok() && rast && rast->ok()) {
    const std::vector<model::RatioCell> cells = model::rt_vs_rast(
        *rt, *rast, req.frames, req.tasks, {req.image_edge}, {req.n_per_task}, constants);
    resp.has_verdict = true;
    resp.rt_seconds = cells[0].rt_seconds;
    resp.rast_seconds = cells[0].rast_seconds;
    resp.ratio = cells[0].ratio;
    resp.prefer_ray_tracing = cells[0].ratio > 1.0;
  }
  return resp;
}

bool responses_identical(const AdvisorResponse& a, const AdvisorResponse& b) {
  return a.ok == b.ok && a.shed == b.shed && a.degraded == b.degraded &&
         a.error == b.error &&
         a.frame_seconds == b.frame_seconds &&
         a.build_seconds == b.build_seconds && a.images_in_budget == b.images_in_budget &&
         a.has_verdict == b.has_verdict && a.rt_seconds == b.rt_seconds &&
         a.rast_seconds == b.rast_seconds && a.ratio == b.ratio &&
         a.prefer_ray_tracing == b.prefer_ray_tracing;
}

std::string to_jsonl(const AdvisorResponse& r) {
  // Shed and degraded responses carry explicit markers clients can branch
  // on without parsing the error text; ordinary errors keep their
  // historical bytes.
  if (!r.ok)
    return std::string("{\"ok\":false,") + (r.shed ? "\"shed\":true," : "") +
           (r.degraded ? "\"degraded\":true," : "") + "\"error\":\"" +
           json_escape(r.error) + "\"}";
  const char* recommendation =
      r.has_verdict ? (r.prefer_ray_tracing ? "raytrace" : "rasterize") : "";
  // Two-pass snprintf into an exactly-sized string, as in study.cpp.
  const char* fmt =
      "{\"ok\":true,\"frame_seconds\":%.9g,\"build_seconds\":%.9g,"
      "\"images_in_budget\":%ld,\"has_verdict\":%s,\"rt_seconds\":%.9g,"
      "\"rast_seconds\":%.9g,\"ratio\":%.9g,\"recommendation\":\"%s\"}";
  const char* verdict = r.has_verdict ? "true" : "false";
  const int len = std::snprintf(nullptr, 0, fmt, r.frame_seconds, r.build_seconds,
                                r.images_in_budget, verdict, r.rt_seconds, r.rast_seconds,
                                r.ratio, recommendation);
  std::string line(static_cast<std::size_t>(len > 0 ? len : 0), '\0');
  std::snprintf(&line[0], line.size() + 1, fmt, r.frame_seconds, r.build_seconds,
                r.images_in_budget, verdict, r.rt_seconds, r.rast_seconds, r.ratio,
                recommendation);
  return line;
}

const char* renderer_token(model::RendererKind kind) {
  switch (kind) {
    case model::RendererKind::kRayTrace: return "raytrace";
    case model::RendererKind::kRasterize: return "rasterize";
    case model::RendererKind::kVolume: return "volume";
  }
  return "?";
}

bool renderer_from_token(const std::string& token, model::RendererKind& kind) {
  if (token == "raytrace") kind = model::RendererKind::kRayTrace;
  else if (token == "rasterize") kind = model::RendererKind::kRasterize;
  else if (token == "volume") kind = model::RendererKind::kVolume;
  else return false;
  return true;
}

model::StudyConfig default_calibration() {
  model::StudyConfig cfg;
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2, 4};
  cfg.samples_per_config = 3;
  cfg.min_image = 128;
  cfg.max_image = 288;
  cfg.min_n = 20;
  cfg.max_n = 40;
  cfg.vr_samples = 200;
  return cfg;
}

ServiceConfig::ServiceConfig() : calibration(default_calibration()) {
  // 0 = derive from the calibration corpus at service construction. The
  // SPR mapping must assume the sampling density the corpus was actually
  // rendered at, so overriding calibration.vr_samples alone stays
  // consistent; set spr_base explicitly to decouple them.
  constants.spr_base = 0.0;
}

AdvisorService::AdvisorService(ServiceConfig config, std::shared_ptr<ModelRegistry> registry)
    : config_(std::move(config)),
      registry_(registry ? std::move(registry) : std::make_shared<ModelRegistry>()),
      pool_(config_.threads) {
  // The advisor's historical density->SPR factor (0.93 * vr_samples; 186
  // for the default 200-sample calibration).
  if (config_.constants.spr_base <= 0.0)
    config_.constants.spr_base = 0.93 * config_.calibration.vr_samples;
}

AdvisorResponse AdvisorService::serve_one(const AdvisorRequest& request) {
  const FittedModels& fitted = registry_->models_for(config_.calibration);
  return answer_request(fitted, config_.constants, request);
}

std::vector<AdvisorResponse> AdvisorService::serve_batch(
    const std::vector<AdvisorRequest>& requests) {
  // A batch of zero answerable requests (e.g. every line of a JSONL batch
  // failed to parse) must not pay for a calibration fit.
  if (requests.empty()) return {};
  // Fit (or cache-hit) once, before the fan-out, so workers never contend
  // on the registry lock.
  const FittedModels& fitted = registry_->models_for(config_.calibration);
  std::vector<AdvisorResponse> responses(requests.size());
  // Requests are uniform and cheap (a handful of model evaluations), so the
  // auto-chunked variant amortizes queue traffic.
  core::parallel_for_chunked(pool_, requests.size(), [&](std::size_t i) {
    responses[i] = answer_request(fitted, config_.constants, requests[i]);
  });
  return responses;
}

}  // namespace isr::serve
