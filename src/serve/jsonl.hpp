// JSON-lines front-end for the advisor service: one request object per
// input line, one response object per output line, in request order. Blank
// lines (and end of input) flush the accumulated batch through
// AdvisorService::serve_batch, so a client controls batching by where it
// puts blank lines — stream continuously for latency, batch for
// throughput. This is what turns the one-shot advisor CLI into a
// long-lived stdin/stdout service.
//
// Request schema (all keys optional; defaults are AdvisorRequest's):
//   {"corpus":"","arch":"CPU1","renderer":"raytrace","n_per_task":200,
//    "tasks":32,"image_edge":1024,"budget_seconds":60,"frames":100,
//    "deadline_us":0,"priority":1}
// `corpus` selects which resident calibration corpus answers (empty = the
// server's default); see src/cluster/ for multi-corpus serving.
// `deadline_us` (0 = none) and `priority` (0 most urgent .. 7) are the
// streaming-admission QoS knobs: a cluster serving over stream sessions
// may answer {"ok":false,"shed":true,...} when the deadline cannot be met;
// the plain batch path ignores both.
// Unknown keys, type mismatches, and malformed JSON yield an
// {"ok":false,"error":...} response in that request's slot — loud,
// order-preserving, and non-fatal to the rest of the batch. The full
// schema, with the response fields, is documented in docs/ARCHITECTURE.md.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "serve/advisor.hpp"

namespace isr::serve {

// Parses one request line (a flat JSON object; every schema value is a
// string or a number). On success fills `request` (starting from defaults)
// and returns true; on failure returns false and sets `error`.
bool parse_request_line(const std::string& line, AdvisorRequest& request, std::string& error);

// Classifies a response line this repo's wire format emitted: kOk for an
// "ok":true line, kShed / kDegraded for error lines carrying the marker
// key, kError otherwise. With to_jsonl this closes the Status round trip
// (status -> bytes -> status), which test_serve pins down.
AdvisorResponse::Status response_line_status(const std::string& line);

// What answers a parsed batch: response[i] for request[i]. The front-end is
// deliberately agnostic about who serves — a single AdvisorService or the
// sharded cluster (src/cluster/) plug in equally, and layering stays
// downward-only (serve never includes cluster).
using BatchHandler =
    std::function<std::vector<AdvisorResponse>(const std::vector<AdvisorRequest>&)>;

// Reads requests from `in` until EOF, serving each blank-line-delimited
// batch through `handler` and writing responses (and a flush) to `out`.
// Returns the number of requests answered, error responses included.
std::size_t run_jsonl(std::istream& in, std::ostream& out, const BatchHandler& handler);

// Convenience overload serving through `service.serve_batch`.
std::size_t run_jsonl(std::istream& in, std::ostream& out, AdvisorService& service);

// Convenience overload owning a fresh service configured by `config`.
std::size_t run_jsonl(std::istream& in, std::ostream& out, ServiceConfig config = {});

}  // namespace isr::serve
