// Adaptive in situ layer (dissertation Chapter VI, §6.3): the simulation
// registers its constraints (time it is willing to give to visualization,
// memory it can spare) and the layer chooses rendering algorithms from the
// performance models' estimates — "the adaptive layer would choose
// visualization algorithms based on the input from the simulation."
//
// Models are the on-line kind (model/online.hpp), so the planner improves
// as the run produces more measurements.
#pragma once

#include <array>
#include <limits>
#include <string>

#include "model/mapping.hpp"
#include "model/online.hpp"

namespace isr::insitu {

// What the simulation is willing to give up per cycle. These are the two
// resources the paper's cost models price: time (predicted via the fitted
// Eqs. 5.1-5.3 at the §5.8-mapped inputs) and memory (estimated from the
// renderers' working sets, estimate_bytes()).
struct Constraints {
  // Maximum seconds per frame the simulation grants to rendering.
  double max_seconds = std::numeric_limits<double>::infinity();
  // Maximum bytes of extra memory rendering may allocate.
  double max_bytes = std::numeric_limits<double>::infinity();
};

struct Decision {
  model::RendererKind kind = model::RendererKind::kRasterize;
  double predicted_seconds = 0.0;
  double predicted_bytes = 0.0;
  bool feasible = false;    // something satisfied the constraints
  bool calibrated = false;  // models had enough observations to predict
};

class AdaptivePlanner {
 public:
  AdaptivePlanner();

  void set_constraints(const Constraints& constraints) { constraints_ = constraints; }
  const Constraints& constraints() const { return constraints_; }

  // Feed a measurement for one renderer (e.g. from Strawman's PerfLog).
  void observe(model::RendererKind kind, const model::RenderSample& sample);

  // Rough working-set estimate for a renderer at the given inputs: the
  // memory constraint's other half (BVH + ray state for ray tracing; packed
  // framebuffer for rasterization; sample state for volume rendering).
  static double estimate_bytes(model::RendererKind kind, const model::ModelInputs& in,
                               double pixels);

  // Picks the cheapest renderer that satisfies the constraints for the
  // given configuration (surface renderers; volume optional since it
  // answers a different question). `frames` amortizes one-time costs (the
  // ray tracer's BVH build) over a batch, as in the paper's image-database
  // scenario; predicted_seconds is per frame. Falls back to the cheapest
  // overall with feasible=false when nothing fits.
  Decision plan(int n_per_task, int tasks, double pixels, bool include_volume = false,
                int frames = 1, const model::MappingConstants& constants = {}) const;

  const model::OnlineModel& model(model::RendererKind kind) const;

 private:
  model::OnlineModel& model_mut(model::RendererKind kind);

  Constraints constraints_;
  std::array<model::OnlineModel, 3> models_;
};

}  // namespace isr::insitu
