#include "insitu/strawman.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "conduit/blueprint.hpp"
#include "dpp/profiles.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/external_faces.hpp"
#include "mesh/tetrahedralize.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/uvr/unstructured.hpp"
#include "render/vr/volume.hpp"

namespace isr::insitu {

std::string PerfLog::to_csv() const {
  std::ostringstream os;
  os << "cycle,renderer,field,width,height,objects,active_pixels,visible_objects,"
        "pixels_per_tri,samples_per_ray,cells_spanned,total_seconds\n";
  for (const PerfRecord& r : records_) {
    os << r.cycle << "," << r.renderer << "," << r.field << "," << r.width << ","
       << r.height << "," << r.stats.objects << "," << r.stats.active_pixels << ","
       << r.stats.visible_objects << "," << r.stats.pixels_per_tri << ","
       << r.stats.samples_per_ray << "," << r.stats.cells_spanned << ","
       << r.total_seconds << "\n";
  }
  return os.str();
}

Strawman::Strawman() = default;
Strawman::~Strawman() = default;

void Strawman::open(const conduit::Node& options) {
  if (options.has_path("output_dir")) output_dir_ = options["output_dir"].as_string();
  if (options.has_path("web/stream"))
    web_stream_ = options["web/stream"].as_string() == "true";
  if (options.has_path("device")) {
    const std::string name = options["device"].as_string();
    if (name == "host")
      device_ = std::make_unique<dpp::Device>(dpp::Device::host());
    else if (name == "serial")
      device_ = std::make_unique<dpp::Device>(dpp::Device::serial());
    else
      device_ = std::make_unique<dpp::Device>(
          dpp::Device::simulated(dpp::profile_by_name(name)));
  } else {
    device_ = std::make_unique<dpp::Device>(dpp::Device::host());
  }
  opened_ = true;
}

void Strawman::publish(const conduit::Node& data) {
  if (!opened_) throw std::runtime_error("Strawman: publish before open");
  std::string error;
  if (!conduit::blueprint::verify_mesh(data, error))
    throw std::runtime_error("Strawman: published data fails blueprint verify: " + error);
  published_ = &data;
}

void Strawman::execute(const conduit::Node& actions) {
  if (!opened_) throw std::runtime_error("Strawman: execute before open");
  for (std::size_t i = 0; i < actions.child_count(); ++i) {
    const conduit::Node& a = actions.child(i);
    const std::string action = a["action"].as_string();
    if (action == "AddPlot") {
      Plot p;
      p.field = a["var"].as_string();
      p.renderer = a.has_path("renderer") ? a["renderer"].as_string() : "raytracer";
      plots_.push_back(p);
      drawn_ = false;
    } else if (action == "DrawPlots") {
      drawn_ = true;
    } else if (action == "SaveImage") {
      const int width = a.has_path("width") ? static_cast<int>(a["width"].to_int64()) : 512;
      const int height = a.has_path("height") ? static_cast<int>(a["height"].to_int64()) : 512;
      render_plots(width, height);
      const std::string format = a.has_path("format") ? a["format"].as_string() : "png";
      const std::string stem = a["fileName"].as_string();
      const std::string path = output_dir_ + "/" + stem + "." + format;
      const bool ok = format == "ppm" ? image_.write_ppm(path) : image_.write_png(path);
      if (!ok) throw std::runtime_error("Strawman: failed to write " + path);
      saved_images_.push_back(stem + "." + format);
      if (web_stream_) write_stream_index();
    } else {
      throw std::runtime_error("Strawman: unknown action " + action);
    }
  }
}

void Strawman::render_plots(int width, int height) {
  if (!published_) throw std::runtime_error("Strawman: no published data");
  if (plots_.empty()) throw std::runtime_error("Strawman: no plots added");
  if (!drawn_) throw std::runtime_error("Strawman: SaveImage before DrawPlots");
  const conduit::Node& data = *published_;
  const Plot& plot = plots_.back();  // the most recent plot drives the frame

  const int cycle =
      data.has_path("state/cycle") ? static_cast<int>(data["state/cycle"].to_int64()) : 0;
  const std::string ctype = data["coords/type"].as_string();
  const ColorTable colors = ColorTable::cool_warm();

  if (ctype == "uniform") {
    mesh::StructuredGrid grid =
        conduit::blueprint::to_structured(data, plot.field);
    grid.normalize_scalars();
    const Camera cam = Camera::framing(grid.bounds(), width, height);
    view_depth_ = length(grid.bounds().center() - cam.position);
    if (plot.renderer == "volume") {
      TransferFunction tf(colors, 0.0f, 0.25f);
      render::StructuredVolumeRenderer vr(grid, *device_);
      stats_ = vr.render(cam, tf, image_);
    } else {
      const mesh::TriMesh surface = mesh::external_faces(grid);
      if (plot.renderer == "rasterizer") {
        render::Rasterizer rast(surface, *device_);
        stats_ = rast.render(cam, colors, image_);
      } else {
        render::RayTracer rt(surface, *device_);
        stats_ = rt.render(cam, colors, image_);
      }
    }
  } else {
    mesh::HexMesh hexes = conduit::blueprint::to_hex_mesh(data, plot.field);
    // Normalize scalars for the color map.
    float lo = 1e30f, hi = -1e30f;
    for (const float v : hexes.scalars) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo)
      for (float& v : hexes.scalars) v = (v - lo) / (hi - lo);
    const Camera cam = Camera::framing(hexes.bounds(), width, height);
    view_depth_ = length(hexes.bounds().center() - cam.position);
    if (plot.renderer == "volume") {
      const mesh::TetMesh tets = mesh::tetrahedralize(hexes);
      TransferFunction tf(colors, 0.0f, 0.25f);
      render::UnstructuredVolumeRenderer uvr(tets, *device_);
      stats_ = uvr.render(cam, tf, image_);
    } else {
      const mesh::TriMesh surface = mesh::external_faces(hexes);
      if (plot.renderer == "rasterizer") {
        render::Rasterizer rast(surface, *device_);
        stats_ = rast.render(cam, colors, image_);
      } else {
        render::RayTracer rt(surface, *device_);
        stats_ = rt.render(cam, colors, image_);
      }
    }
  }

  PerfRecord rec;
  rec.cycle = cycle;
  rec.renderer = plot.renderer;
  rec.field = plot.field;
  rec.width = width;
  rec.height = height;
  rec.stats = stats_;
  rec.total_seconds = stats_.total_seconds();
  log_.append(std::move(rec));
}

void Strawman::write_stream_index() const {
  // WebSocket-streaming substitute: a static HTML page that shows the most
  // recent images (R8's "streaming to a web browser" delivery mechanism).
  std::ofstream os(output_dir_ + "/stream.html");
  os << "<!doctype html><html><head><title>strawman stream</title>"
     << "<meta http-equiv=\"refresh\" content=\"1\"></head><body>\n";
  const std::size_t first = saved_images_.size() > 8 ? saved_images_.size() - 8 : 0;
  for (std::size_t i = saved_images_.size(); i > first; --i)
    os << "<img src=\"" << saved_images_[i - 1] << "\" width=\"45%\">\n";
  os << "</body></html>\n";
}

void Strawman::close() {
  published_ = nullptr;
  plots_.clear();
  opened_ = false;
}

}  // namespace isr::insitu
