// Strawman-like in situ visualization runtime (dissertation Chapter IV).
//
// The simulation-facing API is four calls — Open, Publish, Execute, Close —
// with all mesh data and actions described as conduit::Node trees, exactly
// as in Listings 4.1-4.3:
//
//   Strawman strawman;
//   conduit::Node options;
//   options["output_dir"] = ".";
//   strawman.open(options);
//   strawman.publish(data);      // blueprint-conventions mesh description
//   strawman.execute(actions);   // AddPlot / DrawPlots / SaveImage
//   strawman.close();
//
// Supported actions:
//   {action: "AddPlot",   var: <field>, renderer: "raytracer" (default) |
//                                        "rasterizer" | "volume"}
//   {action: "DrawPlots"}
//   {action: "SaveImage", fileName: <stem>, format: "png"|"ppm",
//                         width: W, height: H}
//
// Every Execute records phase timings and model input variables into the
// PerfLog — the per-run "data gathering infrastructure" sketched in the
// dissertation's Chapter VI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "conduit/node.hpp"
#include "dpp/device.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::insitu {

struct PerfRecord {
  int cycle = 0;
  std::string renderer;
  std::string field;
  int width = 0, height = 0;
  render::RenderStats stats;
  double total_seconds = 0.0;
};

class PerfLog {
 public:
  void append(PerfRecord rec) { records_.push_back(std::move(rec)); }
  const std::vector<PerfRecord>& records() const { return records_; }
  // One CSV row per render: cycle, renderer, variables, phase times.
  std::string to_csv() const;

 private:
  std::vector<PerfRecord> records_;
};

class Strawman {
 public:
  Strawman();
  ~Strawman();

  // options: "output_dir" (default "."), "device" (profile name, default
  // the host CPU), "web/stream" ("true" writes an HTML image index).
  void open(const conduit::Node& options);

  // Publishes (does not copy) the simulation's mesh description; the node
  // must stay alive until close() or the next publish(). Verification
  // against the blueprint conventions happens here.
  void publish(const conduit::Node& data);

  void execute(const conduit::Node& actions);

  void close();

  const PerfLog& perf_log() const { return log_; }
  const render::Image& last_image() const { return image_; }
  const render::RenderStats& last_stats() const { return stats_; }
  // Camera depth of the published domain (for external compositing).
  float last_view_depth() const { return view_depth_; }

 private:
  struct Plot {
    std::string field;
    std::string renderer;  // "raytracer" | "rasterizer" | "volume"
  };

  void render_plots(int width, int height);
  void write_stream_index() const;

  bool opened_ = false;
  std::string output_dir_ = ".";
  bool web_stream_ = false;
  std::unique_ptr<dpp::Device> device_;
  const conduit::Node* published_ = nullptr;
  std::vector<Plot> plots_;
  bool drawn_ = false;
  render::Image image_;
  render::RenderStats stats_;
  float view_depth_ = 0.0f;
  PerfLog log_;
  std::vector<std::string> saved_images_;
};

}  // namespace isr::insitu
