#include "insitu/adaptive.hpp"

namespace isr::insitu {

using model::ModelInputs;
using model::RendererKind;

AdaptivePlanner::AdaptivePlanner()
    : models_{model::OnlineModel(RendererKind::kRayTrace),
              model::OnlineModel(RendererKind::kRasterize),
              model::OnlineModel(RendererKind::kVolume)} {}

namespace {
std::size_t index_of(RendererKind kind) {
  switch (kind) {
    case RendererKind::kRayTrace: return 0;
    case RendererKind::kRasterize: return 1;
    case RendererKind::kVolume: return 2;
  }
  return 0;
}
}  // namespace

void AdaptivePlanner::observe(RendererKind kind, const model::RenderSample& sample) {
  model_mut(kind).observe(sample);
}

model::OnlineModel& AdaptivePlanner::model_mut(RendererKind kind) {
  return models_[index_of(kind)];
}

const model::OnlineModel& AdaptivePlanner::model(RendererKind kind) const {
  return models_[index_of(kind)];
}

double AdaptivePlanner::estimate_bytes(RendererKind kind, const ModelInputs& in,
                                       double pixels) {
  switch (kind) {
    case RendererKind::kRayTrace:
      // BVH (two AABBs + links per internal node ~ 64 B/triangle after the
      // Morton sort's scratch is freed) plus per-ray state (~48 B).
      return 64.0 * in.objects + 48.0 * pixels;
    case RendererKind::kRasterize:
      // Screen-space triangle cache + packed atomic framebuffer.
      return 40.0 * in.objects + 16.0 * pixels;
    case RendererKind::kVolume:
      // Ray state only; the grid belongs to the simulation (zero-copy).
      return 32.0 * pixels;
  }
  return 0.0;
}

Decision AdaptivePlanner::plan(int n_per_task, int tasks, double pixels,
                               bool include_volume, int frames,
                               const model::MappingConstants& constants) const {
  const double nf = static_cast<double>(frames < 1 ? 1 : frames);
  Decision best;
  Decision cheapest;
  cheapest.predicted_seconds = std::numeric_limits<double>::infinity();
  best.predicted_seconds = std::numeric_limits<double>::infinity();
  bool any_model = false;

  for (const RendererKind kind :
       {RendererKind::kRasterize, RendererKind::kRayTrace, RendererKind::kVolume}) {
    if (kind == RendererKind::kVolume && !include_volume) continue;
    const model::OnlineModel& m = model(kind);
    if (!m.ready()) continue;
    any_model = true;
    const ModelInputs in = model::map_configuration(kind, n_per_task, tasks, pixels, constants);
    // Per-frame cost with one-time work (BVH build) amortized over the batch.
    // OnlineModel::predict includes the build; subtract the amortized share.
    model::PerfModel batch = model::PerfModel::fit(kind, m.corpus());
    const double seconds = batch.ok()
                               ? batch.predict_render(in) + batch.predict_build(in) / nf
                               : m.predict(in);
    const double bytes = estimate_bytes(kind, in, pixels);

    if (seconds < cheapest.predicted_seconds) {
      cheapest.kind = kind;
      cheapest.predicted_seconds = seconds;
      cheapest.predicted_bytes = bytes;
    }
    const bool fits =
        seconds <= constraints_.max_seconds && bytes <= constraints_.max_bytes;
    if (fits && seconds < best.predicted_seconds) {
      best.kind = kind;
      best.predicted_seconds = seconds;
      best.predicted_bytes = bytes;
      best.feasible = true;
    }
  }

  if (!best.feasible) {
    // Nothing satisfies the constraints: report the cheapest option so the
    // simulation can decide (render less often, smaller images, ...).
    best = cheapest;
    best.feasible = false;
  }
  best.calibrated = any_model;
  if (!any_model) best.predicted_seconds = 0.0;
  return best;
}

}  // namespace isr::insitu
