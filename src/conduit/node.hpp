// Hierarchical in-core data description, modeled on LLNL's Conduit
// (dissertation §4.2): a JSON-like tree with bit-width-typed leaves,
// zero-copy "external" array views, a path-based API, and runtime
// introspection. Simulations describe their meshes with it and pass the
// tree to the in situ runtime (Listings 4.1-4.3).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "conduit/span.hpp"

namespace isr::conduit {

class Node {
 public:
  enum class Type {
    kEmpty,
    kObject,
    kList,
    kInt64,
    kFloat64,
    kString,
    kInt32Array,
    kInt64Array,
    kFloat32Array,
    kFloat64Array,
  };

  Node() = default;
  Node(const Node&) = delete;  // trees are identity objects; copy via set(Node)
  Node& operator=(const Node&) = delete;
  Node(Node&&) = default;
  Node& operator=(Node&&) = default;

  // --- Tree navigation ----------------------------------------------------
  // operator[] walks (and creates) slash-separated paths: n["fields/e/values"].
  Node& operator[](const std::string& path);
  Node& operator[](const char* path) { return (*this)[std::string(path)]; }
  const Node& operator[](const std::string& path) const { return fetch_existing(path); }
  const Node& operator[](const char* path) const { return fetch_existing(path); }

  const Node& fetch_existing(const std::string& path) const;  // throws if absent
  bool has_path(const std::string& path) const;

  // List semantics: append a new child (used for action lists).
  Node& append();

  std::size_t child_count() const { return children_.size(); }
  Node& child(std::size_t i) { return *children_[i].second; }
  const Node& child(std::size_t i) const { return *children_[i].second; }
  const std::string& child_name(std::size_t i) const { return children_[i].first; }
  std::vector<std::string> child_names() const;

  // --- Scalar setters (assignment sugar matches the paper's listings) -----
  void set(std::int64_t v);
  void set(int v) { set(static_cast<std::int64_t>(v)); }
  void set(double v);
  void set(const std::string& v);
  void set(const char* v) { set(std::string(v)); }

  Node& operator=(std::int64_t v) { set(v); return *this; }
  Node& operator=(int v) { set(v); return *this; }
  Node& operator=(double v) { set(v); return *this; }
  Node& operator=(const std::string& v) { set(v); return *this; }
  Node& operator=(const char* v) { set(v); return *this; }

  // --- Array setters -------------------------------------------------------
  // set(): deep copy owned by the node. set_external(): zero-copy view of
  // simulation-owned memory (the node never frees it; §4.3 R5/R11).
  void set(const std::int32_t* data, std::size_t count);
  void set(const std::int64_t* data, std::size_t count);
  void set(const float* data, std::size_t count);
  void set(const double* data, std::size_t count);
  template <class T>
  void set(const std::vector<T>& v) {
    set(v.data(), v.size());
  }

  void set_external(const std::int32_t* data, std::size_t count);
  void set_external(const std::int64_t* data, std::size_t count);
  void set_external(const float* data, std::size_t count);
  void set_external(const double* data, std::size_t count);
  void set_external(const std::int64_t* scalar) { set_external(scalar, 1); }
  void set_external(const double* scalar) { set_external(scalar, 1); }
  void set_external(const float* scalar) { set_external(scalar, 1); }
  template <class T>
  void set_external(const std::vector<T>& v) {
    set_external(v.data(), v.size());
  }

  // --- Accessors -----------------------------------------------------------
  Type type() const { return type_; }
  bool is_external() const { return external_; }
  std::size_t element_count() const { return count_; }

  std::int64_t as_int64() const;
  double as_float64() const;
  // Numeric coercion across scalar types (Conduit's to_* helpers).
  double to_float64() const;
  std::int64_t to_int64() const;
  const std::string& as_string() const;

  Span<const std::int32_t> as_int32_array() const;
  Span<const std::int64_t> as_int64_array() const;
  Span<const float> as_float32_array() const;
  Span<const double> as_float64_array() const;
  // Coerce any numeric array to float32 (copies unless already float32).
  std::vector<float> to_float32_vector() const;
  std::vector<int> to_int32_vector() const;

  // --- Introspection ---------------------------------------------------
  // Total bytes described by the subtree (owned + external).
  std::size_t total_bytes() const;
  // Bytes physically owned (copied) by the subtree; external data is free.
  std::size_t owned_bytes() const;
  std::string to_json(int indent = 0) const;

  static const char* type_name(Type t);

 private:
  Node& fetch_or_create(const std::string& name);
  const void* data_ptr() const { return external_ ? ext_ptr_ : owned_.data(); }
  void reset_value();
  void set_array(Type t, const void* data, std::size_t count, std::size_t elem_size,
                 bool external);

  Type type_ = Type::kEmpty;
  std::int64_t int_value_ = 0;
  double float_value_ = 0.0;
  std::string string_value_;

  const void* ext_ptr_ = nullptr;
  std::vector<std::uint8_t> owned_;
  std::size_t count_ = 0;
  bool external_ = false;

  std::vector<std::pair<std::string, std::unique_ptr<Node>>> children_;
};

}  // namespace isr::conduit
