#include "conduit/node.hpp"

#include <cstring>
#include <sstream>

namespace isr::conduit {

namespace {

std::pair<std::string, std::string> split_head(const std::string& path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string::npos) return {path, ""};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

}  // namespace

Node& Node::operator[](const std::string& path) {
  auto [head, rest] = split_head(path);
  Node& c = fetch_or_create(head);
  return rest.empty() ? c : c[rest];
}

Node& Node::fetch_or_create(const std::string& name) {
  if (type_ == Type::kEmpty) type_ = Type::kObject;
  if (type_ != Type::kObject && type_ != Type::kList)
    throw std::runtime_error("Node: cannot add child '" + name + "' to a leaf node");
  for (auto& [n, child] : children_)
    if (n == name) return *child;
  children_.emplace_back(name, std::make_unique<Node>());
  return *children_.back().second;
}

const Node& Node::fetch_existing(const std::string& path) const {
  auto [head, rest] = split_head(path);
  for (const auto& [n, child] : children_)
    if (n == head) return rest.empty() ? *child : child->fetch_existing(rest);
  throw std::runtime_error("Node: missing path '" + path + "'");
}

bool Node::has_path(const std::string& path) const {
  auto [head, rest] = split_head(path);
  for (const auto& [n, child] : children_)
    if (n == head) return rest.empty() ? true : child->has_path(rest);
  return false;
}

Node& Node::append() {
  if (type_ == Type::kEmpty) type_ = Type::kList;
  if (type_ != Type::kList && type_ != Type::kObject)
    throw std::runtime_error("Node: append on a leaf node");
  children_.emplace_back(std::to_string(children_.size()), std::make_unique<Node>());
  return *children_.back().second;
}

std::vector<std::string> Node::child_names() const {
  std::vector<std::string> names;
  names.reserve(children_.size());
  for (const auto& [n, child] : children_) names.push_back(n);
  return names;
}

void Node::reset_value() {
  owned_.clear();
  ext_ptr_ = nullptr;
  count_ = 0;
  external_ = false;
  string_value_.clear();
}

void Node::set(std::int64_t v) {
  reset_value();
  type_ = Type::kInt64;
  int_value_ = v;
}

void Node::set(double v) {
  reset_value();
  type_ = Type::kFloat64;
  float_value_ = v;
}

void Node::set(const std::string& v) {
  reset_value();
  type_ = Type::kString;
  string_value_ = v;
}

void Node::set_array(Type t, const void* data, std::size_t count, std::size_t elem_size,
                     bool external) {
  reset_value();
  type_ = t;
  count_ = count;
  external_ = external;
  if (external) {
    ext_ptr_ = data;
  } else {
    owned_.resize(count * elem_size);
    std::memcpy(owned_.data(), data, count * elem_size);
  }
}

void Node::set(const std::int32_t* d, std::size_t n) { set_array(Type::kInt32Array, d, n, 4, false); }
void Node::set(const std::int64_t* d, std::size_t n) { set_array(Type::kInt64Array, d, n, 8, false); }
void Node::set(const float* d, std::size_t n) { set_array(Type::kFloat32Array, d, n, 4, false); }
void Node::set(const double* d, std::size_t n) { set_array(Type::kFloat64Array, d, n, 8, false); }

void Node::set_external(const std::int32_t* d, std::size_t n) { set_array(Type::kInt32Array, d, n, 4, true); }
void Node::set_external(const std::int64_t* d, std::size_t n) { set_array(Type::kInt64Array, d, n, 8, true); }
void Node::set_external(const float* d, std::size_t n) { set_array(Type::kFloat32Array, d, n, 4, true); }
void Node::set_external(const double* d, std::size_t n) { set_array(Type::kFloat64Array, d, n, 8, true); }

std::int64_t Node::as_int64() const {
  if (type_ != Type::kInt64) throw std::runtime_error("Node: not an int64");
  return int_value_;
}

double Node::as_float64() const {
  if (type_ != Type::kFloat64) throw std::runtime_error("Node: not a float64");
  return float_value_;
}

double Node::to_float64() const {
  switch (type_) {
    case Type::kInt64: return static_cast<double>(int_value_);
    case Type::kFloat64: return float_value_;
    case Type::kFloat32Array:
      if (count_ == 1) return static_cast<double>(as_float32_array()[0]);
      break;
    case Type::kFloat64Array:
      if (count_ == 1) return as_float64_array()[0];
      break;
    case Type::kInt64Array:
      if (count_ == 1) return static_cast<double>(as_int64_array()[0]);
      break;
    default: break;
  }
  throw std::runtime_error("Node: cannot coerce to float64");
}

std::int64_t Node::to_int64() const {
  switch (type_) {
    case Type::kInt64: return int_value_;
    case Type::kFloat64: return static_cast<std::int64_t>(float_value_);
    case Type::kInt64Array:
      if (count_ == 1) return as_int64_array()[0];
      break;
    case Type::kInt32Array:
      if (count_ == 1) return as_int32_array()[0];
      break;
    default: break;
  }
  throw std::runtime_error("Node: cannot coerce to int64");
}

const std::string& Node::as_string() const {
  if (type_ != Type::kString) throw std::runtime_error("Node: not a string");
  return string_value_;
}

Span<const std::int32_t> Node::as_int32_array() const {
  if (type_ != Type::kInt32Array) throw std::runtime_error("Node: not an int32 array");
  return {static_cast<const std::int32_t*>(data_ptr()), count_};
}

Span<const std::int64_t> Node::as_int64_array() const {
  if (type_ != Type::kInt64Array) throw std::runtime_error("Node: not an int64 array");
  return {static_cast<const std::int64_t*>(data_ptr()), count_};
}

Span<const float> Node::as_float32_array() const {
  if (type_ != Type::kFloat32Array) throw std::runtime_error("Node: not a float32 array");
  return {static_cast<const float*>(data_ptr()), count_};
}

Span<const double> Node::as_float64_array() const {
  if (type_ != Type::kFloat64Array) throw std::runtime_error("Node: not a float64 array");
  return {static_cast<const double*>(data_ptr()), count_};
}

std::vector<float> Node::to_float32_vector() const {
  std::vector<float> out;
  switch (type_) {
    case Type::kFloat32Array: {
      const auto s = as_float32_array();
      out.assign(s.begin(), s.end());
      break;
    }
    case Type::kFloat64Array: {
      const auto s = as_float64_array();
      out.reserve(s.size());
      for (const double v : s) out.push_back(static_cast<float>(v));
      break;
    }
    case Type::kInt32Array: {
      const auto s = as_int32_array();
      out.reserve(s.size());
      for (const std::int32_t v : s) out.push_back(static_cast<float>(v));
      break;
    }
    default:
      throw std::runtime_error("Node: cannot coerce to float32 array");
  }
  return out;
}

std::vector<int> Node::to_int32_vector() const {
  std::vector<int> out;
  switch (type_) {
    case Type::kInt32Array: {
      const auto s = as_int32_array();
      out.assign(s.begin(), s.end());
      break;
    }
    case Type::kInt64Array: {
      const auto s = as_int64_array();
      out.reserve(s.size());
      for (const std::int64_t v : s) out.push_back(static_cast<int>(v));
      break;
    }
    default:
      throw std::runtime_error("Node: cannot coerce to int32 array");
  }
  return out;
}

namespace {
std::size_t elem_size_of(Node::Type t) {
  switch (t) {
    case Node::Type::kInt32Array:
    case Node::Type::kFloat32Array: return 4;
    case Node::Type::kInt64Array:
    case Node::Type::kFloat64Array: return 8;
    default: return 0;
  }
}
}  // namespace

std::size_t Node::total_bytes() const {
  std::size_t bytes = count_ * elem_size_of(type_) + string_value_.size();
  if (type_ == Type::kInt64 || type_ == Type::kFloat64) bytes += 8;
  for (const auto& [n, child] : children_) bytes += child->total_bytes();
  return bytes;
}

std::size_t Node::owned_bytes() const {
  std::size_t bytes = owned_.size() + string_value_.size();
  for (const auto& [n, child] : children_) bytes += child->owned_bytes();
  return bytes;
}

const char* Node::type_name(Type t) {
  switch (t) {
    case Type::kEmpty: return "empty";
    case Type::kObject: return "object";
    case Type::kList: return "list";
    case Type::kInt64: return "int64";
    case Type::kFloat64: return "float64";
    case Type::kString: return "string";
    case Type::kInt32Array: return "int32[]";
    case Type::kInt64Array: return "int64[]";
    case Type::kFloat32Array: return "float32[]";
    case Type::kFloat64Array: return "float64[]";
  }
  return "?";
}

std::string Node::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::ostringstream os;
  switch (type_) {
    case Type::kEmpty: os << "null"; break;
    case Type::kInt64: os << int_value_; break;
    case Type::kFloat64: os << float_value_; break;
    case Type::kString: os << '"' << string_value_ << '"'; break;
    case Type::kObject: {
      os << "{\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << pad << "  \"" << children_[i].first
           << "\": " << children_[i].second->to_json(indent + 1);
        if (i + 1 < children_.size()) os << ",";
        os << "\n";
      }
      os << pad << "}";
      break;
    }
    case Type::kList: {
      os << "[\n";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        os << pad << "  " << children_[i].second->to_json(indent + 1);
        if (i + 1 < children_.size()) os << ",";
        os << "\n";
      }
      os << pad << "]";
      break;
    }
    default: {
      // Arrays: print type, count, locality; not the data (can be huge).
      os << "{\"dtype\": \"" << type_name(type_) << "\", \"count\": " << count_
         << ", \"external\": " << (external_ ? "true" : "false") << "}";
      break;
    }
  }
  return os.str();
}

}  // namespace isr::conduit
