// Mesh description conventions over conduit::Node (the paper's "set of
// conventions to describe mesh data using Conduit", §4.3), plus converters
// the in situ pipeline uses at Publish time.
//
// Supported conventions (a small subset of the real Conduit blueprint):
//
//   coords/type            "uniform" | "explicit"
//   uniform:  coords/dims/{i,j,k}   (cell counts)
//             coords/origin/{x,y,z}, coords/spacing/{dx,dy,dz}
//   explicit: coords/x, coords/y, coords/z   (float arrays, per point)
//   topology/type          "uniform" | "unstructured"
//   unstructured: topology/elements/shape = "hexs"
//                 topology/elements/connectivity (int32 array, 8 per hex)
//   fields/<name>/association   "vertex" | "element"
//   fields/<name>/values        numeric array
//   state/{time,cycle,domain}   optional scalars
#pragma once

#include <string>

#include "conduit/node.hpp"
#include "mesh/structured.hpp"
#include "mesh/unstructured.hpp"

namespace isr::conduit::blueprint {

// Validates the conventions above; on failure returns false and fills
// `error` with the first problem found.
bool verify_mesh(const Node& mesh, std::string& error);

// Describes a uniform grid (no field) into `out` following the conventions.
void describe_uniform(Node& out, int nx, int ny, int nz, float origin[3], float spacing[3]);

// Converters used by the in situ runtime. Element-centered fields are
// averaged to the vertices (renderers interpolate point scalars). The copy
// made here stands in for the host-to-device transfer of a real deployment.
mesh::StructuredGrid to_structured(const Node& mesh, const std::string& field);
mesh::HexMesh to_hex_mesh(const Node& mesh, const std::string& field);

}  // namespace isr::conduit::blueprint
