#include "conduit/blueprint.hpp"

#include <cmath>

namespace isr::conduit::blueprint {

namespace {

bool fail(std::string& error, const std::string& msg) {
  error = msg;
  return false;
}

}  // namespace

bool verify_mesh(const Node& mesh, std::string& error) {
  if (!mesh.has_path("coords/type")) return fail(error, "missing coords/type");
  const std::string ctype = mesh["coords/type"].as_string();
  if (ctype == "uniform") {
    for (const char* p : {"coords/dims/i", "coords/dims/j", "coords/dims/k"})
      if (!mesh.has_path(p)) return fail(error, std::string("missing ") + p);
  } else if (ctype == "explicit") {
    for (const char* p : {"coords/x", "coords/y", "coords/z"}) {
      if (!mesh.has_path(p)) return fail(error, std::string("missing ") + p);
      if (mesh[p].element_count() == 0) return fail(error, std::string("empty ") + p);
    }
    const std::size_t n = mesh["coords/x"].element_count();
    if (mesh["coords/y"].element_count() != n || mesh["coords/z"].element_count() != n)
      return fail(error, "coords arrays have mismatched lengths");
  } else {
    return fail(error, "unknown coords/type: " + ctype);
  }

  if (!mesh.has_path("topology/type")) return fail(error, "missing topology/type");
  const std::string ttype = mesh["topology/type"].as_string();
  if (ttype == "unstructured") {
    if (!mesh.has_path("topology/elements/shape"))
      return fail(error, "missing topology/elements/shape");
    if (mesh["topology/elements/shape"].as_string() != "hexs")
      return fail(error, "unsupported element shape");
    if (!mesh.has_path("topology/elements/connectivity"))
      return fail(error, "missing topology/elements/connectivity");
    if (mesh["topology/elements/connectivity"].element_count() % 8 != 0)
      return fail(error, "hex connectivity length not a multiple of 8");
  } else if (ttype != "uniform") {
    return fail(error, "unknown topology/type: " + ttype);
  }

  if (mesh.has_path("fields")) {
    const Node& fields = mesh["fields"];
    for (std::size_t i = 0; i < fields.child_count(); ++i) {
      const Node& f = fields.child(i);
      const std::string name = fields.child_name(i);
      if (!f.has_path("values")) return fail(error, "field " + name + " missing values");
      if (!f.has_path("association"))
        return fail(error, "field " + name + " missing association");
      const std::string assoc = f["association"].as_string();
      if (assoc != "vertex" && assoc != "element")
        return fail(error, "field " + name + " has unknown association " + assoc);
    }
  }
  error.clear();
  return true;
}

void describe_uniform(Node& out, int nx, int ny, int nz, float origin[3], float spacing[3]) {
  out["coords/type"] = "uniform";
  out["coords/dims/i"] = nx;
  out["coords/dims/j"] = ny;
  out["coords/dims/k"] = nz;
  out["coords/origin/x"] = static_cast<double>(origin[0]);
  out["coords/origin/y"] = static_cast<double>(origin[1]);
  out["coords/origin/z"] = static_cast<double>(origin[2]);
  out["coords/spacing/dx"] = static_cast<double>(spacing[0]);
  out["coords/spacing/dy"] = static_cast<double>(spacing[1]);
  out["coords/spacing/dz"] = static_cast<double>(spacing[2]);
  out["topology/type"] = "uniform";
}

mesh::StructuredGrid to_structured(const Node& n, const std::string& field) {
  const int nx = static_cast<int>(n["coords/dims/i"].to_int64());
  const int ny = static_cast<int>(n["coords/dims/j"].to_int64());
  const int nz = static_cast<int>(n["coords/dims/k"].to_int64());
  Vec3f origin{0, 0, 0}, spacing{1, 1, 1};
  if (n.has_path("coords/origin/x")) {
    origin = {static_cast<float>(n["coords/origin/x"].to_float64()),
              static_cast<float>(n["coords/origin/y"].to_float64()),
              static_cast<float>(n["coords/origin/z"].to_float64())};
  }
  if (n.has_path("coords/spacing/dx")) {
    spacing = {static_cast<float>(n["coords/spacing/dx"].to_float64()),
               static_cast<float>(n["coords/spacing/dy"].to_float64()),
               static_cast<float>(n["coords/spacing/dz"].to_float64())};
  }
  mesh::StructuredGrid grid(nx, ny, nz, origin, spacing);

  const Node& f = n["fields"][field];
  const std::vector<float> values = f["values"].to_float32_vector();
  if (f["association"].as_string() == "vertex") {
    if (values.size() != grid.point_count())
      throw std::runtime_error("blueprint: vertex field size mismatch");
    grid.scalars() = values;
  } else {
    // Element-centered: average the 8 surrounding cells onto each vertex.
    if (values.size() != grid.cell_count())
      throw std::runtime_error("blueprint: element field size mismatch");
    auto cell_index = [&](int i, int j, int k) {
      return static_cast<std::size_t>(i) +
             static_cast<std::size_t>(nx) *
                 (static_cast<std::size_t>(j) + static_cast<std::size_t>(ny) * k);
    };
    for (int k = 0; k <= nz; ++k)
      for (int j = 0; j <= ny; ++j)
        for (int i = 0; i <= nx; ++i) {
          float sum = 0.0f;
          int count = 0;
          for (int dk = -1; dk <= 0; ++dk)
            for (int dj = -1; dj <= 0; ++dj)
              for (int di = -1; di <= 0; ++di) {
                const int ci = i + di, cj = j + dj, ck = k + dk;
                if (ci < 0 || cj < 0 || ck < 0 || ci >= nx || cj >= ny || ck >= nz) continue;
                sum += values[cell_index(ci, cj, ck)];
                ++count;
              }
          grid.scalars()[grid.point_index(i, j, k)] = count > 0 ? sum / static_cast<float>(count) : 0.0f;
        }
  }
  return grid;
}

mesh::HexMesh to_hex_mesh(const Node& n, const std::string& field) {
  mesh::HexMesh out;
  const auto x = n["coords/x"].to_float32_vector();
  const auto y = n["coords/y"].to_float32_vector();
  const auto z = n["coords/z"].to_float32_vector();
  out.points.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out.points[i] = {x[i], y[i], z[i]};
  out.conn = n["topology/elements/connectivity"].to_int32_vector();

  const Node& f = n["fields"][field];
  const std::vector<float> values = f["values"].to_float32_vector();
  if (f["association"].as_string() == "vertex") {
    if (values.size() != out.points.size())
      throw std::runtime_error("blueprint: vertex field size mismatch");
    out.scalars = values;
  } else {
    // Element field: accumulate to vertices.
    if (values.size() != out.cell_count())
      throw std::runtime_error("blueprint: element field size mismatch");
    out.scalars.assign(out.points.size(), 0.0f);
    std::vector<int> touch(out.points.size(), 0);
    for (std::size_t c = 0; c < out.cell_count(); ++c)
      for (int v = 0; v < 8; ++v) {
        const auto p = static_cast<std::size_t>(out.conn[c * 8 + static_cast<std::size_t>(v)]);
        out.scalars[p] += values[c];
        ++touch[p];
      }
    for (std::size_t p = 0; p < out.points.size(); ++p)
      if (touch[p] > 0) out.scalars[p] /= static_cast<float>(touch[p]);
  }
  return out;
}

}  // namespace isr::conduit::blueprint
