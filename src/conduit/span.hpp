// Minimal C++17 stand-in for std::span (C++20): a non-owning pointer+length
// view over contiguous memory. Only the read-side surface the Node accessors
// need is provided.
#pragma once

#include <cstddef>

namespace isr::conduit {

template <class T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, std::size_t count) : data_(data), count_(count) {}

  constexpr T* data() const { return data_; }
  constexpr std::size_t size() const { return count_; }
  constexpr bool empty() const { return count_ == 0; }

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + count_; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[count_ - 1]; }

 private:
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace isr::conduit
