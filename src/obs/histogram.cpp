#include "obs/histogram.hpp"

#include <cmath>
#include <cstdio>

namespace isr::obs {

int LatencyHistogram::bucket_of(double v_us) {
  // NaN and negatives fail the comparison and land in bucket 0 — a
  // defensive sink, not a code path (callers feed chrono durations).
  if (!(v_us >= 1.0)) return 0;
  if (std::isinf(v_us)) return kBuckets - 1;
  // ilogb is floor(log2(v)) for finite v >= 1, and exact at the power-of-
  // two bucket boundaries where a log()-based round-trip could be off by
  // one ulp.
  const int e = std::ilogb(v_us);
  return e >= kBuckets - 2 ? kBuckets - 1 : e + 1;
}

double LatencyHistogram::bucket_floor_us(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kBuckets) bucket = kBuckets - 1;
  return std::ldexp(1.0, bucket - 1);  // 2^(bucket-1), exact in a double
}

double LatencyHistogram::bucket_ceil_us(int bucket) {
  if (bucket < 0) bucket = 0;
  if (bucket >= kBuckets - 1) return bucket_floor_us(kBuckets - 1);
  return std::ldexp(1.0, bucket);  // 2^bucket
}

void LatencyHistogram::record(double v_us) {
  if (!(v_us >= 0.0)) v_us = 0.0;  // clamp NaN/negatives with the same sink
  counts_[bucket_of(v_us)] += 1;
  sum_us_ += v_us;
  if (count_ == 0 || v_us < min_us_) min_us_ = v_us;
  if (count_ == 0 || v_us > max_us_) max_us_ = v_us;
  count_ += 1;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
  sum_us_ += other.sum_us_;
  if (count_ == 0 || other.min_us_ < min_us_) min_us_ = other.min_us_;
  if (count_ == 0 || other.max_us_ > max_us_) max_us_ = other.max_us_;
  count_ += other.count_;
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

std::uint64_t LatencyHistogram::bucket_count(int bucket) const {
  if (bucket < 0 || bucket >= kBuckets) return 0;
  return counts_[bucket];
}

double LatencyHistogram::percentile_us(double p) const {
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_us_;
  if (p >= 100.0) return max_us_;
  // Nearest rank (1-based), matching cluster::percentile's convention so a
  // histogram estimate and an exact-sample computation answer the same
  // question.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    if (seen + counts_[b] < rank) {
      seen += counts_[b];
      continue;
    }
    // The rank lands in this bucket: interpolate linearly between its
    // bounds by the rank's position among the bucket's samples, then clamp
    // to the exactly-known extremes (which also caps the open-ended
    // overflow bucket at the recorded max).
    const double lo = bucket_floor_us(b);
    const double hi = b >= kBuckets - 1 ? max_us_ : bucket_ceil_us(b);
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(counts_[b]);
    double v = lo + (hi - lo) * frac;
    if (v < min_us_) v = min_us_;
    if (v > max_us_) v = max_us_;
    return v;
  }
  return max_us_;  // unreachable when the counts are consistent
}

std::string LatencyHistogram::to_json() const {
  std::string buckets = "[";
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s[%.0f,%llu]", buckets.size() > 1 ? "," : "",
                  bucket_floor_us(b), static_cast<unsigned long long>(counts_[b]));
    buckets += buf;
  }
  buckets += "]";
  char head[160];
  std::snprintf(head, sizeof(head),
                "{\"count\":%llu,\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,"
                "\"p999\":%.3f,\"buckets\":",
                static_cast<unsigned long long>(count_), percentile_us(50.0),
                percentile_us(90.0), percentile_us(99.0), percentile_us(99.9));
  return std::string(head) + buckets + "}";
}

}  // namespace isr::obs
