// Request-lifecycle tracing: per-thread bounded ring buffers of fixed-size
// span/instant events, exported as Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto, ui.perfetto.dev).
//
// Design points, in the order they matter:
//   - Zero cost when off. Call sites hold a nullable TraceRecorder* and
//     guard every hook with `tr && tr->enabled()` — a null check (recorder
//     absent) or one relaxed atomic load (recorder disabled). Nothing else
//     runs; bench_trace_overhead gates that the disabled path keeps pace
//     with the recorder-absent path.
//   - Per-thread rings, drop-oldest. Each recording thread owns one ring;
//     producers never contend with each other (the per-ring lock has a
//     single writer and only serializes against the rare exporter drain).
//     A full ring overwrites its oldest event and bumps a drop counter the
//     export publishes (otherData.dropped) — tracing sheds history, never
//     blocks serving.
//   - Events are fixed-size PODs. Names and notes are static-storage
//     strings (the span taxonomy in docs/ARCHITECTURE.md), identities are
//     (stream, seq), and up to two numeric annotations ride along — no
//     allocation on the hot path.
//   - Two clocks. Live recording stamps wall microseconds since enable()
//     (steady clock). Under the cluster's --replay mode the recorder is
//     enabled with virtual_clock = true: call sites stamp the admission
//     schedule's virtual timestamps (and preset deterministic lanes)
//     instead, and suppress wall-clock-only spans — so a replayed run's
//     exported trace is byte-identical across processes, which is what
//     test_obs and the CI trace smoke verify. The export sorts events by
//     (ts, lane, identity, name) rather than arrival ring, so ring
//     assignment never shows in the bytes.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace isr::obs {

// One trace event. `phase` follows the Chrome trace_event convention:
// 'X' = complete span (ts + dur), 'i' = instant. `tid` 0 means "assign the
// recording thread's lane at export"; virtual-clock sites preset a
// deterministic lane instead. `values` says how many of v0/v1 carry data.
struct TraceEvent {
  const char* name = nullptr;  // static-storage string, never owned
  const char* cat = nullptr;   // category ("req" = request lifecycle)
  const char* note = nullptr;  // optional static annotation (shed cause...)
  char phase = 'i';
  std::uint8_t values = 0;
  std::uint32_t tid = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  std::int64_t v0 = 0;
  std::int64_t v1 = 0;
};

class TraceRecorder {
 public:
  // `ring_capacity` bounds EACH recording thread's buffer (drop-oldest
  // past it); the default holds ~64Ki events per thread at 80 bytes each.
  explicit TraceRecorder(std::size_t ring_capacity = std::size_t{1} << 16);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Starts accepting events; resets the wall epoch to now. virtual_clock
  // declares that call sites will stamp deterministic virtual timestamps
  // (the cluster's replay mode) — the recorder itself only reports the
  // flag back so sites can pick their clock.
  void enable(bool virtual_clock = false);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool virtual_clock() const { return virtual_clock_; }

  // Wall microseconds since enable(); the live-mode event clock.
  std::int64_t now_us() const;
  std::int64_t since_epoch_us(std::chrono::steady_clock::time_point tp) const;

  // Appends one event to the calling thread's ring. No-op when disabled.
  void record(const TraceEvent& event);

  std::uint64_t dropped() const;   // events overwritten across all rings
  std::uint64_t buffered() const;  // events currently held across all rings

  // The Chrome trace_event export: {"traceEvents":[...],"displayTimeUnit":
  // "ms","otherData":{"dropped":N,"events":M}}, events sorted by
  // (ts, tid, stream, seq, name, ...) for ring-independent bytes.
  // Non-destructive; rings keep their contents.
  void export_chrome_trace(std::ostream& out) const;
  std::string chrome_trace_json() const;

  // Drops every buffered event and the drop counters (rings stay
  // registered with their lanes).
  void clear();

 private:
  struct Ring;
  Ring* ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  bool virtual_clock_ = false;
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  const std::uint64_t uid_;  // process-unique; guards stale thread caches
  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace isr::obs
