#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace isr::obs {

namespace {

// Process-wide recorder id source. A thread's cached (recorder, uid) pair
// can dangle after a recorder is destroyed and a new one allocated at the
// same address (two benches, two test fixtures); the uid disambiguates.
std::atomic<std::uint64_t> g_next_uid{1};

struct ThreadCache {
  const void* owner = nullptr;
  std::uint64_t uid = 0;
  void* ring = nullptr;
};
thread_local ThreadCache t_cache;

}  // namespace

struct TraceRecorder::Ring {
  explicit Ring(std::size_t capacity, std::uint32_t lane_in, std::thread::id owner_in)
      : slots(capacity), lane(lane_in), owner(owner_in) {}
  // Single-writer ring: only the owning thread appends, so this lock is
  // uncontended on the hot path — it exists to serialize against the
  // exporter's drain (and clear()), not against other producers.
  std::mutex mutex;
  std::vector<TraceEvent> slots;
  std::size_t head = 0;  // next write position
  std::size_t size = 0;  // valid events (<= capacity)
  std::uint64_t dropped = 0;
  std::uint32_t lane;
  std::thread::id owner;
};

TraceRecorder::TraceRecorder(std::size_t ring_capacity)
    : capacity_(ring_capacity > 0 ? ring_capacity : 1),
      epoch_(std::chrono::steady_clock::now()),
      uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

void TraceRecorder::enable(bool virtual_clock) {
  virtual_clock_ = virtual_clock;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() { enabled_.store(false, std::memory_order_release); }

std::int64_t TraceRecorder::now_us() const {
  return since_epoch_us(std::chrono::steady_clock::now());
}

std::int64_t TraceRecorder::since_epoch_us(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_).count();
}

TraceRecorder::Ring* TraceRecorder::ring_for_this_thread() {
  if (t_cache.owner == this && t_cache.uid == uid_)
    return static_cast<Ring*>(t_cache.ring);
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const std::thread::id self = std::this_thread::get_id();
  Ring* ring = nullptr;
  for (const auto& r : rings_)
    if (r->owner == self) {
      ring = r.get();
      break;
    }
  if (!ring) {
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size() + 1), self));
    ring = rings_.back().get();
  }
  t_cache.owner = this;
  t_cache.uid = uid_;
  t_cache.ring = ring;
  return ring;
}

void TraceRecorder::record(const TraceEvent& event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  Ring* ring = ring_for_this_thread();
  std::lock_guard<std::mutex> lock(ring->mutex);
  ring->slots[ring->head] = event;
  ring->head = (ring->head + 1) % ring->slots.size();
  if (ring->size < ring->slots.size()) ring->size += 1;
  else ring->dropped += 1;  // head just overwrote the oldest event
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> registry(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::uint64_t TraceRecorder::buffered() const {
  std::lock_guard<std::mutex> registry(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    total += ring->size;
  }
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> registry(registry_mutex_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->head = 0;
    ring->size = 0;
    ring->dropped = 0;
  }
}

namespace {

// Total order over events for a ring-independent (and, under the virtual
// clock, byte-reproducible) export. Name/cat/note compare by CONTENT —
// pointer identity of static strings varies across processes.
int cstr_cmp(const char* a, const char* b) {
  return std::strcmp(a ? a : "", b ? b : "");
}

bool event_before(const TraceEvent& a, const TraceEvent& b) {
  if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
  if (a.tid != b.tid) return a.tid < b.tid;
  if (a.stream != b.stream) return a.stream < b.stream;
  if (a.seq != b.seq) return a.seq < b.seq;
  const int name = cstr_cmp(a.name, b.name);
  if (name != 0) return name < 0;
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.dur_us != b.dur_us) return a.dur_us < b.dur_us;
  const int note = cstr_cmp(a.note, b.note);
  if (note != 0) return note < 0;
  if (a.v0 != b.v0) return a.v0 < b.v0;
  return a.v1 < b.v1;
}

void append_event_json(std::string& out, const TraceEvent& e) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\"",
                e.name ? e.name : "?", e.cat ? e.cat : "isr", e.phase);
  out += buf;
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  std::snprintf(buf, sizeof(buf), ",\"ts\":%lld", static_cast<long long>(e.ts_us));
  out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof(buf), ",\"dur\":%lld", static_cast<long long>(e.dur_us));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                ",\"pid\":1,\"tid\":%lu,\"args\":{\"stream\":%llu,\"seq\":%llu",
                static_cast<unsigned long>(e.tid),
                static_cast<unsigned long long>(e.stream),
                static_cast<unsigned long long>(e.seq));
  out += buf;
  if (e.note) {
    out += ",\"note\":\"";
    out += e.note;  // static taxonomy strings; nothing to escape
    out += "\"";
  }
  if (e.values >= 1) {
    std::snprintf(buf, sizeof(buf), ",\"v0\":%lld", static_cast<long long>(e.v0));
    out += buf;
  }
  if (e.values >= 2) {
    std::snprintf(buf, sizeof(buf), ",\"v1\":%lld", static_cast<long long>(e.v1));
    out += buf;
  }
  out += "}}";
}

}  // namespace

std::string TraceRecorder::chrome_trace_json() const {
  // Snapshot every ring oldest-first, stamping unassigned events with
  // their ring's lane, then sort into the ring-independent total order.
  std::vector<TraceEvent> events;
  std::uint64_t total_dropped = 0;
  {
    std::lock_guard<std::mutex> registry(registry_mutex_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> lock(ring->mutex);
      total_dropped += ring->dropped;
      const std::size_t cap = ring->slots.size();
      const std::size_t start = (ring->head + cap - ring->size) % cap;
      for (std::size_t i = 0; i < ring->size; ++i) {
        TraceEvent e = ring->slots[(start + i) % cap];
        if (e.tid == 0) e.tid = ring->lane;
        events.push_back(e);
      }
    }
  }
  std::sort(events.begin(), events.end(), event_before);

  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_event_json(out, events[i]);
  }
  char tail[96];
  std::snprintf(tail, sizeof(tail),
                "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%llu,"
                "\"events\":%llu}}\n",
                static_cast<unsigned long long>(total_dropped),
                static_cast<unsigned long long>(events.size()));
  out += tail;
  return out;
}

void TraceRecorder::export_chrome_trace(std::ostream& out) const {
  out << chrome_trace_json();
}

}  // namespace isr::obs
