// Bounded-memory latency aggregation for the observability layer (and
// anything above it): a fixed-bucket log2-scale histogram over microsecond
// values. 64 buckets cover [0, 2^62) us — bucket 0 holds sub-microsecond
// values, bucket b in [1, 62] holds [2^(b-1), 2^b), the last bucket is the
// open-ended overflow — so recording costs O(1), memory is a fixed ~600
// bytes forever (what lets it replace the cluster's 64Ki sample
// reservoirs), counts are exact, and two histograms merge by adding bucket
// counts (associative and commutative over the counts, which is what the
// per-shard -> cluster metrics roll-up relies on). Percentiles are
// estimates: nearest rank locates the bucket, linear interpolation within
// it bounds the error by the bucket's 2x width; the exactly-tracked
// min/max pin p=0 and p=100.
#pragma once

#include <cstdint>
#include <string>

namespace isr::obs {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  // Bucket index for a value in microseconds: 0 for v < 1 (and any
  // non-finite garbage), 1 + floor(log2(v)) clamped to the overflow bucket.
  static int bucket_of(double v_us);
  // The bucket's inclusive lower bound (0 for bucket 0, else 2^(b-1)).
  static double bucket_floor_us(int bucket);
  // The bucket's exclusive upper bound (2^b; the overflow bucket has none
  // and reports its floor's double).
  static double bucket_ceil_us(int bucket);

  void record(double v_us);
  // Adds `other`'s counts (and widens min/max) into this histogram.
  void merge(const LatencyHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t bucket_count(int bucket) const;
  double sum_us() const { return sum_us_; }
  double min_us() const { return count_ > 0 ? min_us_ : 0.0; }
  double max_us() const { return count_ > 0 ? max_us_ : 0.0; }

  // Percentile estimate in microseconds, p in [0, 100]: nearest-rank over
  // the bucket counts, linearly interpolated inside the selected bucket
  // (clamped to the recorded min/max, which p <= 0 / p >= 100 return
  // exactly). 0 when empty.
  double percentile_us(double p) const;

  // One stable-bytes JSON object (fixed field order, printf-formatted):
  //   {"count":N,"p50":..,"p90":..,"p99":..,"p999":..,
  //    "buckets":[[floor_us,count],...]}
  // with only the non-zero buckets dumped. Percentiles are microseconds
  // with 3 decimals; floors print exactly (powers of two).
  std::string to_json() const;

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  double min_us_ = 0.0;
  double max_us_ = 0.0;
};

}  // namespace isr::obs
