#include "math/colormap.hpp"

#include <cmath>

namespace isr {

ColorTable::ColorTable(const std::vector<ControlPoint>& points) {
  for (int i = 0; i < kLutSize; ++i) {
    const float t = static_cast<float>(i) / (kLutSize - 1);
    Vec3f c = points.empty() ? Vec3f{1, 1, 1} : points.front().rgb;
    for (std::size_t p = 0; p + 1 < points.size(); ++p) {
      if (t >= points[p].t && t <= points[p + 1].t) {
        const float span = std::max(points[p + 1].t - points[p].t, 1e-6f);
        c = lerp(points[p].rgb, points[p + 1].rgb, (t - points[p].t) / span);
        break;
      }
    }
    if (!points.empty() && t > points.back().t) c = points.back().rgb;
    lut_[static_cast<std::size_t>(i)] = c;
  }
}

ColorTable ColorTable::cool_warm() {
  return ColorTable({{0.0f, {0.23f, 0.30f, 0.75f}},
                     {0.5f, {0.87f, 0.87f, 0.87f}},
                     {1.0f, {0.71f, 0.02f, 0.15f}}});
}

ColorTable ColorTable::viridis_like() {
  return ColorTable({{0.0f, {0.27f, 0.00f, 0.33f}},
                     {0.25f, {0.23f, 0.32f, 0.55f}},
                     {0.5f, {0.13f, 0.57f, 0.55f}},
                     {0.75f, {0.37f, 0.79f, 0.38f}},
                     {1.0f, {0.99f, 0.91f, 0.14f}}});
}

ColorTable ColorTable::grayscale() {
  return ColorTable({{0.0f, {0, 0, 0}}, {1.0f, {1, 1, 1}}});
}

TransferFunction::TransferFunction(const ColorTable& colors, float min_alpha,
                                   float max_alpha) {
  for (int i = 0; i < kLutSize; ++i) {
    const float t = static_cast<float>(i) / (kLutSize - 1);
    const Vec3f rgb = colors.sample(t);
    const float a = min_alpha + (max_alpha - min_alpha) * t;
    lut_[static_cast<std::size_t>(i)] = {rgb.x, rgb.y, rgb.z, a};
  }
}

float TransferFunction::correct_alpha(float alpha, float dt_ratio) {
  // Standard opacity correction: a' = 1 - (1 - a)^ratio.
  return 1.0f - std::pow(1.0f - alpha, dt_ratio);
}

}  // namespace isr
