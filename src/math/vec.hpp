// Small fixed-size vector types used throughout the renderers.
//
// These are deliberately plain aggregates (no virtual functions, no
// alignment tricks) so structs-of-arrays layouts in the DPP kernels can
// reinterpret them freely and the compiler can vectorize the hot loops.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace isr {

template <class T>
struct Vec2 {
  T x{}, y{};

  constexpr Vec2() = default;
  constexpr Vec2(T xx, T yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(T s) const { return {x * s, y * s}; }
  constexpr bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }
  constexpr bool operator!=(const Vec2& o) const { return !(*this == o); }
};

template <class T>
struct Vec3 {
  T x{}, y{}, z{};

  constexpr Vec3() = default;
  constexpr Vec3(T xx, T yy, T zz) : x(xx), y(yy), z(zz) {}
  static constexpr Vec3 all(T v) { return {v, v, v}; }

  constexpr Vec3 operator+(Vec3 o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(Vec3 o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(T s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(T s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator*(Vec3 o) const { return {x * o.x, y * o.y, z * o.z}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }
  constexpr Vec3& operator+=(Vec3 o) { x += o.x; y += o.y; z += o.z; return *this; }
  constexpr Vec3& operator-=(Vec3 o) { x -= o.x; y -= o.y; z -= o.z; return *this; }
  constexpr Vec3& operator*=(T s) { x *= s; y *= s; z *= s; return *this; }
  constexpr bool operator==(const Vec3& o) const { return x == o.x && y == o.y && z == o.z; }
  constexpr bool operator!=(const Vec3& o) const { return !(*this == o); }

  constexpr T operator[](int i) const { return i == 0 ? x : (i == 1 ? y : z); }
  constexpr T& axis(int i) { return i == 0 ? x : (i == 1 ? y : z); }
};

template <class T>
struct Vec4 {
  T x{}, y{}, z{}, w{};

  constexpr Vec4() = default;
  constexpr Vec4(T xx, T yy, T zz, T ww) : x(xx), y(yy), z(zz), w(ww) {}
  constexpr Vec4(Vec3<T> v, T ww) : x(v.x), y(v.y), z(v.z), w(ww) {}

  constexpr Vec3<T> xyz() const { return {x, y, z}; }
  constexpr Vec4 operator+(Vec4 o) const { return {x + o.x, y + o.y, z + o.z, w + o.w}; }
  constexpr Vec4 operator-(Vec4 o) const { return {x - o.x, y - o.y, z - o.z, w - o.w}; }
  constexpr Vec4 operator*(T s) const { return {x * s, y * s, z * s, w * s}; }
  constexpr bool operator==(const Vec4& o) const { return x == o.x && y == o.y && z == o.z && w == o.w; }
  constexpr bool operator!=(const Vec4& o) const { return !(*this == o); }
};

using Vec2f = Vec2<float>;
using Vec3f = Vec3<float>;
using Vec4f = Vec4<float>;
using Vec3d = Vec3<double>;
using Vec3i = Vec3<int>;

template <class T>
constexpr T dot(Vec3<T> a, Vec3<T> b) {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

template <class T>
constexpr Vec3<T> cross(Vec3<T> a, Vec3<T> b) {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

template <class T>
T length(Vec3<T> v) {
  return std::sqrt(dot(v, v));
}

template <class T>
Vec3<T> normalize(Vec3<T> v) {
  const T len = length(v);
  return len > T(0) ? v / len : v;
}

template <class T>
constexpr Vec3<T> vmin(Vec3<T> a, Vec3<T> b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}

template <class T>
constexpr Vec3<T> vmax(Vec3<T> a, Vec3<T> b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

template <class T>
constexpr Vec3<T> lerp(Vec3<T> a, Vec3<T> b, T t) {
  return a + (b - a) * t;
}

template <class T>
constexpr T clamp01(T v) {
  return std::clamp(v, T(0), T(1));
}

template <class T>
std::ostream& operator<<(std::ostream& os, Vec3<T> v) {
  return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

}  // namespace isr
