// Pinhole camera shared by every renderer.
//
// The ray tracer consumes generated ray directions; the rasterizer and the
// volume renderers consume the view-projection transform. Both views of the
// camera are derived from the same basis so all renderers agree on what is
// on screen (required for the paper's cross-renderer comparisons).
#pragma once

#include "math/aabb.hpp"
#include "math/mat4.hpp"
#include "math/vec.hpp"

namespace isr {

struct Camera {
  Vec3f position{0, 0, 5};
  Vec3f look_at{0, 0, 0};
  Vec3f up{0, 1, 0};
  float fov_y_degrees = 30.0f;
  float znear = 0.01f;
  float zfar = 1000.0f;
  int width = 512;
  int height = 512;

  int pixel_count() const { return width * height; }
  float aspect() const { return static_cast<float>(width) / static_cast<float>(height); }

  Vec3f forward() const { return normalize(look_at - position); }

  // Direction through pixel (px, py); sub-pixel offsets in [0,1) support the
  // 4-ray anti-aliasing workload.
  Vec3f ray_direction(float px, float py, float sub_x = 0.5f, float sub_y = 0.5f) const {
    const Vec3f f = forward();
    const Vec3f s = normalize(cross(f, up));
    const Vec3f u = cross(s, f);
    const float tan_half = std::tan(fov_y_degrees * 3.14159265358979f / 360.0f);
    const float ndc_x =
        (2.0f * (px + sub_x) / static_cast<float>(width) - 1.0f) * tan_half * aspect();
    const float ndc_y = (1.0f - 2.0f * (py + sub_y) / static_cast<float>(height)) * tan_half;
    return normalize(f + s * ndc_x + u * ndc_y);
  }

  Mat4 view() const { return Mat4::look_at(position, look_at, up); }

  Mat4 projection() const {
    return Mat4::perspective(fov_y_degrees * 3.14159265358979f / 180.0f, aspect(), znear,
                             zfar);
  }

  Mat4 view_projection() const { return projection() * view(); }

  // Projects a world-space point to (screen_x, screen_y, depth, clip_w).
  // depth is the eye-space distance along the view axis (positive in front
  // of the camera); callers use it for depth tests and visibility ordering.
  // Returns w <= 0 for points behind the camera.
  Vec4f world_to_screen(Vec3f p, const Mat4& vp) const {
    const Vec4f clip = vp * Vec4f(p, 1.0f);
    if (clip.w <= 0.0f) return {0, 0, 0, clip.w};
    const float inv_w = 1.0f / clip.w;
    const float sx = (clip.x * inv_w * 0.5f + 0.5f) * static_cast<float>(width);
    const float sy = (0.5f - clip.y * inv_w * 0.5f) * static_cast<float>(height);
    return {sx, sy, clip.w, clip.w};
  }

  // Places the camera so `bounds` fills roughly `fill` of the vertical field
  // of view. fill > 1 is the study's "close up" view (data overflows the
  // screen); fill < 1 is "zoomed out" (data surrounded by background).
  static Camera framing(const AABB& bounds, int width, int height, float fill = 0.75f,
                        Vec3f view_dir = {0.4f, 0.3f, 1.0f}) {
    Camera cam;
    cam.width = width;
    cam.height = height;
    const Vec3f c = bounds.center();
    const float radius = 0.5f * length(bounds.extent());
    const float tan_half = std::tan(cam.fov_y_degrees * 3.14159265358979f / 360.0f);
    const float dist = radius / (tan_half * std::max(fill, 1e-3f));
    cam.look_at = c;
    cam.position = c + normalize(view_dir) * dist;
    cam.znear = std::max(0.05f * radius, dist - 4.0f * radius);
    cam.zfar = dist + 4.0f * radius;
    return cam;
  }
};

}  // namespace isr
