// Deterministic PRNG (xoshiro-style) plus the sampling helpers the ray
// tracer's ambient-occlusion pass needs. std::mt19937 is avoided in kernels
// because its state is too large to keep per-ray.
#pragma once

#include <cmath>
#include <cstdint>

#include "math/vec.hpp"

namespace isr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed | 1ull) {}

  std::uint64_t next_u64() {
    // splitmix64: small, fast, passes BigCrush for this use.
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, 1).
  float next_float() { return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f); }
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }
  int uniform_int(int lo, int hi) {  // inclusive range [lo, hi]
    return lo + static_cast<int>(next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

// Cosine-weighted hemisphere sample around normal n; u1,u2 in [0,1).
inline Vec3f sample_hemisphere(Vec3f n, float u1, float u2) {
  const float r = std::sqrt(u1);
  const float phi = 6.28318530718f * u2;
  const float x = r * std::cos(phi);
  const float y = r * std::sin(phi);
  const float z = std::sqrt(std::max(0.0f, 1.0f - u1));
  // Build an orthonormal basis around n (Frisvad-style branchless variant).
  const Vec3f a = std::abs(n.x) > 0.9f ? Vec3f{0, 1, 0} : Vec3f{1, 0, 0};
  const Vec3f t = normalize(cross(a, n));
  const Vec3f b = cross(n, t);
  return normalize(t * x + b * y + n * z);
}

}  // namespace isr
