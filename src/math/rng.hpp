// Deterministic PRNG (xoshiro-style) plus the sampling helpers the ray
// tracer's ambient-occlusion pass needs. std::mt19937 is avoided in kernels
// because its state is too large to keep per-ray.
#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>

#include "math/vec.hpp"

namespace isr {

// One splitmix64 mixing step. The finalizer scrambles every input bit into
// every output bit, so related inputs (counters, small enums) give unrelated
// outputs — the property the counter-based seeding below relies on.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return splitmix64(h ^ (v + 0x9E3779B97F4A7C15ull + (h << 12) + (h >> 4)));
}

inline std::uint64_t hash_combine(std::uint64_t h, std::string_view s) {
  std::uint64_t fnv = 0xCBF29CE484222325ull;  // FNV-1a over the bytes
  for (const char c : s) fnv = (fnv ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
  return hash_combine(h, fnv);
}

// Counter-based splittable seeding: hash_seed(seed, k0, k1, ...) maps a
// coordinate in some enumeration grid (simulation name, task count, sample
// index, rank, ...) to an independent RNG seed. Because the seed is a pure
// function of the coordinate — not of how many draws some shared generator
// made before it — work items can run in any order, or in parallel, and
// still reproduce a serial enumeration bit for bit. Keys may be integers
// (anything convertible to uint64_t) or strings.
template <class... Keys>
std::uint64_t hash_seed(std::uint64_t seed, const Keys&... keys) {
  std::uint64_t h = splitmix64(seed);
  ((h = hash_combine(h, keys)), ...);
  return h;
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed | 1ull) {}

  std::uint64_t next_u64() {
    // splitmix64: small, fast, passes BigCrush for this use.
    const std::uint64_t z = splitmix64(state_);
    state_ += 0x9E3779B97F4A7C15ull;
    return z;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  // Uniform in [0, 1).
  float next_float() { return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f); }
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  // Uniform in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * next_float(); }
  int uniform_int(int lo, int hi) {  // inclusive range [lo, hi]
    return lo + static_cast<int>(next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::uint64_t state_;
};

// Cosine-weighted hemisphere sample around normal n; u1,u2 in [0,1).
inline Vec3f sample_hemisphere(Vec3f n, float u1, float u2) {
  const float r = std::sqrt(u1);
  const float phi = 6.28318530718f * u2;
  const float x = r * std::cos(phi);
  const float y = r * std::sin(phi);
  const float z = std::sqrt(std::max(0.0f, 1.0f - u1));
  // Build an orthonormal basis around n (Frisvad-style branchless variant).
  const Vec3f a = std::abs(n.x) > 0.9f ? Vec3f{0, 1, 0} : Vec3f{1, 0, 0};
  const Vec3f t = normalize(cross(a, n));
  const Vec3f b = cross(n, t);
  return normalize(t * x + b * y + n * z);
}

}  // namespace isr
