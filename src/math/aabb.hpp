// Axis-aligned bounding box with the slab ray test used by the BVH
// traversal and the structured volume renderer.
#pragma once

#include <limits>

#include "math/vec.hpp"

namespace isr {

struct AABB {
  Vec3f lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
           std::numeric_limits<float>::max()};
  Vec3f hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
           std::numeric_limits<float>::lowest()};

  void expand(Vec3f p) {
    lo = vmin(lo, p);
    hi = vmax(hi, p);
  }

  void expand(const AABB& o) {
    lo = vmin(lo, o.lo);
    hi = vmax(hi, o.hi);
  }

  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  Vec3f center() const { return (lo + hi) * 0.5f; }
  Vec3f extent() const { return hi - lo; }

  float surface_area() const {
    if (!valid()) return 0.0f;
    const Vec3f e = extent();
    return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
  }

  bool contains(Vec3f p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }

  bool contains(const AABB& o) const {
    return o.lo.x >= lo.x && o.hi.x <= hi.x && o.lo.y >= lo.y && o.hi.y <= hi.y &&
           o.lo.z >= lo.z && o.hi.z <= hi.z;
  }

  // Slab test against a ray given its origin and inverse direction.
  // Returns true and the entry/exit parameters when [tmin_out, tmax_out]
  // overlaps [tmin, tmax].
  bool intersect(Vec3f origin, Vec3f inv_dir, float tmin, float tmax, float& tmin_out,
                 float& tmax_out) const {
    float t0 = tmin, t1 = tmax;
    for (int a = 0; a < 3; ++a) {
      float near = (lo[a] - origin[a]) * inv_dir[a];
      float far = (hi[a] - origin[a]) * inv_dir[a];
      if (near > far) std::swap(near, far);
      t0 = near > t0 ? near : t0;
      t1 = far < t1 ? far : t1;
      if (t0 > t1) return false;
    }
    tmin_out = t0;
    tmax_out = t1;
    return true;
  }
};

}  // namespace isr
