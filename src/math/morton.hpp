// Morton (Z-order) codes. 30-bit 3-D codes drive the LBVH build and 2-D
// codes order camera rays for memory coherence, as in the paper's ray
// tracer (Chapter II: "rays ordered by a Morton-curve traversal of the
// framebuffer").
#pragma once

#include <cstdint>

namespace isr {

// Spreads the low 10 bits of v so there are two zero bits between each.
inline std::uint32_t morton_expand_bits_10(std::uint32_t v) {
  v = (v * 0x00010001u) & 0xFF0000FFu;
  v = (v * 0x00000101u) & 0x0F00F00Fu;
  v = (v * 0x00000011u) & 0xC30C30C3u;
  v = (v * 0x00000005u) & 0x49249249u;
  return v;
}

// 30-bit 3-D Morton code from coordinates already scaled to [0, 1023].
inline std::uint32_t morton3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return (morton_expand_bits_10(x) << 2) | (morton_expand_bits_10(y) << 1) |
         morton_expand_bits_10(z);
}

// Spreads the low 16 bits of v with one zero bit between each.
inline std::uint32_t morton_expand_bits_16(std::uint32_t v) {
  v = (v | (v << 8)) & 0x00FF00FFu;
  v = (v | (v << 4)) & 0x0F0F0F0Fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

// 32-bit 2-D Morton code for framebuffer traversal order.
inline std::uint32_t morton2d(std::uint32_t x, std::uint32_t y) {
  return morton_expand_bits_16(x) | (morton_expand_bits_16(y) << 1);
}

// Inverse of morton_expand_bits_16.
inline std::uint32_t morton_compact_bits_16(std::uint32_t v) {
  v &= 0x55555555u;
  v = (v | (v >> 1)) & 0x33333333u;
  v = (v | (v >> 2)) & 0x0F0F0F0Fu;
  v = (v | (v >> 4)) & 0x00FF00FFu;
  v = (v | (v >> 8)) & 0x0000FFFFu;
  return v;
}

inline void morton2d_decode(std::uint32_t code, std::uint32_t& x, std::uint32_t& y) {
  x = morton_compact_bits_16(code);
  y = morton_compact_bits_16(code >> 1);
}

}  // namespace isr
