// Color tables and transfer functions.
//
// Rendering maps interpolated scalars through a color table (Chapter II
// WORKLOAD2 "additional color using interpolated scalars that are indexed
// into a color map") and the volume renderers map samples through a
// color + opacity transfer function (Chapter III).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "math/vec.hpp"

namespace isr {

// A color table sampled into a fixed LUT; lookup is a single index
// computation so it stays cheap inside rendering kernels.
class ColorTable {
 public:
  static constexpr int kLutSize = 256;

  // Piecewise-linear table from control points (position in [0,1], rgb).
  struct ControlPoint {
    float t;
    Vec3f rgb;
  };

  explicit ColorTable(const std::vector<ControlPoint>& points);

  // Common presets.
  static ColorTable cool_warm();
  static ColorTable viridis_like();
  static ColorTable grayscale();

  Vec3f sample(float t) const {
    int i = static_cast<int>(clamp01(t) * (kLutSize - 1));
    return lut_[static_cast<std::size_t>(i)];
  }

 private:
  std::array<Vec3f, kLutSize> lut_{};
};

// Color + opacity transfer function for volume rendering. Opacity is stored
// per unit distance; the renderer corrects it for the actual sample spacing.
class TransferFunction {
 public:
  static constexpr int kLutSize = 256;

  TransferFunction(const ColorTable& colors, float min_alpha, float max_alpha);

  // Piecewise opacity ramp: alpha(t) = min + (max-min) * t.
  Vec4f sample(float t) const {
    int i = static_cast<int>(clamp01(t) * (kLutSize - 1));
    return lut_[static_cast<std::size_t>(i)];
  }

  // Opacity correction: alpha for a sample of length `dt` relative to the
  // reference spacing the LUT was built for.
  static float correct_alpha(float alpha, float dt_ratio);

 private:
  std::array<Vec4f, kLutSize> lut_{};
};

}  // namespace isr
