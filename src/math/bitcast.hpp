// C++17 stand-in for std::bit_cast (C++20): reinterpret the object
// representation of one trivially-copyable type as another via memcpy,
// which every mainstream compiler folds to a register move.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#ifdef _MSC_VER
#include <intrin.h>
#endif

namespace isr {

template <class To, class From>
To bit_cast(const From& src) {
  static_assert(sizeof(To) == sizeof(From), "bit_cast size mismatch");
  static_assert(std::is_trivially_copyable<To>::value, "bit_cast: To must be trivially copyable");
  static_assert(std::is_trivially_copyable<From>::value, "bit_cast: From must be trivially copyable");
  To dst;
  std::memcpy(&dst, &src, sizeof(To));
  return dst;
}

// C++17 stand-in for std::countl_zero (C++20) on 64-bit values.
// Precondition: x != 0 (the GCC intrinsic is undefined for 0).
inline int countl_zero64(std::uint64_t x) {
#ifdef _MSC_VER
  unsigned long index;
  _BitScanReverse64(&index, x);
  return 63 - static_cast<int>(index);
#else
  return __builtin_clzll(x);
#endif
}

}  // namespace isr
