// 4x4 row-major matrix with the view/projection factories the renderers
// share. Conventions follow OpenGL: right-handed eye space looking down -z,
// clip-space depth in [-1, 1] after perspective divide.
#pragma once

#include <array>
#include <cmath>

#include "math/vec.hpp"

namespace isr {

struct Mat4 {
  // m[row][col], row-major.
  std::array<std::array<float, 4>, 4> m{};

  static Mat4 identity() {
    Mat4 r;
    for (int i = 0; i < 4; ++i) r.m[i][i] = 1.0f;
    return r;
  }

  Mat4 operator*(const Mat4& o) const {
    Mat4 r;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) {
        float s = 0.0f;
        for (int k = 0; k < 4; ++k) s += m[i][k] * o.m[k][j];
        r.m[i][j] = s;
      }
    return r;
  }

  Vec4f operator*(Vec4f v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
            m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w};
  }

  Vec3f transform_point(Vec3f p) const {
    const Vec4f r = (*this) * Vec4f(p, 1.0f);
    return r.xyz();
  }

  Vec3f transform_vector(Vec3f v) const {
    const Vec4f r = (*this) * Vec4f(v, 0.0f);
    return r.xyz();
  }

  // Right-handed look-at: eye space has +x right, +y up, -z forward.
  static Mat4 look_at(Vec3f eye, Vec3f center, Vec3f up) {
    const Vec3f f = normalize(center - eye);
    const Vec3f s = normalize(cross(f, up));
    const Vec3f u = cross(s, f);
    Mat4 r = identity();
    r.m[0][0] = s.x;  r.m[0][1] = s.y;  r.m[0][2] = s.z;
    r.m[1][0] = u.x;  r.m[1][1] = u.y;  r.m[1][2] = u.z;
    r.m[2][0] = -f.x; r.m[2][1] = -f.y; r.m[2][2] = -f.z;
    r.m[0][3] = -dot(s, eye);
    r.m[1][3] = -dot(u, eye);
    r.m[2][3] = dot(f, eye);
    return r;
  }

  // GL-style perspective; fovy in radians.
  static Mat4 perspective(float fovy, float aspect, float znear, float zfar) {
    const float t = 1.0f / std::tan(fovy * 0.5f);
    Mat4 r;
    r.m[0][0] = t / aspect;
    r.m[1][1] = t;
    r.m[2][2] = (zfar + znear) / (znear - zfar);
    r.m[2][3] = (2.0f * zfar * znear) / (znear - zfar);
    r.m[3][2] = -1.0f;
    return r;
  }

  // General inverse via Gauss-Jordan; adequate for camera matrices.
  Mat4 inverse() const {
    std::array<std::array<double, 8>, 4> a{};
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) a[i][j] = m[i][j];
      a[i][4 + i] = 1.0;
    }
    for (int col = 0; col < 4; ++col) {
      int pivot = col;
      for (int r = col + 1; r < 4; ++r)
        if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
      std::swap(a[col], a[pivot]);
      const double d = a[col][col];
      if (d == 0.0) return identity();  // singular; callers pass regular matrices
      for (int j = 0; j < 8; ++j) a[col][j] /= d;
      for (int r = 0; r < 4; ++r) {
        if (r == col) continue;
        const double f = a[r][col];
        for (int j = 0; j < 8; ++j) a[r][j] -= f * a[col][j];
      }
    }
    Mat4 out;
    for (int i = 0; i < 4; ++i)
      for (int j = 0; j < 4; ++j) out.m[i][j] = static_cast<float>(a[i][4 + j]);
    return out;
  }
};

}  // namespace isr
