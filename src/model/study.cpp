#include "model/study.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "comm/compositor.hpp"
#include "conduit/blueprint.hpp"
#include "dpp/profiles.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "math/rng.hpp"
#include "mesh/external_faces.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/kripke.hpp"
#include "sims/lulesh.hpp"

namespace isr::model {

namespace {

// Per-rank data for one (sim, tasks, n) configuration: a structured grid
// (cloverleaf/kripke) or a triangle surface from external faces (all sims).
struct RankData {
  mesh::StructuredGrid grid;  // valid when has_grid
  mesh::TriMesh surface;
  bool has_grid = false;
  AABB bounds;
};

std::vector<RankData> generate_rank_data(const std::string& sim, int tasks, int n,
                                         int steps) {
  std::vector<RankData> ranks(static_cast<std::size_t>(tasks));
  for (int r = 0; r < tasks; ++r) {
    RankData& rd = ranks[static_cast<std::size_t>(r)];
    conduit::Node data;
    if (sim == "cloverleaf") {
      sims::CloverLeaf proxy(n, n, n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      rd.grid = conduit::blueprint::to_structured(data, "energy");
      rd.has_grid = true;
    } else if (sim == "kripke") {
      sims::Kripke proxy(n, n, n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      rd.grid = conduit::blueprint::to_structured(data, "phi");
      rd.has_grid = true;
    } else {  // lulesh
      sims::Lulesh proxy(n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      const mesh::HexMesh hexes = conduit::blueprint::to_hex_mesh(data, "e");
      rd.surface = mesh::external_faces(hexes);
      rd.bounds = rd.surface.bounds();
      continue;
    }
    rd.grid.normalize_scalars();
    rd.surface = mesh::external_faces(rd.grid);
    rd.bounds = rd.grid.bounds();
  }
  // Normalize lulesh surface scalars across ranks.
  if (sim == "lulesh") {
    float lo = 1e30f, hi = -1e30f;
    for (const RankData& rd : ranks)
      for (const float v : rd.surface.scalars) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    if (hi > lo)
      for (RankData& rd : ranks)
        for (float& v : rd.surface.scalars) v = (v - lo) / (hi - lo);
  }
  return ranks;
}

}  // namespace

std::vector<RenderSample> samples_for(const std::vector<Observation>& obs,
                                      const std::string& arch, RendererKind kind) {
  std::vector<RenderSample> out;
  for (const Observation& o : obs)
    if (o.arch == arch && o.renderer == kind) out.push_back(o.sample);
  return out;
}

std::vector<CompositeSample> composite_samples(const std::vector<Observation>& obs) {
  std::vector<CompositeSample> out;
  for (const Observation& o : obs) {
    CompositeSample s;
    s.avg_active_pixels = o.avg_active_pixels;
    s.pixels = static_cast<double>(o.image_size) * o.image_size;
    s.seconds = o.composite_seconds;
    out.push_back(s);
  }
  return out;
}

double study_scale_from_env() {
  const char* env = std::getenv("ISR_STUDY_SCALE");
  if (!env) return 1.0;
  const double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

std::vector<Observation> run_study(const StudyConfig& config, bool verbose) {
  std::vector<Observation> observations;
  Rng rng(config.seed);
  std::uint64_t render_counter = 0;

  for (const std::string& sim : config.sims) {
    for (const int tasks : config.tasks) {
      for (int s = 0; s < config.samples_per_config; ++s) {
        // Stratified sampling over (image size, data size): divide each
        // range into samples_per_config strata and jitter inside them.
        const double stratum = (static_cast<double>(s) + rng.next_double()) /
                               static_cast<double>(config.samples_per_config);
        const double stratum_n = (static_cast<double>(config.samples_per_config - 1 - s) +
                                  rng.next_double()) /
                                 static_cast<double>(config.samples_per_config);
        const int image =
            config.min_image +
            static_cast<int>(stratum * static_cast<double>(config.max_image - config.min_image));
        const int n = config.min_n + static_cast<int>(stratum_n *
                                                      static_cast<double>(config.max_n - config.min_n));

        const std::vector<RankData> ranks = generate_rank_data(sim, tasks, n, config.sim_steps);
        AABB global_bounds;
        for (const RankData& rd : ranks) global_bounds.expand(rd.bounds);
        const Camera camera = Camera::framing(global_bounds, image, image, 0.8f);
        const ColorTable colors = ColorTable::cool_warm();
        const TransferFunction tf(colors, 0.05f, 0.3f);

        for (const std::string& arch : config.archs) {
          for (const RendererKind kind : config.renderers) {
            // The paper excluded meaningless combinations (structured
            // volume renderer on unstructured data).
            if (kind == RendererKind::kVolume && !ranks.front().has_grid) continue;

            dpp::Device dev = dpp::Device::simulated(dpp::profile_by_name(arch),
                                                     0x5EED0000u + render_counter * 7919u);
            ++render_counter;

            std::vector<comm::RankImage> images(static_cast<std::size_t>(tasks));
            RenderSample slowest;
            double sum_active = 0.0;

            for (int r = 0; r < tasks; ++r) {
              const RankData& rd = ranks[static_cast<std::size_t>(r)];
              render::Image& img = images[static_cast<std::size_t>(r)].image;
              images[static_cast<std::size_t>(r)].view_depth =
                  length(rd.bounds.center() - camera.position);
              render::RenderStats stats;
              double build_seconds = 0.0;

              if (kind == RendererKind::kRayTrace) {
                render::RayTracer rt(rd.surface, dev);
                build_seconds = rt.bvh_build_stats().total_seconds();
                stats = rt.render(camera, colors, img);
              } else if (kind == RendererKind::kRasterize) {
                render::Rasterizer rast(rd.surface, dev);
                stats = rast.render(camera, colors, img);
              } else {
                render::StructuredVolumeRenderer vr(rd.grid, dev);
                render::VolumeRenderOptions opt;
                opt.samples = config.vr_samples;
                stats = vr.render(camera, tf, img, opt);
              }

              sum_active += stats.active_pixels;
              const double local = stats.total_seconds() + build_seconds;
              if (local >= slowest.total_seconds()) {
                slowest.inputs = {stats.objects,        stats.active_pixels,
                                  stats.visible_objects, stats.pixels_per_tri,
                                  stats.samples_per_ray, stats.cells_spanned};
                slowest.build_seconds = build_seconds;
                slowest.render_seconds = stats.total_seconds();
              }
            }

            comm::Comm comm(tasks);
            const comm::CompositeMode mode = kind == RendererKind::kVolume
                                                 ? comm::CompositeMode::kVolume
                                                 : comm::CompositeMode::kSurface;
            const comm::CompositeResult comp =
                comm::composite(comm, images, mode, comm::CompositeAlgorithm::kRadixK);

            Observation obs;
            obs.arch = arch;
            obs.renderer = kind;
            obs.sim = sim;
            obs.tasks = tasks;
            obs.image_size = image;
            obs.n_per_task = n;
            obs.sample = slowest;
            obs.avg_active_pixels = comp.avg_active_pixels;
            obs.composite_seconds = comp.simulated_seconds;
            obs.total_seconds = slowest.total_seconds() + comp.simulated_seconds;
            observations.push_back(obs);

            if (verbose)
              std::printf("study %-10s %-13s %-5s tasks=%-3d img=%-4d n=%-3d local=%.4fs comp=%.4fs\n",
                          sim.c_str(), renderer_name(kind), arch.c_str(), tasks, image, n,
                          slowest.total_seconds(), comp.simulated_seconds);
          }
        }
      }
    }
  }
  return observations;
}

}  // namespace isr::model
