#include "model/study.hpp"

#include <cmath>
#include <cstdio>

#include "comm/compositor.hpp"
#include "conduit/blueprint.hpp"
#include "core/env.hpp"
#include "core/parallel_for.hpp"
#include "core/thread_pool.hpp"
#include "dpp/profiles.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "math/rng.hpp"
#include "mesh/external_faces.hpp"
#include "render/rast/rasterizer.hpp"
#include "render/rt/raytracer.hpp"
#include "render/vr/volume.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/kripke.hpp"
#include "sims/lulesh.hpp"

namespace isr::model {

namespace {

// Below this rank count a configuration's per-rank work is dispatched
// serially: the items are too few for pool traffic to pay off, and the
// job-level fan-out already keeps the machine busy.
constexpr int kRankFanout = 4;

// Sims that produce a structured grid; everything else (lulesh, unknown
// names) takes the surface-only path. Single source of truth: both the
// grid-enumeration skip of the structured volume renderer and the
// generation dispatch in generate_rank_data branch on this.
bool sim_has_grid(const std::string& sim) {
  return sim == "cloverleaf" || sim == "kripke";
}

// Per-rank data for one (sim, tasks, n) configuration: a structured grid
// (only when sim_has_grid) plus a triangle surface from external faces
// (all sims).
struct RankData {
  mesh::StructuredGrid grid;
  mesh::TriMesh surface;
  AABB bounds;
};

std::vector<RankData> generate_rank_data(const std::string& sim, int tasks, int n,
                                         int steps, core::ThreadPool& pool) {
  std::vector<RankData> ranks(static_cast<std::size_t>(tasks));
  const auto build_rank = [&](std::size_t ri) {
    const int r = static_cast<int>(ri);
    RankData& rd = ranks[ri];
    conduit::Node data;
    if (!sim_has_grid(sim)) {  // lulesh (and any surface-only sim)
      sims::Lulesh proxy(n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      const mesh::HexMesh hexes = conduit::blueprint::to_hex_mesh(data, "e");
      rd.surface = mesh::external_faces(hexes);
      rd.bounds = rd.surface.bounds();
      return;
    }
    if (sim == "cloverleaf") {
      sims::CloverLeaf proxy(n, n, n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      rd.grid = conduit::blueprint::to_structured(data, "energy");
    } else {  // kripke
      sims::Kripke proxy(n, n, n, r, tasks);
      for (int s = 0; s < steps; ++s) proxy.step();
      proxy.describe(data);
      rd.grid = conduit::blueprint::to_structured(data, "phi");
    }
    rd.grid.normalize_scalars();
    rd.surface = mesh::external_faces(rd.grid);
    rd.bounds = rd.grid.bounds();
  };
  if (tasks >= kRankFanout && pool.size() > 1)
    core::parallel_for(pool, ranks.size(), build_rank);
  else
    for (std::size_t r = 0; r < ranks.size(); ++r) build_rank(r);

  // Normalize surface-only scalars across ranks (rank order: the min/max
  // reduction over floats must not depend on scheduling).
  if (!sim_has_grid(sim)) {
    float lo = 1e30f, hi = -1e30f;
    for (const RankData& rd : ranks)
      for (const float v : rd.surface.scalars) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    if (hi > lo)
      for (RankData& rd : ranks)
        for (float& v : rd.surface.scalars) v = (v - lo) / (hi - lo);
  }
  return ranks;
}

// One point of the (sim, tasks, sample) grid: generates rank data once and
// renders every arch x renderer combination on it.
struct Job {
  std::size_t sim = 0;  // index into config.sims
  int tasks = 1;
  int sample = 0;
  int image = 0;            // stratified-jittered image edge
  int n = 0;                // stratified-jittered per-task N
  std::uint64_t hash = 0;   // hash_seed(seed, sim, tasks, sample)
  std::size_t first_combo = 0;
  std::size_t combo_count = 0;
};

// One observation slot: an (arch, renderer) pair within a Job. A combo's
// index in the flat vector IS its observation slot (grid order).
struct Combo {
  std::size_t arch = 0;  // index into config.archs
  std::size_t kind = 0;  // index into config.renderers
};

}  // namespace

bool observations_identical(const Observation& a, const Observation& b) {
  return a.arch == b.arch && a.renderer == b.renderer && a.sim == b.sim &&
         a.tasks == b.tasks && a.image_size == b.image_size &&
         a.n_per_task == b.n_per_task &&
         a.sample.inputs.objects == b.sample.inputs.objects &&
         a.sample.inputs.active_pixels == b.sample.inputs.active_pixels &&
         a.sample.inputs.visible_objects == b.sample.inputs.visible_objects &&
         a.sample.inputs.pixels_per_tri == b.sample.inputs.pixels_per_tri &&
         a.sample.inputs.samples_per_ray == b.sample.inputs.samples_per_ray &&
         a.sample.inputs.cells_spanned == b.sample.inputs.cells_spanned &&
         a.sample.build_seconds == b.sample.build_seconds &&
         a.sample.render_seconds == b.sample.render_seconds &&
         a.avg_active_pixels == b.avg_active_pixels &&
         a.composite_seconds == b.composite_seconds &&
         a.total_seconds == b.total_seconds;
}

std::vector<RenderSample> samples_for(const std::vector<Observation>& obs,
                                      const std::string& arch, RendererKind kind) {
  std::vector<RenderSample> out;
  for (const Observation& o : obs)
    if (o.arch == arch && o.renderer == kind) out.push_back(o.sample);
  return out;
}

std::vector<CompositeSample> composite_samples(const std::vector<Observation>& obs) {
  std::vector<CompositeSample> out;
  for (const Observation& o : obs) {
    CompositeSample s;
    s.avg_active_pixels = o.avg_active_pixels;
    s.pixels = static_cast<double>(o.image_size) * o.image_size;
    s.seconds = o.composite_seconds;
    out.push_back(s);
  }
  return out;
}

double study_scale_from_env() { return core::env_double("ISR_STUDY_SCALE", 1.0); }

std::vector<Observation> run_study(const StudyConfig& config, bool verbose) {
  // ---- Enumerate the whole grid up front. -------------------------------
  // Each job's stratified jitter and every Device seed derive from
  // hash_seed over the grid coordinate, so the corpus is a pure function
  // of the config — bit-identical at any thread count and in any
  // execution order.
  std::vector<Job> jobs;
  std::vector<Combo> combos;
  jobs.reserve(config.sims.size() * config.tasks.size() *
               static_cast<std::size_t>(config.samples_per_config));
  for (std::size_t si = 0; si < config.sims.size(); ++si) {
    const std::string& sim = config.sims[si];
    // The paper excluded meaningless combinations (structured volume
    // renderer on unstructured data).
    const bool has_grid = sim_has_grid(sim);
    for (const int tasks : config.tasks) {
      for (int s = 0; s < config.samples_per_config; ++s) {
        Job job;
        job.sim = si;
        job.tasks = tasks;
        job.sample = s;
        job.hash = hash_seed(config.seed, sim, static_cast<std::uint64_t>(tasks),
                             static_cast<std::uint64_t>(s));
        // Stratified sampling over (image size, data size): divide each
        // range into samples_per_config strata and jitter inside them.
        Rng jitter(job.hash);
        const double stratum = (static_cast<double>(s) + jitter.next_double()) /
                               static_cast<double>(config.samples_per_config);
        const double stratum_n =
            (static_cast<double>(config.samples_per_config - 1 - s) + jitter.next_double()) /
            static_cast<double>(config.samples_per_config);
        job.image =
            config.min_image +
            static_cast<int>(stratum * static_cast<double>(config.max_image - config.min_image));
        job.n = config.min_n +
                static_cast<int>(stratum_n * static_cast<double>(config.max_n - config.min_n));
        job.first_combo = combos.size();
        for (std::size_t ai = 0; ai < config.archs.size(); ++ai)
          for (std::size_t ki = 0; ki < config.renderers.size(); ++ki) {
            if (config.renderers[ki] == RendererKind::kVolume && !has_grid) continue;
            combos.push_back(Combo{ai, ki});
          }
        job.combo_count = combos.size() - job.first_combo;
        jobs.push_back(job);
      }
    }
  }

  // Pre-sized slots: jobs write disjoint ranges, so the hot path takes no
  // locks; slot order is the serial harness's grid order.
  std::vector<Observation> observations(combos.size());
  std::vector<std::string> lines(verbose ? combos.size() : 0);

  core::ThreadPool pool(config.threads);

  const auto run_job = [&](std::size_t ji) {
    const Job& job = jobs[ji];
    const std::string& sim = config.sims[job.sim];
    const std::vector<RankData> ranks =
        generate_rank_data(sim, job.tasks, job.n, config.sim_steps, pool);
    AABB global_bounds;
    for (const RankData& rd : ranks) global_bounds.expand(rd.bounds);
    const Camera camera = Camera::framing(global_bounds, job.image, job.image, 0.8f);
    const ColorTable colors = ColorTable::cool_warm();
    const TransferFunction tf(colors, 0.05f, 0.3f);

    for (std::size_t c = job.first_combo; c < job.first_combo + job.combo_count; ++c) {
      const Combo& combo = combos[c];
      const std::string& arch = config.archs[combo.arch];
      const RendererKind kind = config.renderers[combo.kind];

      std::vector<comm::RankImage> images(static_cast<std::size_t>(job.tasks));
      std::vector<RenderSample> rank_samples(static_cast<std::size_t>(job.tasks));

      const auto render_rank = [&](std::size_t r) {
        const RankData& rd = ranks[r];
        // Each rank gets its own simulated Device whose jitter seed is a
        // function of the grid coordinate and rank — never of how many
        // renders ran before it.
        dpp::Device dev = dpp::Device::simulated(
            dpp::profile_by_name(arch),
            hash_seed(job.hash, arch, static_cast<std::uint64_t>(kind), r));
        render::Image& img = images[r].image;
        images[r].view_depth = length(rd.bounds.center() - camera.position);
        render::RenderStats stats;
        double build_seconds = 0.0;

        if (kind == RendererKind::kRayTrace) {
          render::RayTracer rt(rd.surface, dev);
          build_seconds = rt.bvh_build_stats().total_seconds();
          stats = rt.render(camera, colors, img);
        } else if (kind == RendererKind::kRasterize) {
          render::Rasterizer rast(rd.surface, dev);
          stats = rast.render(camera, colors, img);
        } else {
          render::StructuredVolumeRenderer vr(rd.grid, dev);
          render::VolumeRenderOptions opt;
          opt.samples = config.vr_samples;
          stats = vr.render(camera, tf, img, opt);
        }

        RenderSample& sample = rank_samples[r];
        sample.inputs = {stats.objects,         stats.active_pixels,
                         stats.visible_objects, stats.pixels_per_tri,
                         stats.samples_per_ray, stats.cells_spanned};
        sample.build_seconds = build_seconds;
        sample.render_seconds = stats.total_seconds();
      };
      if (job.tasks >= kRankFanout && pool.size() > 1)
        core::parallel_for(pool, static_cast<std::size_t>(job.tasks), render_rank);
      else
        for (int r = 0; r < job.tasks; ++r) render_rank(static_cast<std::size_t>(r));

      // Slowest-rank reduction in rank order (ties keep the later rank,
      // matching the serial harness).
      RenderSample slowest;
      for (const RenderSample& sample : rank_samples)
        if (sample.total_seconds() >= slowest.total_seconds()) slowest = sample;

      comm::Comm comm(job.tasks);
      const comm::CompositeMode mode = kind == RendererKind::kVolume
                                           ? comm::CompositeMode::kVolume
                                           : comm::CompositeMode::kSurface;
      // The per-round blend fan-out nests on the study pool (idle workers
      // drain it); blends fold in a fixed order, so the corpus stays
      // bit-identical at any thread count.
      const comm::CompositeResult comp = comm::composite(
          comm, images, mode, comm::CompositeAlgorithm::kRadixK, /*radix=*/8, &pool);

      Observation& obs = observations[c];
      obs.arch = arch;
      obs.renderer = kind;
      obs.sim = sim;
      obs.tasks = job.tasks;
      obs.image_size = job.image;
      obs.n_per_task = job.n;
      obs.sample = slowest;
      obs.avg_active_pixels = comp.avg_active_pixels;
      obs.composite_seconds = comp.simulated_seconds;
      obs.total_seconds = slowest.total_seconds() + comp.simulated_seconds;

      if (verbose) {
        const char* fmt =
            "study %-10s %-13s %-5s tasks=%-3d img=%-4d n=%-3d local=%.4fs comp=%.4fs\n";
        // Two-pass snprintf: sims/archs are arbitrary strings, so the line
        // length is unbounded and a fixed buffer could truncate.
        const int len =
            std::snprintf(nullptr, 0, fmt, sim.c_str(), renderer_name(kind), arch.c_str(),
                          job.tasks, job.image, job.n, slowest.total_seconds(),
                          comp.simulated_seconds);
        std::string line(static_cast<std::size_t>(len > 0 ? len : 0), '\0');
        std::snprintf(&line[0], line.size() + 1, fmt, sim.c_str(), renderer_name(kind),
                      arch.c_str(), job.tasks, job.image, job.n, slowest.total_seconds(),
                      comp.simulated_seconds);
        lines[c] = std::move(line);
      }
    }
  };

  core::parallel_for(pool, jobs.size(), run_job);

  // Buffered verbose output, emitted in deterministic grid order.
  if (verbose)
    for (const std::string& line : lines) std::fputs(line.c_str(), stdout);

  return observations;
}

}  // namespace isr::model
