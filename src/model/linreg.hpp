// Multiple linear regression and k-fold cross validation — the statistical
// machinery of the paper's methodology (§5.3 "Model Fitting and
// Evaluation"): fit with least squares, evaluate with R², residual standard
// deviation, and k-fold CV accuracy buckets.
#pragma once

#include <cstdint>
#include <vector>

namespace isr::core {
class ThreadPool;
}  // namespace isr::core

namespace isr::model {

struct FitResult {
  // One coefficient per feature, followed by the intercept (when fitted).
  std::vector<double> coefficients;
  bool has_intercept = true;
  double r_squared = 0.0;
  double residual_std = 0.0;
  bool ok = false;

  double predict(const std::vector<double>& features) const;
  // Allocation-free form the batched evaluation path uses; the vector
  // overload delegates here, so there is exactly one accumulation order
  // and the two can never drift by a bit.
  double predict(const double* features, std::size_t count) const;
};

// Least squares via normal equations (features are few and well scaled
// here). X: one row per observation. Returns ok=false when the system is
// singular or sizes mismatch.
FitResult fit_linear(const std::vector<std::vector<double>>& X,
                     const std::vector<double>& y, bool intercept = true);

struct CrossValidation {
  std::vector<double> predicted;  // concatenated over folds
  std::vector<double> actual;

  // Mean of |predicted - actual| / actual.
  double mean_abs_relative_error() const;
  // Fraction of predictions with |error| within `tol` (relative), e.g. 0.25.
  double fraction_within(double tol) const;
};

// Shuffles rows deterministically (seed), splits into k folds, fits on k-1
// and predicts the held-out fold. Folds are independent, so a non-null
// `pool` fans them out over core::ThreadPool; per-fold results are
// concatenated in fold order, making the output bit-identical at any
// thread count (the shuffle runs once, serially, before the fan-out).
CrossValidation k_fold_cv(const std::vector<std::vector<double>>& X,
                          const std::vector<double>& y, int k,
                          std::uint64_t seed = 0xCF01Du, bool intercept = true,
                          core::ThreadPool* pool = nullptr);

// Pearson correlation between two series (used for the paper's screening
// "correlation analysis").
double correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace isr::model
