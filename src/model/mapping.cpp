#include "model/mapping.hpp"

#include <algorithm>
#include <cmath>

namespace isr::model {

ModelInputs map_configuration(RendererKind kind, int n_per_task, int tasks, double pixels,
                              const MappingConstants& c) {
  ModelInputs in;
  const double n = static_cast<double>(n_per_task);
  const double inv_cbrt_tasks = 1.0 / std::cbrt(static_cast<double>(std::max(tasks, 1)));

  in.active_pixels = c.ap_fill * inv_cbrt_tasks * pixels;
  if (kind == RendererKind::kVolume) {
    in.objects = n * n * n;
    in.samples_per_ray = c.spr_base * inv_cbrt_tasks;
    in.cells_spanned = n;
  } else {
    // External faces: six faces of N^2 quads, two triangles each.
    in.objects = 12.0 * n * n;
    in.visible_objects = std::min(in.active_pixels, in.objects);
    // "Active pixels on average have two overlapping triangles ... an
    // additional two triangles will still consider these pixels": total
    // pixel considerations = ppt * AP, spread over the visible triangles.
    in.pixels_per_tri =
        in.visible_objects > 0 ? c.ppt * in.active_pixels / in.visible_objects : c.ppt;
  }
  return in;
}

}  // namespace isr::model
