// The paper's performance models (§5.5-§5.6), as fit-and-predict objects:
//
//   T_RT   = (c0*O + c1) + (c2*(AP*log2 O) + c3*AP + c4)        (Eq. 5.1)
//   T_RAST = c0*O + c1*(VO*PPT) + c2                            (Eq. 5.2)
//   T_VR   = c0*(AP*CS) + c1*(AP*SPR) + c2                      (Eq. 5.3)
//   T_total= max_tasks(T_LR) + T_COMP                           (Eq. 5.4)
//   T_COMP = c0*avg(AP) + c1*Pixels + c2                        (Eq. 5.5)
//
// The ray-tracing model is two regressions (BVH build on O; trace+shade on
// AP*log2 O and AP) so the build can be amortized across frames, exactly as
// the paper separates them.
#pragma once

#include <string>
#include <vector>

#include "model/linreg.hpp"

namespace isr::model {

enum class RendererKind { kRayTrace, kRasterize, kVolume };

const char* renderer_name(RendererKind kind);

// The model input variables of one observation (§5.3). Each is a property
// of a (data set, camera, image size) configuration that the paper found
// predictive of rendering time; §5.8's mapping estimates them from a
// configuration without rendering (see model/mapping.hpp).
struct ModelInputs {
  // O: geometric primitives on this task (triangles for the surface
  // renderers, cells for volume rendering). Drives BVH build time and the
  // per-object setup costs.
  double objects = 0;
  // AP: pixels the data actually lands on (non-background). The dominant
  // per-ray/per-fragment work multiplier in every model.
  double active_pixels = 0;
  // VO: objects that survive view-frustum/backface culling and are actually
  // scanned out — the rasterizer iterates these, not O.
  double visible_objects = 0;
  // PPT: average pixels covered per visible triangle; VO*PPT is the
  // rasterizer's total fragment work.
  double pixels_per_tri = 0;
  // SPR: volume samples taken along an average active ray; AP*SPR is the
  // volume renderer's total sampling work.
  double samples_per_ray = 0;
  // CS: cells an average ray spans (structured-volume step count per cell);
  // AP*CS is the volume renderer's traversal work.
  double cells_spanned = 0;
};

// One measured data point for model fitting.
struct RenderSample {
  ModelInputs inputs;
  double build_seconds = 0.0;   // ray tracing only (BVH)
  double render_seconds = 0.0;  // local rendering, excluding build
  double total_seconds() const { return build_seconds + render_seconds; }
};

// Feature vector for the render-time regression of each model.
std::vector<double> render_features(RendererKind kind, const ModelInputs& in);

// Allocation-free form: writes the same terms in the same order into `out`
// (room for 2) and returns how many. render_features delegates here, so
// the serving hot path and the fitting path can never disagree on a term.
std::size_t render_features_into(RendererKind kind, const ModelInputs& in, double out[2]);

// One fitted single-node rendering model (one of the paper's six:
// {ray tracing, rasterization, volume} x {CPU1, GPU1}). fit() runs the
// multiple linear regression of Eqs. 5.1-5.3 on measured samples; predict()
// evaluates it for new inputs. For ray tracing two regressions are kept so
// the O(n log n) BVH build (c0*O + c1) can be amortized separately from the
// per-frame trace cost (c2*(AP*log2 O) + c3*AP + c4) — AP*log2 O models
// "active rays each walking a log-depth BVH".
class PerfModel {
 public:
  static PerfModel fit(RendererKind kind, const std::vector<RenderSample>& samples);

  RendererKind kind() const { return kind_; }
  bool ok() const { return render_fit_.ok; }

  // Predicted seconds for one frame including BVH build.
  double predict(const ModelInputs& in) const;
  // Render-only prediction (build amortized away, the repeated-render case).
  double predict_render(const ModelInputs& in) const;
  double predict_build(const ModelInputs& in) const;

  // Column kernels for the batched serving path: one prediction per input
  // row, written to out[i]. Bit-identical to the scalar calls row by row —
  // they share the feature mapping (render_features_into) and the
  // FitResult accumulation, with the kind dispatch and coefficient lookups
  // hoisted out of the row loop and zero heap traffic.
  void predict_render_batch(const ModelInputs* in, std::size_t count, double* out) const;
  void predict_build_batch(const ModelInputs* in, std::size_t count, double* out) const;

  // R^2 of the render-time regression (what Table 12 reports).
  double r_squared() const { return render_fit_.r_squared; }
  double residual_std() const { return render_fit_.residual_std; }

  // Coefficients in the paper's order (Table 17): ray tracing
  // {c0,c1,c2,c3,c4} = {build slope, build intercept, AP*log2O, AP,
  // intercept}; others {c0, c1, c2}.
  std::vector<double> paper_coefficients() const;

  // 3-fold cross validation of total render time on the same samples. A
  // non-null pool fans the folds out over core::ThreadPool; results are
  // bit-identical at any thread count (see k_fold_cv).
  CrossValidation cross_validate(const std::vector<RenderSample>& samples, int k = 3,
                                 std::uint64_t seed = 0xCF01Du,
                                 core::ThreadPool* pool = nullptr) const;

 private:
  std::vector<double> features_for(const ModelInputs& in) const;

  RendererKind kind_ = RendererKind::kRayTrace;
  FitResult render_fit_;
  FitResult build_fit_;  // ray tracing only
  // The paper notes negative regression coefficients signal an invalid
  // model; when the two ray-tracing features (AP*log2 O and AP) are
  // collinear enough to produce one, refit on AP*log2 O alone.
  bool rt_reduced_ = false;
};

// Compositing model (Eq. 5.5): T_COMP = c0*avg(AP) + c1*Pixels + c2.
// avg(AP) is the mean active-pixel count across ranks (bytes each rank
// contributes to the exchange); Pixels is the full image resolution (the
// final gather/blend everyone pays regardless of content). Together with
// Eq. 5.4 (T_total = max over tasks of local render time + T_COMP) this
// extends the single-node models to multi-rank runs.
struct CompositeSample {
  double avg_active_pixels = 0;
  double pixels = 0;  // full image resolution
  double seconds = 0;
};

class CompositeModel {
 public:
  static CompositeModel fit(const std::vector<CompositeSample>& samples);
  bool ok() const { return fit_.ok; }
  double predict(double avg_active_pixels, double pixels) const;
  double r_squared() const { return fit_.r_squared; }
  std::vector<double> coefficients() const { return fit_.coefficients; }
  CrossValidation cross_validate(const std::vector<CompositeSample>& samples, int k = 3,
                                 std::uint64_t seed = 0xC0111Du,
                                 core::ThreadPool* pool = nullptr) const;

 private:
  FitResult fit_;
};

}  // namespace isr::model
