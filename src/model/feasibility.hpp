// In situ viability analyses (§5.9): the two feasibility questions the
// paper answers with its fitted models, exposed as reusable functions so
// the benches, examples, and the feasibility_advisor CLI share them.
#pragma once

#include <string>
#include <vector>

#include "model/mapping.hpp"
#include "model/perfmodel.hpp"

namespace isr::model {

// "How many images fit in a fixed time budget?" (Figure 14): for each image
// edge in `image_edges`, predict one frame at the given configuration and
// return floor(budget / frame_time). BVH build is charged once (amortized),
// matching the paper's repeated-rendering use case.
struct BudgetPoint {
  int image_edge = 0;
  double frame_seconds = 0.0;
  long images_in_budget = 0;
};
std::vector<BudgetPoint> images_in_budget(const PerfModel& model, double budget_seconds,
                                          int n_per_task, int tasks,
                                          const std::vector<int>& image_edges,
                                          const MappingConstants& constants = {});

// "Ray tracing or rasterization?" (Figure 15): predicted time ratio
// T_RAST / T_RT for `frames` renderings (RT's BVH build amortized over the
// frames) on a grid of image sizes x data sizes. ratio > 1 means ray
// tracing wins.
struct RatioCell {
  int image_edge = 0;
  int n_per_task = 0;
  double rt_seconds = 0.0;
  double rast_seconds = 0.0;
  double ratio = 0.0;  // rast / rt
};
std::vector<RatioCell> rt_vs_rast(const PerfModel& rt, const PerfModel& rast, int frames,
                                  int tasks, const std::vector<int>& image_edges,
                                  const std::vector<int>& data_sizes,
                                  const MappingConstants& constants = {});

}  // namespace isr::model
