// In situ viability analyses (§5.9): the two feasibility questions the
// paper answers with its fitted models, exposed as reusable functions so
// the benches, examples, and the feasibility_advisor CLI share them.
#pragma once

#include <string>
#include <vector>

#include "model/mapping.hpp"
#include "model/perfmodel.hpp"

namespace isr::model {

// "How many images fit in a fixed time budget?" (Figure 14): for each image
// edge in `image_edges`, map the configuration (n_per_task cells on each of
// `tasks` ranks, image_edge^2 pixels) to model variables via §5.8, predict
// one frame, and return floor(budget / frame_time). BVH build is charged
// once (amortized), matching the paper's repeated-rendering image-database
// use case — the scenario where a simulation renders a Cinema-style sweep
// of camera positions every cycle and must know the sweep fits its budget.
struct BudgetPoint {
  int image_edge = 0;
  double frame_seconds = 0.0;
  double build_seconds = 0.0;  // the once-per-batch build charge (RT only)
  // Saturates at LONG_MAX rather than overflowing when budget/frame_time
  // exceeds the representable range.
  long images_in_budget = 0;
};
std::vector<BudgetPoint> images_in_budget(const PerfModel& model, double budget_seconds,
                                          int n_per_task, int tasks,
                                          const std::vector<int>& image_edges,
                                          const MappingConstants& constants = {});

// "Ray tracing or rasterization?" (Figure 15): predicted time ratio
// T_RAST / T_RT for `frames` renderings (RT's BVH build amortized over the
// frames) on a grid of image sizes x data sizes. ratio > 1 means ray
// tracing wins. The crossover structure comes straight from the cost
// models: rasterization scales with geometry actually scanned out (VO*PPT
// plus per-object setup on O), ray tracing with rays walking the BVH
// (AP*log2 O) — so big data + small images favors ray tracing, and the
// one-time BVH build shifts the frontier toward rasterization when
// `frames` is small.
struct RatioCell {
  int image_edge = 0;
  int n_per_task = 0;
  double rt_seconds = 0.0;
  double rast_seconds = 0.0;
  double ratio = 0.0;  // rast / rt
};
std::vector<RatioCell> rt_vs_rast(const PerfModel& rt, const PerfModel& rast, int frames,
                                  int tasks, const std::vector<int>& image_edges,
                                  const std::vector<int>& data_sizes,
                                  const MappingConstants& constants = {});

// The images-in-budget count for one already-predicted point: floor of the
// post-build budget over the frame cost, saturating at LONG_MAX (a
// double >= 2^63 cast to long is UB, and an absurd budget must yield "all
// of them", never a negative count). Single source of truth for the sweep
// above and the batched serving path (serve::answer_batch).
long images_for_budget(double budget_seconds, double frame_seconds, double build_seconds);

}  // namespace isr::model
