#include "model/feasibility.hpp"

#include <cmath>
#include <limits>

namespace isr::model {

namespace {

// double -> long with saturation: casting a double >= 2^63 to long is
// undefined behavior, and an absurd budget must yield LONG_MAX images,
// not a negative count. 2^63 is exactly representable, so the comparison
// is exact and anything below it casts safely.
long saturating_count(double count) {
  constexpr double kLongMax = static_cast<double>(std::numeric_limits<long>::max());
  return count >= kLongMax ? std::numeric_limits<long>::max() : static_cast<long>(count);
}

}  // namespace

long images_for_budget(double budget_seconds, double frame_seconds, double build_seconds) {
  return frame_seconds > 0.0
             ? saturating_count(
                   std::max(0.0, (budget_seconds - build_seconds) / frame_seconds))
             : 0;
}

std::vector<BudgetPoint> images_in_budget(const PerfModel& model, double budget_seconds,
                                          int n_per_task, int tasks,
                                          const std::vector<int>& image_edges,
                                          const MappingConstants& constants) {
  std::vector<BudgetPoint> out;
  out.reserve(image_edges.size());
  for (const int edge : image_edges) {
    const double pixels = static_cast<double>(edge) * edge;
    const ModelInputs in = map_configuration(model.kind(), n_per_task, tasks, pixels, constants);
    BudgetPoint p;
    p.image_edge = edge;
    p.frame_seconds = model.predict_render(in);
    // One build at the start of the batch (ray tracing only).
    p.build_seconds = model.predict_build(in);
    p.images_in_budget = images_for_budget(budget_seconds, p.frame_seconds, p.build_seconds);
    out.push_back(p);
  }
  return out;
}

std::vector<RatioCell> rt_vs_rast(const PerfModel& rt, const PerfModel& rast, int frames,
                                  int tasks, const std::vector<int>& image_edges,
                                  const std::vector<int>& data_sizes,
                                  const MappingConstants& constants) {
  std::vector<RatioCell> out;
  out.reserve(image_edges.size() * data_sizes.size());
  for (const int n : data_sizes) {
    for (const int edge : image_edges) {
      const double pixels = static_cast<double>(edge) * edge;
      const ModelInputs rt_in =
          map_configuration(RendererKind::kRayTrace, n, tasks, pixels, constants);
      const ModelInputs rast_in =
          map_configuration(RendererKind::kRasterize, n, tasks, pixels, constants);
      RatioCell cell;
      cell.image_edge = edge;
      cell.n_per_task = n;
      cell.rt_seconds =
          rt.predict_build(rt_in) + static_cast<double>(frames) * rt.predict_render(rt_in);
      cell.rast_seconds = static_cast<double>(frames) * rast.predict_render(rast_in);
      cell.ratio = cell.rt_seconds > 0.0 ? cell.rast_seconds / cell.rt_seconds : 0.0;
      out.push_back(cell);
    }
  }
  return out;
}

}  // namespace isr::model
