// On-line model refinement (dissertation Chapter VI, §6.2): instead of the
// paper's off-line workflow (run tests, fit, then use), observations stream
// in as the simulation renders and the model refits periodically — "models
// would be refined as more data is generated, with model accuracy
// increasing as the corpus grows."
#pragma once

#include <cstddef>
#include <vector>

#include "model/perfmodel.hpp"

namespace isr::model {

class OnlineModel {
 public:
  // Refits after every `refit_interval` new observations (refits are cheap:
  // the feature count is 2-3).
  explicit OnlineModel(RendererKind kind, std::size_t refit_interval = 8);

  RendererKind kind() const { return kind_; }

  // Feeds one measurement (e.g. a Strawman PerfRecord) into the corpus.
  void observe(const RenderSample& sample);

  // A model exists once there are enough samples for the regression.
  bool ready() const { return fitted_.ok(); }
  std::size_t observation_count() const { return corpus_.size(); }

  // Prediction from the most recent refit; 0 until ready().
  double predict(const ModelInputs& inputs) const;
  double r_squared() const { return fitted_.ok() ? fitted_.r_squared() : 0.0; }

  // Forces a refit now (also done automatically every refit_interval).
  void refit();

  const std::vector<RenderSample>& corpus() const { return corpus_; }

 private:
  RendererKind kind_;
  std::size_t refit_interval_;
  std::size_t since_refit_ = 0;
  std::vector<RenderSample> corpus_;
  PerfModel fitted_;
};

}  // namespace isr::model
