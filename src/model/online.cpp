#include "model/online.hpp"

namespace isr::model {

namespace {
// Fewest observations worth fitting: features + intercept + slack.
constexpr std::size_t kMinSamples = 6;
}  // namespace

OnlineModel::OnlineModel(RendererKind kind, std::size_t refit_interval)
    : kind_(kind), refit_interval_(refit_interval == 0 ? 1 : refit_interval),
      fitted_(PerfModel::fit(kind, {})) {}

void OnlineModel::observe(const RenderSample& sample) {
  corpus_.push_back(sample);
  ++since_refit_;
  if (corpus_.size() >= kMinSamples &&
      (since_refit_ >= refit_interval_ || !fitted_.ok()))
    refit();
}

void OnlineModel::refit() {
  if (corpus_.size() < kMinSamples) return;
  fitted_ = PerfModel::fit(kind_, corpus_);
  since_refit_ = 0;
}

double OnlineModel::predict(const ModelInputs& inputs) const {
  return fitted_.ok() ? fitted_.predict(inputs) : 0.0;
}

}  // namespace isr::model
