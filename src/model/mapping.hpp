// Mapping from user-facing rendering configurations to model input
// variables (§5.8): users think in (data size per task, task count, image
// resolution); the models need (O, AP, VO, PPT, SPR, CS). The constants are
// the paper's: external faces give O = 12*N^2 triangles from an N^3 block;
// cameras fill ~55% of pixels; each 8x increase in task count halves a
// rank's linear screen coverage (1/tasks^(1/3)).
#pragma once

#include "model/perfmodel.hpp"

namespace isr::model {

struct MappingConstants {
  double ap_fill = 0.55;    // fraction of pixels active at 1 task
  double ppt = 4.0;         // pixels considered per triangle (external faces)
  double spr_base = 373.0;  // samples per ray at 1 task (for the paper's S)
};

// n_per_task: N of the N^3 per-task block. pixels: total image pixels.
ModelInputs map_configuration(RendererKind kind, int n_per_task, int tasks, double pixels,
                              const MappingConstants& constants = {});

}  // namespace isr::model
