#include "model/perfmodel.hpp"

#include <cmath>
#include <stdexcept>

namespace isr::model {

const char* renderer_name(RendererKind kind) {
  switch (kind) {
    case RendererKind::kRayTrace: return "Ray Tracing";
    case RendererKind::kRasterize: return "Rasterization";
    case RendererKind::kVolume: return "Volume";
  }
  return "?";
}

std::size_t render_features_into(RendererKind kind, const ModelInputs& in, double out[2]) {
  switch (kind) {
    case RendererKind::kRayTrace:
      out[0] = in.active_pixels * std::log2(std::max(in.objects, 2.0));
      out[1] = in.active_pixels;
      return 2;
    case RendererKind::kRasterize:
      out[0] = in.objects;
      out[1] = in.visible_objects * in.pixels_per_tri;
      return 2;
    case RendererKind::kVolume:
      out[0] = in.active_pixels * in.cells_spanned;
      out[1] = in.active_pixels * in.samples_per_ray;
      return 2;
  }
  return 0;
}

std::vector<double> render_features(RendererKind kind, const ModelInputs& in) {
  double f[2] = {0.0, 0.0};
  const std::size_t n = render_features_into(kind, in, f);
  return std::vector<double>(f, f + n);
}

PerfModel PerfModel::fit(RendererKind kind, const std::vector<RenderSample>& samples) {
  PerfModel m;
  m.kind_ = kind;
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  X.reserve(samples.size());
  y.reserve(samples.size());
  for (const RenderSample& s : samples) {
    X.push_back(render_features(kind, s.inputs));
    y.push_back(s.render_seconds);
  }
  m.render_fit_ = fit_linear(X, y);

  if (kind == RendererKind::kRayTrace && m.render_fit_.ok &&
      (m.render_fit_.coefficients[0] < 0.0 || m.render_fit_.coefficients[1] < 0.0)) {
    // Collinear AP*log2(O) and AP features (narrow O range): keep only the
    // dominant term so extrapolation stays physical.
    m.rt_reduced_ = true;
    std::vector<std::vector<double>> Xr;
    Xr.reserve(samples.size());
    for (const RenderSample& s : samples) Xr.push_back({render_features(kind, s.inputs)[0]});
    m.render_fit_ = fit_linear(Xr, y);
  }

  if (kind == RendererKind::kRayTrace) {
    std::vector<std::vector<double>> Xb;
    std::vector<double> yb;
    for (const RenderSample& s : samples) {
      Xb.push_back({s.inputs.objects});
      yb.push_back(s.build_seconds);
    }
    m.build_fit_ = fit_linear(Xb, yb);
  }
  return m;
}

std::vector<double> PerfModel::features_for(const ModelInputs& in) const {
  std::vector<double> f = render_features(kind_, in);
  if (rt_reduced_) f.resize(1);
  return f;
}

double PerfModel::predict_render(const ModelInputs& in) const {
  double f[2];
  std::size_t nf = render_features_into(kind_, in, f);
  if (rt_reduced_ && nf > 1) nf = 1;
  return std::max(0.0, render_fit_.predict(f, nf));
}

double PerfModel::predict_build(const ModelInputs& in) const {
  if (kind_ != RendererKind::kRayTrace || !build_fit_.ok) return 0.0;
  const double f = in.objects;
  return std::max(0.0, build_fit_.predict(&f, 1));
}

void PerfModel::predict_render_batch(const ModelInputs* in, std::size_t count,
                                     double* out) const {
  // One dispatch for the column; the row loop is feature math plus the
  // shared FitResult accumulation, so each out[i] is the scalar result.
  const RendererKind kind = kind_;
  const bool reduced = rt_reduced_;
  double f[2];
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t nf = render_features_into(kind, in[i], f);
    if (reduced && nf > 1) nf = 1;
    out[i] = std::max(0.0, render_fit_.predict(f, nf));
  }
}

void PerfModel::predict_build_batch(const ModelInputs* in, std::size_t count,
                                    double* out) const {
  if (kind_ != RendererKind::kRayTrace || !build_fit_.ok) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0.0;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) {
    const double f = in[i].objects;
    out[i] = std::max(0.0, build_fit_.predict(&f, 1));
  }
}

double PerfModel::predict(const ModelInputs& in) const {
  return predict_render(in) + predict_build(in);
}

std::vector<double> PerfModel::paper_coefficients() const {
  if (kind_ == RendererKind::kRayTrace) {
    // {c0, c1} from the build fit, {c2, c3, c4} from the trace fit.
    std::vector<double> c;
    if (build_fit_.ok) {
      c.push_back(build_fit_.coefficients[0]);
      c.push_back(build_fit_.coefficients[1]);
    } else {
      c.push_back(0.0);
      c.push_back(0.0);
    }
    if (rt_reduced_) {
      c.push_back(render_fit_.coefficients[0]);  // c2
      c.push_back(0.0);                          // c3 (dropped AP term)
      c.push_back(render_fit_.coefficients[1]);  // c4 (intercept)
    } else {
      for (const double v : render_fit_.coefficients) c.push_back(v);
    }
    return c;
  }
  return render_fit_.coefficients;
}

CrossValidation PerfModel::cross_validate(const std::vector<RenderSample>& samples, int k,
                                          std::uint64_t seed, core::ThreadPool* pool) const {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (const RenderSample& s : samples) {
    X.push_back(features_for(s.inputs));
    y.push_back(s.render_seconds);
  }
  return k_fold_cv(X, y, k, seed, /*intercept=*/true, pool);
}

CompositeModel CompositeModel::fit(const std::vector<CompositeSample>& samples) {
  CompositeModel m;
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (const CompositeSample& s : samples) {
    X.push_back({s.avg_active_pixels, s.pixels});
    y.push_back(s.seconds);
  }
  m.fit_ = fit_linear(X, y);
  return m;
}

double CompositeModel::predict(double avg_active_pixels, double pixels) const {
  return std::max(0.0, fit_.predict({avg_active_pixels, pixels}));
}

CrossValidation CompositeModel::cross_validate(const std::vector<CompositeSample>& samples,
                                               int k, std::uint64_t seed,
                                               core::ThreadPool* pool) const {
  std::vector<std::vector<double>> X;
  std::vector<double> y;
  for (const CompositeSample& s : samples) {
    X.push_back({s.avg_active_pixels, s.pixels});
    y.push_back(s.seconds);
  }
  return k_fold_cv(X, y, k, seed, /*intercept=*/true, pool);
}

}  // namespace isr::model
