// The SC16 performance study driver (§5.4): runs the cross product of
// architecture x renderer x simulation x task count over stratified
// (data size, image size) samples, measures the model input variables and
// phase times of the slowest rank, composites the rank images over the
// virtual MPI layer, and returns the observation corpus the models are
// fitted from.
//
// The paper ran 1350 tests at up to 2880^2 images and 320^3 cells/node on
// Surface; defaults here are scaled so the suite completes on a laptop
// core. Set scale > 1 (or the ISR_STUDY_SCALE env var in the benches) for
// larger corpora.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/perfmodel.hpp"

namespace isr::model {

struct StudyConfig {
  std::vector<std::string> archs = {"CPU1", "GPU1"};
  std::vector<RendererKind> renderers = {RendererKind::kRayTrace, RendererKind::kRasterize,
                                         RendererKind::kVolume};
  std::vector<std::string> sims = {"cloverleaf", "kripke", "lulesh"};
  std::vector<int> tasks = {1, 2, 4, 8};

  int samples_per_config = 3;  // stratified (image, data size) pairs
  int min_image = 192, max_image = 448;  // square image edge
  int min_n = 24, max_n = 52;            // per-task N (N^3 cells)
  int vr_samples = 300;                  // volume sampling density
  int sim_steps = 3;                     // cycles to advance each proxy
  std::uint64_t seed = 77;

  // Worker threads for the study fan-out: 0 defers to the ISR_THREADS env
  // var (default: all hardware threads), 1 forces serial. Every stratified
  // jitter and Device seed is a counter-based hash of its grid coordinate
  // (math/rng.hpp hash_seed), so the observation corpus is bit-identical
  // at any thread count.
  int threads = 0;
};

struct Observation {
  std::string arch;
  RendererKind renderer = RendererKind::kRayTrace;
  std::string sim;
  int tasks = 1;
  int image_size = 0;  // edge of the square image
  int n_per_task = 0;

  RenderSample sample;          // slowest rank: inputs + build/render times
  double avg_active_pixels = 0; // across ranks (compositing model input)
  double composite_seconds = 0; // simulated radix-k time
  double total_seconds = 0;     // max local + composite (Eq. 5.4 measured)
};

// Runs the study across config.threads pool workers (src/core/). With
// verbose=true, per-observation lines are buffered and printed in
// deterministic grid order (sims x tasks x samples x archs x renderers)
// regardless of execution order.
std::vector<Observation> run_study(const StudyConfig& config, bool verbose = false);

// Exact equality of two observations, every field — the determinism
// contract run_study guarantees across thread counts. The single source of
// truth for both the determinism gtest and bench_study_throughput's gate;
// extend it when adding fields to Observation.
bool observations_identical(const Observation& a, const Observation& b);

// Convenience filters for fitting.
std::vector<RenderSample> samples_for(const std::vector<Observation>& obs,
                                      const std::string& arch, RendererKind kind);
std::vector<CompositeSample> composite_samples(const std::vector<Observation>& obs);

// Env-based scale factor used by benches: ISR_STUDY_SCALE (default 1.0)
// multiplies image and data sizes.
double study_scale_from_env();

}  // namespace isr::model
