#include "model/linreg.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/parallel_for.hpp"
#include "math/rng.hpp"

namespace isr::model {

double FitResult::predict(const std::vector<double>& features) const {
  return predict(features.data(), features.size());
}

double FitResult::predict(const double* features, std::size_t count) const {
  double y = 0.0;
  const std::size_t nf = has_intercept ? coefficients.size() - 1 : coefficients.size();
  for (std::size_t i = 0; i < nf && i < count; ++i)
    y += coefficients[i] * features[i];
  if (has_intercept) y += coefficients.back();
  return y;
}

namespace {

// Solves the symmetric positive (semi-)definite system A x = b in place by
// Gaussian elimination with partial pivoting; p is tiny (<= 6).
bool solve(std::vector<std::vector<double>>& A, std::vector<double>& b,
           std::vector<double>& x) {
  const std::size_t p = b.size();
  for (std::size_t col = 0; col < p; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < p; ++r)
      if (std::abs(A[r][col]) > std::abs(A[pivot][col])) pivot = r;
    if (std::abs(A[pivot][col]) < 1e-12) return false;
    std::swap(A[col], A[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = 0; r < p; ++r) {
      if (r == col) continue;
      const double f = A[r][col] / A[col][col];
      for (std::size_t c = col; c < p; ++c) A[r][c] -= f * A[col][c];
      b[r] -= f * b[col];
    }
  }
  x.resize(p);
  for (std::size_t i = 0; i < p; ++i) x[i] = b[i] / A[i][i];
  return true;
}

}  // namespace

FitResult fit_linear(const std::vector<std::vector<double>>& X,
                     const std::vector<double>& y, bool intercept) {
  FitResult result;
  result.has_intercept = intercept;
  const std::size_t n = X.size();
  if (n == 0 || y.size() != n) return result;
  const std::size_t nf = X[0].size();
  const std::size_t p = nf + (intercept ? 1 : 0);
  if (n < p) return result;

  auto feature = [&](std::size_t row, std::size_t col) {
    return col < nf ? X[row][col] : 1.0;
  };

  // Normal equations: (X'X) beta = X'y.
  std::vector<std::vector<double>> A(p, std::vector<double>(p, 0.0));
  std::vector<double> b(p, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < p; ++i) {
      const double fi = feature(r, i);
      b[i] += fi * y[r];
      for (std::size_t j = i; j < p; ++j) A[i][j] += fi * feature(r, j);
    }
  }
  for (std::size_t i = 0; i < p; ++i)
    for (std::size_t j = 0; j < i; ++j) A[i][j] = A[j][i];

  if (!solve(A, b, result.coefficients)) return result;

  // R^2 and residual standard deviation.
  const double mean_y = std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double pred = 0.0;
    for (std::size_t i = 0; i < p; ++i) pred += result.coefficients[i] * feature(r, i);
    ss_res += (y[r] - pred) * (y[r] - pred);
    ss_tot += (y[r] - mean_y) * (y[r] - mean_y);
  }
  result.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  result.residual_std = n > p ? std::sqrt(ss_res / static_cast<double>(n - p)) : 0.0;
  result.ok = true;
  return result;
}

double CrossValidation::mean_abs_relative_error() const {
  if (actual.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    if (actual[i] != 0.0) acc += std::abs((predicted[i] - actual[i]) / actual[i]);
  return acc / static_cast<double>(actual.size());
}

double CrossValidation::fraction_within(double tol) const {
  if (actual.empty()) return 0.0;
  std::size_t hit = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == 0.0) continue;
    if (std::abs((predicted[i] - actual[i]) / actual[i]) <= tol) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(actual.size());
}

CrossValidation k_fold_cv(const std::vector<std::vector<double>>& X,
                          const std::vector<double>& y, int k, std::uint64_t seed,
                          bool intercept, core::ThreadPool* pool) {
  CrossValidation cv;
  const std::size_t n = X.size();
  if (n == 0 || k < 2) return cv;

  // The shuffle runs once, serially, before any fan-out: every fold reads
  // the same permutation regardless of thread count.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(order[i], order[rng.next_u64() % (i + 1)]);

  // Folds are independent fit+predict jobs; each writes its own slot and
  // the slots are concatenated in fold order afterwards, so the parallel
  // result is bit-identical to the serial one.
  std::vector<std::vector<double>> fold_predicted(static_cast<std::size_t>(k));
  std::vector<std::vector<double>> fold_actual(static_cast<std::size_t>(k));
  core::maybe_parallel_for(pool, static_cast<std::size_t>(k), [&](std::size_t f) {
    const int fold = static_cast<int>(f);
    std::vector<std::vector<double>> train_x, test_x;
    std::vector<double> train_y, test_y;
    for (std::size_t i = 0; i < n; ++i) {
      const bool in_test = static_cast<int>(i % static_cast<std::size_t>(k)) == fold;
      if (in_test) {
        test_x.push_back(X[order[i]]);
        test_y.push_back(y[order[i]]);
      } else {
        train_x.push_back(X[order[i]]);
        train_y.push_back(y[order[i]]);
      }
    }
    const FitResult fit = fit_linear(train_x, train_y, intercept);
    if (!fit.ok) return;  // this fold contributes nothing (singular split)
    fold_predicted[f].reserve(test_x.size());
    fold_actual[f].reserve(test_x.size());
    for (std::size_t i = 0; i < test_x.size(); ++i) {
      fold_predicted[f].push_back(fit.predict(test_x[i]));
      fold_actual[f].push_back(test_y[i]);
    }
  });
  for (int fold = 0; fold < k; ++fold) {
    const std::size_t f = static_cast<std::size_t>(fold);
    cv.predicted.insert(cv.predicted.end(), fold_predicted[f].begin(),
                        fold_predicted[f].end());
    cv.actual.insert(cv.actual.end(), fold_actual[f].begin(), fold_actual[f].end());
  }
  return cv;
}

double correlation(const std::vector<double>& a, const std::vector<double>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  if (n < 2) return 0.0;
  const double ma = std::accumulate(a.begin(), a.begin() + static_cast<std::ptrdiff_t>(n), 0.0) /
                    static_cast<double>(n);
  const double mb = std::accumulate(b.begin(), b.begin() + static_cast<std::ptrdiff_t>(n), 0.0) /
                    static_cast<double>(n);
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  return (da > 0 && db > 0) ? num / std::sqrt(da * db) : 0.0;
}

}  // namespace isr::model
