#include "dpp/profiles.hpp"

#include <cmath>
#include <stdexcept>

namespace isr::dpp {

namespace {
DeviceProfile make(const char* name, double gflops, double bw, double launch_us,
                   double clock_ghz, double jitter) {
  DeviceProfile p;
  p.name = name;
  p.simulated = true;
  p.gflops = gflops;
  p.bandwidth_gbs = bw;
  p.launch_us = launch_us;
  p.clock_ghz = clock_ghz;
  p.jitter_sigma = jitter;
  return p;
}
}  // namespace

// Chapter V architectures. GPUs: high throughput, high launch overhead (the
// source of the paper's "model error grows as render time -> 0" effect).
// CPUs: lower throughput, negligible launch cost, noisier measurements
// (the paper's CPU rasterization R^2 of 0.67 came from run-to-run variance).
DeviceProfile profile_cpu1() { return make("CPU1", 48.0, 65.0, 0.6, 2.6, 0.09); }
DeviceProfile profile_gpu1() { return make("GPU1", 620.0, 185.0, 4.0, 0.745, 0.045); }
DeviceProfile profile_gpu2() { return make("GPU2", 450.0, 140.0, 4.5, 0.705, 0.05); }

// Chapter II architectures.
DeviceProfile profile_titan_black() { return make("TitanBlack", 760.0, 210.0, 3.5, 0.837, 0.04); }
DeviceProfile profile_gtx750ti() { return make("GTX750Ti", 210.0, 62.0, 3.5, 1.02, 0.04); }
DeviceProfile profile_gt620m() { return make("GT620M", 29.0, 13.0, 5.0, 0.625, 0.05); }
DeviceProfile profile_i7() { return make("i7-4770K", 17.0, 22.0, 0.4, 3.5, 0.08); }
DeviceProfile profile_xeon() { return make("XeonE5", 46.0, 55.0, 0.6, 2.7, 0.07); }
// The MIC scalar back-end wastes the 512-bit vector units (paper: "the Phi's
// vector unit was not being utilized"), hence the low effective rate; the
// ISPC back-end recovers roughly 5-9x.
DeviceProfile profile_mic_omp() { return make("MIC-OpenMP", 10.0, 35.0, 2.0, 1.1, 0.07); }
DeviceProfile profile_mic_ispc() { return make("MIC-ISPC", 68.0, 90.0, 2.0, 1.1, 0.07); }

DeviceProfile profile_cpu_threads(int threads) {
  // Strong-scaling CPU: throughput grows sublinearly with threads (memory
  // bandwidth saturates; matches Table 8's ~50% total-time growth at 24
  // threads), with a fixed serial launch/merge overhead per kernel.
  const double t = static_cast<double>(threads);
  DeviceProfile p = make("CPU-threads", 3.4 * std::pow(t, 0.88), 9.0 * std::pow(t, 0.82),
                         0.5 + 0.05 * t, 2.4, 0.05);
  p.name = "CPU-" + std::to_string(threads) + "t";
  return p;
}

DeviceProfile profile_by_name(const std::string& name) {
  if (name == "CPU1") return profile_cpu1();
  if (name == "GPU1") return profile_gpu1();
  if (name == "GPU2") return profile_gpu2();
  if (name == "TitanBlack") return profile_titan_black();
  if (name == "GTX750Ti") return profile_gtx750ti();
  if (name == "GT620M") return profile_gt620m();
  if (name == "i7-4770K") return profile_i7();
  if (name == "XeonE5") return profile_xeon();
  if (name == "MIC-OpenMP") return profile_mic_omp();
  if (name == "MIC-ISPC") return profile_mic_ispc();
  throw std::invalid_argument("unknown device profile: " + name);
}

std::vector<std::string> all_profile_names() {
  return {"CPU1",     "GPU1",   "GPU2",   "TitanBlack", "GTX750Ti",
          "GT620M",   "i7-4770K", "XeonE5", "MIC-OpenMP", "MIC-ISPC"};
}

}  // namespace isr::dpp
