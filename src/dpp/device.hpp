// Device abstraction for the data-parallel primitive layer.
//
// A Device is where primitives "execute" and where their time is accounted.
// Two kinds exist:
//
//  * real devices (host CPU, serial or OpenMP): kernels are timed with the
//    wall clock;
//  * simulated devices (the GPU/MIC/large-CPU stand-ins; see DESIGN.md §3):
//    kernels still execute on the host so results are bit-exact, but the
//    reported time comes from a throughput cost model
//        t = launch_overhead + max(flops·divergence/peak, bytes/bandwidth)
//    with small multiplicative jitter so downstream statistics (regression,
//    cross-validation) behave like measurements instead of exact functions.
//
// Devices also keep the per-phase timing log the performance-model study
// consumes — the "data gathering infrastructure" of the dissertation's
// Chapter VI.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "math/rng.hpp"

namespace isr::dpp {

// Per-kernel cost annotation supplied by algorithm authors. Values are
// per-element estimates; the defaults describe a light streaming kernel.
struct KernelCost {
  double flops_per_elem = 8.0;
  double bytes_per_elem = 32.0;
  // > 1 penalizes irregular control flow on wide-SIMD simulated devices
  // (e.g., BVH traversal); real devices ignore it.
  double divergence = 1.0;
};

struct DeviceProfile {
  std::string name = "host";
  bool simulated = false;
  int threads = 0;  // real devices: OpenMP threads (0 = all available)

  // Simulated-device parameters.
  double gflops = 50.0;         // effective elementwise compute throughput
  double bandwidth_gbs = 40.0;  // effective memory bandwidth
  double launch_us = 5.0;       // per-kernel launch overhead
  double clock_ghz = 2.5;       // used for IPC-style derived metrics
  double jitter_sigma = 0.05;   // relative measurement noise
};

struct PhaseRecord {
  double seconds = 0.0;
  double est_ops = 0.0;    // estimated arithmetic operations (PAPI stand-in)
  double est_bytes = 0.0;  // estimated bytes moved
  std::size_t kernels = 0;
};

struct TimingLog {
  std::map<std::string, PhaseRecord> phases;

  double total_seconds() const {
    double t = 0.0;
    for (const auto& [name, p] : phases) t += p.seconds;
    return t;
  }
  double phase_seconds(const std::string& name) const {
    auto it = phases.find(name);
    return it == phases.end() ? 0.0 : it->second.seconds;
  }
  // Estimated instructions-per-cycle for a phase given a device clock.
  double phase_ipc(const std::string& name, double clock_ghz) const {
    auto it = phases.find(name);
    if (it == phases.end() || it->second.seconds <= 0.0) return 0.0;
    return it->second.est_ops / (it->second.seconds * clock_ghz * 1e9);
  }
};

class Device {
 public:
  explicit Device(DeviceProfile profile, std::uint64_t jitter_seed = 0x5EEDu);

  // The host CPU with OpenMP threading (threads = 0 uses all cores).
  static Device host(int threads = 0);
  // The host CPU, single thread, no OpenMP.
  static Device serial();
  // A simulated device from a profile (see profiles.hpp).
  static Device simulated(DeviceProfile profile, std::uint64_t jitter_seed = 0x5EEDu);

  const DeviceProfile& profile() const { return profile_; }
  bool is_simulated() const { return profile_.simulated; }
  int thread_count() const;

  // --- Phase accounting -------------------------------------------------
  void begin_phase(std::string name);
  void end_phase();
  const std::string& current_phase() const;
  TimingLog& timings() { return log_; }
  const TimingLog& timings() const { return log_; }
  void reset_timings() { log_ = TimingLog{}; }

  // Called by every primitive after executing a kernel over n elements.
  // wall_seconds is the measured host time; simulated devices replace it
  // with the cost model.
  void record_kernel(std::size_t n, const KernelCost& cost, double wall_seconds);

  // Simulated time for a kernel without executing it (used by the virtual
  // MPI layer for per-rank local work it does not replay).
  double model_kernel_seconds(std::size_t n, const KernelCost& cost);

 private:
  DeviceProfile profile_;
  TimingLog log_;
  std::vector<std::string> phase_stack_;
  Rng jitter_;
};

// RAII phase scope: `ScopedPhase p(dev, "sampling");`
class ScopedPhase {
 public:
  ScopedPhase(Device& dev, std::string name) : dev_(dev) {
    dev_.begin_phase(std::move(name));
  }
  ~ScopedPhase() { dev_.end_phase(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Device& dev_;
};

}  // namespace isr::dpp
