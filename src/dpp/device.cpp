#include "dpp/device.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#ifdef ISR_HAVE_OPENMP
#include <omp.h>
#endif

namespace isr::dpp {

namespace {
const std::string kDefaultPhase = "other";
}

Device::Device(DeviceProfile profile, std::uint64_t jitter_seed)
    : profile_(std::move(profile)), jitter_(jitter_seed) {}

Device Device::host(int threads) {
  DeviceProfile p;
  p.name = "host";
  p.simulated = false;
  p.threads = threads;
  p.clock_ghz = 2.5;
  return Device(p);
}

Device Device::serial() {
  DeviceProfile p;
  p.name = "host-serial";
  p.simulated = false;
  p.threads = 1;
  p.clock_ghz = 2.5;
  return Device(p);
}

Device Device::simulated(DeviceProfile profile, std::uint64_t jitter_seed) {
  profile.simulated = true;
  return Device(std::move(profile), jitter_seed);
}

int Device::thread_count() const {
  if (profile_.threads > 0) return profile_.threads;
#ifdef ISR_HAVE_OPENMP
  return omp_get_max_threads();
#else
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
#endif
}

void Device::begin_phase(std::string name) { phase_stack_.push_back(std::move(name)); }

void Device::end_phase() {
  if (!phase_stack_.empty()) phase_stack_.pop_back();
}

const std::string& Device::current_phase() const {
  return phase_stack_.empty() ? kDefaultPhase : phase_stack_.back();
}

double Device::model_kernel_seconds(std::size_t n, const KernelCost& cost) {
  const double nd = static_cast<double>(n);
  const double compute = nd * cost.flops_per_elem * cost.divergence / (profile_.gflops * 1e9);
  const double memory = nd * cost.bytes_per_elem / (profile_.bandwidth_gbs * 1e9);
  double t = profile_.launch_us * 1e-6 + std::max(compute, memory);
  if (profile_.jitter_sigma > 0.0) {
    // Multiplicative noise so larger kernels have proportionally larger
    // variance, as real measurements do.
    const double u = jitter_.next_double() * 2.0 - 1.0;
    t *= std::max(0.05, 1.0 + profile_.jitter_sigma * u);
  }
  return t;
}

void Device::record_kernel(std::size_t n, const KernelCost& cost, double wall_seconds) {
  const double seconds =
      profile_.simulated ? model_kernel_seconds(n, cost) : wall_seconds;
  PhaseRecord& rec = log_.phases[current_phase()];
  rec.seconds += seconds;
  rec.est_ops += static_cast<double>(n) * cost.flops_per_elem;
  rec.est_bytes += static_cast<double>(n) * cost.bytes_per_elem;
  rec.kernels += 1;
}

}  // namespace isr::dpp
