// LSD radix sort for (key, value) pairs. This is the sort primitive behind
// the LBVH build (Morton codes) and visibility ordering (float depths).
#include <cstring>

#include "dpp/primitives.hpp"
#include "math/bitcast.hpp"

namespace isr::dpp {

namespace {

template <class Key>
void radix_sort_impl(Device& dev, std::vector<Key>& keys, std::vector<int>& values) {
  const std::size_t n = keys.size();
  if (n <= 1) return;
  constexpr int kBits = 8;
  constexpr int kBuckets = 1 << kBits;
  constexpr int kPasses = static_cast<int>(sizeof(Key));

  std::vector<Key> keys_tmp(n);
  std::vector<int> vals_tmp(n);
  WallTimer timer;
  Key* kin = keys.data();
  Key* kout = keys_tmp.data();
  int* vin = values.data();
  int* vout = vals_tmp.data();

  for (int pass = 0; pass < kPasses; ++pass) {
    const int shift = pass * kBits;
    std::size_t hist[kBuckets] = {};
    for (std::size_t i = 0; i < n; ++i)
      ++hist[static_cast<std::size_t>((kin[i] >> shift) & (kBuckets - 1))];
    std::size_t run = 0;
    for (int b = 0; b < kBuckets; ++b) {
      const std::size_t c = hist[b];
      hist[b] = run;
      run += c;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = static_cast<std::size_t>((kin[i] >> shift) & (kBuckets - 1));
      kout[hist[b]] = kin[i];
      vout[hist[b]] = vin[i];
      ++hist[b];
    }
    std::swap(kin, kout);
    std::swap(vin, vout);
  }
  if (kin != keys.data()) {
    std::memcpy(keys.data(), kin, n * sizeof(Key));
    std::memcpy(values.data(), vin, n * sizeof(int));
  }
  // Sort is ~O(n) per pass; account it as one logical kernel.
  dev.record_kernel(n, KernelCost{.flops_per_elem = 4.0 * kPasses,
                                  .bytes_per_elem = 8.0 * kPasses},
                    timer.seconds());
}

}  // namespace

void sort_pairs(Device& dev, std::vector<std::uint32_t>& keys, std::vector<int>& values) {
  radix_sort_impl(dev, keys, values);
}

void sort_pairs64(Device& dev, std::vector<std::uint64_t>& keys, std::vector<int>& values) {
  radix_sort_impl(dev, keys, values);
}

void sort_pairs_by_float(Device& dev, std::vector<float>& keys, std::vector<int>& values) {
  // Map IEEE-754 floats to order-preserving unsigned keys: flip all bits of
  // negatives, flip only the sign bit of non-negatives.
  std::vector<std::uint32_t> ukeys(keys.size());
  for_each(
      dev, keys.size(),
      [&](std::size_t i) {
        std::uint32_t u = bit_cast<std::uint32_t>(keys[i]);
        ukeys[i] = (u & 0x80000000u) ? ~u : (u | 0x80000000u);
      },
      KernelCost{.flops_per_elem = 3, .bytes_per_elem = 8});
  radix_sort_impl(dev, ukeys, values);
  for_each(
      dev, keys.size(),
      [&](std::size_t i) {
        const std::uint32_t u = ukeys[i];
        const std::uint32_t f = (u & 0x80000000u) ? (u & 0x7FFFFFFFu) : ~u;
        keys[i] = bit_cast<float>(f);
      },
      KernelCost{.flops_per_elem = 3, .bytes_per_elem = 8});
}

std::vector<int> compact_indices(Device& dev, const std::uint8_t* flags, std::size_t n) {
  // The paper's chain (Algorithm 2, lines 18-22): reduce to count survivors,
  // exclusive scan for destinations, reverse-index to build the gather map.
  const int count = transform_reduce(
      dev, n, 0, [flags](std::size_t i) { return flags[i] ? 1 : 0; },
      [](int a, int b) { return a + b; }, KernelCost{.flops_per_elem = 1, .bytes_per_elem = 1});
  std::vector<int> scan(n);
  std::vector<int> ones(n);
  for_each(
      dev, n, [&](std::size_t i) { ones[i] = flags[i] ? 1 : 0; },
      KernelCost{.flops_per_elem = 1, .bytes_per_elem = 5});
  scan_exclusive(dev, ones.data(), scan.data(), n,
                 KernelCost{.flops_per_elem = 1, .bytes_per_elem = 8});
  std::vector<int> out(static_cast<std::size_t>(count));
  reverse_index(dev, flags, scan.data(), n, out.data());
  return out;
}

}  // namespace isr::dpp
