// Wall-clock timer used by the primitives and the study harness.
#pragma once

#include <chrono>

namespace isr::dpp {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace isr::dpp
