// Blelloch-style data-parallel primitives: map/for_each, reduce, scans,
// gather, scatter, reverse-index and stream compaction. Every rendering
// algorithm in this library is composed from these, mirroring the paper's
// EAVL/VTK-m implementations (dissertation §2.3).
//
// Each primitive executes on the host (serially or with OpenMP, depending on
// the Device) and reports its work to the Device for timing — wall clock on
// real devices, cost model on simulated ones.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "dpp/device.hpp"
#include "dpp/timer.hpp"

#ifdef ISR_HAVE_OPENMP
#include <omp.h>
#endif

namespace isr::dpp {

namespace detail {
// Below this element count the OpenMP fork/join overhead dominates.
inline constexpr std::size_t kParallelThreshold = 4096;

inline bool use_parallel(const Device& dev, std::size_t n) {
#ifdef ISR_HAVE_OPENMP
  return !dev.is_simulated() && dev.thread_count() > 1 && n >= kParallelThreshold;
#else
  (void)dev;
  (void)n;
  return false;
#endif
}
}  // namespace detail

// map: f(i) for i in [0, n). The index-based form subsumes multi-array maps:
// functors capture whatever arrays they need (the EAVL/Thrust idiom).
template <class F>
void for_each(Device& dev, std::size_t n, F&& f, KernelCost cost = {}) {
  WallTimer timer;
  if (detail::use_parallel(dev, n)) {
#ifdef ISR_HAVE_OPENMP
#pragma omp parallel for schedule(static) num_threads(dev.thread_count())
    for (long long i = 0; i < static_cast<long long>(n); ++i)
      f(static_cast<std::size_t>(i));
#endif
  } else {
    for (std::size_t i = 0; i < n; ++i) f(i);
  }
  dev.record_kernel(n, cost, timer.seconds());
}

// map variant whose cost is only known after execution (e.g., BVH traversal
// work depends on how deep rays walked). cost_fn is evaluated once, after
// the loop, so kernels can tally their real work into captured counters.
template <class F, class CostFn>
void for_each_dyn(Device& dev, std::size_t n, F&& f, CostFn&& cost_fn) {
  WallTimer timer;
  if (detail::use_parallel(dev, n)) {
#ifdef ISR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 256) num_threads(dev.thread_count())
    for (long long i = 0; i < static_cast<long long>(n); ++i)
      f(static_cast<std::size_t>(i));
#endif
  } else {
    for (std::size_t i = 0; i < n; ++i) f(i);
  }
  dev.record_kernel(n, cost_fn(), timer.seconds());
}

// reduce: combine n values with an associative op.
template <class T, class F, class Op>
T transform_reduce(Device& dev, std::size_t n, T init, F&& f, Op&& op,
                   KernelCost cost = {}) {
  WallTimer timer;
  T result = init;
  if (detail::use_parallel(dev, n)) {
#ifdef ISR_HAVE_OPENMP
    const int nt = dev.thread_count();
    std::vector<T> partial(static_cast<std::size_t>(nt), init);
#pragma omp parallel num_threads(nt)
    {
      const int t = omp_get_thread_num();
      T local = init;
#pragma omp for schedule(static)
      for (long long i = 0; i < static_cast<long long>(n); ++i)
        local = op(local, f(static_cast<std::size_t>(i)));
      partial[static_cast<std::size_t>(t)] = local;
    }
    for (const T& p : partial) result = op(result, p);
#endif
  } else {
    for (std::size_t i = 0; i < n; ++i) result = op(result, f(i));
  }
  dev.record_kernel(n, cost, timer.seconds());
  return result;
}

template <class T>
T reduce_sum(Device& dev, const T* in, std::size_t n, KernelCost cost = {}) {
  return transform_reduce(
      dev, n, T{}, [in](std::size_t i) { return in[i]; },
      [](T a, T b) { return a + b; }, cost);
}

template <class T>
T reduce_max(Device& dev, const T* in, std::size_t n, T init, KernelCost cost = {}) {
  return transform_reduce(
      dev, n, init, [in](std::size_t i) { return in[i]; },
      [](T a, T b) { return a > b ? a : b; }, cost);
}

template <class T>
T reduce_min(Device& dev, const T* in, std::size_t n, T init, KernelCost cost = {}) {
  return transform_reduce(
      dev, n, init, [in](std::size_t i) { return in[i]; },
      [](T a, T b) { return a < b ? a : b; }, cost);
}

// Exclusive scan (prefix sum). Chunked two-pass implementation so real
// multi-threaded devices actually scan in parallel; returns the grand total.
template <class T>
T scan_exclusive(Device& dev, const T* in, T* out, std::size_t n, KernelCost cost = {}) {
  WallTimer timer;
  T total{};
  if (detail::use_parallel(dev, n)) {
#ifdef ISR_HAVE_OPENMP
    const int nt = dev.thread_count();
    const std::size_t chunk = (n + static_cast<std::size_t>(nt) - 1) / nt;
    std::vector<T> chunk_sum(static_cast<std::size_t>(nt), T{});
#pragma omp parallel num_threads(nt)
    {
      const std::size_t t = static_cast<std::size_t>(omp_get_thread_num());
      const std::size_t lo = t * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      T s{};
      for (std::size_t i = lo; i < hi; ++i) s += in[i];
      chunk_sum[t] = s;
#pragma omp barrier
#pragma omp single
      {
        T run{};
        for (std::size_t c = 0; c < chunk_sum.size(); ++c) {
          const T next = run + chunk_sum[c];
          chunk_sum[c] = run;
          run = next;
        }
      }
      T run = chunk_sum[t];
      for (std::size_t i = lo; i < hi; ++i) {
        const T v = in[i];
        out[i] = run;
        run += v;
      }
    }
    total = out[n - 1] + in[n - 1];
#endif
  } else {
    T run{};
    for (std::size_t i = 0; i < n; ++i) {
      const T v = in[i];
      out[i] = run;
      run += v;
    }
    total = run;
  }
  dev.record_kernel(n, cost, timer.seconds());
  return total;
}

template <class T>
T scan_inclusive(Device& dev, const T* in, T* out, std::size_t n, KernelCost cost = {}) {
  const T total = scan_exclusive(dev, in, out, n, cost);
  for_each(
      dev, n, [in, out](std::size_t i) { out[i] += in[i]; },
      KernelCost{.flops_per_elem = 1, .bytes_per_elem = 2.0 * sizeof(T)});
  return total;
}

// gather: out[i] = in[idx[i]] for i in [0, len(idx)).
template <class T, class Index>
void gather(Device& dev, const Index* idx, std::size_t n_out, const T* in, T* out,
            KernelCost cost = {}) {
  for_each(
      dev, n_out,
      [idx, in, out](std::size_t i) { out[i] = in[static_cast<std::size_t>(idx[i])]; },
      cost);
}

// scatter: out[idx[i]] = in[i] for i in [0, n_in). Callers guarantee unique
// destinations (the paper notes scatter needs more care than gather).
template <class T, class Index>
void scatter(Device& dev, const Index* idx, std::size_t n_in, const T* in, T* out,
             KernelCost cost = {}) {
  for_each(
      dev, n_in,
      [idx, in, out](std::size_t i) { out[static_cast<std::size_t>(idx[i])] = in[i]; },
      cost);
}

// reverse-index: given exclusive-scan results of a 0/1 flag array, produce
// for each set flag the index it maps to; used by the paper's pass-selection
// and stream-compaction chains (Algorithm 1 & 2).
template <class Flag, class T>
void reverse_index(Device& dev, const Flag* flags, const T* scan, std::size_t n,
                   int* out_indices) {
  for_each(
      dev, n,
      [flags, scan, out_indices](std::size_t i) {
        if (flags[i]) out_indices[static_cast<std::size_t>(scan[i])] = static_cast<int>(i);
      },
      KernelCost{.flops_per_elem = 2, .bytes_per_elem = 12});
}

// Stream compaction expressed exactly as the paper's primitive chain:
// reduce (count) -> exclusive scan -> reverse index. Returns the compacted
// index list.
std::vector<int> compact_indices(Device& dev, const std::uint8_t* flags, std::size_t n);

// Sort (keys, values) pairs by key; LSD radix sort, stable.
void sort_pairs(Device& dev, std::vector<std::uint32_t>& keys, std::vector<int>& values);
void sort_pairs64(Device& dev, std::vector<std::uint64_t>& keys, std::vector<int>& values);

// Sort float keys with int payload (used by visibility ordering); keys are
// converted to order-preserving u32.
void sort_pairs_by_float(Device& dev, std::vector<float>& keys, std::vector<int>& values);

}  // namespace isr::dpp
