// Named device profiles for the architectures the dissertation studies.
//
// These are the documented hardware substitution (DESIGN.md §3): each
// profile parameterizes the simulated-device cost model so one host machine
// can stand in for the paper's CPU/GPU/MIC fleet. Parameters were chosen so
// relative throughputs match the paper's observed orderings (Titan Black >
// K40 > 750Ti > 620M; Xeon > i7; ISPC-MIC >> OpenMP-MIC), not to match any
// vendor datasheet exactly.
#pragma once

#include <string>
#include <vector>

#include "dpp/device.hpp"

namespace isr::dpp {

// Chapter V study architectures.
DeviceProfile profile_cpu1();  // 2x Sandy Bridge E5-2670, 16 TBB threads
DeviceProfile profile_gpu1();  // NVIDIA K40m
DeviceProfile profile_gpu2();  // NVIDIA K20 (Titan evaluation, §5.7)

// Chapter II study architectures.
DeviceProfile profile_titan_black();  // GeForce GTX Titan Black
DeviceProfile profile_gtx750ti();     // GeForce GTX 750 Ti
DeviceProfile profile_gt620m();       // GeForce GT 620M
DeviceProfile profile_i7();           // Intel i7 4770K (4 cores)
DeviceProfile profile_xeon();         // Intel Xeon E5-2680v2 (10 cores)
DeviceProfile profile_mic_omp();      // Xeon Phi 3120, scalar OpenMP back-end
DeviceProfile profile_mic_ispc();     // Xeon Phi 3120, ISPC (vectorized) back-end

// A simulated multi-core CPU with a given thread count; used by the strong
// scaling study (Table 8), which needs 1..24 cores on a 1-core host.
DeviceProfile profile_cpu_threads(int threads);

// All Chapter V study devices by the names used in the paper.
DeviceProfile profile_by_name(const std::string& name);

std::vector<std::string> all_profile_names();

}  // namespace isr::dpp
