#include "mesh/scenes.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "math/rng.hpp"
#include "mesh/fields.hpp"
#include "mesh/isosurface.hpp"
#include "mesh/structured.hpp"

namespace isr::mesh {

namespace {

// Builds an isosurface scene on an (n*scale)^3-ish grid.
TriMesh iso_scene(int nx, int ny, int nz, float scale, float isovalue,
                  void (*field)(StructuredGrid&, int, std::uint64_t), int arg,
                  std::uint64_t seed) {
  const auto dim = [scale](int n) { return std::max(8, static_cast<int>(n * scale)); };
  StructuredGrid grid(dim(nx), dim(ny), dim(nz), {0, 0, 0},
                      {1.0f / dim(nx), 1.0f / dim(ny), 1.0f / dim(nz)});
  field(grid, arg, seed);
  return isosurface(grid, isovalue);
}

void lattice_adapter(StructuredGrid& g, int cells, std::uint64_t) {
  fields::fill_lattice(g, cells);
}

}  // namespace

std::vector<SceneInfo> chapter2_scenes() {
  return {
      {"RM 3.2M", "interface isosurface, 400x400x256 grid"},
      {"RM 1.7M", "interface isosurface, 256^3 grid"},
      {"RM 970K", "interface isosurface, 200^3 grid"},
      {"RM 650K", "interface isosurface, 192x144x144 grid"},
      {"RM 350K", "interface isosurface, 128^3 grid"},
      {"LT 350K", "lattice isosurface, 113x113x133 grid"},
      {"LT 372K", "lattice isosurface (denser), 113x113x133 grid"},
      {"Seismic", "turbulence isosurface, 280^3 grid"},
      {"Dragon", "sphere flake, depth 3"},
      {"Conference", "box room"},
      {"Sponza", "box room (sparser)"},
      {"Buddha", "blob isosurface, 220^3 grid"},
  };
}

TriMesh make_scene(const std::string& name, float scale) {
  if (name == "RM 3.2M")
    return iso_scene(400, 400, 256, scale, 0.5f, fields::fill_interface, 6, 0x524D1u);
  if (name == "RM 1.7M")
    return iso_scene(256, 256, 256, scale, 0.5f, fields::fill_interface, 6, 0x524D2u);
  if (name == "RM 970K")
    return iso_scene(200, 200, 200, scale, 0.5f, fields::fill_interface, 6, 0x524D3u);
  if (name == "RM 650K")
    return iso_scene(192, 144, 144, scale, 0.5f, fields::fill_interface, 6, 0x524D4u);
  if (name == "RM 350K")
    return iso_scene(128, 128, 128, scale, 0.5f, fields::fill_interface, 6, 0x524D5u);
  if (name == "LT 350K")
    return iso_scene(113, 113, 133, scale, 0.35f, lattice_adapter, 4, 0);
  if (name == "LT 372K")
    return iso_scene(113, 113, 133, scale, 0.30f, lattice_adapter, 5, 0);
  if (name == "Seismic")
    return iso_scene(280, 280, 280, scale, 0.55f, fields::fill_turbulence, 4, 0x5E15u);
  if (name == "Dragon")
    return make_sphere_flake({0.5f, 0.5f, 0.5f}, 0.25f,
                             std::max(1, static_cast<int>(3 * std::sqrt(scale) + 0.5f)));
  if (name == "Conference") return make_room(std::max(3, static_cast<int>(32 * scale)));
  if (name == "Sponza") return make_room(std::max(3, static_cast<int>(14 * scale)));
  if (name == "Buddha") {
    StructuredGrid grid(std::max(8, static_cast<int>(220 * scale)),
                        std::max(8, static_cast<int>(220 * scale)),
                        std::max(8, static_cast<int>(220 * scale)), {0, 0, 0},
                        {1.0f / 220, 1.0f / 220, 1.0f / 220});
    fields::fill_blobs(grid, 24, 0xB0DAu);
    return isosurface(grid, 0.45f);
  }
  throw std::invalid_argument("unknown scene: " + name);
}

TriMesh make_icosphere(Vec3f center, float radius, int subdivisions) {
  // Icosahedron, then midpoint subdivision projected to the sphere.
  const float t = (1.0f + std::sqrt(5.0f)) / 2.0f;
  std::vector<Vec3f> verts = {
      {-1, t, 0}, {1, t, 0}, {-1, -t, 0}, {1, -t, 0}, {0, -1, t}, {0, 1, t},
      {0, -1, -t}, {0, 1, -t}, {t, 0, -1}, {t, 0, 1}, {-t, 0, -1}, {-t, 0, 1}};
  for (Vec3f& v : verts) v = normalize(v);
  std::vector<int> tris = {0, 11, 5,  0, 5,  1,  0, 1, 7,  0, 7,  10, 0, 10, 11,
                           1, 5,  9,  5, 11, 4,  11, 10, 2, 10, 7,  6, 7, 1,  8,
                           3, 9,  4,  3, 4,  2,  3, 2, 6,  3, 6,  8,  3, 8,  9,
                           4, 9,  5,  2, 4,  11, 6, 2, 10, 8, 6,  7,  9, 8,  1};

  for (int s = 0; s < subdivisions; ++s) {
    std::unordered_map<std::uint64_t, int> midpoint;
    auto mid = [&](int a, int b) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(a, b)) << 32) | static_cast<std::uint64_t>(std::max(a, b));
      auto [it, inserted] = midpoint.try_emplace(key, static_cast<int>(verts.size()));
      if (inserted)
        verts.push_back(normalize((verts[static_cast<std::size_t>(a)] +
                                   verts[static_cast<std::size_t>(b)]) *
                                  0.5f));
      return it->second;
    };
    std::vector<int> next;
    next.reserve(tris.size() * 4);
    for (std::size_t i = 0; i < tris.size(); i += 3) {
      const int a = tris[i], b = tris[i + 1], c = tris[i + 2];
      const int ab = mid(a, b), bc = mid(b, c), ca = mid(c, a);
      const int quads[12] = {a, ab, ca, b, bc, ab, c, ca, bc, ab, bc, ca};
      next.insert(next.end(), quads, quads + 12);
    }
    tris = std::move(next);
  }

  TriMesh out;
  out.points.reserve(verts.size());
  out.scalars.reserve(verts.size());
  for (const Vec3f& v : verts) {
    out.points.push_back(center + v * radius);
    out.scalars.push_back(0.5f + 0.5f * v.y);
  }
  out.tris = std::move(tris);
  out.compute_vertex_normals();
  return out;
}

TriMesh make_box(const AABB& box) {
  TriMesh out;
  const Vec3f l = box.lo, h = box.hi;
  out.points = {{l.x, l.y, l.z}, {h.x, l.y, l.z}, {h.x, h.y, l.z}, {l.x, h.y, l.z},
                {l.x, l.y, h.z}, {h.x, l.y, h.z}, {h.x, h.y, h.z}, {l.x, h.y, h.z}};
  out.scalars.assign(8, 0.5f);
  out.tris = {0, 2, 1, 0, 3, 2,  4, 5, 6, 4, 6, 7,  0, 1, 5, 0, 5, 4,
              1, 2, 6, 1, 6, 5,  2, 3, 7, 2, 7, 6,  3, 0, 4, 3, 4, 7};
  out.compute_vertex_normals();
  return out;
}

namespace {
void flake_recurse(TriMesh& out, Vec3f center, float radius, int depth, int subdiv) {
  out.append(make_icosphere(center, radius, subdiv));
  if (depth == 0) return;
  const float child_r = radius * 0.45f;
  const float d = radius + child_r;
  const Vec3f dirs[6] = {{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}};
  for (const Vec3f& dir : dirs)
    flake_recurse(out, center + dir * d, child_r, depth - 1, subdiv);
}
}  // namespace

TriMesh make_sphere_flake(Vec3f center, float radius, int depth, int sphere_subdiv) {
  TriMesh out;
  flake_recurse(out, center, radius, depth, sphere_subdiv);
  return out;
}

TriMesh make_room(int objects_per_side) {
  // An open box interior with a grid of furniture-like objects (boxes and
  // curved icosphere pieces), like the Conference/Sponza interiors. The
  // spheres keep the triangle counts in the paper's 60K-331K range at full
  // scale.
  TriMesh out = make_box({{0, 0, 0}, {1, 0.4f, 1}});
  Rng rng(0x4001u);
  const float cell = 1.0f / static_cast<float>(objects_per_side);
  for (int j = 0; j < objects_per_side; ++j)
    for (int i = 0; i < objects_per_side; ++i) {
      const float cx = (static_cast<float>(i) + 0.5f) * cell;
      const float cz = (static_cast<float>(j) + 0.5f) * cell;
      const float w = cell * rng.uniform(0.15f, 0.4f);
      const float h = rng.uniform(0.05f, 0.3f);
      if ((i + j) % 2 == 0) {
        AABB b;
        b.expand({cx - w, 0.0f, cz - w});
        b.expand({cx + w, h, cz + w});
        out.append(make_box(b));
      } else {
        out.append(make_icosphere({cx, h, cz}, w, 2));
      }
    }
  return out;
}

TriMesh make_terrain(int resolution, std::uint64_t seed) {
  Rng rng(seed);
  struct Wave {
    float kx, kz, phase, amp;
  };
  std::vector<Wave> waves;
  float freq = 2.0f, amp = 0.12f;
  for (int o = 0; o < 4; ++o) {
    waves.push_back({rng.uniform(1.0f, 2.0f) * freq, rng.uniform(1.0f, 2.0f) * freq,
                     rng.uniform(0.0f, 6.28f), amp});
    freq *= 2.0f;
    amp *= 0.5f;
  }
  TriMesh out;
  const int n = resolution;
  out.points.reserve(static_cast<std::size_t>(n + 1) * (n + 1));
  for (int j = 0; j <= n; ++j)
    for (int i = 0; i <= n; ++i) {
      const float x = static_cast<float>(i) / n;
      const float z = static_cast<float>(j) / n;
      float y = 0.0f;
      for (const auto& w : waves) y += w.amp * std::sin(w.kx * x + w.phase) * std::cos(w.kz * z);
      out.points.push_back({x, y + 0.3f, z});
      out.scalars.push_back(clamp01(y * 2.0f + 0.5f));
    }
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      const int a = j * (n + 1) + i;
      const int b = a + 1;
      const int c = a + n + 1;
      const int d = c + 1;
      out.tris.insert(out.tris.end(), {a, b, d});
      out.tris.insert(out.tris.end(), {a, d, c});
    }
  out.compute_vertex_normals();
  return out;
}

}  // namespace isr::mesh
