// Triangle surface mesh: the geometry the ray tracer and rasterizer render.
#pragma once

#include <cstdint>
#include <vector>

#include "math/aabb.hpp"
#include "math/vec.hpp"

namespace isr::mesh {

struct TriMesh {
  std::vector<Vec3f> points;
  std::vector<int> tris;           // 3 indices per triangle
  std::vector<float> scalars;      // per-point scalar, drives the color map
  std::vector<Vec3f> normals;      // per-point smooth normals (optional)

  std::size_t triangle_count() const { return tris.size() / 3; }

  Vec3f vertex(std::size_t tri, int corner) const {
    return points[static_cast<std::size_t>(tris[tri * 3 + static_cast<std::size_t>(corner)])];
  }

  AABB bounds() const {
    AABB b;
    for (const Vec3f& p : points) b.expand(p);
    return b;
  }

  AABB triangle_bounds(std::size_t tri) const {
    AABB b;
    b.expand(vertex(tri, 0));
    b.expand(vertex(tri, 1));
    b.expand(vertex(tri, 2));
    return b;
  }

  // Accumulate area-weighted vertex normals; call after geometry changes.
  void compute_vertex_normals();

  // Append another mesh (indices re-based).
  void append(const TriMesh& other);
};

}  // namespace isr::mesh
