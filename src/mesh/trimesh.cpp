#include "mesh/trimesh.hpp"

namespace isr::mesh {

void TriMesh::compute_vertex_normals() {
  normals.assign(points.size(), Vec3f{0, 0, 0});
  for (std::size_t t = 0; t < triangle_count(); ++t) {
    const Vec3f a = vertex(t, 0);
    const Vec3f b = vertex(t, 1);
    const Vec3f c = vertex(t, 2);
    const Vec3f n = cross(b - a, c - a);  // area-weighted (not normalized)
    for (int corner = 0; corner < 3; ++corner)
      normals[static_cast<std::size_t>(tris[t * 3 + static_cast<std::size_t>(corner)])] += n;
  }
  for (Vec3f& n : normals) n = normalize(n);
}

void TriMesh::append(const TriMesh& other) {
  const int base = static_cast<int>(points.size());
  points.insert(points.end(), other.points.begin(), other.points.end());
  scalars.insert(scalars.end(), other.scalars.begin(), other.scalars.end());
  normals.insert(normals.end(), other.normals.begin(), other.normals.end());
  tris.reserve(tris.size() + other.tris.size());
  for (const int idx : other.tris) tris.push_back(idx + base);
}

}  // namespace isr::mesh
