// Isosurface extraction via marching tetrahedra.
//
// The paper's Chapter II data sets are isosurfaces (Richtmyer-Meshkov
// density, PbTe charge density). We extract comparable surfaces from our
// procedural fields. Marching tetrahedra is used instead of marching cubes:
// it needs no 256-entry case table, is watertight across the consistent
// 6-tet cell split, and produces the same order of triangle counts.
#pragma once

#include "mesh/structured.hpp"
#include "mesh/trimesh.hpp"

namespace isr::mesh {

// Extract the isovalue surface of the grid's point scalars. The output
// scalar field is the normalized height (z) of each vertex unless a
// secondary per-point field of grid.point_count() entries is given.
TriMesh isosurface(const StructuredGrid& grid, float isovalue,
                   const std::vector<float>* color_field = nullptr);

}  // namespace isr::mesh
