#include "mesh/structured.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isr::mesh {

StructuredGrid::StructuredGrid(int nx, int ny, int nz, Vec3f origin, Vec3f spacing)
    : nx_(nx), ny_(ny), nz_(nz), origin_(origin), spacing_(spacing) {
  scalars_.assign(point_count(), 0.0f);
}

AABB StructuredGrid::bounds() const {
  AABB b;
  b.expand(origin_);
  b.expand(origin_ + Vec3f{spacing_.x * nx_, spacing_.y * ny_, spacing_.z * nz_});
  return b;
}

bool StructuredGrid::sample(Vec3f p, float& value) const {
  const Vec3f local = {(p.x - origin_.x) / spacing_.x, (p.y - origin_.y) / spacing_.y,
                       (p.z - origin_.z) / spacing_.z};
  if (local.x < 0 || local.y < 0 || local.z < 0 || local.x > static_cast<float>(nx_) ||
      local.y > static_cast<float>(ny_) || local.z > static_cast<float>(nz_))
    return false;
  const int i = std::min(static_cast<int>(local.x), nx_ - 1);
  const int j = std::min(static_cast<int>(local.y), ny_ - 1);
  const int k = std::min(static_cast<int>(local.z), nz_ - 1);
  const float fx = local.x - static_cast<float>(i);
  const float fy = local.y - static_cast<float>(j);
  const float fz = local.z - static_cast<float>(k);

  const float c000 = scalar_at(i, j, k);
  const float c100 = scalar_at(i + 1, j, k);
  const float c010 = scalar_at(i, j + 1, k);
  const float c110 = scalar_at(i + 1, j + 1, k);
  const float c001 = scalar_at(i, j, k + 1);
  const float c101 = scalar_at(i + 1, j, k + 1);
  const float c011 = scalar_at(i, j + 1, k + 1);
  const float c111 = scalar_at(i + 1, j + 1, k + 1);

  const float c00 = c000 + (c100 - c000) * fx;
  const float c10 = c010 + (c110 - c010) * fx;
  const float c01 = c001 + (c101 - c001) * fx;
  const float c11 = c011 + (c111 - c011) * fx;
  const float c0 = c00 + (c10 - c00) * fy;
  const float c1 = c01 + (c11 - c01) * fy;
  value = c0 + (c1 - c0) * fz;
  return true;
}

void StructuredGrid::scalar_range(float& lo, float& hi) const {
  lo = 0.0f;
  hi = 0.0f;
  if (scalars_.empty()) return;
  lo = std::numeric_limits<float>::max();
  hi = std::numeric_limits<float>::lowest();
  for (const float v : scalars_) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
}

void StructuredGrid::normalize_scalars() {
  float lo, hi;
  scalar_range(lo, hi);
  const float span = hi - lo;
  if (span <= 0.0f) return;
  for (float& v : scalars_) v = (v - lo) / span;
}

}  // namespace isr::mesh
