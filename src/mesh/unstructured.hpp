// Unstructured meshes: hexahedral (LULESH publishes one) and tetrahedral
// (the Chapter III volume renderer consumes one).
#pragma once

#include <cstddef>
#include <vector>

#include "math/aabb.hpp"
#include "math/vec.hpp"

namespace isr::mesh {

struct HexMesh {
  std::vector<Vec3f> points;
  std::vector<int> conn;       // 8 indices per hex, VTK ordering
  std::vector<float> scalars;  // per-point

  std::size_t cell_count() const { return conn.size() / 8; }
  AABB bounds() const {
    AABB b;
    for (const Vec3f& p : points) b.expand(p);
    return b;
  }
};

struct TetMesh {
  std::vector<Vec3f> points;
  std::vector<int> conn;       // 4 indices per tet
  std::vector<float> scalars;  // per-point

  std::size_t cell_count() const { return conn.size() / 4; }

  Vec3f vertex(std::size_t tet, int corner) const {
    return points[static_cast<std::size_t>(conn[tet * 4 + static_cast<std::size_t>(corner)])];
  }
  float scalar(std::size_t tet, int corner) const {
    return scalars[static_cast<std::size_t>(conn[tet * 4 + static_cast<std::size_t>(corner)])];
  }

  AABB bounds() const {
    AABB b;
    for (const Vec3f& p : points) b.expand(p);
    return b;
  }
};

}  // namespace isr::mesh
