#include "mesh/tetrahedralize.hpp"

#include <array>

namespace isr::mesh {

namespace {

// Six tets around the 0-6 diagonal of a hex in VTK ordering. Every face
// diagonal is consistent between neighbors because the split only depends on
// local corner labels.
constexpr std::array<std::array<int, 4>, 6> kHexToTets = {{
    {0, 1, 2, 6},
    {0, 2, 3, 6},
    {0, 3, 7, 6},
    {0, 7, 4, 6},
    {0, 4, 5, 6},
    {0, 5, 1, 6},
}};

}  // namespace

TetMesh tetrahedralize(const StructuredGrid& grid) {
  TetMesh out;
  out.points.reserve(grid.point_count());
  const int nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  for (int k = 0; k <= nz; ++k)
    for (int j = 0; j <= ny; ++j)
      for (int i = 0; i <= nx; ++i) out.points.push_back(grid.point(i, j, k));
  out.scalars = grid.scalars();

  out.conn.reserve(grid.cell_count() * 24);
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        // VTK hex corner ordering for this cell.
        const int corner[8] = {
            static_cast<int>(grid.point_index(i, j, k)),
            static_cast<int>(grid.point_index(i + 1, j, k)),
            static_cast<int>(grid.point_index(i + 1, j + 1, k)),
            static_cast<int>(grid.point_index(i, j + 1, k)),
            static_cast<int>(grid.point_index(i, j, k + 1)),
            static_cast<int>(grid.point_index(i + 1, j, k + 1)),
            static_cast<int>(grid.point_index(i + 1, j + 1, k + 1)),
            static_cast<int>(grid.point_index(i, j + 1, k + 1)),
        };
        for (const auto& tet : kHexToTets)
          for (const int c : tet) out.conn.push_back(corner[c]);
      }
  return out;
}

TetMesh tetrahedralize(const HexMesh& hexes) {
  TetMesh out;
  out.points = hexes.points;
  out.scalars = hexes.scalars;
  out.conn.reserve(hexes.cell_count() * 24);
  for (std::size_t c = 0; c < hexes.cell_count(); ++c)
    for (const auto& tet : kHexToTets)
      for (const int corner : tet)
        out.conn.push_back(hexes.conn[c * 8 + static_cast<std::size_t>(corner)]);
  return out;
}

}  // namespace isr::mesh
