#include "mesh/fields.hpp"

#include <cmath>

#include "math/rng.hpp"

namespace isr::mesh::fields {

namespace {

// Evaluates f at every grid point with (i, j, k) normalized to [0, 1].
template <class F>
void fill(StructuredGrid& grid, F&& f) {
  const int nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  const float ix = nx > 0 ? 1.0f / static_cast<float>(nx) : 1.0f;
  const float iy = ny > 0 ? 1.0f / static_cast<float>(ny) : 1.0f;
  const float iz = nz > 0 ? 1.0f / static_cast<float>(nz) : 1.0f;
  auto& s = grid.scalars();
  std::size_t idx = 0;
  for (int k = 0; k <= nz; ++k)
    for (int j = 0; j <= ny; ++j)
      for (int i = 0; i <= nx; ++i)
        s[idx++] = f(Vec3f{static_cast<float>(i) * ix, static_cast<float>(j) * iy,
                           static_cast<float>(k) * iz});
  grid.normalize_scalars();
}

}  // namespace

void fill_interface(StructuredGrid& grid, int modes, std::uint64_t seed) {
  Rng rng(seed);
  struct Mode {
    float kx, ky, phase, amp;
  };
  std::vector<Mode> m(static_cast<std::size_t>(modes));
  for (auto& mm : m) {
    mm.kx = rng.uniform(2.0f, 9.0f) * 3.14159265f;
    mm.ky = rng.uniform(2.0f, 9.0f) * 3.14159265f;
    mm.phase = rng.uniform(0.0f, 6.2831853f);
    mm.amp = rng.uniform(0.02f, 0.08f);
  }
  fill(grid, [&](Vec3f p) {
    float interface_z = 0.5f;
    for (const auto& mm : m)
      interface_z += mm.amp * std::sin(mm.kx * p.x + mm.phase) * std::cos(mm.ky * p.y);
    // Smooth step across the perturbed interface; secondary ripple gives the
    // surface fine-scale structure like the RM roll-ups.
    const float d = (p.z - interface_z) * 10.0f;
    const float ripple =
        0.15f * std::sin(24.0f * p.x + 13.0f * p.z) * std::sin(21.0f * p.y - 9.0f * p.z);
    return 1.0f / (1.0f + std::exp(-d)) + ripple;
  });
}

void fill_lattice(StructuredGrid& grid, int cells_per_axis, float sharpness) {
  const float n = static_cast<float>(cells_per_axis);
  fill(grid, [&](Vec3f p) {
    // Distance to the nearest lattice site of an n^3 array, folded into the
    // unit cell; Gaussian falloff makes closed shells around each site.
    const Vec3f q = {p.x * n - std::floor(p.x * n) - 0.5f,
                     p.y * n - std::floor(p.y * n) - 0.5f,
                     p.z * n - std::floor(p.z * n) - 0.5f};
    return std::exp(-sharpness * dot(q, q));
  });
}

void fill_turbulence(StructuredGrid& grid, int octaves, std::uint64_t seed) {
  Rng rng(seed);
  struct Octave {
    Vec3f k;
    float phase, amp;
  };
  std::vector<Octave> waves;
  float freq = 2.0f, amp = 1.0f;
  for (int o = 0; o < octaves; ++o) {
    for (int w = 0; w < 3; ++w) {
      Octave ov;
      ov.k = normalize(Vec3f{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)}) *
             (freq * 3.14159265f);
      ov.phase = rng.uniform(0.0f, 6.2831853f);
      ov.amp = amp;
      waves.push_back(ov);
    }
    freq *= 2.1f;
    amp *= 0.55f;
  }
  fill(grid, [&](Vec3f p) {
    float v = 0.0f;
    for (const auto& w : waves) v += w.amp * std::sin(dot(w.k, p) + w.phase);
    return v;
  });
}

void fill_blobs(StructuredGrid& grid, int blobs, std::uint64_t seed) {
  Rng rng(seed);
  struct Blob {
    Vec3f c;
    float inv_r2, w;
  };
  std::vector<Blob> bs(static_cast<std::size_t>(blobs));
  for (auto& b : bs) {
    b.c = {rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f), rng.uniform(0.2f, 0.8f)};
    const float r = rng.uniform(0.08f, 0.25f);
    b.inv_r2 = 1.0f / (r * r);
    b.w = rng.uniform(0.5f, 1.0f);
  }
  fill(grid, [&](Vec3f p) {
    float v = 0.0f;
    for (const auto& b : bs) {
      const Vec3f d = p - b.c;
      v += b.w * std::exp(-dot(d, d) * b.inv_r2);
    }
    return v;
  });
}

void fill_radial(StructuredGrid& grid) {
  fill(grid, [](Vec3f p) {
    const Vec3f d = p - Vec3f{0.5f, 0.5f, 0.5f};
    return 1.0f - 2.0f * length(d);
  });
}

}  // namespace isr::mesh::fields
