// Named test scenes matching the Chapter II study's data sets.
//
// Originals are proprietary or large external downloads; each is replaced by
// a procedural equivalent whose triangle count has the same order of
// magnitude at scale = 1 (DESIGN.md §3 item 3). `scale` shrinks grid
// resolutions / recursion depths so benchmarks complete on small machines;
// triangle counts shrink roughly with scale^2.
#pragma once

#include <string>
#include <vector>

#include "mesh/trimesh.hpp"

namespace isr::mesh {

struct SceneInfo {
  std::string name;        // paper's data set name, e.g. "RM 3.2M"
  std::string substitute;  // what we generate instead
};

// The twelve Chapter II data sets, in the paper's table order.
std::vector<SceneInfo> chapter2_scenes();

// Build a scene by its paper name ("RM 3.2M", "Dragon", ...). Throws
// std::invalid_argument for unknown names.
TriMesh make_scene(const std::string& name, float scale = 1.0f);

// Geometry helpers (also used by tests and examples).
TriMesh make_icosphere(Vec3f center, float radius, int subdivisions);
TriMesh make_box(const AABB& box);
TriMesh make_sphere_flake(Vec3f center, float radius, int depth, int sphere_subdiv = 2);
TriMesh make_room(int boxes_per_side = 6);
TriMesh make_terrain(int resolution, std::uint64_t seed = 0x7E44u);

}  // namespace isr::mesh
