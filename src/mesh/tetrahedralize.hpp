// Hex -> tet decomposition. The Chapter III study tetrahedralized every data
// set ("This data set was natively on a rectilinear grid, which we then
// decomposed into tetrahedrons"); we do the same with a consistent 6-tet
// split so shared faces match between neighbors.
#pragma once

#include "mesh/structured.hpp"
#include "mesh/unstructured.hpp"

namespace isr::mesh {

// 6 tets per cell; scalars carried from the grid's point field.
TetMesh tetrahedralize(const StructuredGrid& grid);

// 6 tets per hex.
TetMesh tetrahedralize(const HexMesh& hexes);

}  // namespace isr::mesh
