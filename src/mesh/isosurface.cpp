#include "mesh/isosurface.hpp"

#include <array>
#include <cstdint>
#include <unordered_map>

namespace isr::mesh {

namespace {

// Same 6-tet split as tetrahedralize.cpp so surfaces line up with the
// unstructured pipeline.
constexpr std::array<std::array<int, 4>, 6> kHexToTets = {{
    {0, 1, 2, 6},
    {0, 2, 3, 6},
    {0, 3, 7, 6},
    {0, 7, 4, 6},
    {0, 4, 5, 6},
    {0, 5, 1, 6},
}};

struct Builder {
  const StructuredGrid& grid;
  const std::vector<float>* color_field;
  float iso;
  TriMesh out;
  // Vertices are created on grid edges; keyed by the two global point ids so
  // neighboring tets share them exactly (watertight surface).
  std::unordered_map<std::uint64_t, int> edge_vertex;
  float z_lo = 0.0f, inv_z_span = 1.0f;

  int vertex_on_edge(std::size_t a, std::size_t b, float va, float vb, Vec3f pa, Vec3f pb) {
    if (a > b) {
      std::swap(a, b);
      std::swap(va, vb);
      std::swap(pa, pb);
    }
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto [it, inserted] = edge_vertex.try_emplace(key, static_cast<int>(out.points.size()));
    if (inserted) {
      const float denom = vb - va;
      const float t = denom != 0.0f ? clamp01((iso - va) / denom) : 0.5f;
      const Vec3f p = lerp(pa, pb, t);
      out.points.push_back(p);
      if (color_field) {
        const float ca = (*color_field)[a];
        const float cb = (*color_field)[b];
        out.scalars.push_back(ca + (cb - ca) * t);
      } else {
        out.scalars.push_back((p.z - z_lo) * inv_z_span);
      }
    }
    return it->second;
  }

  void emit_tet(const std::size_t gid[4], const float val[4], const Vec3f pos[4]) {
    int inside_mask = 0;
    for (int i = 0; i < 4; ++i)
      if (val[i] >= iso) inside_mask |= 1 << i;
    if (inside_mask == 0 || inside_mask == 15) return;

    // Collect corners on each side.
    int in_ids[4], out_ids[4];
    int n_in = 0, n_out = 0;
    for (int i = 0; i < 4; ++i) {
      if (inside_mask & (1 << i))
        in_ids[n_in++] = i;
      else
        out_ids[n_out++] = i;
    }

    auto edge = [&](int i, int j) {
      return vertex_on_edge(gid[i], gid[j], val[i], val[j], pos[i], pos[j]);
    };

    if (n_in == 1) {
      const int a = in_ids[0];
      const int v0 = edge(a, out_ids[0]);
      const int v1 = edge(a, out_ids[1]);
      const int v2 = edge(a, out_ids[2]);
      out.tris.insert(out.tris.end(), {v0, v1, v2});
    } else if (n_in == 3) {
      const int a = out_ids[0];
      const int v0 = edge(a, in_ids[0]);
      const int v1 = edge(a, in_ids[1]);
      const int v2 = edge(a, in_ids[2]);
      out.tris.insert(out.tris.end(), {v0, v2, v1});
    } else {  // n_in == 2: quad between the four crossed edges
      const int a = in_ids[0], b = in_ids[1];
      const int c = out_ids[0], d = out_ids[1];
      const int vac = edge(a, c);
      const int vad = edge(a, d);
      const int vbc = edge(b, c);
      const int vbd = edge(b, d);
      out.tris.insert(out.tris.end(), {vac, vad, vbd});
      out.tris.insert(out.tris.end(), {vac, vbd, vbc});
    }
  }
};

}  // namespace

TriMesh isosurface(const StructuredGrid& grid, float isovalue,
                   const std::vector<float>* color_field) {
  Builder b{grid, color_field, isovalue, {}, {}, 0.0f, 1.0f};
  const AABB bounds = grid.bounds();
  b.z_lo = bounds.lo.z;
  const float span = bounds.hi.z - bounds.lo.z;
  b.inv_z_span = span > 0.0f ? 1.0f / span : 1.0f;

  const int nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        const std::size_t corner[8] = {
            grid.point_index(i, j, k),         grid.point_index(i + 1, j, k),
            grid.point_index(i + 1, j + 1, k), grid.point_index(i, j + 1, k),
            grid.point_index(i, j, k + 1),     grid.point_index(i + 1, j, k + 1),
            grid.point_index(i + 1, j + 1, k + 1), grid.point_index(i, j + 1, k + 1)};
        // Quick reject: cell entirely on one side.
        bool any_in = false, any_out = false;
        float cv[8];
        for (int c = 0; c < 8; ++c) {
          cv[c] = grid.scalars()[corner[c]];
          (cv[c] >= isovalue ? any_in : any_out) = true;
        }
        if (!any_in || !any_out) continue;

        Vec3f cp[8];
        cp[0] = grid.point(i, j, k);
        cp[1] = grid.point(i + 1, j, k);
        cp[2] = grid.point(i + 1, j + 1, k);
        cp[3] = grid.point(i, j + 1, k);
        cp[4] = grid.point(i, j, k + 1);
        cp[5] = grid.point(i + 1, j, k + 1);
        cp[6] = grid.point(i + 1, j + 1, k + 1);
        cp[7] = grid.point(i, j + 1, k + 1);

        for (const auto& tet : kHexToTets) {
          const std::size_t gid[4] = {corner[tet[0]], corner[tet[1]], corner[tet[2]],
                                      corner[tet[3]]};
          const float val[4] = {cv[tet[0]], cv[tet[1]], cv[tet[2]], cv[tet[3]]};
          const Vec3f pos[4] = {cp[tet[0]], cp[tet[1]], cp[tet[2]], cp[tet[3]]};
          b.emit_tet(gid, val, pos);
        }
      }

  b.out.compute_vertex_normals();
  return b.out;
}

}  // namespace isr::mesh
