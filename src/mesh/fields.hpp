// Procedural scalar fields.
//
// The paper's volumetric data came from production simulations and closed
// data sets (Richtmyer-Meshkov, PbTe charge density, Enzo cosmology,
// Nek5000). These generators produce fields with comparable isosurface
// complexity and value distributions so the rendering workloads (triangle
// counts, active pixels, samples per ray) land in the same regimes. See
// DESIGN.md §3 item 3.
#pragma once

#include <cstdint>

#include "mesh/structured.hpp"

namespace isr::mesh::fields {

// Richtmyer-Meshkov-like: a perturbed interface between two "fluids"; the
// 0.5-isosurface is a wavy multi-lobed sheet like the paper's Figure 2.
void fill_interface(StructuredGrid& grid, int modes = 6,
                    std::uint64_t seed = 0x524Du);

// Crystal-lattice-like (PbTe stand-in): periodic lattice of Gaussian blobs;
// mid-value isosurfaces are disjoint closed shells.
void fill_lattice(StructuredGrid& grid, int cells_per_axis = 4, float sharpness = 40.0f);

// Turbulence-like (Seismic / Enzo stand-in): sum of randomized trigonometric
// octaves; isosurfaces are large tangled sheets.
void fill_turbulence(StructuredGrid& grid, int octaves = 4,
                     std::uint64_t seed = 0x7E55u);

// Sum of n random Gaussian blobs (generic test field; "metaball" shapes).
void fill_blobs(StructuredGrid& grid, int blobs = 8, std::uint64_t seed = 0xB10Bu);

// Smooth radial falloff from the center (simple, fully predictable; used by
// unit tests).
void fill_radial(StructuredGrid& grid);

}  // namespace isr::mesh::fields
