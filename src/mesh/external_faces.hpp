// External-face extraction: the visualization operation the SC16 study uses
// to produce surface geometry from volumetric domains ("we used an external
// faces operation to generate triangles on each MPI task"; an N^3 block
// yields 12*N^2 triangles).
#pragma once

#include "mesh/structured.hpp"
#include "mesh/trimesh.hpp"
#include "mesh/unstructured.hpp"

namespace isr::mesh {

// Boundary faces of a structured grid as triangles; scalars carried from the
// grid's point field.
TriMesh external_faces(const StructuredGrid& grid);

// Faces referenced by exactly one hexahedron (true unstructured externals).
TriMesh external_faces(const HexMesh& hexes);

}  // namespace isr::mesh
