// Structured (uniform) grids — the mesh type Kripke and CloverLeaf3D publish
// and the structured volume renderer consumes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "math/aabb.hpp"
#include "math/vec.hpp"

namespace isr::mesh {

// A uniform grid of nx*ny*nz cells ((nx+1)*(ny+1)*(nz+1) points) with one
// named point-centered scalar field. Scalars are stored x-fastest.
class StructuredGrid {
 public:
  StructuredGrid() = default;
  StructuredGrid(int nx, int ny, int nz, Vec3f origin, Vec3f spacing);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  std::size_t cell_count() const {
    return static_cast<std::size_t>(nx_) * ny_ * nz_;
  }
  std::size_t point_count() const {
    return static_cast<std::size_t>(nx_ + 1) * (ny_ + 1) * (nz_ + 1);
  }

  Vec3f origin() const { return origin_; }
  Vec3f spacing() const { return spacing_; }
  AABB bounds() const;

  std::size_t point_index(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(nx_ + 1) *
               (static_cast<std::size_t>(j) + static_cast<std::size_t>(ny_ + 1) * k);
  }

  Vec3f point(int i, int j, int k) const {
    return origin_ + Vec3f{spacing_.x * i, spacing_.y * j, spacing_.z * k};
  }

  std::vector<float>& scalars() { return scalars_; }
  const std::vector<float>& scalars() const { return scalars_; }
  float scalar_at(int i, int j, int k) const { return scalars_[point_index(i, j, k)]; }

  // Trilinear interpolation at a world-space position; returns false when p
  // is outside the grid.
  bool sample(Vec3f p, float& value) const;

  // Min/max of the scalar field (0,0 when empty).
  void scalar_range(float& lo, float& hi) const;

  // Rescales the field to [0, 1].
  void normalize_scalars();

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  Vec3f origin_{0, 0, 0};
  Vec3f spacing_{1, 1, 1};
  std::vector<float> scalars_;
};

}  // namespace isr::mesh
