#include "mesh/external_faces.hpp"

#include <array>
#include <cstdint>
#include <unordered_map>

namespace isr::mesh {

namespace {

// Adds the quad (a, b, c, d) as two triangles.
void add_quad(TriMesh& out, int a, int b, int c, int d) {
  out.tris.insert(out.tris.end(), {a, b, c});
  out.tris.insert(out.tris.end(), {a, c, d});
}

}  // namespace

TriMesh external_faces(const StructuredGrid& grid) {
  TriMesh out;
  const int nx = grid.nx(), ny = grid.ny(), nz = grid.nz();

  // Map from grid point index to compact output index, filled lazily; only
  // boundary points are emitted.
  std::unordered_map<std::size_t, int> remap;
  remap.reserve(static_cast<std::size_t>(2 * ((nx + 1) * (ny + 1) + (ny + 1) * (nz + 1) +
                                              (nx + 1) * (nz + 1))));
  auto point_id = [&](int i, int j, int k) {
    const std::size_t gid = grid.point_index(i, j, k);
    auto [it, inserted] = remap.try_emplace(gid, static_cast<int>(out.points.size()));
    if (inserted) {
      out.points.push_back(grid.point(i, j, k));
      out.scalars.push_back(grid.scalars()[gid]);
    }
    return it->second;
  };

  // Six boundary planes; quads wound so normals point outward.
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      add_quad(out, point_id(i, j, 0), point_id(i, j + 1, 0), point_id(i + 1, j + 1, 0),
               point_id(i + 1, j, 0));  // z = 0 (normal -z)
      add_quad(out, point_id(i, j, nz), point_id(i + 1, j, nz), point_id(i + 1, j + 1, nz),
               point_id(i, j + 1, nz));  // z = max (+z)
    }
  for (int k = 0; k < nz; ++k)
    for (int i = 0; i < nx; ++i) {
      add_quad(out, point_id(i, 0, k), point_id(i + 1, 0, k), point_id(i + 1, 0, k + 1),
               point_id(i, 0, k + 1));  // y = 0 (-y)
      add_quad(out, point_id(i, ny, k), point_id(i, ny, k + 1), point_id(i + 1, ny, k + 1),
               point_id(i + 1, ny, k));  // y = max (+y)
    }
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j) {
      add_quad(out, point_id(0, j, k), point_id(0, j, k + 1), point_id(0, j + 1, k + 1),
               point_id(0, j + 1, k));  // x = 0 (-x)
      add_quad(out, point_id(nx, j, k), point_id(nx, j + 1, k), point_id(nx, j + 1, k + 1),
               point_id(nx, j, k + 1));  // x = max (+x)
    }

  out.compute_vertex_normals();
  return out;
}

TriMesh external_faces(const HexMesh& hexes) {
  // VTK hex ordering: bottom 0-1-2-3 (CCW seen from below), top 4-5-6-7.
  static constexpr std::array<std::array<int, 4>, 6> kFaces = {{
      {0, 3, 2, 1},  // bottom
      {4, 5, 6, 7},  // top
      {0, 1, 5, 4},  // front
      {1, 2, 6, 5},  // right
      {2, 3, 7, 6},  // back
      {3, 0, 4, 7},  // left
  }};

  struct FaceInfo {
    std::array<int, 4> verts;
    int count = 0;
  };
  auto face_key = [](std::array<int, 4> v) {
    std::array<int, 4> s = v;
    std::sort(s.begin(), s.end());
    return (static_cast<std::uint64_t>(s[0]) << 42) ^ (static_cast<std::uint64_t>(s[1]) << 28) ^
           (static_cast<std::uint64_t>(s[2]) << 14) ^ static_cast<std::uint64_t>(s[3]);
  };

  std::unordered_map<std::uint64_t, FaceInfo> faces;
  faces.reserve(hexes.cell_count() * 3);
  for (std::size_t c = 0; c < hexes.cell_count(); ++c) {
    for (const auto& f : kFaces) {
      std::array<int, 4> v;
      for (int i = 0; i < 4; ++i)
        v[static_cast<std::size_t>(i)] =
            hexes.conn[c * 8 + static_cast<std::size_t>(f[static_cast<std::size_t>(i)])];
      FaceInfo& info = faces[face_key(v)];
      if (info.count == 0) info.verts = v;
      ++info.count;
    }
  }

  TriMesh out;
  std::unordered_map<int, int> remap;
  auto point_id = [&](int gid) {
    auto [it, inserted] = remap.try_emplace(gid, static_cast<int>(out.points.size()));
    if (inserted) {
      out.points.push_back(hexes.points[static_cast<std::size_t>(gid)]);
      out.scalars.push_back(hexes.scalars.empty()
                                ? 0.0f
                                : hexes.scalars[static_cast<std::size_t>(gid)]);
    }
    return it->second;
  };
  for (const auto& [key, info] : faces) {
    if (info.count != 1) continue;
    add_quad(out, point_id(info.verts[0]), point_id(info.verts[1]), point_id(info.verts[2]),
             point_id(info.verts[3]));
  }
  out.compute_vertex_normals();
  return out;
}

}  // namespace isr::mesh
