#include "cluster/stream.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace isr::cluster {

std::size_t SessionState::allocate_slot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) throw std::logic_error("StreamSession: submit after close");
  responses_.emplace_back();
  return responses_.size() - 1;
}

void SessionState::deliver(std::size_t slot, serve::AdvisorResponse&& response) {
  std::lock_guard<std::mutex> lock(mutex_);
  responses_[slot] = std::move(response);
  ++completed_;
  // Only a closing drain ever waits, and only the final delivery can
  // satisfy it — skip the notify on every earlier response.
  if (closed_ && completed_ == responses_.size()) cv_.notify_all();
}

void SessionState::deliver_run(const std::size_t* slots,
                               serve::AdvisorResponse* responses, std::size_t count) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < count; ++i)
    responses_[slots[i]] = std::move(responses[i]);
  completed_ += count;
  if (closed_ && completed_ == responses_.size()) cv_.notify_all();
}

std::vector<serve::AdvisorResponse> SessionState::wait_drained() {
  std::unique_lock<std::mutex> lock(mutex_);
  closed_ = true;
  cv_.wait(lock, [&] { return completed_ == responses_.size(); });
  return std::move(responses_);
}

void save_schedule(const AdmissionSchedule& schedule, std::ostream& out) {
  out << "# insitu-perf admission schedule: STREAM SEQ T_US per line\n";
  for (const AdmissionRecord& r : schedule)
    out << r.stream << ' ' << r.seq << ' ' << r.t_us << '\n';
}

bool load_schedule(std::istream& in, AdmissionSchedule& schedule, std::string& error) {
  AdmissionSchedule loaded;
  std::string line;
  long line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    AdmissionRecord rec;
    long long stream = -1, seq = -1, t_us = 0;
    if (!(fields >> stream >> seq >> t_us) || stream < 0 || seq < 0) {
      error = "schedule line " + std::to_string(line_no) +
              ": expected \"STREAM SEQ T_US\" (got \"" + line + "\")";
      return false;
    }
    std::string trailing;
    if (fields >> trailing) {
      error = "schedule line " + std::to_string(line_no) + ": trailing fields";
      return false;
    }
    rec.stream = static_cast<std::uint64_t>(stream);
    rec.seq = static_cast<std::uint64_t>(seq);
    rec.t_us = static_cast<std::int64_t>(t_us);
    loaded.push_back(rec);
  }
  schedule = std::move(loaded);
  error.clear();
  return true;
}

}  // namespace isr::cluster
