// Streaming-admission building blocks for the serving cluster: the
// per-session completion state a StreamSession handle wraps, the unit of
// work shard queues carry, the total order those queues serve in, and the
// recorded admission schedule that makes a concurrent run replayable.
//
// Determinism under concurrency, in two halves:
//   1. Every response is a pure function of (request, fitted models,
//      mapping constants) — interleaving can never change WHAT a request
//      answers, only when, and session slots keep responses in per-stream
//      submission order regardless of service order.
//   2. Shed decisions DO depend on interleaving (they read the admission
//      clock and the virtual backlog), so the cluster can record the
//      admission schedule — (stream id, seq, virtual timestamp) per
//      admitted request — and later replay it, forcing the exact
//      interleaving and timestamps. Replay turns the one nondeterministic
//      input into data, which is how the byte-identity contract of the
//      batch era survives as a test configuration (see test_stream.cpp and
//      bench_stream_throughput).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/mapping.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

// One admitted request in a recorded schedule: which stream, its per-stream
// submission sequence number, and the virtual admission timestamp
// (microseconds since the cluster's epoch) the shed accounting saw.
struct AdmissionRecord {
  std::uint64_t stream = 0;
  std::uint64_t seq = 0;
  std::int64_t t_us = 0;
};

using AdmissionSchedule = std::vector<AdmissionRecord>;

// Schedule file IO for the --record/--replay CLI flags: a comment-friendly
// text format, one "STREAM SEQ T_US" triple per line. load returns false
// (with a one-line reason) on any malformed line — the same loud-over-
// silent stance as the wire-format parser.
void save_schedule(const AdmissionSchedule& schedule, std::ostream& out);
bool load_schedule(std::istream& in, AdmissionSchedule& schedule, std::string& error);

// Completion state shared between a StreamSession handle, the cluster's
// admission path, and the shard workers. Responses land in per-stream
// submission order (slot = seq), no matter which shard answered or when.
// Lifetime: in-flight StreamItems hold a shared_ptr, so a session's state
// outlives early handle destruction — but never the cluster itself (close
// every session before destroying the cluster).
class SessionState {
 public:
  explicit SessionState(std::uint64_t id) : id_(id) {}

  std::uint64_t id() const { return id_; }

  // Reserves the next response slot (== the request's per-stream seq).
  // Throws std::logic_error after close(): submit-after-close is a client
  // bug, not a race to tolerate.
  std::size_t allocate_slot();

  // Writes one response into its slot and wakes a drain waiter when it was
  // the last one owed. Called by admission (cache hits, unknown-corpus
  // errors, shed refusals) and by shard workers (evaluated responses).
  void deliver(std::size_t slot, serve::AdvisorResponse&& response);

  // Batched delivery for a shard's fast-lane drain: one lock acquisition
  // for a run of responses all landing in this session (responses[i] moves
  // into slots[i]). Identical outcome to `count` deliver() calls — slots
  // address the writes, so delivery grouping can never reorder a stream.
  void deliver_run(const std::size_t* slots, serve::AdvisorResponse* responses,
                   std::size_t count);

  // Marks the session closed and blocks until every allocated slot has its
  // response, then moves the responses out (per-stream submission order).
  std::vector<serve::AdvisorResponse> wait_drained();

 private:
  const std::uint64_t id_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<serve::AdvisorResponse> responses_;
  std::size_t completed_ = 0;
  bool closed_ = false;
};

// The unit of work a shard queue carries: the request, its resolved
// replica, where its response goes, and the scheduling key (priority,
// absolute virtual deadline, global admission sequence).
struct StreamItem {
  serve::AdvisorRequest request;
  std::uint64_t corpus_key = 0;  // resident replica the request resolved to
  // The bundle this request was ADMITTED under, pinned here so evaluation —
  // on any shard, after any failover, before or after a recalibration swap —
  // reads exactly the epoch admission saw. Shared ownership keeps a
  // superseded bundle alive until its last in-flight request delivers.
  serve::BundlePtr bundle;
  // The resolved corpus's mapping constants; owned by the cluster's corpus
  // state, which outlives every in-flight item.
  const model::MappingConstants* constants = nullptr;
  // Index of the resolved corpus in the cluster's configuration order —
  // the response-cache partition this item's entry lives in.
  int corpus_index = 0;
  std::shared_ptr<SessionState> session;
  std::size_t slot = 0;
  // Scheduling key. deadline_at_us is the absolute virtual deadline
  // (admission timestamp + deadline_us); no deadline sorts last within its
  // priority class. admit_seq is assigned under the admission lock, so the
  // key is a total order and heap insertion order cannot matter.
  int priority = 1;
  std::int64_t deadline_at_us = std::numeric_limits<std::int64_t>::max();
  std::uint64_t admit_seq = 0;
  // (No cache key rides here: the canonical key is a pure function of
  // `request`, so the drain worker rebuilds it into a thread-local buffer
  // instead of carrying a per-item heap string through the queue.)
  std::chrono::steady_clock::time_point enqueued;  // latency clock start
  // Fault-tolerance bookkeeping: how many injected faults THIS item has
  // personally triggered (eval throws, worker crashes). Part of the fault
  // injector's decision key — (stream, seq, attempt) — so a re-driven item
  // draws a fresh deterministic decision instead of refiring forever, and
  // an item merely co-batched with a crasher keeps its attempt (and its
  // schedule) unchanged. Exceeding the cluster's retry limit turns the
  // item into an explicit degraded response.
  int attempt = 0;
};

// The serving order: strict across priority classes (0 preempts 7 even
// when 7's deadline is nearer), earliest deadline first within a class,
// admission order as the deterministic tiebreak.
struct StreamBefore {
  bool operator()(const StreamItem& a, const StreamItem& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.deadline_at_us != b.deadline_at_us) return a.deadline_at_us < b.deadline_at_us;
    return a.admit_seq < b.admit_seq;
  }
};

}  // namespace isr::cluster
