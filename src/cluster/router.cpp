#include "cluster/router.hpp"

#include <algorithm>
#include <numeric>

#include "math/rng.hpp"

namespace isr::cluster {

namespace {
// Domain-separation salts so ring points, request keys, and rendezvous
// scores draw from unrelated hash streams.
constexpr std::uint64_t kRingSalt = 0xC105732Bull;
constexpr std::uint64_t kRendezvousSalt = 0x5D12EBAAull;
}  // namespace

Router::Router(int shards, RouterOptions options)
    : shards_(shards > 0 ? shards : 1), options_(options) {
  if (options_.replicas < 1) options_.replicas = 1;
  if (options_.imbalance_ratio <= 0.0) options_.rebalance = false;
  if (options_.decay_window == 0) options_.decay_window = 1;
  ring_.reserve(static_cast<std::size_t>(shards_) *
                static_cast<std::size_t>(options_.replicas));
  for (int s = 0; s < shards_; ++s)
    for (int v = 0; v < options_.replicas; ++v)
      ring_.emplace_back(hash_seed(kRingSalt, static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(v)),
                         s);
  std::sort(ring_.begin(), ring_.end());
}

int Router::ring_successor(std::uint64_t point) const {
  const auto it = std::lower_bound(ring_.begin(), ring_.end(),
                                   std::make_pair(point, 0));
  return it == ring_.end() ? ring_.front().second : it->second;
}

int Router::shard_for(std::uint64_t corpus_fingerprint, const std::string& arch) const {
  if (shards_ == 1) return 0;
  return ring_successor(hash_seed(corpus_fingerprint, arch));
}

namespace {

// The shared rendezvous computation: shards sorted by their per-key hash
// score, a deterministic per-key permutation of [0, shards).
std::vector<int> rendezvous_for(std::uint64_t key, int shards) {
  std::vector<int> order(static_cast<std::size_t>(shards));
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> score(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    score[static_cast<std::size_t>(s)] =
        hash_seed(kRendezvousSalt, key, static_cast<std::uint64_t>(s));
  std::sort(order.begin(), order.end(), [&score](int a, int b) {
    return score[static_cast<std::size_t>(a)] > score[static_cast<std::size_t>(b)];
  });
  return order;
}

}  // namespace

std::vector<int> Router::rendezvous_order(std::uint64_t corpus_fingerprint,
                                          const std::string& arch) const {
  return rendezvous_for(hash_seed(corpus_fingerprint, arch), shards_);
}

bool Router::is_hot(double load) const {
  return load >= options_.min_hot_load &&
         load > options_.imbalance_ratio * (total_load_ / static_cast<double>(shards_));
}

int Router::route(std::uint64_t corpus_fingerprint, const std::string& arch) {
  if (shards_ == 1) return 0;
  const std::uint64_t key = hash_seed(corpus_fingerprint, arch);
  if (!options_.rebalance) return ring_successor(key);

  // Decay first, so one long-lived router converges on recent traffic: the
  // window halves every counter (and the total), and entries that decayed
  // to noise are dropped to bound the map.
  if (++routes_since_decay_ >= options_.decay_window) {
    routes_since_decay_ = 0;
    total_load_ = 0.0;
    for (auto it = load_.begin(); it != load_.end();) {
      it->second.load *= 0.5;
      if (it->second.load < 0.5) {
        it = load_.erase(it);
      } else {
        total_load_ += it->second.load;
        ++it;
      }
    }
  }

  KeyLoad& entry = load_[key];
  entry.load += 1.0;
  total_load_ += 1.0;
  // The home shard is a pure function of the key; cache it so neither the
  // cold path nor the hot path's off-home classification re-searches the
  // ring per request.
  if (entry.home < 0) entry.home = ring_successor(key);
  if (!is_hot(entry.load)) return entry.home;

  // Hot: split the key across its rendezvous shard order (a deterministic
  // per-key permutation of all shards), round-robin per request. The
  // cursor — not a random draw — keeps a fixed request sequence's shard
  // loads reproducible, which bench_multicorpus_throughput measures.
  if (entry.rendezvous.empty()) entry.rendezvous = rendezvous_for(key, shards_);
  const std::size_t pick = entry.rr++ % static_cast<std::size_t>(shards_);
  const int shard = entry.rendezvous[pick];
  // ~1/shards of the round-robin picks are the home shard itself; only the
  // genuinely moved requests count as rebalanced (metrics.hpp's meaning).
  if (shard != entry.home) rebalanced_.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

int Router::hot_keys() const {
  if (!options_.rebalance || shards_ == 1) return 0;
  int hot = 0;
  for (const auto& kv : load_)
    if (is_hot(kv.second.load)) ++hot;
  return hot;
}

}  // namespace isr::cluster
