#include "cluster/router.hpp"

#include <algorithm>

#include "math/rng.hpp"

namespace isr::cluster {

namespace {
// Domain-separation salt so ring points can never collide with the request
// key hashes they are compared against.
constexpr std::uint64_t kRingSalt = 0xC105732Bull;
}  // namespace

Router::Router(int shards, std::uint64_t corpus_fingerprint, int replicas)
    : shards_(shards > 0 ? shards : 1), fingerprint_(corpus_fingerprint) {
  if (replicas < 1) replicas = 1;
  ring_.reserve(static_cast<std::size_t>(shards_) * static_cast<std::size_t>(replicas));
  for (int s = 0; s < shards_; ++s)
    for (int v = 0; v < replicas; ++v)
      ring_.emplace_back(hash_seed(kRingSalt, static_cast<std::uint64_t>(s),
                                   static_cast<std::uint64_t>(v)),
                         s);
  std::sort(ring_.begin(), ring_.end());
}

int Router::shard_for(const std::string& arch) const {
  if (shards_ == 1) return 0;
  const std::uint64_t key = hash_seed(fingerprint_, arch);
  const auto it = std::lower_bound(ring_.begin(), ring_.end(),
                                   std::make_pair(key, 0));
  return it == ring_.end() ? ring_.front().second : it->second;
}

}  // namespace isr::cluster
