#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>

#include "math/rng.hpp"

namespace isr::cluster {

namespace {

// Mirror AdvisorService's spr_base derivation: the SPR mapping must assume
// the sampling density the calibration corpus was rendered at.
void derive_spr_base(serve::ServiceConfig& service) {
  if (service.constants.spr_base <= 0.0)
    service.constants.spr_base = 0.93 * service.calibration.vr_samples;
}

// The replica/routing key: calibration fingerprint + the exact bit
// patterns of the mapping constants. Two corpora sharing a calibration but
// differing in constants (e.g. an explicit spr_base) predict differently,
// so they must select distinct shard replica entries — while still sharing
// the calibration's single fit.
std::uint64_t corpus_key_for(const serve::ServiceConfig& service,
                             std::uint64_t fingerprint) {
  std::uint64_t key = hash_seed(fingerprint, std::uint64_t{0xC0B905ull});
  const auto mix_double = [&key](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  };
  mix_double(service.constants.ap_fill);
  mix_double(service.constants.ppt);
  mix_double(service.constants.spr_base);
  return key;
}

// The shed refusal a client sees. Integer microseconds keep the message —
// and therefore the wire bytes — independent of floating-point formatting
// noise; the values themselves are deterministic in replay mode.
serve::AdvisorResponse shed_response(long estimated_us, long deadline_us) {
  serve::AdvisorResponse r;
  r.ok = false;
  r.shed = true;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "shed: estimated completion in %ld us exceeds deadline %ld us",
                estimated_us, deadline_us);
  r.error = buf;
  return r;
}

}  // namespace

ServingCluster::ServingCluster(ClusterConfig config,
                               std::shared_ptr<serve::ModelRegistry> primary)
    : config_(std::move(config)),
      primary_(primary ? std::move(primary) : std::make_shared<serve::ModelRegistry>()),
      router_(config_.shards > 0 ? config_.shards : 1,
              RouterOptions{/*replicas=*/64, config_.rebalance, config_.imbalance_ratio,
                            config_.rebalance_window > 0 ? config_.rebalance_window : 1,
                            /*min_hot_load=*/32.0}),
      cache_(config_.cache_entries, config_.cache_ways),
      epoch_(std::chrono::steady_clock::now()) {
  // Resolve the resident corpora up front: the default first (selector ""),
  // then each valid named corpus. Empty, "default", and duplicate names
  // are dropped — "" is reserved for the default corpus, "default" is its
  // metrics alias (a named reuse would emit colliding JSON keys), and a
  // duplicate would make resolution ambiguous (first writer wins, like the
  // registry's adopt).
  derive_spr_base(config_.service);
  CorpusState default_corpus;
  default_corpus.service = config_.service;
  default_corpus.fingerprint =
      serve::ModelRegistry::fingerprint(config_.service.calibration);
  default_corpus.corpus_key =
      corpus_key_for(default_corpus.service, default_corpus.fingerprint);
  corpora_.push_back(std::move(default_corpus));
  for (const CorpusConfig& named : config_.corpora) {
    if (named.name.empty() || named.name == "default" || resolve_corpus(named.name) >= 0)
      continue;
    CorpusState state;
    state.name = named.name;
    state.service = named.service;
    derive_spr_base(state.service);
    state.fingerprint = serve::ModelRegistry::fingerprint(state.service.calibration);
    state.corpus_key = corpus_key_for(state.service, state.fingerprint);
    corpora_.push_back(std::move(state));
  }
  corpus_queries_ = std::make_unique<std::atomic<long>[]>(corpora_.size());

  const int n_shards = config_.shards > 0 ? config_.shards : 1;
  config_.shards = n_shards;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  // A batch can never outgrow the queue: the worker popping a FULL queue
  // must find an immediately poppable (kSize) batch, not wait out the
  // coalescing deadline while admitters block on a queue it won't drain.
  if (config_.batch_size > config_.queue_capacity)
    config_.batch_size = config_.queue_capacity;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.replay_service_us <= 0.0) config_.replay_service_us = 4.0;
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          config_.batch_deadline_ms > 0.0 ? config_.batch_deadline_ms : 0.0));
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>(s, config_.queue_capacity,
                                              config_.batch_size, deadline,
                                              config_.replay_service_us));
  backlog_end_us_.assign(static_cast<std::size_t>(n_shards), 0.0);
}

ServingCluster::~ServingCluster() {
  for (const auto& shard : shards_) shard->shutdown();
  for (std::thread& worker : workers_)
    if (worker.joinable()) worker.join();
}

int ServingCluster::resolve_corpus(const std::string& name) const {
  // Linear scan: resident corpora are few (one per served machine
  // configuration), and the scan avoids a map the metrics would then have
  // to keep ordered anyway.
  if (name.empty()) return corpora_.empty() ? -1 : 0;
  for (std::size_t c = 1; c < corpora_.size(); ++c)
    if (corpora_[c].name == name) return static_cast<int>(c);
  return -1;
}

std::uint64_t ServingCluster::corpus_fingerprint(const std::string& name) const {
  const int idx = resolve_corpus(name);
  return idx < 0 ? 0 : corpora_[static_cast<std::size_t>(idx)].fingerprint;
}

void ServingCluster::ensure_serving() {
  std::lock_guard<std::mutex> lock(serving_mutex_);
  if (serving_) return;
  // One fit per distinct calibration fingerprint, on the primary (its
  // cache dedups repeat calls); every shard adopts a replica entry per
  // distinct corpus key (adoption never counts as a fit), so any shard can
  // evaluate any resident corpus — which is what lets the rebalancer place
  // hot keys anywhere.
  std::set<std::uint64_t> adopted;
  for (const CorpusState& corpus : corpora_) {
    if (!adopted.insert(corpus.corpus_key).second) continue;
    const serve::FittedModels& bundle = primary_->models_for(corpus.service.calibration);
    for (const auto& shard : shards_)
      shard->adopt(bundle, corpus.service.constants, corpus.corpus_key);
  }
  // Workers start only after every replica is resident: a worker must
  // never see an item whose corpus_key it cannot resolve.
  ResponseCache* cache = cache_.enabled() ? &cache_ : nullptr;
  workers_.reserve(shards_.size());
  for (const auto& shard : shards_) {
    Shard* s = shard.get();
    workers_.emplace_back([s, cache] {
      while (s->drain_one_batch(cache)) {
      }
    });
  }
  serving_ = true;
}

StreamSession ServingCluster::open_stream() {
  ensure_serving();
  std::lock_guard<std::mutex> lock(admission_mutex_);
  auto state = std::make_shared<SessionState>(next_stream_id_++);
  ++streams_;
  return StreamSession(this, std::move(state));
}

void ServingCluster::admit(const std::shared_ptr<SessionState>& session, std::size_t slot,
                           const serve::AdvisorRequest& request) {
  // Everything that is a pure function of the request is prepared BEFORE
  // any lock: the queue item's request copy (string allocations) and the
  // canonical cache key (formatting + hashing). Concurrent producers pay
  // only the slim order-dependent section serially — that is what lets N
  // streams outrun one. The error paths (unknown corpus, cache hit, shed)
  // discard the prepared item; they are the rare paths, and pessimizing
  // them keeps the admitted path minimal.
  StreamItem item;
  item.request = request;
  item.session = session;
  item.slot = slot;
  item.priority = std::max(0, std::min(7, request.priority));
  item.enqueued = std::chrono::steady_clock::now();
  std::string cache_key;
  if (cache_.enabled()) cache_key = canonical_request_key(request);

  // Record/replay are correctness modes: the whole admission serializes
  // under the lock so the schedule captures (or pins) every submission,
  // cache hits included. Both flags are set before streams open, so a
  // relaxed read is stable for the run.
  if (replaying_.load(std::memory_order_relaxed) ||
      recording_.load(std::memory_order_relaxed)) {
    admit_serialized(session, slot, request, std::move(item), std::move(cache_key));
    return;
  }

  const std::int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - epoch_)
                                  .count();
  queries_.fetch_add(1, std::memory_order_relaxed);
  // corpora_ is immutable after construction; resolution needs no lock.
  const int corpus_idx = resolve_corpus(request.corpus);
  if (corpus_idx < 0) {
    unknown_corpus_queries_.fetch_add(1, std::memory_order_relaxed);
    serve::AdvisorResponse r;
    r.ok = false;
    r.error =
        "unknown corpus \"" + request.corpus + "\" (not resident on this cluster)";
    session->deliver(slot, std::move(r));
    return;
  }
  corpus_queries_[static_cast<std::size_t>(corpus_idx)].fetch_add(
      1, std::memory_order_relaxed);
  const CorpusState& corpus = corpora_[static_cast<std::size_t>(corpus_idx)];

  // Cache before routing and before the deadline check: a hit costs no
  // queue time, so shedding it would refuse work the cluster can do for
  // free — and the canonical key excludes deadline/priority, so a hurried
  // request hits entries its relaxed twin populated. The cache is
  // internally lock-sharded; probing it needs no admission lock.
  if (cache_.enabled()) {
    serve::AdvisorResponse hit;
    if (cache_.lookup(cache_key, hit)) {
      session->deliver(slot, std::move(hit));
      return;
    }
  }

  std::size_t shard_idx = 0;
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    shard_idx = static_cast<std::size_t>(router_.route(corpus.corpus_key, request.arch));

    // Deadline-aware admission control, the Horvitz & Lengyel budget
    // framing applied to queueing: each shard's backlog_end is the virtual
    // time its queue drains at; if this request would complete past its
    // deadline, refuse it NOW with an explicit shed response instead of
    // letting it rot in the queue. Admitted work advances the backlog,
    // charged at the shard's measured EWMA.
    const double service_us = shards_[shard_idx]->service_estimate_us();
    double& backlog = backlog_end_us_[shard_idx];
    const double start_us = std::max(backlog, static_cast<double>(now_us));
    const double done_us = start_us + service_us;
    if (request.deadline_us > 0 &&
        done_us - static_cast<double>(now_us) > static_cast<double>(request.deadline_us)) {
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      session->deliver(slot, shed_response(static_cast<long>(done_us) - now_us,
                                           request.deadline_us));
      return;
    }
    backlog = done_us;
    item.admit_seq = admit_seq_++;
  }

  item.corpus_key = corpus.corpus_key;
  if (request.deadline_us > 0) item.deadline_at_us = now_us + request.deadline_us;
  item.cache_key = std::move(cache_key);
  // Blocking bounded push OUTSIDE the admission lock: backpressure from a
  // full queue stalls this admitter only. Everything order-dependent
  // (shed accounting, admit_seq) is already fixed, and the ordered queue
  // serves by key, so arrival order cannot change results.
  shards_[shard_idx]->enqueue(std::move(item));
}

// The record/replay admission path: one lock over the whole decision so
// the schedule is a faithful serialization of every submission. Replay
// blocks each submission until the schedule reaches its (stream, seq) —
// what pins the interleaving — and substitutes the recorded virtual
// timestamp and the fixed replay service cost, making shed decisions a
// pure function of (schedule, requests).
void ServingCluster::admit_serialized(const std::shared_ptr<SessionState>& session,
                                      std::size_t slot,
                                      const serve::AdvisorRequest& request,
                                      StreamItem&& item, std::string&& cache_key) {
  std::unique_lock<std::mutex> lock(admission_mutex_);

  std::int64_t now_us = 0;
  if (replaying_.load(std::memory_order_relaxed)) {
    replay_cv_.wait(lock, [&] {
      return replay_cursor_ >= replay_.size() ||
             (replay_[replay_cursor_].stream == session->id() &&
              replay_[replay_cursor_].seq == slot);
    });
    if (replay_cursor_ >= replay_.size())
      throw std::runtime_error(
          "replay: admission schedule exhausted (submission not in the recording)");
    now_us = replay_[replay_cursor_].t_us;
    ++replay_cursor_;
    replay_cv_.notify_all();
  } else {
    now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
  }
  if (recording_.load(std::memory_order_relaxed))
    recorded_.push_back({session->id(), slot, now_us});

  queries_.fetch_add(1, std::memory_order_relaxed);
  const int corpus_idx = resolve_corpus(request.corpus);
  if (corpus_idx < 0) {
    unknown_corpus_queries_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    serve::AdvisorResponse r;
    r.ok = false;
    r.error =
        "unknown corpus \"" + request.corpus + "\" (not resident on this cluster)";
    session->deliver(slot, std::move(r));
    return;
  }
  corpus_queries_[static_cast<std::size_t>(corpus_idx)].fetch_add(
      1, std::memory_order_relaxed);
  const CorpusState& corpus = corpora_[static_cast<std::size_t>(corpus_idx)];

  if (cache_.enabled()) {
    serve::AdvisorResponse hit;
    if (cache_.lookup(cache_key, hit)) {
      lock.unlock();
      session->deliver(slot, std::move(hit));
      return;
    }
  }

  const std::size_t shard_idx = static_cast<std::size_t>(
      router_.route(corpus.corpus_key, request.arch));
  const double service_us = replaying_.load(std::memory_order_relaxed)
                                ? config_.replay_service_us
                                : shards_[shard_idx]->service_estimate_us();
  double& backlog = backlog_end_us_[shard_idx];
  const double start_us = std::max(backlog, static_cast<double>(now_us));
  const double done_us = start_us + service_us;
  if (request.deadline_us > 0 &&
      done_us - static_cast<double>(now_us) > static_cast<double>(request.deadline_us)) {
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    session->deliver(slot, shed_response(static_cast<long>(done_us) - now_us,
                                         request.deadline_us));
    return;
  }
  backlog = done_us;

  item.corpus_key = corpus.corpus_key;
  if (request.deadline_us > 0) item.deadline_at_us = now_us + request.deadline_us;
  item.admit_seq = admit_seq_++;
  item.cache_key = std::move(cache_key);
  Shard& shard = *shards_[shard_idx];
  lock.unlock();
  shard.enqueue(std::move(item));
}

void ServingCluster::kick_all() {
  for (const auto& shard : shards_) shard->kick();
}

std::uint64_t StreamSession::submit(const serve::AdvisorRequest& request) {
  if (!state_) throw std::logic_error("StreamSession: submit on a closed session");
  const std::size_t slot = state_->allocate_slot();
  cluster_->admit(state_, slot, request);
  return slot;
}

std::vector<serve::AdvisorResponse> StreamSession::close() {
  if (!state_) return {};
  // Flush partial shard batches so the tail is answered promptly, then
  // wait out every owed slot. The state_ reset is what marks the handle
  // spent; in-flight items (there are none by now) share ownership.
  cluster_->kick_all();
  std::vector<serve::AdvisorResponse> responses = state_->wait_drained();
  state_.reset();
  cluster_ = nullptr;
  return responses;
}

std::vector<serve::AdvisorResponse> ServingCluster::serve_batch(
    const std::vector<serve::AdvisorRequest>& requests) {
  // A batch of zero answerable requests (e.g. every line of a JSONL batch
  // failed to parse) must not pay for a calibration fit.
  if (requests.empty()) return {};
  StreamSession session = open_stream();
  for (const serve::AdvisorRequest& request : requests) session.submit(request);
  return session.close();
}

void ServingCluster::enable_recording() {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  recording_ = true;
}

AdmissionSchedule ServingCluster::take_recording() {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  AdmissionSchedule out = std::move(recorded_);
  recorded_.clear();
  return out;
}

void ServingCluster::begin_replay(AdmissionSchedule schedule) {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  replay_ = std::move(schedule);
  replay_cursor_ = 0;
  replaying_ = true;
  // Replay's virtual clock restarts with the schedule; so must the shed
  // accounting that consumes it.
  std::fill(backlog_end_us_.begin(), backlog_end_us_.end(), 0.0);
}

ClusterMetrics ServingCluster::metrics() const {
  ClusterMetrics m;
  m.shards = static_cast<int>(shards_.size());
  m.shard_queries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    m.shard_queries.push_back(s.queries);
    m.batches += s.batches;
    m.size_flushes += s.size_flushes;
    m.deadline_flushes += s.deadline_flushes;
    m.kick_flushes += s.kick_flushes;
    m.close_flushes += s.close_flushes;
    if (shard->max_queue_depth() > m.max_queue_depth)
      m.max_queue_depth = shard->max_queue_depth();
  }
  m.rebalanced_queries = router_.rebalanced();
  m.cache_lookups = cache_.lookups();
  m.cache_hits = cache_.hits();
  m.cache_hit_rate =
      m.cache_lookups > 0
          ? static_cast<double>(m.cache_hits) / static_cast<double>(m.cache_lookups)
          : 0.0;
  // The admission counters are atomics (the live fast path bumps them
  // outside any lock); only the router's hot-key scan needs the admission
  // lock, because route() mutates the load counters under it.
  m.queries = queries_.load(std::memory_order_relaxed);
  m.corpus_queries.reserve(corpora_.size());
  for (std::size_t c = 0; c < corpora_.size(); ++c)
    m.corpus_queries.emplace_back(corpora_[c].name,
                                  corpus_queries_[c].load(std::memory_order_relaxed));
  m.unknown_corpus_queries = unknown_corpus_queries_.load(std::memory_order_relaxed);
  m.streams = streams_.load(std::memory_order_relaxed);
  m.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    m.hot_keys = router_.hot_keys();
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    for (const auto& shard : shards_) shard->drain_latencies(latencies_ms_);
    // Bound the latency reservoir: a long-lived service must not grow a
    // sample per request forever. Keep the most recent window; the
    // percentiles describe it.
    constexpr std::size_t kLatencyWindow = 65536;
    if (latencies_ms_.size() > kLatencyWindow)
      latencies_ms_.erase(latencies_ms_.begin(),
                          latencies_ms_.end() -
                              static_cast<std::ptrdiff_t>(kLatencyWindow));
    m.p50_latency_ms = percentile(latencies_ms_, 50.0);
    m.p99_latency_ms = percentile(latencies_ms_, 99.0);
  }
  return m;
}

int ServingCluster::registry_fits() const {
  int total = primary_->fits();
  for (const auto& shard : shards_) total += shard->registry().fits();
  return total;
}

}  // namespace isr::cluster
