#include "cluster/cluster.hpp"

#include <exception>

#include "core/parallel_for.hpp"

namespace isr::cluster {

ServingCluster::ServingCluster(ClusterConfig config,
                               std::shared_ptr<serve::ModelRegistry> primary)
    : config_(std::move(config)),
      primary_(primary ? std::move(primary) : std::make_shared<serve::ModelRegistry>()),
      router_(config_.shards,
              serve::ModelRegistry::fingerprint(config_.service.calibration)),
      cache_(config_.cache_entries, config_.cache_ways),
      pool_(config_.threads) {
  // Mirror AdvisorService's spr_base derivation: the SPR mapping must
  // assume the sampling density the calibration corpus was rendered at.
  if (config_.service.constants.spr_base <= 0.0)
    config_.service.constants.spr_base = 0.93 * config_.service.calibration.vr_samples;
  const int n_shards = config_.shards > 0 ? config_.shards : 1;
  config_.shards = n_shards;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  // A batch can never outgrow the queue: a producer helping on a FULL
  // queue must find an immediately poppable (kSize) batch, not wait out
  // the coalescing deadline.
  if (config_.batch_size > config_.queue_capacity)
    config_.batch_size = config_.queue_capacity;
  if (config_.batch_size == 0) config_.batch_size = 1;
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          config_.batch_deadline_ms > 0.0 ? config_.batch_deadline_ms : 0.0));
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>(s, config_.service.constants,
                                              config_.queue_capacity, config_.batch_size,
                                              deadline));
}

void ServingCluster::ensure_replicated() {
  std::lock_guard<std::mutex> lock(replicate_mutex_);
  if (replicated_) return;
  // One fit per distinct corpus fingerprint, on the primary; every shard
  // replica adopts a copy of the bundle (adoption never counts as a fit).
  const serve::FittedModels& fitted = primary_->models_for(config_.service.calibration);
  for (const auto& shard : shards_) shard->adopt(fitted);
  replicated_ = true;
}

std::vector<serve::AdvisorResponse> ServingCluster::serve_batch(
    const std::vector<serve::AdvisorRequest>& requests) {
  if (requests.empty()) return {};
  ensure_replicated();
  // One batch in flight at a time: the shard queues' reopen/close lifecycle
  // and the slot indices in flight belong to the current batch, so
  // overlapping batches must serialize here (the fan-out below is where
  // the parallelism lives).
  std::lock_guard<std::mutex> serve_lock(serve_mutex_);

  const std::size_t n = requests.size();
  std::vector<serve::AdvisorResponse> responses(n);

  // Cache pass (serial, cheap): hits fill their slots and skip evaluation
  // entirely; misses carry their canonical key to the shard for insertion.
  // With the cache off, keys are never built — the uncached hot path pays
  // nothing for the cache's existence.
  const bool caching = cache_.enabled();
  std::vector<std::size_t> miss;
  std::vector<std::string> miss_key;
  miss.reserve(n);
  miss_key.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string key = caching ? canonical_request_key(requests[i]) : std::string();
    if (!caching || !cache_.lookup(key, responses[i])) {
      miss.push_back(i);
      miss_key.push_back(std::move(key));
    }
  }

  if (!miss.empty()) {
    for (const auto& shard : shards_) shard->reopen();
    ResponseCache* cache = cache_.enabled() ? &cache_ : nullptr;
    const std::size_t lanes = shards_.size() + 1;

    // Lane 0 produces: route each miss to its shard's bounded queue; when a
    // queue is full, help by draining a batch (backpressure, and the reason
    // a 1-thread pool cannot deadlock). Lanes 1..N are the shard workers.
    core::parallel_for(pool_, lanes, [&](std::size_t lane) {
      if (lane == 0) {
        try {
          for (std::size_t j = 0; j < miss.size(); ++j) {
            const std::size_t i = miss[j];
            Shard& shard = *shards_[static_cast<std::size_t>(
                router_.shard_for(requests[i].arch))];
            RoutedRequest item;
            item.request = requests[i];
            item.slot = i;
            item.cache_key = std::move(miss_key[j]);
            item.enqueued = std::chrono::steady_clock::now();
            // A full queue converts the producer into a worker: drain one
            // batch, then retry the same (untouched-on-failure) item.
            while (!shard.try_enqueue(std::move(item)))
              shard.drain_one_batch(responses, cache);
          }
        } catch (...) {
          // A wedged producer must still release the workers: close every
          // queue so blocked pop_batch calls return, then rethrow through
          // the pool (parallel_for surfaces the first exception).
          for (const auto& shard : shards_) shard->close();
          throw;
        }
        for (const auto& shard : shards_) shard->close();
      } else {
        Shard& shard = *shards_[lane - 1];
        while (shard.drain_one_batch(responses, cache)) {
        }
      }
    });
  }

  std::lock_guard<std::mutex> lock(metrics_mutex_);
  queries_ += static_cast<long>(n);
  for (const auto& shard : shards_) shard->drain_latencies(latencies_ms_);
  // Bound the latency reservoir: a long-lived service must not grow a
  // sample per request forever. Keep the most recent window; percentiles
  // in metrics() describe it.
  constexpr std::size_t kLatencyWindow = 65536;
  if (latencies_ms_.size() > kLatencyWindow)
    latencies_ms_.erase(latencies_ms_.begin(),
                        latencies_ms_.end() - static_cast<std::ptrdiff_t>(kLatencyWindow));
  return responses;
}

ClusterMetrics ServingCluster::metrics() const {
  ClusterMetrics m;
  m.shards = static_cast<int>(shards_.size());
  m.shard_queries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    m.shard_queries.push_back(s.queries);
    m.batches += s.batches;
    m.size_flushes += s.size_flushes;
    m.deadline_flushes += s.deadline_flushes;
    m.close_flushes += s.close_flushes;
    if (shard->max_queue_depth() > m.max_queue_depth)
      m.max_queue_depth = shard->max_queue_depth();
  }
  m.cache_lookups = cache_.lookups();
  m.cache_hits = cache_.hits();
  m.cache_hit_rate =
      m.cache_lookups > 0
          ? static_cast<double>(m.cache_hits) / static_cast<double>(m.cache_lookups)
          : 0.0;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  m.queries = queries_;
  m.p50_latency_ms = percentile(latencies_ms_, 50.0);
  m.p99_latency_ms = percentile(latencies_ms_, 99.0);
  return m;
}

int ServingCluster::registry_fits() const {
  int total = primary_->fits();
  for (const auto& shard : shards_) total += shard->registry().fits();
  return total;
}

}  // namespace isr::cluster
