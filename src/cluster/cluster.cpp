#include "cluster/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "math/rng.hpp"

namespace isr::cluster {

namespace {

// Mirror AdvisorService's spr_base derivation: the SPR mapping must assume
// the sampling density the calibration corpus was rendered at.
void derive_spr_base(serve::ServiceConfig& service) {
  if (service.constants.spr_base <= 0.0)
    service.constants.spr_base = 0.93 * service.calibration.vr_samples;
}

// The replica/routing key: calibration fingerprint + the exact bit
// patterns of the mapping constants. Two corpora sharing a calibration but
// differing in constants (e.g. an explicit spr_base) predict differently,
// so they must select distinct shard replica entries — while still sharing
// the calibration's single fit.
std::uint64_t corpus_key_for(const serve::ServiceConfig& service,
                             std::uint64_t fingerprint) {
  std::uint64_t key = hash_seed(fingerprint, std::uint64_t{0xC0B905ull});
  const auto mix_double = [&key](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  };
  mix_double(service.constants.ap_fill);
  mix_double(service.constants.ppt);
  mix_double(service.constants.spr_base);
  return key;
}

// The shed refusal a client sees. Integer microseconds keep the message —
// and therefore the wire bytes — independent of floating-point formatting
// noise; the values themselves are deterministic in replay mode.
serve::AdvisorResponse shed_response(long estimated_us, long deadline_us) {
  serve::AdvisorResponse r;
  r.status = serve::AdvisorResponse::Status::kShed;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "shed: estimated completion in %ld us exceeds deadline %ld us",
                estimated_us, deadline_us);
  r.error = buf;
  return r;
}

// An availability failure's explicit wire answer: not shed (the request
// was admitted), not a validation error — the cluster could not evaluate
// it within its fault-tolerance budget. Clients see "degraded":true and a
// "degraded: ..." reason; these responses are never cached (a cache hit
// must stay a pure function of the request, and availability is not).
serve::AdvisorResponse degraded_response(const std::string& why) {
  serve::AdvisorResponse r;
  r.status = serve::AdvisorResponse::Status::kDegraded;
  r.error = "degraded: " + why;
  return r;
}

}  // namespace

ServingCluster::ServingCluster(ClusterConfig config,
                               std::shared_ptr<serve::ModelRegistry> primary)
    : config_(std::move(config)),
      primary_(primary ? std::move(primary) : std::make_shared<serve::ModelRegistry>()),
      router_(config_.shards > 0 ? config_.shards : 1,
              RouterOptions{/*replicas=*/64, config_.rebalance, config_.imbalance_ratio,
                            config_.rebalance_window > 0 ? config_.rebalance_window : 1,
                            /*min_hot_load=*/32.0}),
      faults_(config_.fault),
      epoch_(std::chrono::steady_clock::now()) {
  // Resolve the configured corpora up front: the default first (selector
  // ""), then each valid named corpus. Empty, "default", and duplicate
  // names are dropped — "" is reserved for the default corpus, "default"
  // is its metrics alias (a named reuse would emit colliding JSON keys),
  // and a duplicate would make resolution ambiguous (first writer wins,
  // like the registry's adopt). Resolution fixes names, fingerprints, and
  // keys only; the model bundles arrive lazily, on first query.
  derive_spr_base(config_.service);
  auto default_corpus = std::make_unique<CorpusState>();
  default_corpus->service = config_.service;
  default_corpus->fingerprint =
      serve::ModelRegistry::fingerprint(config_.service.calibration);
  default_corpus->corpus_key =
      corpus_key_for(default_corpus->service, default_corpus->fingerprint);
  corpora_.push_back(std::move(default_corpus));
  for (const CorpusConfig& named : config_.corpora) {
    if (named.name.empty() || named.name == "default" || resolve_corpus(named.name) >= 0)
      continue;
    auto state = std::make_unique<CorpusState>();
    state->name = named.name;
    state->service = named.service;
    derive_spr_base(state->service);
    state->fingerprint = serve::ModelRegistry::fingerprint(state->service.calibration);
    state->corpus_key = corpus_key_for(state->service, state->fingerprint);
    corpora_.push_back(std::move(state));
  }
  corpus_queries_ = std::make_unique<std::atomic<long>[]>(corpora_.size());
  // The cache is hard-partitioned per configured corpus, so its shape
  // depends on the corpus count resolved above.
  cache_ = std::make_unique<ResponseCache>(config_.cache_entries, config_.cache_ways,
                                           corpora_.size());

  const int n_shards = config_.shards > 0 ? config_.shards : 1;
  config_.shards = n_shards;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  // A batch can never outgrow the queue: the worker popping a FULL queue
  // must find an immediately poppable (kSize) batch, not wait out the
  // coalescing deadline while admitters block on a queue it won't drain.
  if (config_.batch_size > config_.queue_capacity)
    config_.batch_size = config_.queue_capacity;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.replay_service_us <= 0.0) config_.replay_service_us = 4.0;
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          config_.batch_deadline_ms > 0.0 ? config_.batch_deadline_ms : 0.0));
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>(s, config_.queue_capacity,
                                              config_.batch_size, deadline,
                                              config_.replay_service_us));
  backlog_end_us_.assign(static_cast<std::size_t>(n_shards), 0.0);

  // Fault-tolerance knobs, sanitized to their invariants.
  if (config_.retry_limit < 0) config_.retry_limit = 0;
  if (config_.retry_backoff_us < 0) config_.retry_backoff_us = 0;
  if (config_.retry_backoff_max_us < config_.retry_backoff_us)
    config_.retry_backoff_max_us = config_.retry_backoff_us;
  if (config_.watchdog_poll_us <= 0) config_.watchdog_poll_us = 1000;
  if (config_.health_recovery_polls < 1) config_.health_recovery_polls = 1;
  // make_unique value-initializes: every shard starts kHealthy (0), with a
  // zero suspect counter.
  health_ = std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(n_shards));
  suspect_ = std::make_unique<std::atomic<long>[]>(static_cast<std::size_t>(n_shards));
}

ServingCluster::~ServingCluster() {
  // Refit worker first: it touches corpora, the cache, and the primary
  // registry, all of which teardown is about to reclaim. Queued jobs are
  // drained (not dropped) so a shutdown race cannot silently eat a refit
  // a test already scheduled.
  {
    std::lock_guard<std::mutex> lock(refit_mutex_);
    refit_stop_ = true;
  }
  refit_cv_.notify_all();
  if (refit_worker_.joinable()) refit_worker_.join();
  // Watchdog next: a restart racing shard teardown must not happen. By
  // contract every session is closed before destruction, so no in-flight
  // work depends on the watchdog anymore.
  watchdog_stop_.store(true, std::memory_order_release);
  if (watchdog_.joinable()) watchdog_.join();
  // stop() closes each queue and joins its worker — a crashed one included.
  for (const auto& shard : shards_) shard->stop();
}

int ServingCluster::resolve_corpus(const std::string& name) const {
  // Linear scan: resident corpora are few (one per served machine
  // configuration), and the scan avoids a map the metrics would then have
  // to keep ordered anyway.
  if (name.empty()) return corpora_.empty() ? -1 : 0;
  for (std::size_t c = 1; c < corpora_.size(); ++c)
    if (corpora_[c]->name == name) return static_cast<int>(c);
  return -1;
}

std::uint64_t ServingCluster::corpus_fingerprint(const std::string& name) const {
  const int idx = resolve_corpus(name);
  return idx < 0 ? 0 : corpora_[static_cast<std::size_t>(idx)]->fingerprint;
}

void ServingCluster::ensure_serving() {
  std::lock_guard<std::mutex> lock(serving_mutex_);
  if (serving_) return;
  // No fitting happens here anymore: residency is lazy, paid by the first
  // query naming each corpus (ensure_corpus_resident). Workers can start
  // immediately — every admitted item carries its own pinned bundle, so a
  // worker never needs model state the admission path did not resolve.
  // Each shard owns its supervised worker; transient failures flow back
  // through redeliver(), and the watchdog handles crashes and stalls.
  ResponseCache* cache = cache_->enabled() ? cache_.get() : nullptr;
  core::FaultInjector* faults = faults_.armed() ? &faults_ : nullptr;
  for (const auto& shard : shards_)
    shard->start(
        cache, faults,
        [this](std::vector<StreamItem>&& items, int from) {
          redeliver(std::move(items), from);
        },
        config_.trace);
  watchdog_stop_.store(false, std::memory_order_release);
  watchdog_ = std::thread([this] { watchdog_loop(); });
  refit_stop_ = false;
  refit_worker_ = std::thread([this] { refit_loop(); });
  serving_ = true;
}

bool ServingCluster::ensure_corpus_resident(std::size_t idx) {
  CorpusState& corpus = *corpora_[idx];
  // Fast path: one relaxed-ish load on every admission. acquire pairs with
  // the release store below so a resident corpus's bundle is visible.
  int state = corpus.residency.load(std::memory_order_acquire);
  if (state == CorpusState::kResident) return true;
  if (state == CorpusState::kFitFailed) return false;
  std::lock_guard<std::mutex> lock(fit_mutex_);
  state = corpus.residency.load(std::memory_order_acquire);
  if (state != CorpusState::kEmpty) return state == CorpusState::kResident;
  // First touch: walk the same deterministic fit-failure retry ladder the
  // eager path used, keyed on (fingerprint, attempt) — pure hash
  // decisions, so lazy and eager runs fail the same corpora the same way.
  // The registry dedups by fingerprint, so a corpus sharing an
  // already-fitted calibration becomes resident without a second study.
  bool fitted = false;
  for (int attempt = 0; attempt <= config_.retry_limit && !fitted; ++attempt) {
    if (faults_.should_fire(core::FaultSite::kCorpusFitFail, corpus.fingerprint,
                            static_cast<std::uint64_t>(attempt)))
      continue;
    try {
      serve::BundlePtr bundle = primary_->bundle_for(corpus.service.calibration);
      std::atomic_store(&corpus.bundle, std::move(bundle));
      fitted = true;
    } catch (const std::exception&) {
      // Real fit failure: retry — transient by assumption until the
      // budget says otherwise.
    }
  }
  if (!fitted) {
    corpus.residency.store(CorpusState::kFitFailed, std::memory_order_release);
    return false;
  }
  lazy_fits_.fetch_add(1, std::memory_order_relaxed);
  corpus.residency.store(CorpusState::kResident, std::memory_order_release);
  return true;
}

StreamSession ServingCluster::open_stream() {
  ensure_serving();
  std::lock_guard<std::mutex> lock(admission_mutex_);
  auto state = std::make_shared<SessionState>(next_stream_id_++);
  ++streams_;
  return StreamSession(this, std::move(state));
}

void ServingCluster::admit(const std::shared_ptr<SessionState>& session, std::size_t slot,
                           const serve::AdvisorRequest& request) {
  // Everything that is a pure function of the request is prepared BEFORE
  // any lock: the queue item's request copy (string allocations) and the
  // canonical cache key (formatting + hashing). Concurrent producers pay
  // only the slim order-dependent section serially — that is what lets N
  // streams outrun one. The error paths (unknown corpus, cache hit, shed)
  // discard the prepared item; they are the rare paths, and pessimizing
  // them keeps the admitted path minimal.
  StreamItem item;
  item.request = request;
  item.session = session;
  item.slot = slot;
  item.priority = std::max(0, std::min(7, request.priority));
  item.enqueued = std::chrono::steady_clock::now();
  // The canonical key lives in a thread-local buffer for exactly this
  // admission: the lookup reads it and nothing else keeps it (the drain
  // worker rebuilds the key itself), so the hot path never heap-allocates
  // for the cache, hit or miss.
  static thread_local std::string cache_key;
  if (cache_->enabled()) canonical_request_key_into(request, cache_key);

  // Record/replay are correctness modes: the whole admission serializes
  // under the lock so the schedule captures (or pins) every submission,
  // cache hits included. Both flags are set before streams open, so a
  // relaxed read is stable for the run.
  if (replaying_.load(std::memory_order_relaxed) ||
      recording_.load(std::memory_order_relaxed)) {
    admit_serialized(session, slot, request, std::move(item), cache_key);
    return;
  }

  // Derived from the enqueue timestamp captured above — one clock read per
  // admission, and the shed estimate can never postdate the queue span.
  const std::int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                                  item.enqueued - epoch_)
                                  .count();
  queries_.fetch_add(1, std::memory_order_relaxed);
  // Live tracing on this path (wall microseconds since the recorder's
  // epoch); the serialized path below owns the virtual-clock variant. The
  // admit instant reuses the item's enqueue timestamp so it can never
  // postdate the queue span the worker will stamp from the same clock.
  obs::TraceRecorder* const tr = config_.trace;
  const bool tracing = tr && tr->enabled() && !tr->virtual_clock();
  const auto trace_instant = [&](const char* name, const char* note,
                                 std::int64_t ts) {
    obs::TraceEvent e{};
    e.name = name;
    e.cat = "req";
    e.phase = 'i';
    e.note = note;
    e.ts_us = ts;
    e.stream = session->id();
    e.seq = slot;
    tr->record(e);
  };
  if (tracing) trace_instant("admit", nullptr, tr->since_epoch_us(item.enqueued));
  // corpora_ is immutable after construction; resolution needs no lock.
  const int corpus_idx = resolve_corpus(request.corpus);
  if (corpus_idx < 0) {
    unknown_corpus_queries_.fetch_add(1, std::memory_order_relaxed);
    serve::AdvisorResponse r;
    r.status = serve::AdvisorResponse::Status::kError;
    r.error =
        "unknown corpus \"" + request.corpus + "\" (not resident on this cluster)";
    // All four live-path deliver instants are recorded BEFORE the session
    // handoff (matching the serialized path and the shard worker): once a
    // request's future resolves, its whole chain is in the rings, so an
    // exporter woken by the delivery never reads a half-written chain.
    if (tracing) trace_instant("deliver", "unknown-corpus", tr->now_us());
    session->deliver(slot, std::move(r));
    return;
  }
  corpus_queries_[static_cast<std::size_t>(corpus_idx)].fetch_add(
      1, std::memory_order_relaxed);
  CorpusState& corpus = *corpora_[static_cast<std::size_t>(corpus_idx)];
  // Lazy residency: the first query naming a corpus pays its fit here
  // (one-time, serialized under fit_mutex_); every later query is one
  // atomic load. Then pin the CURRENT bundle into the item — from here on
  // the request is bound to this epoch, whatever a concurrent refit does.
  if (!ensure_corpus_resident(static_cast<std::size_t>(corpus_idx))) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace_instant("deliver", "degraded", tr->now_us());
    session->deliver(slot, degraded_response(
                               "corpus \"" +
                               (corpus.name.empty() ? std::string("default")
                                                    : corpus.name) +
                               "\" unavailable: calibration fit failed"));
    return;
  }
  item.bundle = std::atomic_load(&corpus.bundle);
  item.constants = &corpus.service.constants;
  item.corpus_index = corpus_idx;

  // Cache before routing and before the deadline check: a hit costs no
  // queue time, so shedding it would refuse work the cluster can do for
  // free — and the canonical key excludes deadline/priority, so a hurried
  // request hits entries its relaxed twin populated. The probe is scoped
  // to the corpus's partition and the PINNED epoch, so a hit is exactly
  // the bytes this epoch's evaluation would produce. The cache is
  // internally lock-sharded; probing it needs no admission lock.
  if (cache_->enabled()) {
    const std::int64_t probe_begin_us = tracing ? tr->now_us() : 0;
    serve::AdvisorResponse hit;
    const bool was_hit = cache_->lookup(static_cast<std::size_t>(corpus_idx),
                                        item.bundle->epoch, cache_key, hit);
    if (tracing) {
      obs::TraceEvent probe{};
      probe.name = "cache-probe";
      probe.cat = "req";
      probe.phase = 'X';
      probe.ts_us = probe_begin_us;
      probe.dur_us = tr->now_us() - probe_begin_us;
      probe.stream = session->id();
      probe.seq = slot;
      probe.values = 1;
      probe.v0 = was_hit ? 1 : 0;
      tr->record(probe);
    }
    if (was_hit) {
      if (tracing) trace_instant("deliver", "cache-hit", tr->now_us());
      session->deliver(slot, std::move(hit));
      return;
    }
  }

  std::size_t shard_idx = 0;
  bool routed_around_down = false;
  {
    std::unique_lock<std::mutex> lock(admission_mutex_);
    shard_idx = static_cast<std::size_t>(router_.route(corpus.corpus_key, request.arch));
    // Failover routing: a shard whose worker is down (crash detected, not
    // yet restarted) is skipped in favor of the first live shard in the
    // key's deterministic rendezvous order. Placement never changes bytes;
    // this only keeps fresh admissions off a queue nobody is draining.
    if (health(shard_idx) == ShardHealth::kDown) {
      for (const int s : router_.rendezvous_order(corpus.corpus_key, request.arch)) {
        if (health(static_cast<std::size_t>(s)) != ShardHealth::kDown) {
          shard_idx = static_cast<std::size_t>(s);
          failovers_.fetch_add(1, std::memory_order_relaxed);
          routed_around_down = true;
          break;
        }
      }
    }

    // Deadline-aware admission control, the Horvitz & Lengyel budget
    // framing applied to queueing: each shard's backlog_end is the virtual
    // time its queue drains at; if this request would complete past its
    // deadline, refuse it NOW with an explicit shed response instead of
    // letting it rot in the queue. Admitted work advances the backlog,
    // charged at the shard's measured EWMA — and an earliest start no
    // sooner than the shard's MEASURED queue wait (the stage histogram's
    // EWMA), so the estimate reflects real queue time, not just the
    // virtual backlog arithmetic.
    const double service_us = shards_[shard_idx]->service_estimate_us();
    const double wait_us = shards_[shard_idx]->queue_wait_estimate_us();
    double& backlog = backlog_end_us_[shard_idx];
    const double start_us =
        std::max(backlog, static_cast<double>(now_us) + wait_us);
    const double done_us = start_us + service_us;
    if (request.deadline_us > 0 &&
        done_us - static_cast<double>(now_us) > static_cast<double>(request.deadline_us)) {
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      if (tracing) {
        obs::TraceEvent shed{};
        shed.name = "shed";
        shed.cat = "req";
        shed.phase = 'i';
        shed.note = "deadline";
        shed.ts_us = tr->now_us();
        shed.stream = session->id();
        shed.seq = slot;
        shed.values = 2;
        shed.v0 = static_cast<std::int64_t>(done_us) - now_us;
        shed.v1 = request.deadline_us;
        tr->record(shed);
      }
      session->deliver(slot, shed_response(static_cast<long>(done_us) - now_us,
                                           request.deadline_us));
      return;
    }
    backlog = done_us;
    item.admit_seq = admit_seq_++;
  }
  if (tracing && routed_around_down)
    trace_instant("failover", "admission", tr->now_us());

  item.corpus_key = corpus.corpus_key;
  if (request.deadline_us > 0) item.deadline_at_us = now_us + request.deadline_us;
  // Blocking bounded push OUTSIDE the admission lock: backpressure from a
  // full queue stalls this admitter only. Everything order-dependent
  // (shed accounting, admit_seq) is already fixed, and the ordered queue
  // serves by key, so arrival order cannot change results. A false return
  // means shutdown raced this admission — the queue will never drain the
  // item, so answer it here or close() would hang on the owed slot.
  if (!shards_[shard_idx]->enqueue(std::move(item))) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace_instant("deliver", "degraded", tr->now_us());
    session->deliver(slot, degraded_response("cluster shut down before evaluation"));
  }
}

// The record/replay admission path: one lock over the whole decision so
// the schedule is a faithful serialization of every submission. Replay
// blocks each submission until the schedule reaches its (stream, seq) —
// what pins the interleaving — and substitutes the recorded virtual
// timestamp and the fixed replay service cost, making shed decisions a
// pure function of (schedule, requests).
void ServingCluster::admit_serialized(const std::shared_ptr<SessionState>& session,
                                      std::size_t slot,
                                      const serve::AdvisorRequest& request,
                                      StreamItem&& item, const std::string& cache_key) {
  std::unique_lock<std::mutex> lock(admission_mutex_);

  std::int64_t now_us = 0;
  if (replaying_.load(std::memory_order_relaxed)) {
    replay_cv_.wait(lock, [&] {
      return replay_cursor_ >= replay_.size() ||
             (replay_[replay_cursor_].stream == session->id() &&
              replay_[replay_cursor_].seq == slot);
    });
    if (replay_cursor_ >= replay_.size())
      throw std::runtime_error(
          "replay: admission schedule exhausted (submission not in the recording)");
    now_us = replay_[replay_cursor_].t_us;
    ++replay_cursor_;
    replay_cv_.notify_all();
  } else {
    now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                 std::chrono::steady_clock::now() - epoch_)
                 .count();
  }
  if (recording_.load(std::memory_order_relaxed))
    recorded_.push_back({session->id(), slot, now_us});

  // Tracing on the serialized path. Under a virtual-clock recorder
  // (replay), EVERY event of this request's chain is emitted here, from
  // the schedule's virtual timestamps and the backlog arithmetic, on a
  // per-stream lane — a pure function of (schedule, requests), so the
  // exported trace is byte-identical across fresh clusters (the workers
  // stay silent; shard.cpp suppresses live emission when the clock is
  // virtual). A live-clock recorder (recording mode) just stamps the
  // admit instant; the workers trace the rest as usual.
  obs::TraceRecorder* const tr = config_.trace;
  const bool tracing = tr && tr->enabled();
  const bool virt = tracing && tr->virtual_clock();
  const std::uint32_t lane = static_cast<std::uint32_t>(session->id() + 1);
  const auto trace_instant = [&](const char* name, const char* note,
                                 std::int64_t ts) {
    obs::TraceEvent e{};
    e.name = name;
    e.cat = "req";
    e.phase = 'i';
    e.note = note;
    e.ts_us = ts;
    if (virt) e.tid = lane;
    e.stream = session->id();
    e.seq = slot;
    tr->record(e);
  };
  if (tracing)
    trace_instant("admit", nullptr, virt ? now_us : tr->since_epoch_us(item.enqueued));

  queries_.fetch_add(1, std::memory_order_relaxed);
  const int corpus_idx = resolve_corpus(request.corpus);
  if (corpus_idx < 0) {
    unknown_corpus_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing)
      trace_instant("deliver", "unknown-corpus", virt ? now_us : tr->now_us());
    lock.unlock();
    serve::AdvisorResponse r;
    r.status = serve::AdvisorResponse::Status::kError;
    r.error =
        "unknown corpus \"" + request.corpus + "\" (not resident on this cluster)";
    session->deliver(slot, std::move(r));
    return;
  }
  corpus_queries_[static_cast<std::size_t>(corpus_idx)].fetch_add(
      1, std::memory_order_relaxed);
  CorpusState& corpus = *corpora_[static_cast<std::size_t>(corpus_idx)];
  // Same lazy-residency + epoch-pinning sequence as the live path; the
  // serialized path just runs it under the admission lock, so a recorded
  // schedule's first-query fit lands at a deterministic point in the
  // admission order.
  if (!ensure_corpus_resident(static_cast<std::size_t>(corpus_idx))) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace_instant("deliver", "degraded", virt ? now_us : tr->now_us());
    lock.unlock();
    session->deliver(slot, degraded_response(
                               "corpus \"" +
                               (corpus.name.empty() ? std::string("default")
                                                    : corpus.name) +
                               "\" unavailable: calibration fit failed"));
    return;
  }
  item.bundle = std::atomic_load(&corpus.bundle);
  item.constants = &corpus.service.constants;
  item.corpus_index = corpus_idx;

  if (cache_->enabled()) {
    serve::AdvisorResponse hit;
    if (cache_->lookup(static_cast<std::size_t>(corpus_idx), item.bundle->epoch,
                       cache_key, hit)) {
      if (tracing) trace_instant("deliver", "cache-hit", virt ? now_us : tr->now_us());
      lock.unlock();
      session->deliver(slot, std::move(hit));
      return;
    }
  }

  std::size_t shard_idx = static_cast<std::size_t>(
      router_.route(corpus.corpus_key, request.arch));
  if (health(shard_idx) == ShardHealth::kDown) {
    for (const int s : router_.rendezvous_order(corpus.corpus_key, request.arch)) {
      if (health(static_cast<std::size_t>(s)) != ShardHealth::kDown) {
        shard_idx = static_cast<std::size_t>(s);
        failovers_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
  const double service_us = replaying_.load(std::memory_order_relaxed)
                                ? config_.replay_service_us
                                : shards_[shard_idx]->service_estimate_us();
  double& backlog = backlog_end_us_[shard_idx];
  const double start_us = std::max(backlog, static_cast<double>(now_us));
  const double done_us = start_us + service_us;
  if (request.deadline_us > 0 &&
      done_us - static_cast<double>(now_us) > static_cast<double>(request.deadline_us)) {
    shed_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) {
      obs::TraceEvent shed{};
      shed.name = "shed";
      shed.cat = "req";
      shed.phase = 'i';
      shed.note = "deadline";
      shed.ts_us = virt ? now_us : tr->now_us();
      if (virt) shed.tid = lane;
      shed.stream = session->id();
      shed.seq = slot;
      shed.values = 2;
      shed.v0 = static_cast<std::int64_t>(done_us) - now_us;
      shed.v1 = request.deadline_us;
      tr->record(shed);
    }
    lock.unlock();
    session->deliver(slot, shed_response(static_cast<long>(done_us) - now_us,
                                         request.deadline_us));
    return;
  }
  backlog = done_us;

  if (virt) {
    // The admitted request's remaining virtual chain: it waits in the
    // queue until the shard's virtual backlog reaches it, evaluates for
    // the fixed replay service cost, and delivers at its virtual
    // completion. Truncation is monotone (floor(a) <= floor(b) for
    // a <= b), so the spans can never disorder.
    const std::int64_t q_start = now_us;
    const std::int64_t e_start = static_cast<std::int64_t>(start_us);
    const std::int64_t e_end = static_cast<std::int64_t>(done_us);
    obs::TraceEvent queue_span{};
    queue_span.name = "queue";
    queue_span.cat = "req";
    queue_span.phase = 'X';
    queue_span.ts_us = q_start;
    queue_span.dur_us = e_start - q_start;
    queue_span.tid = lane;
    queue_span.stream = session->id();
    queue_span.seq = slot;
    tr->record(queue_span);
    obs::TraceEvent eval_span = queue_span;
    eval_span.name = "eval";
    eval_span.ts_us = e_start;
    eval_span.dur_us = e_end - e_start;
    tr->record(eval_span);
    trace_instant("deliver", nullptr, e_end);
  }

  item.corpus_key = corpus.corpus_key;
  if (request.deadline_us > 0) item.deadline_at_us = now_us + request.deadline_us;
  item.admit_seq = admit_seq_++;
  Shard& shard = *shards_[shard_idx];
  lock.unlock();
  if (!shard.enqueue(std::move(item))) {
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing && !virt) trace_instant("deliver", "degraded", tr->now_us());
    session->deliver(slot, degraded_response("cluster shut down before evaluation"));
  }
}

void ServingCluster::kick_all() {
  for (const auto& shard : shards_) shard->kick();
}

void ServingCluster::redeliver(std::vector<StreamItem>&& items, int from_shard) {
  if (items.empty()) return;
  // Note the failure burst against the source shard; the watchdog turns it
  // into a degraded health mark on its next poll.
  suspect_[static_cast<std::size_t>(from_shard)].fetch_add(1, std::memory_order_relaxed);
  const bool replaying = replaying_.load(std::memory_order_relaxed);
  // Retry/failover annotations are live-trace only: under a virtual clock
  // the admission path already emitted each request's deterministic chain,
  // and wall-clocked retry instants would break its byte reproducibility.
  obs::TraceRecorder* const tr = config_.trace;
  const bool tracing = tr && tr->enabled() && !tr->virtual_clock();
  const auto trace_instant = [&](const StreamItem& item, const char* name,
                                 const char* note) {
    obs::TraceEvent e{};
    e.name = name;
    e.cat = "req";
    e.phase = 'i';
    e.note = note;
    e.ts_us = tr->now_us();
    e.stream = item.session->id();
    e.seq = item.slot;
    tr->record(e);
  };
  const auto degrade_exhausted = [&](StreamItem& item) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "retry budget exhausted after %d attempts",
                  config_.retry_limit + 1);
    degraded_queries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace_instant(item, "deliver", "degraded");
    item.session->deliver(item.slot, degraded_response(buf));
  };
  for (StreamItem& item : items) {
    // Retry budget first: an item that already triggered retry_limit + 1
    // faults degrades with a deterministic message (a pure function of the
    // config, so fixed-seed runs reproduce it byte for byte).
    if (item.attempt > config_.retry_limit) {
      degrade_exhausted(item);
      continue;
    }
    // Per-request timeout: a re-driven item whose absolute deadline already
    // passed degrades now rather than queueing again. Live mode only — the
    // wall clock is not part of a replayed schedule, and replay's
    // byte-identity contract outranks timeliness.
    if (!replaying &&
        item.deadline_at_us != std::numeric_limits<std::int64_t>::max()) {
      const std::int64_t now_us =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - epoch_)
              .count();
      if (now_us > item.deadline_at_us) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        degraded_queries_.fetch_add(1, std::memory_order_relaxed);
        if (tracing) trace_instant(item, "deliver", "timeout");
        item.session->deliver(item.slot,
                              degraded_response("deadline exceeded during retry"));
        continue;
      }
    }
    // Bounded exponential backoff before the re-drive: attempt k waits
    // min(base << (k-1), max). The shift is clamped so a pathological
    // retry_limit cannot overflow.
    if (item.attempt > 0 && config_.retry_backoff_us > 0) {
      const int shift = item.attempt - 1 < 16 ? item.attempt - 1 : 16;
      long backoff_us = config_.retry_backoff_us << shift;
      if (backoff_us > config_.retry_backoff_max_us)
        backoff_us = config_.retry_backoff_max_us;
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (tracing) trace_instant(item, "retry", nullptr);
    // Failover target: the first live shard other than the one that failed
    // the item, walking the key's deterministic rendezvous order — the
    // same permutation hot-key splitting uses, so a key's retry placement
    // is as stable as its routing.
    int target = -1;
    for (const int s : router_.rendezvous_order(item.corpus_key, item.request.arch)) {
      if (s == from_shard) continue;
      if (health(static_cast<std::size_t>(s)) == ShardHealth::kDown) continue;
      target = s;
      break;
    }
    const std::uint64_t item_stream = item.session->id();
    const std::uint64_t item_seq = item.slot;
    if (target >= 0 &&
        shards_[static_cast<std::size_t>(target)]->try_enqueue(std::move(item))) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      if (tracing) {
        obs::TraceEvent e{};
        e.name = "failover";
        e.cat = "req";
        e.phase = 'i';
        e.ts_us = tr->now_us();
        e.stream = item_stream;
        e.seq = item_seq;
        e.values = 1;
        e.v0 = target;
        tr->record(e);
      }
      // Flush promptly: the re-driven item may be a closing stream's last
      // owed slot, past its kick.
      shards_[static_cast<std::size_t>(target)]->kick();
      continue;
    }
    // No live alternative (single shard, every sibling down) or the target
    // queue is full/closed — try_enqueue left the item untouched. Evaluate
    // inline on the failing shard's replica set: never blocks (a blocking
    // push from worker/watchdog context could deadlock shards against each
    // other), and the response is the normal pure bytes, because WHO
    // evaluates never matters. WHETHER it fails still must: the inline
    // path walks the same deterministic fault ladder the supervised worker
    // would have — crash site first, then eval-throw, each consuming the
    // attempt — or a transiently unreachable sibling would let a request
    // dodge its scheduled failures and break same-seed byte identity. A
    // crash firing here cannot kill a worker (this is watchdog or sibling-
    // worker context); both sites are just transient failures.
    for (;;) {
      if (item.attempt > config_.retry_limit) {
        degrade_exhausted(item);
        break;
      }
      const std::uint64_t stream = item.session->id();
      const auto attempt = static_cast<std::uint64_t>(item.attempt);
      if (faults_.armed() &&
          (faults_.should_fire(core::FaultSite::kWorkerCrash, stream, item.slot,
                               attempt) ||
           faults_.should_fire(core::FaultSite::kShardEvalThrow, stream, item.slot,
                               attempt))) {
        item.attempt += 1;
        retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      serve::AdvisorResponse r =
          shards_[static_cast<std::size_t>(from_shard)]->evaluate(item);
      if (tracing) trace_instant(item, "deliver", "inline-eval");
      item.session->deliver(item.slot, std::move(r));
      break;
    }
  }
}

void ServingCluster::watchdog_loop() {
  const std::size_t n = shards_.size();
  // Watchdog-local history: last observed heartbeat/suspect count and the
  // consecutive-clean-poll streak per shard. No other thread needs them.
  std::vector<std::uint64_t> last_beat(n, 0);
  std::vector<long> last_suspect(n, 0);
  std::vector<int> clean(n, 0);
  while (!watchdog_stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(config_.watchdog_poll_us));
    for (std::size_t s = 0; s < n; ++s) {
      Shard& shard = *shards_[s];
      if (shard.worker_down()) {
        // Crash: down while nobody drains the queue (admission routes
        // around), reclaim the corpse, restart, re-drive the batch it
        // held. The shard resumes degraded and earns healthy back through
        // clean polls.
        health_[s].store(static_cast<int>(ShardHealth::kDown),
                         std::memory_order_relaxed);
        worker_restarts_.fetch_add(1, std::memory_order_relaxed);
        std::vector<StreamItem> held = shard.take_inflight();
        shard.restart();
        health_[s].store(static_cast<int>(ShardHealth::kDegraded),
                         std::memory_order_relaxed);
        clean[s] = 0;
        last_beat[s] = shard.heartbeat();
        last_suspect[s] = suspect_[s].load(std::memory_order_relaxed);
        if (!held.empty()) redeliver(std::move(held), static_cast<int>(s));
        continue;
      }
      const std::uint64_t beat = shard.heartbeat();
      const bool advanced = beat != last_beat[s];
      last_beat[s] = beat;
      const long suspect = suspect_[s].load(std::memory_order_relaxed);
      const bool newly_suspect = suspect != last_suspect[s];
      last_suspect[s] = suspect;
      // Stalled = heartbeat frozen WITH work pending; an idle worker parked
      // on an empty queue legitimately stops beating.
      const bool stalled =
          !advanced && (shard.queue_depth() > 0 || shard.has_inflight());
      const int current = health_[s].load(std::memory_order_relaxed);
      if (stalled || newly_suspect) {
        if (current == static_cast<int>(ShardHealth::kHealthy))
          health_[s].store(static_cast<int>(ShardHealth::kDegraded),
                           std::memory_order_relaxed);
        clean[s] = 0;
      } else if (current == static_cast<int>(ShardHealth::kDegraded)) {
        if (++clean[s] >= config_.health_recovery_polls) {
          health_[s].store(static_cast<int>(ShardHealth::kHealthy),
                           std::memory_order_relaxed);
          clean[s] = 0;
        }
      }
    }
  }
}

void ServingCluster::refit_loop() {
  for (;;) {
    RefitJob job;
    {
      std::unique_lock<std::mutex> lock(refit_mutex_);
      refit_cv_.wait(lock, [this] { return refit_stop_ || !refit_queue_.empty(); });
      // Stop drains the queue first: a refit a test scheduled before
      // shutdown still completes, making "schedule then destroy"
      // deterministic.
      if (refit_queue_.empty()) return;
      job = refit_queue_.front();
      refit_queue_.pop_front();
      refit_busy_ = true;
    }
    run_refit(job);
    {
      std::lock_guard<std::mutex> lock(refit_mutex_);
      refit_busy_ = false;
    }
    refit_idle_cv_.notify_all();
  }
}

void ServingCluster::run_refit(const RefitJob& job) {
  CorpusState& corpus = *corpora_[job.corpus];
  if (corpus.residency.load(std::memory_order_acquire) != CorpusState::kResident)
    return;  // raced a fit failure; nothing to refit
  const serve::BundlePtr before = std::atomic_load(&corpus.bundle);
  if (!before) return;
  if (job.drift) {
    // The drift study: one reduced calibration pass whose seed is a pure
    // function of (calibration seed, the epoch being superseded) — so a
    // fixed recalibration schedule appends identical observations in every
    // run, and the refit below is bit-reproducible. run_study spreads the
    // renders over the existing core::ThreadPool.
    model::StudyConfig drift = corpus.service.calibration;
    drift.seed = hash_seed(hash_seed(drift.seed, before->epoch),
                           std::uint64_t{0xD21F7ull});
    drift.samples_per_config = 1;
    try {
      primary_->append_observations(corpus.fingerprint, model::run_study(drift));
    } catch (const std::exception&) {
      return;  // a drift study that cannot run leaves the epoch unchanged
    }
  }
  const serve::BundlePtr fresh = primary_->refit(corpus.fingerprint);
  if (!fresh) return;
  // Swap the fresh epoch into EVERY resident corpus sharing the
  // fingerprint (they share the one fit, so they advance together), then
  // sweep exactly those corpora's cache partitions of pre-swap entries.
  // In-flight items keep their pinned `before` bundle; new admissions pin
  // `fresh`.
  for (std::size_t c = 0; c < corpora_.size(); ++c) {
    CorpusState& other = *corpora_[c];
    if (other.fingerprint != corpus.fingerprint) continue;
    if (other.residency.load(std::memory_order_acquire) != CorpusState::kResident)
      continue;
    std::atomic_store(&other.bundle, fresh);
    if (cache_->enabled())
      epoch_invalidations_.fetch_add(
          static_cast<long>(cache_->invalidate_stale(c, fresh->epoch)),
          std::memory_order_relaxed);
  }
  // Scope annotation (live traces only — a wall-clocked swap instant would
  // break a virtual trace's reproducibility): which corpus swapped, to
  // what epoch.
  obs::TraceRecorder* const tr = config_.trace;
  if (tr && tr->enabled() && !tr->virtual_clock()) {
    obs::TraceEvent e{};
    e.name = "refit-swap";
    e.cat = "cluster";
    e.phase = 'i';
    e.ts_us = tr->now_us();
    e.stream = corpus.fingerprint;
    e.values = 1;
    e.v0 = static_cast<std::int64_t>(fresh->epoch);
    tr->record(e);
  }
}

bool ServingCluster::append_observations(const std::string& name,
                                         std::vector<model::Observation> observations) {
  const int idx = resolve_corpus(name);
  if (idx < 0) return false;
  if (!ensure_corpus_resident(static_cast<std::size_t>(idx))) return false;
  return primary_->append_observations(
      corpora_[static_cast<std::size_t>(idx)]->fingerprint, std::move(observations));
}

std::uint64_t ServingCluster::refit(const std::string& name) {
  const int idx = resolve_corpus(name);
  if (idx < 0) return 0;
  ensure_serving();  // the refit worker must exist to drain the queue
  if (!ensure_corpus_resident(static_cast<std::size_t>(idx))) return 0;
  const serve::BundlePtr current =
      std::atomic_load(&corpora_[static_cast<std::size_t>(idx)]->bundle);
  {
    std::lock_guard<std::mutex> lock(refit_mutex_);
    refit_queue_.push_back({static_cast<std::size_t>(idx), /*drift=*/false});
  }
  refit_cv_.notify_one();
  return current->epoch + 1;
}

std::uint64_t ServingCluster::recalibrate(const std::string& name) {
  const int idx = resolve_corpus(name);
  if (idx < 0) return 0;
  ensure_serving();
  if (!ensure_corpus_resident(static_cast<std::size_t>(idx))) return 0;
  const serve::BundlePtr current =
      std::atomic_load(&corpora_[static_cast<std::size_t>(idx)]->bundle);
  {
    std::lock_guard<std::mutex> lock(refit_mutex_);
    refit_queue_.push_back({static_cast<std::size_t>(idx), /*drift=*/true});
  }
  refit_cv_.notify_one();
  return current->epoch + 1;
}

void ServingCluster::wait_refits() {
  std::unique_lock<std::mutex> lock(refit_mutex_);
  refit_idle_cv_.wait(lock, [this] { return refit_queue_.empty() && !refit_busy_; });
}

std::uint64_t ServingCluster::bundle_epoch(const std::string& name) const {
  const int idx = resolve_corpus(name);
  if (idx < 0) return 0;
  const serve::BundlePtr bundle =
      std::atomic_load(&corpora_[static_cast<std::size_t>(idx)]->bundle);
  return bundle ? bundle->epoch : 0;
}

std::uint64_t StreamSession::submit(const serve::AdvisorRequest& request) {
  if (!state_) throw std::logic_error("StreamSession: submit on a closed session");
  const std::size_t slot = state_->allocate_slot();
  cluster_->admit(state_, slot, request);
  return slot;
}

std::vector<serve::AdvisorResponse> StreamSession::close() {
  if (!state_) return {};
  // Flush partial shard batches so the tail is answered promptly, then
  // wait out every owed slot. The state_ reset is what marks the handle
  // spent; in-flight items (there are none by now) share ownership.
  cluster_->kick_all();
  std::vector<serve::AdvisorResponse> responses = state_->wait_drained();
  state_.reset();
  cluster_ = nullptr;
  return responses;
}

std::vector<serve::AdvisorResponse> ServingCluster::serve_batch(
    const std::vector<serve::AdvisorRequest>& requests) {
  // A batch of zero answerable requests (e.g. every line of a JSONL batch
  // failed to parse) must not pay for a calibration fit.
  if (requests.empty()) return {};
  StreamSession session = open_stream();
  for (const serve::AdvisorRequest& request : requests) session.submit(request);
  return session.close();
}

void ServingCluster::enable_recording() {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  recording_ = true;
}

AdmissionSchedule ServingCluster::take_recording() {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  AdmissionSchedule out = std::move(recorded_);
  recorded_.clear();
  return out;
}

void ServingCluster::begin_replay(AdmissionSchedule schedule) {
  std::lock_guard<std::mutex> lock(admission_mutex_);
  replay_ = std::move(schedule);
  replay_cursor_ = 0;
  replaying_ = true;
  // Replay's virtual clock restarts with the schedule; so must the shed
  // accounting that consumes it.
  std::fill(backlog_end_us_.begin(), backlog_end_us_.end(), 0.0);
}

ClusterMetrics ServingCluster::metrics() const {
  ClusterMetrics m;
  m.shards = static_cast<int>(shards_.size());
  m.shard_queries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    m.shard_queries.push_back(s.queries);
    m.batches += s.batches;
    m.size_flushes += s.size_flushes;
    m.deadline_flushes += s.deadline_flushes;
    m.kick_flushes += s.kick_flushes;
    m.close_flushes += s.close_flushes;
    m.eval_exceptions += s.eval_exceptions;
    if (shard->max_queue_depth() > m.max_queue_depth)
      m.max_queue_depth = shard->max_queue_depth();
  }
  m.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  m.failovers = failovers_.load(std::memory_order_relaxed);
  m.retries = retries_.load(std::memory_order_relaxed);
  m.timeouts = timeouts_.load(std::memory_order_relaxed);
  m.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  m.faults_injected = faults_.total_fired();
  m.shard_health.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s)
    m.shard_health.emplace_back(shard_health_name(health(s)));
  m.rebalanced_queries = router_.rebalanced();
  m.cache_lookups = cache_->lookups();
  m.cache_hits = cache_->hits();
  m.cache_hit_rate =
      m.cache_lookups > 0
          ? static_cast<double>(m.cache_hits) / static_cast<double>(m.cache_lookups)
          : 0.0;
  // The admission counters are atomics (the live fast path bumps them
  // outside any lock); only the router's hot-key scan needs the admission
  // lock, because route() mutates the load counters under it.
  m.queries = queries_.load(std::memory_order_relaxed);
  m.corpus_queries.reserve(corpora_.size());
  m.bundle_epoch.reserve(corpora_.size());
  for (std::size_t c = 0; c < corpora_.size(); ++c) {
    m.corpus_queries.emplace_back(corpora_[c]->name,
                                  corpus_queries_[c].load(std::memory_order_relaxed));
    const serve::BundlePtr bundle = std::atomic_load(&corpora_[c]->bundle);
    m.bundle_epoch.emplace_back(corpora_[c]->name, bundle ? bundle->epoch : 0);
  }
  m.unknown_corpus_queries = unknown_corpus_queries_.load(std::memory_order_relaxed);
  m.refits = primary_->refits();
  m.lazy_fits = lazy_fits_.load(std::memory_order_relaxed);
  m.epoch_invalidations = epoch_invalidations_.load(std::memory_order_relaxed);
  m.streams = streams_.load(std::memory_order_relaxed);
  m.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(admission_mutex_);
    m.hot_keys = router_.hot_keys();
  }
  // Per-stage histograms: merge each shard's cumulative roll-up (bounded
  // memory, O(1) per merge — this replaced the old sample reservoir). The
  // legacy ms percentiles are views of the e2e histogram.
  for (const auto& shard : shards_)
    shard->merge_stage_histograms(m.queue_wait, m.service, m.e2e);
  m.p50_latency_ms = m.e2e.percentile_us(50.0) / 1000.0;
  m.p99_latency_ms = m.e2e.percentile_us(99.0) / 1000.0;
  return m;
}

int ServingCluster::registry_fits() const {
  // Shards hold no registries anymore; the primary is the only fitter.
  return primary_->fits();
}

}  // namespace isr::cluster
