#include "cluster/cluster.hpp"

#include <cstring>
#include <exception>
#include <set>

#include "core/parallel_for.hpp"
#include "math/rng.hpp"

namespace isr::cluster {

namespace {

// Mirror AdvisorService's spr_base derivation: the SPR mapping must assume
// the sampling density the calibration corpus was rendered at.
void derive_spr_base(serve::ServiceConfig& service) {
  if (service.constants.spr_base <= 0.0)
    service.constants.spr_base = 0.93 * service.calibration.vr_samples;
}

// The replica/routing key: calibration fingerprint + the exact bit
// patterns of the mapping constants. Two corpora sharing a calibration but
// differing in constants (e.g. an explicit spr_base) predict differently,
// so they must select distinct shard replica entries — while still sharing
// the calibration's single fit.
std::uint64_t corpus_key_for(const serve::ServiceConfig& service,
                             std::uint64_t fingerprint) {
  std::uint64_t key = hash_seed(fingerprint, std::uint64_t{0xC0B905ull});
  const auto mix_double = [&key](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  };
  mix_double(service.constants.ap_fill);
  mix_double(service.constants.ppt);
  mix_double(service.constants.spr_base);
  return key;
}

}  // namespace

ServingCluster::ServingCluster(ClusterConfig config,
                               std::shared_ptr<serve::ModelRegistry> primary)
    : config_(std::move(config)),
      primary_(primary ? std::move(primary) : std::make_shared<serve::ModelRegistry>()),
      router_(config_.shards > 0 ? config_.shards : 1,
              RouterOptions{/*replicas=*/64, config_.rebalance, config_.imbalance_ratio,
                            config_.rebalance_window > 0 ? config_.rebalance_window : 1,
                            /*min_hot_load=*/32.0}),
      cache_(config_.cache_entries, config_.cache_ways),
      pool_(config_.threads) {
  // Resolve the resident corpora up front: the default first (selector ""),
  // then each valid named corpus. Empty, "default", and duplicate names
  // are dropped — "" is reserved for the default corpus, "default" is its
  // metrics alias (a named reuse would emit colliding JSON keys), and a
  // duplicate would make resolution ambiguous (first writer wins, like the
  // registry's adopt).
  derive_spr_base(config_.service);
  CorpusState default_corpus;
  default_corpus.service = config_.service;
  default_corpus.fingerprint =
      serve::ModelRegistry::fingerprint(config_.service.calibration);
  default_corpus.corpus_key =
      corpus_key_for(default_corpus.service, default_corpus.fingerprint);
  corpora_.push_back(std::move(default_corpus));
  for (const CorpusConfig& named : config_.corpora) {
    if (named.name.empty() || named.name == "default" || resolve_corpus(named.name) >= 0)
      continue;
    CorpusState state;
    state.name = named.name;
    state.service = named.service;
    derive_spr_base(state.service);
    state.fingerprint = serve::ModelRegistry::fingerprint(state.service.calibration);
    state.corpus_key = corpus_key_for(state.service, state.fingerprint);
    corpora_.push_back(std::move(state));
  }
  corpus_queries_.assign(corpora_.size(), 0);

  const int n_shards = config_.shards > 0 ? config_.shards : 1;
  config_.shards = n_shards;
  if (config_.queue_capacity == 0) config_.queue_capacity = 1;
  // A batch can never outgrow the queue: a producer helping on a FULL
  // queue must find an immediately poppable (kSize) batch, not wait out
  // the coalescing deadline.
  if (config_.batch_size > config_.queue_capacity)
    config_.batch_size = config_.queue_capacity;
  if (config_.batch_size == 0) config_.batch_size = 1;
  const auto deadline = std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::duration<double, std::milli>(
          config_.batch_deadline_ms > 0.0 ? config_.batch_deadline_ms : 0.0));
  shards_.reserve(static_cast<std::size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s)
    shards_.push_back(std::make_unique<Shard>(s, config_.queue_capacity,
                                              config_.batch_size, deadline));
}

int ServingCluster::resolve_corpus(const std::string& name) const {
  // Linear scan: resident corpora are few (one per served machine
  // configuration), and the scan avoids a map the metrics would then have
  // to keep ordered anyway.
  if (name.empty()) return corpora_.empty() ? -1 : 0;
  for (std::size_t c = 1; c < corpora_.size(); ++c)
    if (corpora_[c].name == name) return static_cast<int>(c);
  return -1;
}

std::uint64_t ServingCluster::corpus_fingerprint(const std::string& name) const {
  const int idx = resolve_corpus(name);
  return idx < 0 ? 0 : corpora_[static_cast<std::size_t>(idx)].fingerprint;
}

void ServingCluster::ensure_replicated() {
  std::lock_guard<std::mutex> lock(replicate_mutex_);
  if (replicated_) return;
  // One fit per distinct calibration fingerprint, on the primary (its
  // cache dedups repeat calls); every shard adopts a replica entry per
  // distinct corpus key (adoption never counts as a fit), so any shard can
  // evaluate any resident corpus — which is what lets the rebalancer place
  // hot keys anywhere.
  std::set<std::uint64_t> adopted;
  for (const CorpusState& corpus : corpora_) {
    if (!adopted.insert(corpus.corpus_key).second) continue;
    const serve::FittedModels& bundle = primary_->models_for(corpus.service.calibration);
    for (const auto& shard : shards_)
      shard->adopt(bundle, corpus.service.constants, corpus.corpus_key);
  }
  replicated_ = true;
}

std::vector<serve::AdvisorResponse> ServingCluster::serve_batch(
    const std::vector<serve::AdvisorRequest>& requests) {
  if (requests.empty()) return {};
  ensure_replicated();
  // One batch in flight at a time: the shard queues' reopen/close lifecycle
  // and the slot indices in flight belong to the current batch, so
  // overlapping batches must serialize here (the fan-out below is where
  // the parallelism lives).
  std::lock_guard<std::mutex> serve_lock(serve_mutex_);

  const std::size_t n = requests.size();
  std::vector<serve::AdvisorResponse> responses(n);

  // Resolution pass (serial, cheap): map each request's corpus selector to
  // a resident corpus. Unknown selectors fill their slots with error
  // responses right here — they never touch the cache or a shard.
  std::vector<int> corpus_of(n, -1);
  std::vector<long> corpus_counts(corpora_.size(), 0);
  long unknown = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const int idx = resolve_corpus(requests[i].corpus);
    corpus_of[i] = idx;
    if (idx < 0) {
      ++unknown;
      responses[i].ok = false;
      responses[i].error =
          "unknown corpus \"" + requests[i].corpus + "\" (not resident on this cluster)";
    } else {
      ++corpus_counts[static_cast<std::size_t>(idx)];
    }
  }

  // Cache pass (serial, cheap): hits fill their slots and skip evaluation
  // entirely; misses carry their canonical key to the shard for insertion.
  // With the cache off, keys are never built — the uncached hot path pays
  // nothing for the cache's existence. The canonical key includes the
  // corpus selector, so entries can never collide across corpora.
  const bool caching = cache_.enabled();
  std::vector<std::size_t> miss;
  std::vector<std::string> miss_key;
  miss.reserve(n);
  miss_key.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (corpus_of[i] < 0) continue;  // already an error slot
    std::string key = caching ? canonical_request_key(requests[i]) : std::string();
    if (!caching || !cache_.lookup(key, responses[i])) {
      miss.push_back(i);
      miss_key.push_back(std::move(key));
    }
  }

  if (!miss.empty()) {
    for (const auto& shard : shards_) shard->reopen();
    ResponseCache* cache = cache_.enabled() ? &cache_ : nullptr;
    const std::size_t lanes = shards_.size() + 1;

    // Lane 0 produces: route each miss to its shard's bounded queue; when a
    // queue is full, help by draining a batch (backpressure, and the reason
    // a 1-thread pool cannot deadlock). Lanes 1..N are the shard workers.
    core::parallel_for(pool_, lanes, [&](std::size_t lane) {
      if (lane == 0) {
        try {
          for (std::size_t j = 0; j < miss.size(); ++j) {
            const std::size_t i = miss[j];
            const CorpusState& corpus =
                corpora_[static_cast<std::size_t>(corpus_of[i])];
            Shard& shard = *shards_[static_cast<std::size_t>(
                router_.route(corpus.corpus_key, requests[i].arch))];
            RoutedRequest item;
            item.request = requests[i];
            item.corpus_key = corpus.corpus_key;
            item.slot = i;
            item.cache_key = std::move(miss_key[j]);
            item.enqueued = std::chrono::steady_clock::now();
            // A full queue converts the producer into a worker: drain one
            // batch, then retry the same (untouched-on-failure) item.
            while (!shard.try_enqueue(std::move(item)))
              shard.drain_one_batch(responses, cache);
          }
        } catch (...) {
          // A wedged producer must still release the workers: close every
          // queue so blocked pop_batch calls return, then rethrow through
          // the pool (parallel_for surfaces the first exception).
          for (const auto& shard : shards_) shard->close();
          throw;
        }
        for (const auto& shard : shards_) shard->close();
      } else {
        Shard& shard = *shards_[lane - 1];
        while (shard.drain_one_batch(responses, cache)) {
        }
      }
    });
  }

  std::lock_guard<std::mutex> lock(metrics_mutex_);
  queries_ += static_cast<long>(n);
  for (std::size_t c = 0; c < corpus_counts.size(); ++c)
    corpus_queries_[c] += corpus_counts[c];
  unknown_corpus_queries_ += unknown;
  hot_keys_ = router_.hot_keys();  // still under serve_mutex_: no racing route()
  for (const auto& shard : shards_) shard->drain_latencies(latencies_ms_);
  // Bound the latency reservoir: a long-lived service must not grow a
  // sample per request forever. Keep the most recent window; percentiles
  // in metrics() describe it.
  constexpr std::size_t kLatencyWindow = 65536;
  if (latencies_ms_.size() > kLatencyWindow)
    latencies_ms_.erase(latencies_ms_.begin(),
                        latencies_ms_.end() - static_cast<std::ptrdiff_t>(kLatencyWindow));
  return responses;
}

ClusterMetrics ServingCluster::metrics() const {
  ClusterMetrics m;
  m.shards = static_cast<int>(shards_.size());
  m.shard_queries.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const ShardStats s = shard->stats();
    m.shard_queries.push_back(s.queries);
    m.batches += s.batches;
    m.size_flushes += s.size_flushes;
    m.deadline_flushes += s.deadline_flushes;
    m.close_flushes += s.close_flushes;
    if (shard->max_queue_depth() > m.max_queue_depth)
      m.max_queue_depth = shard->max_queue_depth();
  }
  m.rebalanced_queries = router_.rebalanced();
  m.cache_lookups = cache_.lookups();
  m.cache_hits = cache_.hits();
  m.cache_hit_rate =
      m.cache_lookups > 0
          ? static_cast<double>(m.cache_hits) / static_cast<double>(m.cache_lookups)
          : 0.0;
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  m.queries = queries_;
  m.corpus_queries.reserve(corpora_.size());
  for (std::size_t c = 0; c < corpora_.size(); ++c)
    m.corpus_queries.emplace_back(corpora_[c].name, corpus_queries_[c]);
  m.unknown_corpus_queries = unknown_corpus_queries_;
  m.hot_keys = hot_keys_;
  m.p50_latency_ms = percentile(latencies_ms_, 50.0);
  m.p99_latency_ms = percentile(latencies_ms_, 99.0);
  return m;
}

int ServingCluster::registry_fits() const {
  int total = primary_->fits();
  for (const auto& shard : shards_) total += shard->registry().fits();
  return total;
}

}  // namespace isr::cluster
