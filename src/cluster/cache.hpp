// Response cache for the serving cluster: an LRU keyed by the canonical
// byte serialization of a request, sharded into independently locked ways
// so concurrent shard workers do not serialize on one mutex. A hit returns
// the stored AdvisorResponse verbatim — and because a response is a pure
// function of (request, fitted models), a cached response is bitwise the
// response evaluation would have produced, so cache state can never change
// the bytes a client sees (the cluster's determinism contract).
//
// Lifecycle (the recalibration PR):
//   - PARTITIONS: the cache is hard-partitioned per resident corpus, each
//     partition owning entries/partitions slots. One corpus's traffic can
//     therefore never evict another corpus's entries — the quota is
//     structural, not an accounting policy.
//   - EPOCHS: every entry carries the bundle epoch its response was
//     computed under. A lookup pinned to epoch E only hits entries stamped
//     E (an older entry is lazily erased in passing); a refit calls
//     invalidate_stale() to sweep exactly the refitted corpus's stale
//     entries, leaving every other partition untouched.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/advisor.hpp"

namespace isr::cluster {

// The canonical request bytes: every AdvisorRequest field in fixed order,
// integers in decimal, the budget as its exact IEEE-754 bit pattern (so
// 0.1 + 0.2 and 0.3 are different keys, as they must be — they produce
// different predictions), and the arch and corpus strings length-prefixed
// so no crafted string can collide with another request's encoding. The
// corpus selector is part of the key, so responses cached for one resident
// corpus can never be served for another.
std::string canonical_request_key(const serve::AdvisorRequest& request);

// Allocation-free form for the serving path: rebuilds the key in `out`
// (cleared first), reusing its capacity. The key is a pure function of the
// request, so admission and the drain worker can each rebuild it into a
// thread-local buffer instead of threading a heap string through the
// queue. The allocating form above delegates here.
void canonical_request_key_into(const serve::AdvisorRequest& request, std::string& out);

class ResponseCache {
 public:
  // `entries` caps the TOTAL cached responses; 0 disables the cache
  // (lookup always misses, insert is a no-op). `partitions` splits that
  // total evenly — each partition holds max(1, entries/partitions) entries
  // (the per-corpus quota). `ways` is the per-partition lock-sharding
  // factor; each way holds an independent LRU of ceil(quota/ways) entries,
  // so a partition's effective quota can exceed its share by at most
  // ways-1.
  explicit ResponseCache(std::size_t entries, int ways = 8, std::size_t partitions = 1);

  bool enabled() const { return !partitions_.empty(); }

  // On hit — same partition, same epoch, same key — copies the stored
  // response into `out`, refreshes recency, and returns true. An entry
  // stamped with an OLDER epoch is a miss and is erased in passing (it can
  // never hit again); a NEWER entry is just a miss (the looker pinned an
  // old bundle mid-swap). Both outcomes count toward the hit-rate metrics.
  bool lookup(std::size_t partition, std::uint64_t epoch, const std::string& key,
              serve::AdvisorResponse& out);

  // Inserts (or refreshes) `key` under `epoch` in `partition`, evicting the
  // way's least-recently-used entry when the quota is full. Allocation-free
  // at steady state: list nodes, index nodes, and key storage are
  // pre-allocated per way at construction, a cold fill consumes them, and
  // a full way recycles its LRU victim's node in place — key bytes are
  // copied into recycled buffers, never freshly heap-allocated.
  void insert(std::size_t partition, std::uint64_t epoch, const std::string& key,
              const serve::AdvisorResponse& response);

  // Sweeps `partition`, erasing every entry older than `keep_epoch` and
  // returning how many were evicted. A refit calls this with the new
  // bundle's epoch: exactly the refitted corpus's stale entries go, every
  // other partition keeps its working set.
  std::size_t invalidate_stale(std::size_t partition, std::uint64_t keep_epoch);

  long lookups() const { return lookups_.load(std::memory_order_relaxed); }
  long hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t size() const;      // responses currently held, all partitions
  std::size_t partitions() const { return partitions_.size(); }
  std::size_t capacity() const;  // sum of every way's capacity
  // One partition's quota (the sum of its ways' capacities).
  std::size_t partition_capacity(std::size_t partition) const;

 private:
  struct Entry {
    std::string key;          // full key bytes, the collision-proof identity
    std::uint64_t hash = 0;   // the key's 64-bit mixed hash (the index key)
    std::uint64_t epoch = 0;
    serve::AdvisorResponse response;
  };
  // The index is keyed on the splitmix64-finalized key hash, NOT the key
  // string: the hash is computed once per operation (it also picks the
  // way), already mixed (the identity hasher is safe), and 8 bytes to
  // hash-and-compare instead of ~80. A probe that lands on an entry
  // verifies the full key bytes before trusting it, so a 64-bit collision
  // degrades to a cache miss / entry replacement — never a wrong response
  // (the determinism contract does not rest on hashes).
  struct IdentityHash {
    std::size_t operator()(std::uint64_t h) const noexcept {
      return static_cast<std::size_t>(h);
    }
  };
  using Index = std::unordered_map<std::uint64_t, std::list<Entry>::iterator, IdentityHash>;
  struct Way {
    std::mutex mutex;
    std::size_t capacity = 0;
    // Front = most recently used. The map indexes into the list.
    std::list<Entry> lru;
    Index index;
    // Pre-allocated storage a cold fill draws from instead of the heap:
    // `spare` holds capacity list nodes (spliced into lru one per insert)
    // and `node_pool` holds capacity detached index nodes (re-keyed and
    // re-inserted). Both are built at construction and both are empty once
    // the way is full — from then on inserts recycle the LRU victim.
    std::list<Entry> spare;
    std::vector<Index::node_type> node_pool;
  };
  struct Partition {
    std::vector<std::unique_ptr<Way>> ways;
  };

  Way& way_for(std::size_t partition, std::uint64_t hash);

  std::vector<Partition> partitions_;  // empty when disabled
  std::atomic<long> lookups_{0};
  std::atomic<long> hits_{0};
};

}  // namespace isr::cluster
