// Response cache for the serving cluster: an LRU keyed by the canonical
// byte serialization of a request, sharded into independently locked ways
// so concurrent shard workers do not serialize on one mutex. A hit returns
// the stored AdvisorResponse verbatim — and because a response is a pure
// function of (request, fitted models), a cached response is bitwise the
// response evaluation would have produced, so cache state can never change
// the bytes a client sees (the cluster's determinism contract).
#pragma once

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/advisor.hpp"

namespace isr::cluster {

// The canonical request bytes: every AdvisorRequest field in fixed order,
// integers in decimal, the budget as its exact IEEE-754 bit pattern (so
// 0.1 + 0.2 and 0.3 are different keys, as they must be — they produce
// different predictions), and the arch and corpus strings length-prefixed
// so no crafted string can collide with another request's encoding. The
// corpus selector is part of the key, so responses cached for one resident
// corpus can never be served for another.
std::string canonical_request_key(const serve::AdvisorRequest& request);

class ResponseCache {
 public:
  // `entries` caps the TOTAL cached responses across all ways; 0 disables
  // the cache (lookup always misses, insert is a no-op). `ways` is the
  // lock-sharding factor; each way holds an independent LRU of
  // ceil(entries/ways) entries, so the effective total can exceed `entries`
  // by at most ways-1.
  explicit ResponseCache(std::size_t entries, int ways = 8);

  bool enabled() const { return !ways_.empty(); }

  // On hit copies the stored response into `out`, refreshes recency, and
  // returns true. Both outcomes count toward the hit-rate metrics.
  bool lookup(const std::string& key, serve::AdvisorResponse& out);

  // Inserts (or refreshes) `key`, evicting the way's least-recently-used
  // entry when full.
  void insert(const std::string& key, const serve::AdvisorResponse& response);

  long lookups() const { return lookups_.load(std::memory_order_relaxed); }
  long hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t size() const;      // responses currently held
  std::size_t capacity() const;  // sum of the ways' capacities

 private:
  struct Way {
    std::mutex mutex;
    std::size_t capacity = 0;
    // Front = most recently used. The map indexes into the list.
    std::list<std::pair<std::string, serve::AdvisorResponse>> lru;
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, serve::AdvisorResponse>>::iterator>
        index;
  };

  Way& way_for(const std::string& key);

  std::vector<std::unique_ptr<Way>> ways_;  // empty when disabled
  std::atomic<long> lookups_{0};
  std::atomic<long> hits_{0};
};

}  // namespace isr::cluster
