// The sharded serving cluster (layer 5): turns the single-registry advisor
// of src/serve/ into a simulated multi-shard cluster on one machine —
// the ROADMAP's "sharding/replication ... on the road to heavy-traffic
// serving" item made concrete.
//
// A serve_batch call flows:
//
//   requests ──canonical key──> ResponseCache ──hit──────────────> slot
//                  │ miss
//                  └─> Router (consistent hash of arch + corpus
//                      fingerprint) ─> per-shard bounded BatchQueue
//                      ─> shard worker (core::ThreadPool lane) drains
//                         coalesced batches ─> serve::answer_request
//                         against the shard's replicated registry ─> slot
//                         (+ cache insert)
//
// Determinism contract (the cluster's load-bearing promise, enforced by
// test_cluster and bench_cluster_throughput): a response vector — and its
// serve::to_jsonl bytes — is identical for any shard count, any thread
// count, and any cache state, because every response is a pure function of
// (request, fitted models) and all replicas adopt bundles from one fit.
//
// Replication: the cluster fits the calibration corpus exactly once per
// distinct fingerprint (on the primary registry, which callers may share
// across clusters) and copies the fitted bundle into each shard's replica;
// registry_fits() exposes the invariant.
//
// Deadlock-free by construction at any pool width: the producer lane never
// blocks — when a shard's bounded queue is full it drains a batch itself
// (backpressure turns the producer into a worker), so even a 1-thread pool
// (every lane inline, in order) completes: the producer enqueues-or-drains
// everything, closes the queues, and the worker lanes mop up.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cache.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

struct ClusterConfig {
  // Calibration corpus + mapping constants, exactly as a single
  // AdvisorService takes them (the `threads` field is ignored — the
  // cluster's own `threads` below governs the pool).
  serve::ServiceConfig service;

  int shards = 1;                    // serving shards (>= 1)
  std::size_t cache_entries = 1024;  // total ResponseCache entries; 0 = off
  int cache_ways = 8;                // cache lock-sharding factor

  std::size_t queue_capacity = 1024;  // per-shard admission queue bound
  std::size_t batch_size = 64;        // coalescing flush threshold
  double batch_deadline_ms = 0.5;     // coalescing deadline

  // Pool lanes for the fan-out (producer + shard workers): 0 = ISR_THREADS
  // env / hardware, 1 = fully serial (inline lanes, still correct).
  int threads = 0;
};

class ServingCluster {
 public:
  // A primary registry may be shared between clusters (e.g. the benchmark's
  // 1-shard serial and N-shard parallel clusters answering from one fit);
  // by default the cluster creates its own.
  explicit ServingCluster(ClusterConfig config = {},
                          std::shared_ptr<serve::ModelRegistry> primary = nullptr);

  // Answers a batch: response[i] for request[i], byte-identical through
  // serve::to_jsonl to a serial single-registry run of the same requests.
  // Thread-safe by serialization: concurrent callers queue on an internal
  // mutex, one batch in flight at a time — the shard queues and response
  // slots belong to the current batch, and parallelism comes from the
  // cluster's own fan-out, not from overlapping batches.
  std::vector<serve::AdvisorResponse> serve_batch(
      const std::vector<serve::AdvisorRequest>& requests);

  // Cumulative metrics snapshot (percentiles computed over every latency
  // recorded so far).
  ClusterMetrics metrics() const;

  // Calibration fits performed across the primary and every shard replica.
  // Must equal the number of distinct corpus fingerprints served — shards
  // adopt, they never refit.
  int registry_fits() const;

  int shards() const { return static_cast<int>(shards_.size()); }
  const ClusterConfig& config() const { return config_; }

 private:
  // Fit-once-replicate-everywhere: runs the calibration on the primary (or
  // takes its cached bundle) and adopts it into every shard replica.
  void ensure_replicated();

  ClusterConfig config_;
  std::shared_ptr<serve::ModelRegistry> primary_;
  Router router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ResponseCache cache_;
  core::ThreadPool pool_;
  bool replicated_ = false;
  std::mutex replicate_mutex_;
  std::mutex serve_mutex_;  // one batch in flight at a time (see serve_batch)

  mutable std::mutex metrics_mutex_;
  long queries_ = 0;
  // Most recent per-request latencies, bounded so a long-lived service
  // cannot grow without limit; percentiles describe this sliding window.
  std::vector<double> latencies_ms_;
};

}  // namespace isr::cluster
