// The sharded serving cluster (layer 5): turns the single-registry advisor
// of src/serve/ into a simulated multi-shard, multi-corpus cluster on one
// machine — the ROADMAP's "sharding/replication ... on the road to
// heavy-traffic serving" and "multi-corpus cluster" items made concrete.
// The paper's feasibility model is only meaningful per calibration corpus
// (one machine/configuration fit, Tables 12-17); a production advisor
// serves many machines at once, so the cluster holds several corpora
// resident and requests carry a `corpus` selector.
//
// A serve_batch call flows:
//
//   requests ──corpus selector──> resident corpus (unknown name: in-slot
//                  │               error response, no routing)
//                  ├──canonical key──> ResponseCache ──hit──────────> slot
//                  │ miss
//                  └─> Router (consistent hash of (corpus fingerprint,
//                      arch); hot keys split across rendezvous sub-keys)
//                      ─> per-shard bounded BatchQueue
//                      ─> shard worker (core::ThreadPool lane) drains
//                         coalesced batches ─> serve::answer_request
//                         against the shard's fingerprint-selected replica
//                         bundle ─> slot (+ cache insert)
//
// Determinism contract (the cluster's load-bearing promise, enforced by
// test_cluster, bench_cluster_throughput, and bench_multicorpus_throughput):
// a response vector — and its serve::to_jsonl bytes — is identical for any
// shard count, any thread count, any cache state, any resident-corpus
// count, and with rebalancing on or off, because every response is a pure
// function of (request, fitted models) and all replicas adopt bundles from
// one fit per fingerprint.
//
// Replication: the cluster fits each resident calibration corpus exactly
// once per distinct fingerprint (on the primary registry, which callers
// may share across clusters) and copies every fitted bundle into each
// shard's replica; registry_fits() == distinct resident fingerprints at
// any shard count.
//
// Deadlock-free by construction at any pool width: the producer lane never
// blocks — when a shard's bounded queue is full it drains a batch itself
// (backpressure turns the producer into a worker), so even a 1-thread pool
// (every lane inline, in order) completes: the producer enqueues-or-drains
// everything, closes the queues, and the worker lanes mop up.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cache.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "core/thread_pool.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

// One additional resident calibration corpus: the selector requests name
// in their `corpus` field, plus the corpus's own calibration + constants.
struct CorpusConfig {
  // Non-empty and not "default": "" always selects the default corpus, and
  // "default" is how the metrics report it (a named corpus reusing it
  // would emit colliding JSON keys). Violating entries are dropped.
  std::string name;
  serve::ServiceConfig service;
};

struct ClusterConfig {
  // The DEFAULT calibration corpus + mapping constants, exactly as a
  // single AdvisorService takes them (the `threads` field is ignored — the
  // cluster's own `threads` below governs the pool). Requests with an
  // empty `corpus` selector resolve here.
  serve::ServiceConfig service;

  // Additional named corpora resident alongside the default. Entries with
  // an empty, "default", or duplicate name are ignored (first writer
  // wins); corpora may share a calibration fingerprint (they then share
  // the one fit, and may still differ in mapping constants — replicas are
  // keyed by calibration AND constants).
  std::vector<CorpusConfig> corpora;

  int shards = 1;                    // serving shards (>= 1)
  std::size_t cache_entries = 1024;  // total ResponseCache entries; 0 = off
  int cache_ways = 8;                // cache lock-sharding factor

  std::size_t queue_capacity = 1024;  // per-shard admission queue bound
  std::size_t batch_size = 64;        // coalescing flush threshold
  double batch_deadline_ms = 0.5;     // coalescing deadline

  // Hot-key rebalancing (see cluster/router.hpp): when one (corpus, arch)
  // key's decaying load exceeds imbalance_ratio times a shard's fair
  // share, it is split across the shards in the key's rendezvous order.
  // imbalance_ratio <= 0 (or rebalance = false) pins every key to its home
  // shard, the pre-rebalancing behavior.
  bool rebalance = true;
  double imbalance_ratio = 1.25;
  std::size_t rebalance_window = 4096;  // decaying-counter halving period

  // Pool lanes for the fan-out (producer + shard workers): 0 = ISR_THREADS
  // env / hardware, 1 = fully serial (inline lanes, still correct).
  int threads = 0;
};

class ServingCluster {
 public:
  // A primary registry may be shared between clusters (e.g. the benchmark's
  // 1-shard serial and N-shard parallel clusters answering from one fit);
  // by default the cluster creates its own.
  explicit ServingCluster(ClusterConfig config = {},
                          std::shared_ptr<serve::ModelRegistry> primary = nullptr);

  // Answers a batch: response[i] for request[i], byte-identical through
  // serve::to_jsonl to a serial single-registry run of the same requests.
  // Thread-safe by serialization: concurrent callers queue on an internal
  // mutex, one batch in flight at a time — the shard queues and response
  // slots belong to the current batch, and parallelism comes from the
  // cluster's own fan-out, not from overlapping batches.
  std::vector<serve::AdvisorResponse> serve_batch(
      const std::vector<serve::AdvisorRequest>& requests);

  // Cumulative metrics snapshot (percentiles computed over every latency
  // recorded so far).
  ClusterMetrics metrics() const;

  // Calibration fits performed across the primary and every shard replica.
  // Must equal the number of distinct resident corpus fingerprints —
  // shards adopt, they never refit, and corpora sharing a fingerprint
  // share one fit.
  int registry_fits() const;

  int shards() const { return static_cast<int>(shards_.size()); }
  // Resident corpora (the default plus every accepted named corpus).
  int corpora() const { return static_cast<int>(corpora_.size()); }
  const ClusterConfig& config() const { return config_; }

  // Fingerprint of the resident corpus `name` selects ("" = default), or 0
  // when the name is unknown. Fingerprints are never 0 in practice
  // (hash_seed output), so 0 doubles as "not resident" in tests.
  std::uint64_t corpus_fingerprint(const std::string& name) const;

 private:
  // One resident corpus, resolved at construction: its selector, its
  // config (spr_base derived), its calibration fingerprint (what the
  // registry fits once), and its corpus key (calibration + constants —
  // what routing and the shard replica maps select by, so corpora sharing
  // a calibration but not constants never conflate).
  struct CorpusState {
    std::string name;
    serve::ServiceConfig service;
    std::uint64_t fingerprint = 0;
    std::uint64_t corpus_key = 0;
  };

  // Fit-once-replicate-everywhere: runs each distinct fingerprint's
  // calibration on the primary (or takes its cached bundle) and adopts
  // every bundle into every shard replica.
  void ensure_replicated();

  // Index into corpora_ for a request's selector, or -1 when unknown.
  int resolve_corpus(const std::string& name) const;

  ClusterConfig config_;
  std::vector<CorpusState> corpora_;  // [0] is the default corpus
  std::shared_ptr<serve::ModelRegistry> primary_;
  Router router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ResponseCache cache_;
  core::ThreadPool pool_;
  bool replicated_ = false;
  std::mutex replicate_mutex_;
  std::mutex serve_mutex_;  // one batch in flight at a time (see serve_batch)

  mutable std::mutex metrics_mutex_;
  long queries_ = 0;
  std::vector<long> corpus_queries_;  // aligned with corpora_
  long unknown_corpus_queries_ = 0;
  int hot_keys_ = 0;  // router snapshot at the last batch end
  // Most recent per-request latencies, bounded so a long-lived service
  // cannot grow without limit; percentiles describe this sliding window.
  std::vector<double> latencies_ms_;
};

}  // namespace isr::cluster
