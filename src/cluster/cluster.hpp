// The sharded serving cluster (layer 5): turns the single-registry advisor
// of src/serve/ into a simulated multi-shard, multi-corpus cluster on one
// machine — the ROADMAP's "sharding/replication ... on the road to
// heavy-traffic serving" and "continuous async serving front-end" items
// made concrete. The paper's feasibility model is only meaningful per
// calibration corpus (one machine/configuration fit, Tables 12-17); a
// production advisor serves many machines at once, so the cluster holds
// several corpora resident and requests carry a `corpus` selector.
//
// Serving is a continuous admission pipeline, not a one-shot batch call:
// any number of clients hold StreamSession handles and submit concurrently,
// each request flowing
//
//   submit ──corpus selector──> resident corpus (unknown name: in-slot
//                  │             error response, no routing)
//                  ├──canonical key──> ResponseCache ──hit──────────> slot
//                  │ miss
//                  ├─> Router (consistent hash of (corpus fingerprint,
//                  │   arch); hot keys split across rendezvous sub-keys)
//                  ├─> deadline check against the shard's virtual backlog
//                  │   ──would miss──> explicit shed response ──────> slot
//                  └─> the shard's bounded ordered queue (strict priority,
//                      EDF within a class) ─> the shard's dedicated worker
//                      thread drains coalesced batches ─>
//                      serve::answer_request against the fingerprint-
//                      selected replica bundle ─> slot (+ cache insert)
//
// serve_batch still exists and is the compatibility surface: it opens a
// session, submits the batch, and closes — so every batch-era caller rides
// the streaming pipeline unchanged, and overlapping serve_batch calls now
// genuinely overlap instead of serializing.
//
// Determinism contract (the cluster's load-bearing promise, enforced by
// test_cluster, test_stream, and the three cluster benches): a response
// is a pure function of (request, fitted models, mapping constants), so
// WHAT a request answers is identical — byte-identical through
// serve::to_jsonl — for any shard count, thread count, stream count,
// cache state, resident-corpus count, and rebalancing setting. Shed
// decisions are the one interleaving-dependent output; they become
// deterministic in REPLAY mode, where a recorded admission schedule
// (stream id, seq, virtual timestamp) pins the interleaving and the
// virtual clock, making shedding a pure function of (schedule, requests).
// Live mode instead reads the wall clock and a measured service-time
// EWMA — fast, but not replayable without a recording.
//
// Replication and residency: the cluster fits each calibration corpus
// LAZILY — on the first query that names it, not at boot — and exactly
// once per distinct fingerprint (on the primary registry, which callers
// may share across clusters); registry_fits() == distinct QUERIED
// fingerprints at any shard count. Shards hold no model state: admission
// pins the resolved corpus's current bundle (a shared_ptr) plus its
// mapping constants into every StreamItem, so any shard can evaluate any
// item and placement never changes bytes.
//
// Live recalibration (PR 8): bundles are epoch-versioned (registry.hpp).
// append_observations() queues drift measurements against a resident
// corpus; recalibrate()/refit() schedule a background refit job on the
// cluster's refit worker (the observation study inside it runs on the
// existing core::ThreadPool), which fits a fresh bundle at epoch + 1 and
// atomically swaps it into every corpus sharing the fingerprint
// (std::atomic_store on the shared_ptr — no torn reads under TSan), then
// sweeps exactly those corpora's response-cache partitions of pre-swap
// entries. In-flight requests finish on the epoch they were admitted
// under (their pinned bundle), so for a FIXED epoch schedule responses
// remain byte-identical at any shard/thread/cache configuration;
// wait_refits() is the barrier that fixes the schedule.
//
// Fault tolerance (PR 7): shard workers are supervised — evaluation
// exceptions become in-slot error responses, a heartbeat watchdog restarts
// crashed workers and re-drives the batch they held, and transient
// failures retry with bounded exponential backoff against the next shard
// in the key's rendezvous order (routing around shards marked down),
// degrading explicitly ("degraded":true on the wire) once the retry budget
// or the request deadline is spent. Every fault is deterministic: the
// core::FaultInjector keys each decision on (stream id, per-stream seq,
// attempt), so a fixed ISR_FAULT_SEED reproduces the same failures — and
// the same degraded bytes under --replay — at any thread count, while a
// disarmed injector (the default) leaves every fault branch dead and the
// byte-identity contract above untouched.
//
// Locking, in admission order (no path holds two of these at once except
// admission -> a session's own mutex inside deliver):
//   admission_mutex_ — the order-dependent heart: routing (the router's
//     decaying load counters), shed accounting against the per-shard
//     virtual backlog, and the admission sequence. The LIVE path holds it
//     only for that slim section — request copies, the canonical cache
//     key, corpus resolution (immutable after construction), the cache
//     probe (internally lock-sharded), and the admission counters
//     (atomics) all happen outside, which is what lets N concurrent
//     producers outrun one. Record/replay mode instead serializes the
//     WHOLE admission under this lock, so the schedule captures (or pins)
//     every submission, cache hits included.
//   per-shard queue + stats locks — bounded blocking enqueue happens
//     OUTSIDE admission_mutex_ (a full queue must not stall other
//     admitters or a replay waiter; the admission-order guarantees are
//     already fixed by then). The per-shard stats lock also guards the
//     cumulative stage histograms metrics() merges — bounded memory, no
//     reservoir, no cluster-level metrics lock anymore.
//
// Observability (PR 9): config.trace (nullable) wires an obs::TraceRecorder
// through admission and the shard workers. Live runs stamp wall
// microseconds; under --replay the admission path emits each request's
// whole span chain from the schedule's virtual clock (workers stay silent),
// so a replayed trace is byte-identical across fresh clusters. Tracing
// never changes response bytes — every hook is behind a null/enabled check.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"

#include "cluster/cache.hpp"
#include "cluster/metrics.hpp"
#include "cluster/router.hpp"
#include "cluster/shard.hpp"
#include "cluster/stream.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

class StreamSession;

// One additional resident calibration corpus: the selector requests name
// in their `corpus` field, plus the corpus's own calibration + constants.
struct CorpusConfig {
  // Non-empty and not "default": "" always selects the default corpus, and
  // "default" is how the metrics report it (a named corpus reusing it
  // would emit colliding JSON keys). Violating entries are dropped.
  std::string name;
  serve::ServiceConfig service;
};

struct ClusterConfig {
  // The DEFAULT calibration corpus + mapping constants, exactly as a
  // single AdvisorService takes them (the `threads` field is ignored — the
  // cluster's evaluation parallelism is its shard workers). Requests with
  // an empty `corpus` selector resolve here.
  serve::ServiceConfig service;

  // Additional named corpora resident alongside the default. Entries with
  // an empty, "default", or duplicate name are ignored (first writer
  // wins); corpora may share a calibration fingerprint (they then share
  // the one fit, and may still differ in mapping constants — replicas are
  // keyed by calibration AND constants).
  std::vector<CorpusConfig> corpora;

  int shards = 1;                    // serving shards (>= 1), one worker thread each
  std::size_t cache_entries = 1024;  // total ResponseCache entries; 0 = off
  int cache_ways = 8;                // cache lock-sharding factor

  std::size_t queue_capacity = 1024;  // per-shard admission queue bound
  std::size_t batch_size = 64;        // coalescing flush threshold
  double batch_deadline_ms = 0.5;     // coalescing deadline

  // Hot-key rebalancing (see cluster/router.hpp): when one (corpus, arch)
  // key's decaying load exceeds imbalance_ratio times a shard's fair
  // share, it is split across the shards in the key's rendezvous order.
  // imbalance_ratio <= 0 (or rebalance = false) pins every key to its home
  // shard, the pre-rebalancing behavior.
  bool rebalance = true;
  double imbalance_ratio = 1.25;
  std::size_t rebalance_window = 4096;  // decaying-counter halving period

  // Retained for config compatibility with the batch era; the streaming
  // pipeline's parallelism is one dedicated worker per shard, so this no
  // longer allocates anything.
  int threads = 0;

  // Shed accounting's per-request service cost in microseconds: the fixed
  // cost replay mode charges (keeping shed decisions a pure function of
  // the schedule), and the live EWMA estimator's starting value.
  double replay_service_us = 4.0;

  // Request-lifecycle tracing (obs/trace.hpp), disabled when null — the
  // zero-cost default. The recorder outlives the cluster by contract; the
  // owner decides when to enable() it and where to export. Enable with
  // virtual_clock = true when (and only when) the cluster replays an
  // admission schedule.
  obs::TraceRecorder* trace = nullptr;

  // --- Fault tolerance ---------------------------------------------------
  // Deterministic fault injection (core/fault.hpp): disarmed by default
  // (seed 0), in which case every fault branch below is dead and responses
  // are byte-identical to a cluster without the subsystem. Populate from
  // the ISR_FAULT_* environment via core::FaultConfig::from_env().
  core::FaultConfig fault;
  // How many times one request may be re-driven after transient failures
  // (injected eval throws, worker crashes) before the cluster answers an
  // explicit degraded response instead. The first attempt is not a retry:
  // a request is tried at most retry_limit + 1 times.
  int retry_limit = 2;
  // Exponential backoff before each re-drive: attempt k sleeps
  // min(retry_backoff_us << (k-1), retry_backoff_max_us) microseconds.
  long retry_backoff_us = 50;
  long retry_backoff_max_us = 2000;
  // Heartbeat watchdog poll period. Each poll checks every shard for a
  // crashed worker (restart + re-drive) or a stalled one (stale heartbeat
  // with work pending -> degraded).
  long watchdog_poll_us = 1000;
  // Consecutive clean polls before a degraded shard is promoted back to
  // healthy.
  int health_recovery_polls = 4;
};

class ServingCluster {
 public:
  // A primary registry may be shared between clusters (e.g. the benchmark's
  // 1-shard serial and N-shard parallel clusters answering from one fit);
  // by default the cluster creates its own.
  explicit ServingCluster(ClusterConfig config = {},
                          std::shared_ptr<serve::ModelRegistry> primary = nullptr);

  // Closes every shard queue and joins the workers. Every StreamSession
  // must be closed (or destroyed) first — sessions hold no cluster
  // ownership, and an in-flight request after destruction is a
  // use-after-free by contract.
  ~ServingCluster();

  // Opens a long-lived submission handle. Stream ids are assigned in open
  // order (the replay matching key), and the first open starts the shard
  // workers, the watchdog, and the refit worker. Corpora are NOT fitted
  // here: residency is lazy, paid by the first query naming each corpus.
  // Thread-safe: any number of sessions may be open and submitting
  // concurrently.
  StreamSession open_stream();

  // Compatibility surface: opens a session, submits every request in
  // order, closes. Byte-identical through serve::to_jsonl to a serial
  // single-registry run of the same requests; concurrent callers overlap
  // freely (each is its own stream).
  std::vector<serve::AdvisorResponse> serve_batch(
      const std::vector<serve::AdvisorRequest>& requests);

  // Admission-schedule recording and replay (see stream.hpp). Recording
  // captures (stream, seq, virtual timestamp) per admitted request;
  // begin_replay pins the admission interleaving AND the virtual clock to
  // a prior recording, so a replaying cluster — given the same sessions
  // submitting the same requests — reproduces responses and shed decisions
  // byte-identically. Replay submissions block until the schedule reaches
  // them; a submission the schedule never names throws. Both are meant for
  // a fresh cluster whose session-open order mirrors the recorded run.
  void enable_recording();
  AdmissionSchedule take_recording();  // moves out what was captured so far
  void begin_replay(AdmissionSchedule schedule);

  // Cumulative metrics snapshot. Safe to call while streams are live: the
  // admission counters are atomics, shard stats and stage histograms are
  // read under each shard's own lock, and the snapshot merges per-shard
  // histograms into fresh cluster-wide roll-ups (bounded memory; nothing
  // is drained or reset).
  ClusterMetrics metrics() const;

  // Calibration fits performed (refits excluded). Under lazy residency
  // this must equal the number of distinct QUERIED corpus fingerprints —
  // shards hold no registries, and corpora sharing a fingerprint share
  // one fit.
  int registry_fits() const;

  // --- Live recalibration ------------------------------------------------
  // Queues drift observations against the corpus `name` selects for its
  // next refit. Forces residency (the corpus fits now if it never served a
  // query). Returns false when the name is unknown or the corpus's
  // calibration fit failed.
  bool append_observations(const std::string& name,
                           std::vector<model::Observation> observations);

  // Schedules a background refit of `name`'s corpus folding in whatever
  // observations were appended (an empty pending set still re-fits the
  // same corpus at the next epoch). Returns the LOWER BOUND on the epoch
  // the completed refit will publish (current + 1), or 0 when the name is
  // unknown or the corpus's fit failed. The swap happens on the refit
  // worker; wait_refits() is the completion barrier.
  std::uint64_t refit(const std::string& name);

  // refit() plus a deterministic drift study: the job generates one
  // reduced calibration pass whose seed is a pure function of
  // (calibration seed, current epoch), appends it, and refits — so two
  // identically-seeded runs issuing the same recalibrate() schedule
  // produce bit-identical bundles. Same return contract as refit().
  std::uint64_t recalibrate(const std::string& name);

  // Blocks until every scheduled refit job has completed and swapped.
  // After this, the epoch schedule is fixed and responses are pure
  // functions of (request, current epoch) again.
  void wait_refits();

  // The current bundle epoch of the corpus `name` selects: 0 when the
  // name is unknown or the corpus is not yet resident, 1 after the
  // initial (lazy) fit, +1 per completed refit.
  std::uint64_t bundle_epoch(const std::string& name) const;

  int shards() const { return static_cast<int>(shards_.size()); }
  // Resident corpora (the default plus every accepted named corpus).
  int corpora() const { return static_cast<int>(corpora_.size()); }
  const ClusterConfig& config() const { return config_; }

  // Fingerprint of the resident corpus `name` selects ("" = default), or 0
  // when the name is unknown. Fingerprints are never 0 in practice
  // (hash_seed output), so 0 doubles as "not resident" in tests.
  std::uint64_t corpus_fingerprint(const std::string& name) const;

 private:
  friend class StreamSession;

  // One configured corpus, resolved at construction: its selector, its
  // config (spr_base derived), its calibration fingerprint (what the
  // registry fits once), and its corpus key (calibration + constants —
  // what routing selects by, so corpora sharing a calibration but not
  // constants never conflate). Model state arrives lazily: `bundle` is
  // null until the first query (or recalibration) naming this corpus
  // forces residency, and is thereafter swapped atomically by refits.
  struct CorpusState {
    // Residency states. kFitFailed means the calibration fit failed
    // (injected or real) even after retry_limit + 1 attempts: the corpus
    // stays configured but every request for it is answered with an
    // explicit degraded response — a broken corpus must not crash the
    // cluster or hang its clients.
    static constexpr int kEmpty = 0;
    static constexpr int kResident = 1;
    static constexpr int kFitFailed = 2;

    std::string name;
    serve::ServiceConfig service;
    std::uint64_t fingerprint = 0;
    std::uint64_t corpus_key = 0;
    std::atomic<int> residency{kEmpty};
    // The corpus's CURRENT epoch bundle. Read with std::atomic_load and
    // written with std::atomic_store only (C++17 shared_ptr atomics), so
    // admission pinning a bundle can never observe a torn pointer while
    // the refit worker swaps epochs.
    serve::BundlePtr bundle;
  };

  // One scheduled background refit: which corpus, and whether to generate
  // a deterministic drift study before refitting (recalibrate vs refit).
  struct RefitJob {
    std::size_t corpus = 0;
    bool drift = false;
  };

  // Starts the shard workers, the heartbeat watchdog, and the refit
  // worker. Lazy (first open_stream) so constructing a cluster stays
  // cheap; corpora are fitted even later, on first query.
  void ensure_serving();

  // Lazy residency: returns true when the corpus at `idx` holds a bundle,
  // fitting it (once, under fit_mutex_, walking the same deterministic
  // fit-failure retry ladder the eager path used) when this is its first
  // touch. Returns false when the fit failed permanently.
  bool ensure_corpus_resident(std::size_t idx);

  // The refit worker thread: drains refit_queue_, running each job's
  // drift study + registry refit and swapping the fresh bundle into every
  // resident corpus sharing the fingerprint, then sweeping exactly those
  // corpora's cache partitions.
  void refit_loop();
  void run_refit(const RefitJob& job);

  // The admission path (StreamSession::submit lands here): resolve, cache,
  // route, shed-or-enqueue. `session` rides into the StreamItem so the
  // shard can deliver. Live serving holds admission_mutex_ only for the
  // route/shed/sequence section; record and replay divert to the fully
  // serialized variant below.
  void admit(const std::shared_ptr<SessionState>& session, std::size_t slot,
             const serve::AdvisorRequest& request);
  void admit_serialized(const std::shared_ptr<SessionState>& session, std::size_t slot,
                        const serve::AdvisorRequest& request, StreamItem&& item,
                        const std::string& cache_key);

  // StreamSession::close support: flush every shard's partial batch so the
  // session's in-flight tail is answered promptly.
  void kick_all();

  // Index into corpora_ for a request's selector, or -1 when unknown.
  int resolve_corpus(const std::string& name) const;

  // The failover/retry path (shard FailureHandler + watchdog re-drive):
  // each item either re-enqueues on the next live shard in its key's
  // rendezvous order (bounded exponential backoff, retries_/failovers_
  // accounting), is evaluated inline when every queue route is saturated
  // (pure bytes — WHO evaluates never matters), or — once its retry budget
  // is spent or its deadline passed — receives an explicit degraded
  // response. Never blocks on a queue, so it is deadlock-free from worker
  // and watchdog context alike.
  void redeliver(std::vector<StreamItem>&& items, int from_shard);

  // The heartbeat watchdog: polls every shard each watchdog_poll_us,
  // restarts crashed workers (re-driving the batch they held), marks
  // stalled or failing shards degraded, and promotes them back to healthy
  // after health_recovery_polls clean polls. The only writer of health_.
  void watchdog_loop();

  ShardHealth health(std::size_t shard) const {
    return static_cast<ShardHealth>(health_[shard].load(std::memory_order_relaxed));
  }

  ClusterConfig config_;
  // [0] is the default corpus. unique_ptr entries: CorpusState holds an
  // atomic (not movable), and items pin &service.constants — addresses
  // must be stable for the cluster's lifetime.
  std::vector<std::unique_ptr<CorpusState>> corpora_;
  std::shared_ptr<serve::ModelRegistry> primary_;
  Router router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Built in the constructor body, once the corpus count (its partition
  // count) is known.
  std::unique_ptr<ResponseCache> cache_;
  bool serving_ = false;
  std::mutex serving_mutex_;
  // Serializes lazy corpus fits (a calibration study must run at most once
  // per corpus no matter how many admitters race the first query).
  std::mutex fit_mutex_;

  // Recalibration state: the dedicated refit worker and its job queue.
  // refit_busy_ distinguishes "queue empty" from "done" for wait_refits().
  std::thread refit_worker_;
  std::mutex refit_mutex_;
  std::condition_variable refit_cv_;       // wakes the worker
  std::condition_variable refit_idle_cv_;  // wakes wait_refits()
  std::deque<RefitJob> refit_queue_;
  bool refit_busy_ = false;
  bool refit_stop_ = false;
  std::atomic<long> lazy_fits_{0};
  std::atomic<long> epoch_invalidations_{0};

  // Fault-tolerance state. health_ is written by the watchdog only and
  // read (relaxed) by admission/failover — a stale read routes to a shard
  // about to be marked down, which the retry path then absorbs; bytes are
  // placement-independent either way. suspect_ counts transient failures
  // per shard (bumped by redeliver) so the watchdog notices failure bursts
  // between polls.
  core::FaultInjector faults_;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  std::unique_ptr<std::atomic<int>[]> health_;   // ShardHealth per shard
  std::unique_ptr<std::atomic<long>[]> suspect_; // transient failures per shard
  std::atomic<long> worker_restarts_{0};
  std::atomic<long> failovers_{0};
  std::atomic<long> retries_{0};
  std::atomic<long> timeouts_{0};
  std::atomic<long> degraded_queries_{0};

  // Admission state (all under admission_mutex_). backlog_end_us_ is the
  // virtual time each shard's queue drains at: admission advances it by
  // the service estimate, shedding compares a request's deadline against
  // it. Virtual timestamps are microseconds since epoch_ (live) or the
  // recorded t_us (replay).
  mutable std::mutex admission_mutex_;
  std::condition_variable replay_cv_;
  std::chrono::steady_clock::time_point epoch_;
  std::uint64_t next_stream_id_ = 0;
  std::uint64_t admit_seq_ = 0;
  std::vector<double> backlog_end_us_;  // per shard
  // Mode flags are atomic because the live fast path reads them without
  // the lock; both are fixed before streams open (enable_recording /
  // begin_replay precede serving by contract).
  std::atomic<bool> recording_{false};
  AdmissionSchedule recorded_;
  std::atomic<bool> replaying_{false};
  AdmissionSchedule replay_;
  std::size_t replay_cursor_ = 0;
  // Admission counters: atomics so the live fast path updates them outside
  // the admission lock (metrics() reads are monotone either way).
  std::atomic<long> queries_{0};
  std::unique_ptr<std::atomic<long>[]> corpus_queries_;  // aligned with corpora_
  std::atomic<long> unknown_corpus_queries_{0};
  std::atomic<long> shed_queries_{0};
  std::atomic<long> streams_{0};
};

// A client's submission handle: submit() enqueues one request (returning
// its per-stream sequence number), close() flushes and blocks until every
// submitted request has its response, returning them in submission order.
// One session belongs to one client thread (the handle itself is not
// thread-safe; the cluster is, across sessions). Sessions are movable,
// not copyable; destroying an open session closes it and discards the
// responses. A session must not outlive its cluster.
class StreamSession {
 public:
  StreamSession() = default;
  StreamSession(StreamSession&& other) noexcept
      : cluster_(other.cluster_), state_(std::move(other.state_)) {
    other.cluster_ = nullptr;
  }
  StreamSession& operator=(StreamSession&& other) noexcept {
    if (this != &other) {
      if (state_) close();
      cluster_ = other.cluster_;
      state_ = std::move(other.state_);
      other.cluster_ = nullptr;
    }
    return *this;
  }
  StreamSession(const StreamSession&) = delete;
  StreamSession& operator=(const StreamSession&) = delete;
  ~StreamSession() {
    if (state_) close();
  }

  bool open() const { return state_ != nullptr; }
  std::uint64_t id() const { return state_ ? state_->id() : 0; }

  // Submits one request; its response will occupy slot `seq` (the return
  // value) of close()'s vector. Blocks only for queue backpressure — or,
  // in replay mode, until the schedule reaches this (stream, seq). Throws
  // std::logic_error on a closed session.
  std::uint64_t submit(const serve::AdvisorRequest& request);

  // Flushes in-flight requests (partial shard batches are kicked), waits
  // for every response, and returns them in submission order. The session
  // is spent afterwards (open() == false).
  std::vector<serve::AdvisorResponse> close();

 private:
  friend class ServingCluster;
  StreamSession(ServingCluster* cluster, std::shared_ptr<SessionState> state)
      : cluster_(cluster), state_(std::move(state)) {}

  ServingCluster* cluster_ = nullptr;
  std::shared_ptr<SessionState> state_;
};

}  // namespace isr::cluster
