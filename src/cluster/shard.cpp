#include "cluster/shard.hpp"

#include "cluster/cache.hpp"

namespace isr::cluster {

namespace {
// Latency reservoir bound per shard (the cluster keeps its own window on
// top). Dropping the oldest half amortizes the erase to O(1) per sample.
constexpr std::size_t kShardLatencyWindow = 65536;
}  // namespace

Shard::Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
             std::chrono::nanoseconds batch_deadline, double initial_service_us)
    : index_(index),
      batch_size_(batch_size > 0 ? batch_size : 1),
      batch_deadline_(batch_deadline),
      registry_(std::make_unique<serve::ModelRegistry>()),
      queue_(queue_capacity),
      service_estimate_us_(initial_service_us > 0.0 ? initial_service_us : 1.0) {}

void Shard::adopt(const serve::FittedModels& bundle,
                  const model::MappingConstants& constants, std::uint64_t corpus_key) {
  const auto it = replicas_.find(corpus_key);
  if (it != replicas_.end()) return;  // already resident (entries identical)
  Replica replica;
  // The registry dedups by bundle fingerprint, so two corpus keys sharing
  // a calibration share one adopted bundle under distinct replica entries.
  replica.fitted = &registry_->adopt(bundle);
  replica.constants = constants;
  replicas_.emplace(corpus_key, replica);
}

bool Shard::drain_one_batch(ResponseCache* cache) {
  std::vector<StreamItem> batch;
  const core::BatchFlush flush = queue_.pop_batch(batch_size_, batch_deadline_, batch);
  if (flush == core::BatchFlush::kEmpty) return false;
  // A kick can race the worker draining the queue empty; that is not a
  // batch — record nothing and keep watching the queue.
  if (batch.empty()) return true;

  // Evaluate outside any lock: responses are pure functions of
  // (request, fitted models), and each item owns its session slot. The
  // cluster only admits requests for resolved resident corpora, so the
  // replica lookup cannot miss — the branch is a defensive invariant, not
  // a code path.
  const auto eval_start = std::chrono::steady_clock::now();
  std::vector<serve::AdvisorResponse> responses;
  responses.reserve(batch.size());
  for (const StreamItem& item : batch) {
    serve::AdvisorResponse response;
    const auto replica = replicas_.find(item.corpus_key);
    if (replica == replicas_.end()) {
      response.ok = false;
      response.error = "corpus bundle not resident on shard";
    } else {
      response = serve::answer_request(*replica->second.fitted,
                                       replica->second.constants, item.request);
    }
    if (cache) cache->insert(item.cache_key, response);
    responses.push_back(std::move(response));
  }
  const auto now = std::chrono::steady_clock::now();

  // Feed the live shed estimator: EWMA of measured microseconds per
  // request. Relaxed read-modify-write — concurrent metrics readers see a
  // slightly stale estimate at worst.
  const double measured_us =
      std::chrono::duration<double, std::micro>(now - eval_start).count() /
      static_cast<double>(batch.size());
  const double old = service_estimate_us_.load(std::memory_order_relaxed);
  service_estimate_us_.store(0.8 * old + 0.2 * measured_us, std::memory_order_relaxed);

  // Account the batch BEFORE delivering: the final delivery may wake a
  // close()d session whose client immediately reads metrics(), and the
  // flush that carried its responses must already be counted.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries += static_cast<long>(batch.size());
    stats_.batches += 1;
    if (flush == core::BatchFlush::kSize) stats_.size_flushes += 1;
    else if (flush == core::BatchFlush::kDeadline) stats_.deadline_flushes += 1;
    else if (flush == core::BatchFlush::kKicked) stats_.kick_flushes += 1;
    else stats_.close_flushes += 1;
    for (const StreamItem& item : batch)
      latencies_ms_.push_back(
          std::chrono::duration<double, std::milli>(now - item.enqueued).count());
    if (latencies_ms_.size() > kShardLatencyWindow)
      latencies_ms_.erase(latencies_ms_.begin(),
                          latencies_ms_.begin() +
                              static_cast<std::ptrdiff_t>(latencies_ms_.size() / 2));
  }

  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].session->deliver(batch[i].slot, std::move(responses[i]));
  return true;
}

ShardStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Shard::drain_latencies(std::vector<double>& into) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  into.insert(into.end(), latencies_ms_.begin(), latencies_ms_.end());
  latencies_ms_.clear();
}

}  // namespace isr::cluster
