#include "cluster/shard.hpp"

#include <utility>

#include "cluster/cache.hpp"

namespace isr::cluster {

const char* shard_health_name(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDown: return "down";
  }
  return "?";
}

Shard::Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
             std::chrono::nanoseconds batch_deadline, double initial_service_us)
    : index_(index),
      batch_size_(batch_size > 0 ? batch_size : 1),
      batch_deadline_(batch_deadline),
      queue_(queue_capacity),
      service_estimate_us_(initial_service_us > 0.0 ? initial_service_us : 1.0) {}

Shard::~Shard() { stop(); }

void Shard::start(ResponseCache* cache, core::FaultInjector* faults,
                  FailureHandler on_failed, obs::TraceRecorder* trace) {
  cache_ = cache;
  faults_ = faults && faults->armed() ? faults : nullptr;
  on_failed_ = std::move(on_failed);
  trace_ = trace;
  crashed_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { worker_loop(); });
}

void Shard::stop() {
  queue_.close();
  if (worker_.joinable()) worker_.join();
}

void Shard::worker_loop() {
  std::vector<StreamItem> failed;
  for (;;) {
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    failed.clear();
    const DrainStatus status = drain_one_batch(failed);
    if (status == DrainStatus::kCrashed) {
      // The batch (failed items included) is parked in the in-flight
      // ledger; the watchdog re-drives ALL of it, so dispatching `failed`
      // here would double-deliver. The release store publishes the bumped
      // attempt the watchdog's take_inflight() must see.
      crashed_.store(true, std::memory_order_release);
      return;
    }
    if (!failed.empty()) {
      if (on_failed_) {
        on_failed_(std::move(failed), index_);
        failed.clear();  // restore a known state after the move
      } else {
        // No failover wiring (a bare shard in tests): answer in place so
        // the delivery guarantee holds regardless.
        for (StreamItem& item : failed) item.session->deliver(item.slot, evaluate(item));
        failed.clear();
      }
    }
    if (status == DrainStatus::kStop) return;
  }
}

serve::AdvisorResponse Shard::evaluate(const StreamItem& item) {
  serve::AdvisorResponse response;
  // Admission pins the bundle and constants before enqueueing, so the null
  // branch is a defensive invariant, not a code path.
  if (!item.bundle || !item.constants) {
    response.status = serve::AdvisorResponse::Status::kError;
    response.error = "corpus bundle not resident on shard";
    return response;
  }
  // An evaluation that throws becomes an in-slot error response — never a
  // dead worker. The message is a pure function of the exception, which is
  // itself a pure function of (request, models), so the bytes stay
  // deterministic.
  try {
    response = serve::answer_request(*item.bundle, *item.constants, item.request);
  } catch (const std::exception& e) {
    response = serve::AdvisorResponse{};
    response.status = serve::AdvisorResponse::Status::kError;
    response.error = std::string("evaluation failed: ") + e.what();
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.eval_exceptions += 1;
  } catch (...) {
    response = serve::AdvisorResponse{};
    response.status = serve::AdvisorResponse::Status::kError;
    response.error = "evaluation failed: unknown exception";
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.eval_exceptions += 1;
  }
  return response;
}

void Shard::evaluate_batch(std::vector<StreamItem>& batch,
                           std::vector<serve::AdvisorResponse>& responses) {
  const std::size_t n = batch.size();
  responses.clear();
  responses.resize(n);
  // Group by the pinned (bundle, constants) pair — one batch can mix
  // corpora, and items admitted across a recalibration swap pin different
  // epochs of the same corpus. Same stable selection sweep answer_batch
  // uses for (arch, renderer); group count is bounded by resident corpora
  // (x concurrent epochs), not batch size.
  core::Arena& arena = group_arena_;
  arena.reset();
  const serve::AdvisorRequest** reqs = arena.alloc_array<const serve::AdvisorRequest*>(n);
  serve::AdvisorResponse** resps = arena.alloc_array<serve::AdvisorResponse*>(n);
  std::uint32_t* item_of = arena.alloc_array<std::uint32_t>(n);
  unsigned char* taken = arena.alloc_array<unsigned char>(n);
  for (std::size_t k = 0; k < n; ++k) taken[k] = 0;
  std::size_t done = 0;
  std::size_t first = 0;
  while (done < n) {
    while (taken[first]) ++first;
    const StreamItem& head = batch[first];
    const std::size_t begin = done;
    for (std::size_t k = first; k < n; ++k) {
      if (taken[k]) continue;
      if (batch[k].bundle.get() == head.bundle.get() && batch[k].constants == head.constants) {
        taken[k] = 1;
        reqs[done] = &batch[k].request;
        resps[done] = &responses[k];
        item_of[done] = static_cast<std::uint32_t>(k);
        ++done;
      }
    }
    const std::size_t group_n = done - begin;
    if (!head.bundle || !head.constants) {
      // Defensive invariant, mirroring evaluate(): admission pins both.
      for (std::size_t k = begin; k < done; ++k) {
        resps[k]->status = serve::AdvisorResponse::Status::kError;
        resps[k]->error = "corpus bundle not resident on shard";
      }
      continue;
    }
    try {
      serve::answer_batch(*head.bundle, *head.constants, reqs + begin, group_n,
                          resps + begin, eval_scratch_);
    } catch (...) {
      // The batched evaluator failed (allocation pressure is the only real
      // way): re-run the group item by item through evaluate(), which
      // converts the throw into the historical in-slot error bytes.
      for (std::size_t k = begin; k < done; ++k)
        responses[item_of[k]] = evaluate(batch[item_of[k]]);
    }
  }
}

Shard::DrainStatus Shard::drain_one_batch(std::vector<StreamItem>& failed) {
  std::vector<StreamItem>& batch = batch_scratch_;
  const core::BatchFlush flush = queue_.pop_batch(batch_size_, batch_deadline_, batch);
  if (flush == core::BatchFlush::kEmpty) return DrainStatus::kStop;
  // A kick can race the worker draining the queue empty; that is not a
  // batch — record nothing and keep watching the queue.
  if (batch.empty()) return DrainStatus::kContinue;
  // Queue wait ends here: the pop timestamp closes every item's
  // enqueue->pop interval (fault stalls below count as service, not wait).
  const auto pop_now = std::chrono::steady_clock::now();
  // Worker-side trace emission is live-clock only; under the cluster's
  // replay mode the admission path emits the whole virtual chain instead.
  const bool tracing = trace_ && trace_->enabled() && !trace_->virtual_clock();

  // Lane split. With no armed fault injector a worker crash, stall, and
  // transient failure are all structurally impossible (every fault branch
  // is injector-gated), so the in-flight ledger deep copy, the per-item
  // fault checks, and the per-item clock reads buy nothing — the fast lane
  // drops them and evaluates group-at-a-time through answer_batch. A
  // live-clock tracer needs per-item eval spans, so it rides the chaos
  // lane too.
  if (faults_ || tracing) return drain_chaos_batch(batch, flush, pop_now, tracing, failed);

  evaluate_batch(batch, response_scratch_);
  const auto eval_done = std::chrono::steady_clock::now();
  const std::size_t n = batch.size();
  const double batch_eval_us =
      std::chrono::duration<double, std::micro>(eval_done - pop_now).count();
  // One clock pair for the whole batch: stage histograms and the shed
  // estimator get the batch mean per item (they are metrics, not wire
  // bytes); the per-item wait/e2e intervals stay exact — they derive from
  // each item's own admission timestamp.
  const double per_item_us = batch_eval_us / static_cast<double>(n);

  // Cache fill before delivery (matching the chaos lane's insert-then-
  // deliver order per item). The canonical key is rebuilt into a
  // worker-local buffer — cheaper than carrying a heap string through the
  // queue — and the cache copies its bytes into pre-allocated node
  // storage, so the whole fill is heap-silent.
  if (cache_ && cache_->enabled()) {
    static thread_local std::string key;
    for (std::size_t i = 0; i < n; ++i) {
      if (!batch[i].bundle) continue;
      canonical_request_key_into(batch[i].request, key);
      cache_->insert(static_cast<std::size_t>(batch[i].corpus_index),
                     batch[i].bundle->epoch, key, response_scratch_[i]);
    }
  }

  {
    const double old = service_estimate_us_.load(std::memory_order_relaxed);
    service_estimate_us_.store(0.8 * old + 0.2 * per_item_us, std::memory_order_relaxed);
  }

  const auto item_wait_us = [&pop_now](const StreamItem& item) {
    const double wait =
        std::chrono::duration<double, std::micro>(pop_now - item.enqueued).count();
    return wait < 0.0 ? 0.0 : wait;
  };

  // Account the batch BEFORE delivering: the final delivery may wake a
  // close()d session whose client immediately reads metrics(), and the
  // flush that carried its responses must already be counted.
  double wait_us_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries += static_cast<long>(n);
    stats_.batches += 1;
    if (flush == core::BatchFlush::kSize) stats_.size_flushes += 1;
    else if (flush == core::BatchFlush::kDeadline) stats_.deadline_flushes += 1;
    else if (flush == core::BatchFlush::kKicked) stats_.kick_flushes += 1;
    else stats_.close_flushes += 1;
    for (std::size_t i = 0; i < n; ++i) {
      const double wait_us = item_wait_us(batch[i]);
      wait_us_sum += wait_us;
      queue_wait_us_.record(wait_us);
      service_us_.record(per_item_us);
      e2e_us_.record(
          std::chrono::duration<double, std::micro>(eval_done - batch[i].enqueued).count());
    }
  }
  {
    const double measured_wait_us = wait_us_sum / static_cast<double>(n);
    const double old = queue_wait_estimate_us_.load(std::memory_order_relaxed);
    queue_wait_estimate_us_.store(0.8 * old + 0.2 * measured_wait_us,
                                  std::memory_order_relaxed);
  }

  // Delivery, grouped by session: a run of consecutive items from one
  // stream (the common shape — serve_batch is one stream) lands under a
  // single session lock. Slots address the writes, so grouping cannot
  // reorder anything. The slot arrays ride the group arena, still warm
  // from evaluation.
  for (std::size_t i = 0; i < n;) {
    SessionState* const session = batch[i].session.get();
    std::size_t j = i + 1;
    while (j < n && batch[j].session.get() == session) ++j;
    if (j - i == 1) {
      session->deliver(batch[i].slot, std::move(response_scratch_[i]));
    } else {
      std::size_t* slots = group_arena_.alloc_array<std::size_t>(j - i);
      for (std::size_t k = i; k < j; ++k) slots[k - i] = batch[k].slot;
      session->deliver_run(slots, response_scratch_.data() + i, j - i);
    }
    i = j;
  }
  return DrainStatus::kContinue;
}

Shard::DrainStatus Shard::drain_chaos_batch(std::vector<StreamItem>& batch,
                                            core::BatchFlush flush,
                                            std::chrono::steady_clock::time_point pop_now,
                                            bool tracing,
                                            std::vector<StreamItem>& failed) {
  // Park the whole batch in the in-flight ledger BEFORE evaluating any of
  // it: from here until the ledger is cleared after delivery, a crash can
  // lose nothing — the watchdog re-drives exactly what was held.
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_ = batch;
  }

  // Injected stall, keyed on the batch head's identity: the worker sleeps
  // mid-drain with work parked, the heartbeat goes stale, and the watchdog
  // marks the shard degraded. Purely a liveness disturbance — every item
  // still evaluates to its normal bytes afterwards.
  if (faults_ &&
      faults_->should_fire(core::FaultSite::kQueueStall, batch.front().session->id(),
                           batch.front().slot,
                           static_cast<std::uint64_t>(batch.front().attempt)))
    std::this_thread::sleep_for(std::chrono::milliseconds(faults_->config().stall_ms));

  // Evaluate outside any lock: responses are pure functions of
  // (request, fitted models), and each item owns its session slot.
  std::vector<serve::AdvisorResponse> responses(batch.size());
  std::vector<char> transient(batch.size(), 0);
  std::vector<double> eval_us(batch.size(), 0.0);
  std::vector<std::int64_t> eval_begin_us(tracing ? batch.size() : 0, 0);
  std::size_t evaluated = 0;
  double eval_us_sum = 0.0;
  // Chained per-item clock: one now() per item, each reading doubling as
  // the next item's start. Cache inserts and fault checks between items
  // land in the next item's measurement — ns-scale against µs evals, and
  // an injected stall charges to service, never to queue wait.
  auto mark = pop_now;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const StreamItem& item = batch[i];
    const std::uint64_t stream = item.session->id();
    const std::uint64_t seq = item.slot;
    const auto attempt = static_cast<std::uint64_t>(item.attempt);
    if (faults_ &&
        faults_->should_fire(core::FaultSite::kWorkerCrash, stream, seq, attempt)) {
      // Simulated crash: the thread dies mid-batch, delivering and counting
      // NOTHING — earlier evaluations of this batch are discarded and
      // redone on re-drive (same bytes; they are pure). Only the item that
      // personally triggered the crash advances its attempt, so co-batched
      // items re-run under their unchanged fault schedule — batch
      // composition is interleaving-dependent, their decisions must not be.
      std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_[i].attempt += 1;
      return DrainStatus::kCrashed;
    }
    if (faults_ &&
        faults_->should_fire(core::FaultSite::kShardEvalThrow, stream, seq, attempt)) {
      // Injected transient failure: not delivered, not cached, not counted
      // here — handed (attempt advanced) to the cluster for retry/failover.
      transient[i] = 1;
      continue;
    }
    responses[i] = evaluate(item);
    const auto item_done = std::chrono::steady_clock::now();
    eval_us[i] =
        std::chrono::duration<double, std::micro>(item_done - mark).count();
    eval_us_sum += eval_us[i];
    if (tracing) eval_begin_us[i] = trace_->since_epoch_us(mark);
    mark = item_done;
    ++evaluated;
    // Degraded responses never reach this path (the cluster delivers them
    // directly), so everything evaluated here is cache-safe: a pure
    // function of (request, pinned epoch). The entry is stamped with the
    // item's ADMISSION epoch — a concurrent refit's invalidation sweep
    // will clear it if the epoch moved on before this insert landed.
    if (cache_ && cache_->enabled() && item.bundle) {
      static thread_local std::string chaos_key;
      canonical_request_key_into(item.request, chaos_key);
      cache_->insert(static_cast<std::size_t>(item.corpus_index),
                     item.bundle->epoch, chaos_key, responses[i]);
    }
  }
  const auto now = std::chrono::steady_clock::now();

  // Every popped item waited enqueue->pop regardless of how its
  // evaluation went; pop_now closes the interval, computed per item in
  // the stats pass below (arithmetic only, no further clock reads).
  const auto item_wait_us = [&pop_now](const StreamItem& item) {
    const double wait =
        std::chrono::duration<double, std::micro>(pop_now - item.enqueued).count();
    return wait < 0.0 ? 0.0 : wait;
  };

  if (evaluated > 0) {
    // Feed the live shed estimator: EWMA of measured microseconds per
    // request. Relaxed read-modify-write — concurrent metrics readers see a
    // slightly stale estimate at worst.
    const double measured_us = eval_us_sum / static_cast<double>(evaluated);
    const double old = service_estimate_us_.load(std::memory_order_relaxed);
    service_estimate_us_.store(0.8 * old + 0.2 * measured_us,
                               std::memory_order_relaxed);
  }
  // Account the batch BEFORE delivering: the final delivery may wake a
  // close()d session whose client immediately reads metrics(), and the
  // flush that carried its responses must already be counted. Only
  // delivered items count as queries; transient failures are the failover
  // path's to account.
  double wait_us_sum = 0.0;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.queries += static_cast<long>(evaluated);
    stats_.batches += 1;
    if (flush == core::BatchFlush::kSize) stats_.size_flushes += 1;
    else if (flush == core::BatchFlush::kDeadline) stats_.deadline_flushes += 1;
    else if (flush == core::BatchFlush::kKicked) stats_.kick_flushes += 1;
    else stats_.close_flushes += 1;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double wait_us = item_wait_us(batch[i]);
      wait_us_sum += wait_us;
      queue_wait_us_.record(wait_us);
      if (transient[i]) continue;  // the failover path's stage to account
      service_us_.record(eval_us[i]);
      e2e_us_.record(std::chrono::duration<double, std::micro>(
                         now - batch[i].enqueued)
                         .count());
    }
  }
  {
    // EWMA over measured queue wait: admission adds this to its backlog
    // estimate so shedding reflects the stage the request is actually
    // about to pay, not an end-to-end guess.
    const double measured_wait_us = wait_us_sum / static_cast<double>(batch.size());
    const double old = queue_wait_estimate_us_.load(std::memory_order_relaxed);
    queue_wait_estimate_us_.store(0.8 * old + 0.2 * measured_wait_us,
                                  std::memory_order_relaxed);
  }

  if (tracing) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      obs::TraceEvent queue_span{};
      queue_span.name = "queue";
      queue_span.cat = "req";
      queue_span.phase = 'X';
      queue_span.ts_us = trace_->since_epoch_us(batch[i].enqueued);
      queue_span.dur_us = static_cast<std::int64_t>(item_wait_us(batch[i]));
      queue_span.stream = batch[i].session->id();
      queue_span.seq = batch[i].slot;
      trace_->record(queue_span);
      if (transient[i]) continue;  // redeliver() annotates the retry
      obs::TraceEvent eval_span{};
      eval_span.name = "eval";
      eval_span.cat = "req";
      eval_span.phase = 'X';
      eval_span.ts_us = eval_begin_us[i];
      eval_span.dur_us = static_cast<std::int64_t>(eval_us[i]);
      eval_span.stream = batch[i].session->id();
      eval_span.seq = batch[i].slot;
      trace_->record(eval_span);
    }
  }

  // The drain span and every deliver instant are recorded BEFORE the
  // corresponding session handoff: the final delivery may wake a client
  // that immediately exports the trace, and a ring must never owe events
  // for a request whose future has already resolved. The drain span
  // therefore closes at pre-delivery time — the handoffs it excludes are
  // ns-scale against the µs evaluations it covers.
  if (tracing) {
    obs::TraceEvent drain_span{};
    drain_span.name = "batch-drain";
    drain_span.cat = "shard";
    drain_span.phase = 'X';
    drain_span.ts_us = trace_->since_epoch_us(pop_now);
    drain_span.dur_us = trace_->now_us() - drain_span.ts_us;
    drain_span.values = 2;
    drain_span.v0 = static_cast<std::int64_t>(batch.size());
    drain_span.v1 = static_cast<std::int64_t>(evaluated);
    trace_->record(drain_span);
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (transient[i]) {
      StreamItem item = std::move(batch[i]);
      item.attempt += 1;
      failed.push_back(std::move(item));
    } else {
      if (tracing) {
        obs::TraceEvent delivered{};
        delivered.name = "deliver";
        delivered.cat = "req";
        delivered.phase = 'i';
        delivered.ts_us = trace_->now_us();
        delivered.stream = batch[i].session->id();
        delivered.seq = batch[i].slot;
        trace_->record(delivered);
      }
      batch[i].session->deliver(batch[i].slot, std::move(responses[i]));
    }
  }

  // Everything in the batch is now either delivered or owned by `failed`;
  // a crash after this point (there is none — no fault site remains) could
  // no longer lose work. Clear the ledger.
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.clear();
  }
  return DrainStatus::kContinue;
}

std::vector<StreamItem> Shard::take_inflight() {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  std::vector<StreamItem> out = std::move(inflight_);
  inflight_.clear();
  return out;
}

bool Shard::has_inflight() const {
  std::lock_guard<std::mutex> lock(inflight_mutex_);
  return !inflight_.empty();
}

void Shard::restart() {
  // The crashed thread has already returned from worker_loop; join reclaims
  // it immediately. A fresh worker resumes over the same queue and wiring.
  if (worker_.joinable()) worker_.join();
  crashed_.store(false, std::memory_order_release);
  worker_ = std::thread([this] { worker_loop(); });
}

ShardStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Shard::merge_stage_histograms(obs::LatencyHistogram& queue_wait,
                                   obs::LatencyHistogram& service,
                                   obs::LatencyHistogram& e2e) const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  queue_wait.merge(queue_wait_us_);
  service.merge(service_us_);
  e2e.merge(e2e_us_);
}

}  // namespace isr::cluster
