#include "cluster/shard.hpp"

#include "cluster/cache.hpp"

namespace isr::cluster {

Shard::Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
             std::chrono::nanoseconds batch_deadline)
    : index_(index),
      batch_size_(batch_size > 0 ? batch_size : 1),
      batch_deadline_(batch_deadline),
      registry_(std::make_unique<serve::ModelRegistry>()),
      queue_(queue_capacity) {}

void Shard::adopt(const serve::FittedModels& bundle,
                  const model::MappingConstants& constants, std::uint64_t corpus_key) {
  const auto it = replicas_.find(corpus_key);
  if (it != replicas_.end()) return;  // already resident (entries identical)
  Replica replica;
  // The registry dedups by bundle fingerprint, so two corpus keys sharing
  // a calibration share one adopted bundle under distinct replica entries.
  replica.fitted = &registry_->adopt(bundle);
  replica.constants = constants;
  replicas_.emplace(corpus_key, replica);
}

bool Shard::drain_one_batch(std::vector<serve::AdvisorResponse>& responses,
                            ResponseCache* cache) {
  std::vector<RoutedRequest> batch;
  const core::BatchFlush flush = queue_.pop_batch(batch_size_, batch_deadline_, batch);
  if (flush == core::BatchFlush::kEmpty) return false;
  // A racing drain (the producer helping under backpressure) can empty the
  // queue while this caller waits out the coalescing deadline; that is not
  // a batch — record nothing and keep watching the queue.
  if (batch.empty()) return true;

  // Evaluate outside any lock: responses are pure functions of
  // (request, fitted models), and slots are disjoint across items. The
  // cluster only routes requests for resolved resident corpora, so the
  // replica lookup cannot miss — the branch is a defensive invariant, not
  // a code path.
  for (const RoutedRequest& item : batch) {
    const auto replica = replicas_.find(item.corpus_key);
    if (replica == replicas_.end()) {
      responses[item.slot].ok = false;
      responses[item.slot].error = "corpus bundle not resident on shard";
    } else {
      responses[item.slot] = serve::answer_request(*replica->second.fitted,
                                                   replica->second.constants, item.request);
    }
    if (cache) cache->insert(item.cache_key, responses[item.slot]);
  }

  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.queries += static_cast<long>(batch.size());
  stats_.batches += 1;
  if (flush == core::BatchFlush::kSize) stats_.size_flushes += 1;
  else if (flush == core::BatchFlush::kDeadline) stats_.deadline_flushes += 1;
  else stats_.close_flushes += 1;
  for (const RoutedRequest& item : batch)
    latencies_ms_.push_back(
        std::chrono::duration<double, std::milli>(now - item.enqueued).count());
  return true;
}

ShardStats Shard::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Shard::drain_latencies(std::vector<double>& into) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  into.insert(into.end(), latencies_ms_.begin(), latencies_ms_.end());
  latencies_ms_.clear();
}

}  // namespace isr::cluster
