#include "cluster/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "serve/advisor.hpp"

namespace isr::cluster {

namespace {

// Nearest rank over an already-sorted sample vector (1-based rank,
// ceil(p/100 * n)); the shared kernel of percentile()/percentiles().
double sorted_percentile(const std::vector<double>& sorted, double p) {
  if (p <= 0.0) return sorted.front();
  if (p >= 100.0) return sorted.back();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank > 0 ? rank - 1 : 0];
}

}  // namespace

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, p);
}

std::vector<double> percentiles(std::vector<double>& samples,
                                const std::vector<double>& ps) {
  std::vector<double> out(ps.size(), 0.0);
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  for (std::size_t i = 0; i < ps.size(); ++i)
    out[i] = sorted_percentile(samples, ps[i]);
  return out;
}

std::string ClusterMetrics::to_jsonl() const {
  std::string shard_list = "[";
  for (std::size_t s = 0; s < shard_queries.size(); ++s) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%s%ld", s == 0 ? "" : ",", shard_queries[s]);
    shard_list += buf;
  }
  shard_list += "]";

  // Per-corpus counts as one nested object, keys in cluster-config order
  // (the default corpus first, as "default") — stable bytes, like every
  // other line this repo emits.
  std::string corpus_map = "{";
  for (std::size_t c = 0; c < corpus_queries.size(); ++c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\":%ld", corpus_queries[c].second);
    corpus_map += c == 0 ? "\"" : ",\"";
    corpus_map += serve::json_escape(corpus_queries[c].first.empty()
                                         ? "default"
                                         : corpus_queries[c].first);
    corpus_map += buf;
  }
  corpus_map += "}";

  // Per-corpus bundle epochs, same nested-object shape and key order as
  // corpus_queries (0 marks a corpus configured but not yet resident).
  std::string epoch_map = "{";
  for (std::size_t c = 0; c < bundle_epoch.size(); ++c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(bundle_epoch[c].second));
    epoch_map += c == 0 ? "\"" : ",\"";
    epoch_map += serve::json_escape(bundle_epoch[c].first.empty()
                                        ? "default"
                                        : bundle_epoch[c].first);
    epoch_map += buf;
  }
  epoch_map += "}";

  // Per-shard health as a JSON string array, shard order.
  std::string health_list = "[";
  for (std::size_t s = 0; s < shard_health.size(); ++s) {
    health_list += s == 0 ? "\"" : ",\"";
    health_list += serve::json_escape(shard_health[s]);
    health_list += "\"";
  }
  health_list += "]";

  const char* fmt =
      "{\"shards\":%d,\"queries\":%ld,\"shard_queries\":%s,"
      "\"corpus_queries\":%s,\"unknown_corpus_queries\":%ld,"
      "\"bundle_epoch\":%s,\"refits\":%ld,\"lazy_fits\":%ld,"
      "\"epoch_invalidations\":%ld,"
      "\"streams\":%ld,\"shed_queries\":%ld,"
      "\"rebalanced_queries\":%ld,\"hot_keys\":%d,"
      "\"cache_lookups\":%ld,\"cache_hits\":%ld,\"cache_hit_rate\":%.6f,"
      "\"worker_restarts\":%ld,\"failovers\":%ld,\"retries\":%ld,"
      "\"timeouts\":%ld,\"degraded_queries\":%ld,\"eval_exceptions\":%ld,"
      "\"faults_injected\":%ld,\"shard_health\":%s,"
      "\"batches\":%ld,\"size_flushes\":%ld,\"deadline_flushes\":%ld,"
      "\"kick_flushes\":%ld,\"close_flushes\":%ld,\"max_queue_depth\":%zu,"
      "\"queue_wait_us\":%s,\"service_us\":%s,\"e2e_us\":%s,"
      "\"p50_latency_ms\":%.6f,\"p99_latency_ms\":%.6f}";
  const std::string queue_wait_json = queue_wait.to_json();
  const std::string service_json = service.to_json();
  const std::string e2e_json = e2e.to_json();
  // Two-pass snprintf into an exactly-sized string, as in study.cpp.
  const int len = std::snprintf(
      nullptr, 0, fmt, shards, queries, shard_list.c_str(), corpus_map.c_str(),
      unknown_corpus_queries, epoch_map.c_str(), refits, lazy_fits,
      epoch_invalidations, streams, shed_queries, rebalanced_queries, hot_keys,
      cache_lookups, cache_hits, cache_hit_rate, worker_restarts, failovers, retries,
      timeouts, degraded_queries, eval_exceptions, faults_injected,
      health_list.c_str(), batches, size_flushes, deadline_flushes, kick_flushes,
      close_flushes, max_queue_depth, queue_wait_json.c_str(), service_json.c_str(),
      e2e_json.c_str(), p50_latency_ms, p99_latency_ms);
  std::string line(static_cast<std::size_t>(len > 0 ? len : 0), '\0');
  std::snprintf(&line[0], line.size() + 1, fmt, shards, queries, shard_list.c_str(),
                corpus_map.c_str(), unknown_corpus_queries, epoch_map.c_str(), refits,
                lazy_fits, epoch_invalidations, streams, shed_queries,
                rebalanced_queries, hot_keys, cache_lookups, cache_hits, cache_hit_rate,
                worker_restarts, failovers, retries, timeouts, degraded_queries,
                eval_exceptions, faults_injected, health_list.c_str(), batches,
                size_flushes, deadline_flushes, kick_flushes, close_flushes,
                max_queue_depth, queue_wait_json.c_str(), service_json.c_str(),
                e2e_json.c_str(), p50_latency_ms, p99_latency_ms);
  return line;
}

}  // namespace isr::cluster
