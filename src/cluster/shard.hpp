// One serving shard: a replicated serve::ModelRegistry holding EVERY
// resident calibration corpus (the primary fits each distinct fingerprint
// once; every shard adopts a copy of each fitted bundle, so a cluster
// performs exactly one fit per distinct corpus fingerprint no matter how
// many shards it runs), fed by a bounded core::OrderedBatchQueue the
// cluster's admission path pushes StreamItems into. The shard's dedicated
// worker thread drains coalesced batches — flushed on batch size, on the
// coalescing deadline, on a kick (a closing stream flushing its in-flight
// tail), or on shutdown — in strict-priority/EDF order, evaluates each
// item through serve::answer_request against the fingerprint-selected
// replica bundle, and delivers the response into the item's session slot
// (and, on a miss path, into the shared response cache). Full replication
// is what makes hot-key rebalancing free: any shard can evaluate any
// (corpus, arch) request.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/batch_queue.hpp"
#include "cluster/stream.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

class ResponseCache;

// Per-shard counters, merged into ClusterMetrics by the cluster.
struct ShardStats {
  long queries = 0;  // requests this shard evaluated
  long batches = 0;
  long size_flushes = 0;
  long deadline_flushes = 0;
  long kick_flushes = 0;  // partial batches flushed by a closing stream
  long close_flushes = 0;
};

class Shard {
 public:
  Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
        std::chrono::nanoseconds batch_deadline, double initial_service_us);

  int index() const { return index_; }

  // Replication: installs one resident corpus — the primary's fitted
  // bundle plus that corpus's mapping constants — into this shard's
  // replica registry (no refit), keyed by the cluster's corpus key (a hash
  // of the calibration fingerprint AND the constants, so two corpora
  // sharing a calibration but differing in constants get separate replica
  // entries over the one adopted bundle). Re-adopting a resident key is a
  // no-op (entries for one key are identical).
  void adopt(const serve::FittedModels& bundle, const model::MappingConstants& constants,
             std::uint64_t corpus_key);

  // Resident replica count (distinct corpus keys adopted so far).
  std::size_t resident_corpora() const { return replicas_.size(); }

  // Admission: blocking bounded push (admitters are client threads; the
  // cluster sheds at admission time, so a full queue means "wait", never
  // "help drain"). Returns false only after shutdown. kick() flushes the
  // current partial batch to the worker — a closing stream's in-flight
  // tail must not wait out the coalescing deadline.
  bool enqueue(StreamItem&& item) { return queue_.push(std::move(item)); }
  void kick() { queue_.kick(); }
  // No more admissions, ever: the worker drains what remains and stops.
  void shutdown() { queue_.close(); }

  // Drains and evaluates ONE coalesced batch in scheduling order:
  // responses are delivered into each item's session slot, evaluated
  // responses are inserted into `cache` (when non-null and enabled),
  // per-request latencies and the service-time estimate are recorded.
  // Returns false when the queue is shut down and empty — the worker's
  // stop signal. Single-consumer by convention (one worker thread per
  // shard), though nothing here would break under a second drainer.
  bool drain_one_batch(ResponseCache* cache);

  // Live shed accounting reads this: an EWMA of measured per-request
  // evaluation cost in microseconds. Relaxed atomics — a lost update skews
  // an estimate, never a response.
  double service_estimate_us() const {
    return service_estimate_us_.load(std::memory_order_relaxed);
  }

  // Metrics accessors (safe during live streams: stats under a mutex, the
  // queue under its own lock).
  ShardStats stats() const;
  std::size_t max_queue_depth() const { return queue_.max_depth(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  void drain_latencies(std::vector<double>& into);  // moves out recorded ms

  // The replica registry, exposed so the cluster can count fits (which must
  // stay zero here — replicas adopt, never fit).
  const serve::ModelRegistry& registry() const { return *registry_; }

 private:
  // One resident corpus on this shard: the adopted bundle (owned by
  // registry_) and the mapping constants its requests evaluate under.
  struct Replica {
    const serve::FittedModels* fitted = nullptr;
    model::MappingConstants constants;
  };

  int index_;
  std::size_t batch_size_;
  std::chrono::nanoseconds batch_deadline_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  std::map<std::uint64_t, Replica> replicas_;  // corpus key -> replica
  core::OrderedBatchQueue<StreamItem, StreamBefore> queue_;
  std::atomic<double> service_estimate_us_;

  mutable std::mutex stats_mutex_;
  ShardStats stats_;
  // Latency samples accumulate here between metrics() snapshots; bounded
  // (oldest half dropped past the window) so a stream that never asks for
  // metrics cannot grow a sample per request forever.
  std::vector<double> latencies_ms_;
};

}  // namespace isr::cluster
