// One serving shard: a replicated serve::ModelRegistry holding EVERY
// resident calibration corpus (the primary fits each distinct fingerprint
// once; every shard adopts a copy of each fitted bundle, so a cluster
// performs exactly one fit per distinct corpus fingerprint no matter how
// many shards it runs), fed by a bounded core::BatchQueue the cluster's
// producer lane pushes routed requests into. The shard's worker drains
// coalesced batches — flushed on batch size, on the coalescing deadline,
// or on queue close — and evaluates each request through
// serve::answer_request against the fingerprint-selected replica bundle,
// writing the response into its pre-assigned slot and (on a miss path)
// into the shared response cache. Full replication is what makes hot-key
// rebalancing free: any shard can evaluate any (corpus, arch) request.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch_queue.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

class ResponseCache;

// One routed request in flight: which corpus replica evaluates it, where
// its response goes, its cache key, and when it entered the queue (the
// latency measurement's start point).
struct RoutedRequest {
  serve::AdvisorRequest request;
  std::uint64_t corpus_key = 0;  // resident replica the request resolved to
  std::size_t slot = 0;
  std::string cache_key;
  std::chrono::steady_clock::time_point enqueued;
};

// Per-shard counters, merged into ClusterMetrics by the cluster.
struct ShardStats {
  long queries = 0;  // requests this shard evaluated
  long batches = 0;
  long size_flushes = 0;
  long deadline_flushes = 0;
  long close_flushes = 0;
};

class Shard {
 public:
  Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
        std::chrono::nanoseconds batch_deadline);

  int index() const { return index_; }

  // Replication: installs one resident corpus — the primary's fitted
  // bundle plus that corpus's mapping constants — into this shard's
  // replica registry (no refit), keyed by the cluster's corpus key (a hash
  // of the calibration fingerprint AND the constants, so two corpora
  // sharing a calibration but differing in constants get separate replica
  // entries over the one adopted bundle). Re-adopting a resident key is a
  // no-op (entries for one key are identical).
  void adopt(const serve::FittedModels& bundle, const model::MappingConstants& constants,
             std::uint64_t corpus_key);

  // Resident replica count (distinct corpus keys adopted so far).
  std::size_t resident_corpora() const { return replicas_.size(); }

  // Admission. try_enqueue returns false when the queue is full, leaving
  // `item` intact so the producer can drain a batch itself and retry;
  // close() marks the end of the current batch's pushes; reopen() re-arms
  // for the next call.
  bool try_enqueue(RoutedRequest&& item) { return queue_.try_push(std::move(item)); }
  void close() { queue_.close(); }
  void reopen() { queue_.reopen(); }

  // Drains and evaluates ONE coalesced batch: responses land in
  // `responses[item.slot]`, evaluated responses are inserted into `cache`
  // (when non-null and enabled), per-request latencies are recorded.
  // Returns false when the queue is closed and empty — the worker's stop
  // signal. Safe to call concurrently (the producer lane helps under
  // backpressure while the worker lane drains).
  bool drain_one_batch(std::vector<serve::AdvisorResponse>& responses, ResponseCache* cache);

  // Metrics accessors (post-drain; the cluster snapshots between batches).
  ShardStats stats() const;
  std::size_t max_queue_depth() const { return queue_.max_depth(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  void drain_latencies(std::vector<double>& into);  // moves out recorded ms

  // The replica registry, exposed so the cluster can count fits (which must
  // stay zero here — replicas adopt, never fit).
  const serve::ModelRegistry& registry() const { return *registry_; }

 private:
  // One resident corpus on this shard: the adopted bundle (owned by
  // registry_) and the mapping constants its requests evaluate under.
  struct Replica {
    const serve::FittedModels* fitted = nullptr;
    model::MappingConstants constants;
  };

  int index_;
  std::size_t batch_size_;
  std::chrono::nanoseconds batch_deadline_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  std::map<std::uint64_t, Replica> replicas_;  // corpus key -> replica
  core::BatchQueue<RoutedRequest> queue_;

  mutable std::mutex stats_mutex_;
  ShardStats stats_;
  std::vector<double> latencies_ms_;
};

}  // namespace isr::cluster
