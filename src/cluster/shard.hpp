// One serving shard: a replicated serve::ModelRegistry (the primary fits
// the calibration corpus once; every shard adopts a copy of the fitted
// bundle, so a cluster performs exactly one fit per distinct corpus
// fingerprint no matter how many shards it runs), fed by a bounded
// core::BatchQueue the cluster's producer lane pushes routed requests into.
// The shard's worker drains coalesced batches — flushed on batch size, on
// the coalescing deadline, or on queue close — and evaluates each request
// through serve::answer_request against the replica's models, writing the
// response into its pre-assigned slot and (on a miss path) into the shared
// response cache.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/batch_queue.hpp"
#include "serve/advisor.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {

class ResponseCache;

// One routed request in flight: where its response goes, its cache key, and
// when it entered the queue (the latency measurement's start point).
struct RoutedRequest {
  serve::AdvisorRequest request;
  std::size_t slot = 0;
  std::string cache_key;
  std::chrono::steady_clock::time_point enqueued;
};

// Per-shard counters, merged into ClusterMetrics by the cluster.
struct ShardStats {
  long queries = 0;  // requests this shard evaluated
  long batches = 0;
  long size_flushes = 0;
  long deadline_flushes = 0;
  long close_flushes = 0;
};

class Shard {
 public:
  Shard(int index, model::MappingConstants constants, std::size_t queue_capacity,
        std::size_t batch_size, std::chrono::nanoseconds batch_deadline);

  int index() const { return index_; }

  // Replication: installs the primary's fitted bundle into this shard's
  // replica registry (no refit) and binds evaluation to it.
  void adopt(const serve::FittedModels& bundle);

  // Admission. try_enqueue returns false when the queue is full, leaving
  // `item` intact so the producer can drain a batch itself and retry;
  // close() marks the end of the current batch's pushes; reopen() re-arms
  // for the next call.
  bool try_enqueue(RoutedRequest&& item) { return queue_.try_push(std::move(item)); }
  void close() { queue_.close(); }
  void reopen() { queue_.reopen(); }

  // Drains and evaluates ONE coalesced batch: responses land in
  // `responses[item.slot]`, evaluated responses are inserted into `cache`
  // (when non-null and enabled), per-request latencies are recorded.
  // Returns false when the queue is closed and empty — the worker's stop
  // signal. Safe to call concurrently (the producer lane helps under
  // backpressure while the worker lane drains).
  bool drain_one_batch(std::vector<serve::AdvisorResponse>& responses, ResponseCache* cache);

  // Metrics accessors (post-drain; the cluster snapshots between batches).
  ShardStats stats() const;
  std::size_t max_queue_depth() const { return queue_.max_depth(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  void drain_latencies(std::vector<double>& into);  // moves out recorded ms

  // The replica registry, exposed so the cluster can count fits (which must
  // stay zero here — replicas adopt, never fit).
  const serve::ModelRegistry& registry() const { return *registry_; }

 private:
  int index_;
  model::MappingConstants constants_;
  std::size_t batch_size_;
  std::chrono::nanoseconds batch_deadline_;
  std::unique_ptr<serve::ModelRegistry> registry_;
  const serve::FittedModels* fitted_ = nullptr;  // owned by registry_
  core::BatchQueue<RoutedRequest> queue_;

  mutable std::mutex stats_mutex_;
  ShardStats stats_;
  std::vector<double> latencies_ms_;
};

}  // namespace isr::cluster
