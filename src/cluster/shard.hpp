// One serving shard: a bounded core::OrderedBatchQueue the cluster's
// admission path pushes StreamItems into, drained by a dedicated SUPERVISED
// worker thread the shard owns (start()/stop()). Since the recalibration
// PR, shards hold NO model state of their own: every StreamItem carries a
// shared_ptr pin of the bundle it was admitted under plus its corpus's
// mapping constants, so any shard can evaluate any item — placement,
// failover, and even a mid-flight recalibration swap can never change the
// bytes a request answers. The worker drains coalesced batches — flushed
// on batch size, on the coalescing deadline, on a kick (a closing stream
// flushing its in-flight tail), or on shutdown — in strict-priority/EDF
// order and evaluates each batch through serve::answer_batch, grouped by
// pinned (bundle, constants) pair, but an evaluation that throws becomes an
// in-slot error
// response (never a dead thread), an injected transient failure hands the
// item to the cluster's failure handler for retry/failover, and a
// (simulated) worker crash parks the undelivered batch in an in-flight
// ledger the heartbeat watchdog re-drives after restart() — which is what
// makes StreamSession::close() un-hangable: every admitted item is always
// delivered by SOMEONE.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/arena.hpp"
#include "core/batch_queue.hpp"
#include "core/fault.hpp"
#include "cluster/stream.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"

namespace isr::cluster {

class ResponseCache;

// Per-shard health as the router/admission path sees it:
//   healthy  — worker alive, heartbeat advancing, no recent failures.
//   degraded — alive but suspect: freshly restarted, stalled mid-drain,
//              or a recent transient failure; still routable.
//   down     — worker crashed and not yet restarted; admission and
//              failover route around it.
enum class ShardHealth : int { kHealthy = 0, kDegraded = 1, kDown = 2 };
const char* shard_health_name(ShardHealth health);

// Items the worker could not answer in place (injected transient
// failures): the cluster's handler retries them against the next shard in
// their key's rendezvous order, or degrades them once the retry budget is
// spent. `from_shard` is the shard that failed them.
using FailureHandler = std::function<void(std::vector<StreamItem>&&, int from_shard)>;

// Per-shard counters, merged into ClusterMetrics by the cluster.
struct ShardStats {
  long queries = 0;  // requests this shard evaluated AND delivered
  long batches = 0;
  long size_flushes = 0;
  long deadline_flushes = 0;
  long kick_flushes = 0;  // partial batches flushed by a closing stream
  long close_flushes = 0;
  long eval_exceptions = 0;  // evaluations that threw (answered in-slot)
};

class Shard {
 public:
  Shard(int index, std::size_t queue_capacity, std::size_t batch_size,
        std::chrono::nanoseconds batch_deadline, double initial_service_us);
  // Joins the worker if the owner forgot stop(); sessions are closed by
  // then per the cluster contract, so nothing can be in flight.
  ~Shard();

  int index() const { return index_; }

  // Starts the dedicated worker thread. `faults` (nullable) injects the
  // deterministic chaos schedule; `on_failed` (nullable) receives items
  // that failed transiently; `trace` (nullable) records lifecycle spans —
  // the worker emits queue/eval/deliver events only when the recorder is
  // live-clocked (under --replay the cluster emits the whole virtual chain
  // at admission instead). Call once.
  void start(ResponseCache* cache, core::FaultInjector* faults, FailureHandler on_failed,
             obs::TraceRecorder* trace = nullptr);
  // Closes the queue (shutdown()) and joins the worker — including a
  // crashed one the watchdog never got to.
  void stop();

  // Admission: blocking bounded push (admitters are client threads; the
  // cluster sheds at admission time, so a full queue means "wait", never
  // "help drain"). Returns false only after shutdown — the caller must
  // then answer the item itself (deliver an error), or close() would hang.
  // kick() flushes the current partial batch to the worker — a closing
  // stream's in-flight tail must not wait out the coalescing deadline.
  bool enqueue(StreamItem&& item) { return queue_.push(std::move(item)); }
  // Non-blocking variant for the failover path: workers and the watchdog
  // re-drive items with this (falling back to inline evaluation on a full
  // queue), because a blocking push from a worker into a sibling's full
  // queue could deadlock two shards against each other.
  bool try_enqueue(StreamItem&& item) { return queue_.try_push(std::move(item)); }
  void kick() { queue_.kick(); }
  // No more admissions, ever: the worker drains what remains and stops.
  void shutdown() { queue_.close(); }

  // The pure per-item evaluation (serve::answer_request against the item's
  // pinned bundle and constants), exceptions converted to in-slot error
  // responses. Public so the cluster's failover path can evaluate inline
  // when every queue route is saturated — the response is a pure function
  // of (request, pinned bundle), so WHO evaluates never changes the bytes.
  serve::AdvisorResponse evaluate(const StreamItem& item);

  // --- Supervision surface (the cluster's heartbeat watchdog) -----------
  // Monotone liveness counter, bumped once per worker loop iteration; a
  // stale heartbeat with work pending means the worker is stalled.
  std::uint64_t heartbeat() const { return heartbeat_.load(std::memory_order_relaxed); }
  // True when the worker thread died mid-batch (injected crash). The
  // watchdog must take_inflight() and restart().
  bool worker_down() const { return crashed_.load(std::memory_order_acquire); }
  // The undelivered batch a crashed worker held. Empty once re-driven.
  std::vector<StreamItem> take_inflight();
  // True while a popped batch awaits delivery. Paired with a stale
  // heartbeat it distinguishes "stalled mid-batch" from "idle at an empty
  // queue" (an idle worker blocks in pop and legitimately stops beating).
  bool has_inflight() const;
  // Joins the dead thread and spawns a fresh worker over the same queue.
  // Only meaningful after worker_down(); counts are the caller's job.
  void restart();

  // Live shed accounting reads these: EWMAs of measured per-request
  // evaluation cost and of measured enqueue->pop queue wait, both in
  // microseconds. Relaxed atomics — a lost update skews an estimate,
  // never a response.
  double service_estimate_us() const {
    return service_estimate_us_.load(std::memory_order_relaxed);
  }
  double queue_wait_estimate_us() const {
    return queue_wait_estimate_us_.load(std::memory_order_relaxed);
  }

  // Metrics accessors (safe during live streams: stats under a mutex, the
  // queue under its own lock).
  ShardStats stats() const;
  std::size_t max_queue_depth() const { return queue_.max_depth(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  // Adds this shard's cumulative stage histograms (bounded memory, never
  // drained) into the cluster-wide roll-ups.
  void merge_stage_histograms(obs::LatencyHistogram& queue_wait,
                              obs::LatencyHistogram& service,
                              obs::LatencyHistogram& e2e) const;

 private:
  // Why one drain iteration ended: keep going, queue closed-and-empty
  // (normal worker exit), or an injected crash (the thread dies and the
  // watchdog takes over).
  enum class DrainStatus { kContinue, kStop, kCrashed };

  void worker_loop();
  DrainStatus drain_one_batch(std::vector<StreamItem>& failed);
  // Chaos/tracing lane: the historical per-item drain — fault sites,
  // in-flight ledger parking, per-item clock reads, and per-item trace
  // spans. Taken only when a fault injector is armed or a live-clock
  // tracer wants per-item spans.
  DrainStatus drain_chaos_batch(std::vector<StreamItem>& batch, core::BatchFlush flush,
                                std::chrono::steady_clock::time_point pop_now,
                                bool tracing, std::vector<StreamItem>& failed);
  // Fast-lane evaluation: groups the popped batch by its pinned
  // (bundle, constants) pair and evaluates each group through one
  // serve::answer_batch call against the per-shard arena scratch. An
  // evaluation that throws falls back to the per-item evaluate() for that
  // group, preserving the in-slot error contract.
  void evaluate_batch(std::vector<StreamItem>& batch,
                      std::vector<serve::AdvisorResponse>& responses);

  int index_;
  std::size_t batch_size_;
  std::chrono::nanoseconds batch_deadline_;
  core::OrderedBatchQueue<StreamItem, StreamBefore> queue_;
  std::atomic<double> service_estimate_us_;
  std::atomic<double> queue_wait_estimate_us_{0.0};

  // Wiring fixed by start() before the worker exists; restart() reuses it.
  ResponseCache* cache_ = nullptr;
  core::FaultInjector* faults_ = nullptr;
  FailureHandler on_failed_;
  obs::TraceRecorder* trace_ = nullptr;
  std::thread worker_;

  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<bool> crashed_{false};
  // The batch currently being evaluated, parked here from pop until the
  // delivery loop finishes so a crash can never lose work. Guarded by its
  // own mutex: the watchdog reads it while the (dead) worker cannot.
  mutable std::mutex inflight_mutex_;
  std::vector<StreamItem> inflight_;

  // Worker-private drain scratch (only the worker thread touches these;
  // restart() joins the dead worker before a new one exists): the popped
  // batch, its response slots, the grouping arena, and the arena behind
  // the batched evaluator's term columns all keep their capacity across
  // batches, so a warmed-up drain loop runs allocation-free.
  std::vector<StreamItem> batch_scratch_;
  std::vector<serve::AdvisorResponse> response_scratch_;
  core::Arena group_arena_;
  serve::EvalScratch eval_scratch_;

  mutable std::mutex stats_mutex_;
  ShardStats stats_;
  // Cumulative per-stage latency histograms (microseconds): fixed ~600
  // bytes each forever, so a stream that never asks for metrics cannot
  // grow state — this replaced the old bounded sample reservoir.
  obs::LatencyHistogram queue_wait_us_;
  obs::LatencyHistogram service_us_;
  obs::LatencyHistogram e2e_us_;
};

}  // namespace isr::cluster
