// Operational metrics for the serving cluster, exported as one JSON line
// (fixed field order, printf-formatted numbers — the same stable-bytes
// discipline as the response wire format). Metrics are observability, not
// part of the determinism contract: latencies are wall-clock measurements
// and vary run to run; everything else (queries, shard counts, hit rates)
// is deterministic for a deterministic workload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace isr::cluster {

// Nearest-rank percentile of `samples` (copied and sorted internally);
// p in [0, 100]. Returns 0 for an empty sample set. For more than one
// percentile over the same samples, prefer percentiles() — one sort.
double percentile(std::vector<double> samples, double p);

// All requested percentiles in one pass: sorts `samples` once (in place),
// then answers each p by nearest rank. Results align with `ps`; an empty
// sample set yields all zeros. Matches percentile()'s conventions
// (p <= 0 -> min, p >= 100 -> max).
std::vector<double> percentiles(std::vector<double>& samples,
                                const std::vector<double>& ps);

struct ClusterMetrics {
  int shards = 0;
  long queries = 0;                 // total requests answered (hits included)
  std::vector<long> shard_queries;  // evaluated per shard (cache misses)

  // Per-resident-corpus request counts (hits and error slots included), in
  // cluster-config order; the default corpus reports as "default". Requests
  // naming a corpus that is not resident are counted separately — they get
  // in-slot error responses and never reach a shard.
  std::vector<std::pair<std::string, long>> corpus_queries;
  long unknown_corpus_queries = 0;

  // Live recalibration: the current bundle epoch per configured corpus
  // (cluster-config order; 0 = not yet resident under lazy fitting, 1 =
  // initial fit, +1 per refit), refits completed, corpora fitted lazily on
  // first query, and response-cache entries evicted by epoch-scoped
  // invalidation sweeps after refit swaps.
  std::vector<std::pair<std::string, std::uint64_t>> bundle_epoch;
  long refits = 0;
  long lazy_fits = 0;
  long epoch_invalidations = 0;

  // Streaming admission: sessions ever opened (serve_batch counts one per
  // call — it is a session under the hood), and requests refused at
  // admission because their estimated completion would miss the deadline.
  long streams = 0;
  long shed_queries = 0;

  // Hot-key rebalancing: requests routed off their home shard through
  // rendezvous sub-keys, and keys currently above the imbalance threshold.
  long rebalanced_queries = 0;
  int hot_keys = 0;

  long cache_lookups = 0;
  long cache_hits = 0;
  double cache_hit_rate = 0.0;  // hits / lookups; 0 when the cache is off

  // Fault tolerance: crashed workers restarted by the watchdog, requests
  // rerouted off a failed/down shard, re-drives after transient failures,
  // re-drives abandoned because the request deadline had passed, and
  // explicit degraded responses delivered ("degraded":true on the wire —
  // retry budget spent, timeout, failed corpus fit, or shutdown race).
  // eval_exceptions counts evaluations that threw and were answered with
  // an in-slot error; faults_injected is the injector's firing total (0
  // whenever ISR_FAULT_SEED is unset). shard_health snapshots each shard's
  // state, "healthy" / "degraded" / "down", in shard order.
  long worker_restarts = 0;
  long failovers = 0;
  long retries = 0;
  long timeouts = 0;
  long degraded_queries = 0;
  long eval_exceptions = 0;
  long faults_injected = 0;
  std::vector<std::string> shard_health;

  long batches = 0;  // coalesced batches drained across all shards
  long size_flushes = 0;      // batch reached the configured batch size
  long deadline_flushes = 0;  // coalescing deadline fired first
  long kick_flushes = 0;      // a closing stream flushed a partial batch
  long close_flushes = 0;     // queue shutdown drained a partial batch
  std::size_t max_queue_depth = 0;  // deepest any shard queue ever was

  // Per-stage latency histograms (microseconds, log2 buckets, bounded
  // memory — see obs/histogram.hpp), cumulative since cluster start:
  //   queue_wait  enqueue -> popped into a batch by a worker
  //   service     one request's evaluation inside the drained batch
  //   e2e         enqueue -> response slot written (cache hits and shed
  //               requests never enter a shard queue and are not counted)
  // The queue_wait histogram's shard-local EWMA also feeds admission's
  // completion estimate (cluster.cpp), so shedding reflects measured
  // stage time.
  obs::LatencyHistogram queue_wait;
  obs::LatencyHistogram service;
  obs::LatencyHistogram e2e;

  // Convenience views of the e2e histogram (estimates, milliseconds) —
  // kept because benches and dashboards already chart them.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;

  // One JSON object, no trailing newline. Schema in docs/ARCHITECTURE.md.
  std::string to_jsonl() const;
};

}  // namespace isr::cluster
