// Request routing for the serving cluster: a consistent-hash ring over the
// shards, keyed by (calibration-corpus fingerprint, request architecture).
// Every request for one (corpus, architecture) pair lands on the same
// shard — shard affinity keeps that pair's models hot in one replica's
// cache lines — and the home assignment is a pure function of the key and
// the shard count, so routing is stable across runs, processes, and
// machines. A multi-corpus cluster routes every resident corpus through
// one ring: the fingerprint is part of the key, not of the router.
//
// Consistent hashing (virtual nodes on a sorted ring) rather than
// `hash % shards` so that resizing the cluster moves only ~1/N of the key
// space: a shard added to a warm cluster leaves most keys pinned to their
// old replica.
//
// Skew handling: shard affinity has a failure mode — one hot (corpus,
// arch) key can pin a whole shard while its siblings idle. route() tracks
// per-key load in a decaying counter; when one key's load exceeds
// `imbalance_ratio` times a shard's fair share of the traffic, the key is
// split across sub-keys: request r for hot key K goes to the
// (rr mod shards)-th shard of K's rendezvous order (shards sorted by
// hash_seed(K, shard), a per-key deterministic permutation), rr a per-key
// round-robin counter. Correctness never depends on placement — every
// shard holds every resident bundle, and responses are pure functions of
// (request, fitted models) — so rebalancing changes which replica
// evaluates, never the bytes a client sees.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace isr::cluster {

struct RouterOptions {
  // Virtual-node count per shard; more replicas smooth the key-space split
  // at the cost of a larger (still tiny) ring.
  int replicas = 64;
  // Hot-key splitting on/off. Off, route() is exactly shard_for() plus
  // load accounting.
  bool rebalance = true;
  // A key is hot when its decayed load exceeds this multiple of a shard's
  // fair share (total decayed load / shards). <= 0 disables rebalancing.
  double imbalance_ratio = 1.25;
  // Every `decay_window` routed requests, all load counters halve — recent
  // traffic dominates, and a key that cooled off returns to its home shard.
  std::size_t decay_window = 4096;
  // A key can only turn hot once its own decayed load reaches this floor,
  // so the first few requests of a batch never scatter off-home just
  // because the totals are still tiny.
  double min_hot_load = 32.0;
};

class Router {
 public:
  explicit Router(int shards, RouterOptions options = {});

  // The home shard for (corpus fingerprint, arch), in [0, shards()).
  // Pure lookup: no load accounting, stable across runs.
  int shard_for(std::uint64_t corpus_fingerprint, const std::string& arch) const;

  // Stateful routing of the next request for the key: records its load in
  // the decaying counter and, when the key is hot, spreads it round-robin
  // across the key's rendezvous shard order. NOT thread-safe — the cluster
  // calls it from its serialized admission path (under the admission
  // lock); rebalanced() alone may be read concurrently.
  int route(std::uint64_t corpus_fingerprint, const std::string& arch);

  int shards() const { return shards_; }

  // Requests a hot key actually moved OFF its home shard (round-robin
  // picks that land home are not counted). Cumulative; atomic so metrics
  // snapshots may read it while a batch routes.
  long rebalanced() const { return rebalanced_.load(std::memory_order_relaxed); }

  // Keys currently above the imbalance threshold. Same thread-safety
  // caveat as route(): the cluster snapshots it under the admission lock.
  int hot_keys() const;

  // The key's deterministic rendezvous permutation of ALL shards — entry 0
  // is the preferred sub-shard a hot key splits onto first, and the order
  // failover walks when a shard is down or a request is re-driven after a
  // transient failure. A pure function of (key, shard count): stable
  // across runs and safe to call from any thread (it touches no load
  // state, unlike route()).
  std::vector<int> rendezvous_order(std::uint64_t corpus_fingerprint,
                                    const std::string& arch) const;

 private:
  struct KeyLoad {
    double load = 0.0;
    std::uint32_t rr = 0;           // round-robin cursor over the sub-keys
    int home = -1;                  // cached ring_successor of the key
    std::vector<int> rendezvous;    // lazily computed shard permutation
  };

  int ring_successor(std::uint64_t point) const;
  bool is_hot(double load) const;

  int shards_;
  RouterOptions options_;
  // Sorted (ring position, shard) points; lookups take the successor of
  // the key's hash (wrapping to the first point).
  std::vector<std::pair<std::uint64_t, int>> ring_;

  std::unordered_map<std::uint64_t, KeyLoad> load_;
  double total_load_ = 0.0;
  std::size_t routes_since_decay_ = 0;
  std::atomic<long> rebalanced_{0};
};

}  // namespace isr::cluster
