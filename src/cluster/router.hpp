// Request routing for the serving cluster: a consistent-hash ring over the
// shards, keyed by (calibration-corpus fingerprint, request architecture).
// Every request for one architecture lands on the same shard — shard
// affinity keeps that architecture's models hot in one replica's cache
// lines — and the assignment is a pure function of the key and the shard
// count, so routing is stable across runs, processes, and machines.
//
// Consistent hashing (virtual nodes on a sorted ring) rather than
// `hash % shards` so that resizing the cluster moves only ~1/N of the key
// space: a shard added to a warm cluster leaves most architectures pinned
// to their old replica.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace isr::cluster {

class Router {
 public:
  // `replicas` is the virtual-node count per shard; more replicas smooth
  // the key-space split at the cost of a larger (still tiny) ring.
  explicit Router(int shards, std::uint64_t corpus_fingerprint, int replicas = 64);

  // The shard owning `arch`'s slice of the ring, in [0, shards()).
  int shard_for(const std::string& arch) const;

  int shards() const { return shards_; }

 private:
  int shards_;
  std::uint64_t fingerprint_;
  // Sorted (ring position, shard) points; shard_for takes the successor of
  // the key's hash (wrapping to the first point).
  std::vector<std::pair<std::uint64_t, int>> ring_;
};

}  // namespace isr::cluster
