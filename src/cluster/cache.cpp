#include "cluster/cache.hpp"

#include <cstdio>
#include <cstring>

#include "math/rng.hpp"

namespace isr::cluster {

std::string canonical_request_key(const serve::AdvisorRequest& r) {
  std::uint64_t budget_bits = 0;
  static_assert(sizeof(budget_bits) == sizeof(r.budget_seconds), "double must be 64-bit");
  std::memcpy(&budget_bits, &r.budget_seconds, sizeof(budget_bits));
  char tail[96];
  std::snprintf(tail, sizeof(tail), "|%s|%d|%d|%d|%016llx|%d|",
                serve::renderer_token(r.renderer), r.n_per_task, r.tasks, r.image_edge,
                static_cast<unsigned long long>(budget_bits), r.frames);
  char head[24];
  std::snprintf(head, sizeof(head), "%zu:", r.arch.size());
  char corpus_head[24];
  std::snprintf(corpus_head, sizeof(corpus_head), "%zu:", r.corpus.size());
  std::string key;
  key.reserve(r.arch.size() + r.corpus.size() + 64);
  key += head;
  key += r.arch;
  key += tail;
  key += corpus_head;
  key += r.corpus;
  return key;
}

ResponseCache::ResponseCache(std::size_t entries, int ways) {
  if (entries == 0) return;  // disabled
  if (ways < 1) ways = 1;
  if (static_cast<std::size_t>(ways) > entries) ways = static_cast<int>(entries);
  const std::size_t per_way = (entries + static_cast<std::size_t>(ways) - 1) /
                              static_cast<std::size_t>(ways);
  ways_.reserve(static_cast<std::size_t>(ways));
  for (int w = 0; w < ways; ++w) {
    auto way = std::make_unique<Way>();
    way->capacity = per_way;
    ways_.push_back(std::move(way));
  }
}

ResponseCache::Way& ResponseCache::way_for(const std::string& key) {
  // hash_combine's FNV-1a path over the key bytes; splitmix64-finalized, so
  // the low bits used for way selection are well mixed.
  const std::uint64_t h = hash_combine(0x57A9E5ull, key);
  return *ways_[static_cast<std::size_t>(h % ways_.size())];
}

bool ResponseCache::lookup(const std::string& key, serve::AdvisorResponse& out) {
  if (!enabled()) return false;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Way& way = way_for(key);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(key);
  if (it == way.index.end()) return false;
  way.lru.splice(way.lru.begin(), way.lru, it->second);  // refresh recency
  out = it->second->second;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResponseCache::insert(const std::string& key, const serve::AdvisorResponse& response) {
  if (!enabled()) return;
  Way& way = way_for(key);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(key);
  if (it != way.index.end()) {
    it->second->second = response;
    way.lru.splice(way.lru.begin(), way.lru, it->second);
    return;
  }
  if (way.lru.size() >= way.capacity) {
    way.index.erase(way.lru.back().first);  // evict least recently used
    way.lru.pop_back();
  }
  way.lru.emplace_front(key, response);
  way.index.emplace(way.lru.front().first, way.lru.begin());
}

std::size_t ResponseCache::size() const {
  std::size_t total = 0;
  for (const auto& way : ways_) {
    std::lock_guard<std::mutex> lock(way->mutex);
    total += way->lru.size();
  }
  return total;
}

std::size_t ResponseCache::capacity() const {
  std::size_t total = 0;
  for (const auto& way : ways_) total += way->capacity;
  return total;
}

}  // namespace isr::cluster
