#include "cluster/cache.hpp"

#include <charconv>
#include <cstring>
#include <iterator>
#include <utility>

#include "math/rng.hpp"

namespace isr::cluster {

namespace {

// to_chars-based formatting helpers: the key is rebuilt twice per served
// request (admission lookup, worker insert), so snprintf's format-string
// parsing was a measurable slice of the cold path.
inline char* put_decimal(char* p, long long v) {
  return std::to_chars(p, p + 24, v).ptr;
}

inline char* put_hex16(char* p, std::uint64_t v) {
  static const char kHex[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4)
    *p++ = kHex[(v >> shift) & 0xF];
  return p;
}

}  // namespace

void canonical_request_key_into(const serve::AdvisorRequest& r, std::string& key) {
  std::uint64_t budget_bits = 0;
  static_assert(sizeof(budget_bits) == sizeof(r.budget_seconds), "double must be 64-bit");
  std::memcpy(&budget_bits, &r.budget_seconds, sizeof(budget_bits));
  key.clear();
  key.reserve(r.arch.size() + r.corpus.size() + 64);
  char scratch[112];
  char* p = put_decimal(scratch, static_cast<long long>(r.arch.size()));
  *p++ = ':';
  key.append(scratch, static_cast<std::size_t>(p - scratch));
  key += r.arch;
  p = scratch;
  *p++ = '|';
  const char* token = serve::renderer_token(r.renderer);
  const std::size_t token_len = std::strlen(token);
  std::memcpy(p, token, token_len);
  p += token_len;
  *p++ = '|';
  p = put_decimal(p, r.n_per_task);
  *p++ = '|';
  p = put_decimal(p, r.tasks);
  *p++ = '|';
  p = put_decimal(p, r.image_edge);
  *p++ = '|';
  p = put_hex16(p, budget_bits);
  *p++ = '|';
  p = put_decimal(p, r.frames);
  *p++ = '|';
  p = put_decimal(p, static_cast<long long>(r.corpus.size()));
  *p++ = ':';
  key.append(scratch, static_cast<std::size_t>(p - scratch));
  key += r.corpus;
}

std::string canonical_request_key(const serve::AdvisorRequest& r) {
  std::string key;
  canonical_request_key_into(r, key);
  return key;
}

ResponseCache::ResponseCache(std::size_t entries, int ways, std::size_t partitions) {
  if (entries == 0) return;  // disabled
  if (partitions < 1) partitions = 1;
  // Every partition gets an equal, nonzero quota: a resident corpus with a
  // cache at all must be able to hold at least one entry, even when the
  // operator configures fewer total entries than corpora.
  const std::size_t quota = entries / partitions > 0 ? entries / partitions : 1;
  if (ways < 1) ways = 1;
  if (static_cast<std::size_t>(ways) > quota) ways = static_cast<int>(quota);
  const std::size_t per_way =
      (quota + static_cast<std::size_t>(ways) - 1) / static_cast<std::size_t>(ways);
  partitions_.resize(partitions);
  for (Partition& partition : partitions_) {
    partition.ways.reserve(static_cast<std::size_t>(ways));
    for (int w = 0; w < ways; ++w) {
      auto way = std::make_unique<Way>();
      way->capacity = per_way;
      // The way can never hold more than its capacity, so ALL of its
      // storage is paid for here: the index's buckets (no rehash during
      // fill), a spare list node per slot, and a detached index node per
      // slot (materialized through a scratch map, then extracted — a
      // node handle keeps its allocation and its key's buffer). A cold
      // fill then consumes pre-built nodes instead of calling malloc
      // per insert, which is most of what made a cache-filling run slower
      // than an uncached one.
      way->index.reserve(per_way);
      for (std::size_t i = 0; i < per_way; ++i) {
        way->spare.emplace_back();
        way->spare.back().key.reserve(96);
      }
      Index scratch;
      scratch.reserve(per_way);
      for (std::size_t i = 0; i < per_way; ++i)
        scratch.emplace(static_cast<std::uint64_t>(i), way->spare.begin());
      way->node_pool.reserve(per_way);
      while (!scratch.empty())
        way->node_pool.push_back(scratch.extract(scratch.begin()));
      partition.ways.push_back(std::move(way));
    }
  }
}

ResponseCache::Way& ResponseCache::way_for(std::size_t partition, std::uint64_t hash) {
  // The key bytes are hashed exactly once per cache operation (FNV-1a +
  // splitmix64 finalizer via hash_combine); way selection uses the low
  // bits, the index uses the full value through IdentityHash.
  Partition& p = partitions_[partition];
  return *p.ways[static_cast<std::size_t>(hash % p.ways.size())];
}

bool ResponseCache::lookup(std::size_t partition, std::uint64_t epoch,
                           const std::string& key, serve::AdvisorResponse& out) {
  if (!enabled()) return false;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = hash_combine(0x57A9E5ull, key);
  Way& way = way_for(partition, h);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(h);
  if (it == way.index.end()) return false;
  // A 64-bit hash collision between distinct keys is a plain miss — the
  // stored bytes are the identity, the hash is only the lookup shortcut.
  if (it->second->key != key) return false;
  if (it->second->epoch != epoch) {
    // Stale entry from a superseded epoch: evict in passing — no future
    // lookup can want it. A NEWER entry (the looker pinned an old bundle
    // mid-swap) is left alone; the post-swap traffic wants it. Both nodes
    // go back to the way's pre-allocated pools, not to the heap.
    if (it->second->epoch < epoch) {
      const auto entry = it->second;
      way.node_pool.push_back(way.index.extract(it));
      way.spare.splice(way.spare.begin(), way.lru, entry);
    }
    return false;
  }
  way.lru.splice(way.lru.begin(), way.lru, it->second);  // refresh recency
  out = it->second->response;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResponseCache::insert(std::size_t partition, std::uint64_t epoch,
                           const std::string& key,
                           const serve::AdvisorResponse& response) {
  if (!enabled()) return;
  const std::uint64_t h = hash_combine(0x57A9E5ull, key);
  Way& way = way_for(partition, h);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(h);
  if (it != way.index.end()) {
    // Refresh — or, on a 64-bit collision with a different key, replace
    // the colliding entry (an eviction the LRU was allowed anyway).
    Entry& entry = *it->second;
    if (entry.key != key) entry.key.assign(key);
    entry.epoch = epoch;
    entry.response = response;
    way.lru.splice(way.lru.begin(), way.lru, it->second);
    return;
  }
  if (way.lru.size() >= way.capacity) {
    // Evict-by-recycling: splice the LRU node to the front and overwrite
    // it, re-homing its index slot through a node handle — a full way
    // turns over entries with zero list/map allocations (assign() copies
    // the key bytes into the victim's existing buffer).
    const auto victim = std::prev(way.lru.end());
    auto node = way.index.extract(victim->hash);
    way.lru.splice(way.lru.begin(), way.lru, victim);
    victim->key.assign(key);
    victim->hash = h;
    victim->epoch = epoch;
    victim->response = response;
    node.key() = h;
    node.mapped() = victim;
    way.index.insert(std::move(node));
    return;
  }
  // Filling: consume one pre-built list node and one pre-built index node
  // (see the constructor). The fallbacks only matter for entries displaced
  // into a way beyond its nominal share by invalidate_stale churn.
  if (!way.spare.empty()) {
    way.lru.splice(way.lru.begin(), way.spare, way.spare.begin());
  } else {
    way.lru.emplace_front();
  }
  Entry& entry = way.lru.front();
  entry.key.assign(key);
  entry.hash = h;
  entry.epoch = epoch;
  entry.response = response;
  if (!way.node_pool.empty()) {
    auto node = std::move(way.node_pool.back());
    way.node_pool.pop_back();
    node.key() = h;
    node.mapped() = way.lru.begin();
    way.index.insert(std::move(node));
  } else {
    way.index.emplace(h, way.lru.begin());
  }
}

std::size_t ResponseCache::invalidate_stale(std::size_t partition,
                                            std::uint64_t keep_epoch) {
  if (!enabled() || partition >= partitions_.size()) return 0;
  std::size_t evicted = 0;
  for (const auto& way : partitions_[partition].ways) {
    std::lock_guard<std::mutex> lock(way->mutex);
    for (auto it = way->lru.begin(); it != way->lru.end();) {
      if (it->epoch < keep_epoch) {
        // Recycle both nodes into the way's pools (see insert): a refit
        // sweep frees capacity without surrendering it to the heap.
        way->node_pool.push_back(way->index.extract(it->hash));
        const auto stale = it++;
        way->spare.splice(way->spare.begin(), way->lru, stale);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::size_t ResponseCache::size() const {
  std::size_t total = 0;
  for (const Partition& partition : partitions_)
    for (const auto& way : partition.ways) {
      std::lock_guard<std::mutex> lock(way->mutex);
      total += way->lru.size();
    }
  return total;
}

std::size_t ResponseCache::capacity() const {
  std::size_t total = 0;
  for (const Partition& partition : partitions_)
    for (const auto& way : partition.ways) total += way->capacity;
  return total;
}

std::size_t ResponseCache::partition_capacity(std::size_t partition) const {
  if (partition >= partitions_.size()) return 0;
  std::size_t total = 0;
  for (const auto& way : partitions_[partition].ways) total += way->capacity;
  return total;
}

}  // namespace isr::cluster
