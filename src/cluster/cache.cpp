#include "cluster/cache.hpp"

#include <cstdio>
#include <cstring>

#include "math/rng.hpp"

namespace isr::cluster {

std::string canonical_request_key(const serve::AdvisorRequest& r) {
  std::uint64_t budget_bits = 0;
  static_assert(sizeof(budget_bits) == sizeof(r.budget_seconds), "double must be 64-bit");
  std::memcpy(&budget_bits, &r.budget_seconds, sizeof(budget_bits));
  char tail[96];
  std::snprintf(tail, sizeof(tail), "|%s|%d|%d|%d|%016llx|%d|",
                serve::renderer_token(r.renderer), r.n_per_task, r.tasks, r.image_edge,
                static_cast<unsigned long long>(budget_bits), r.frames);
  char head[24];
  std::snprintf(head, sizeof(head), "%zu:", r.arch.size());
  char corpus_head[24];
  std::snprintf(corpus_head, sizeof(corpus_head), "%zu:", r.corpus.size());
  std::string key;
  key.reserve(r.arch.size() + r.corpus.size() + 64);
  key += head;
  key += r.arch;
  key += tail;
  key += corpus_head;
  key += r.corpus;
  return key;
}

ResponseCache::ResponseCache(std::size_t entries, int ways, std::size_t partitions) {
  if (entries == 0) return;  // disabled
  if (partitions < 1) partitions = 1;
  // Every partition gets an equal, nonzero quota: a resident corpus with a
  // cache at all must be able to hold at least one entry, even when the
  // operator configures fewer total entries than corpora.
  const std::size_t quota = entries / partitions > 0 ? entries / partitions : 1;
  if (ways < 1) ways = 1;
  if (static_cast<std::size_t>(ways) > quota) ways = static_cast<int>(quota);
  const std::size_t per_way =
      (quota + static_cast<std::size_t>(ways) - 1) / static_cast<std::size_t>(ways);
  partitions_.resize(partitions);
  for (Partition& partition : partitions_) {
    partition.ways.reserve(static_cast<std::size_t>(ways));
    for (int w = 0; w < ways; ++w) {
      auto way = std::make_unique<Way>();
      way->capacity = per_way;
      partition.ways.push_back(std::move(way));
    }
  }
}

ResponseCache::Way& ResponseCache::way_for(std::size_t partition, const std::string& key) {
  // hash_combine's FNV-1a path over the key bytes; splitmix64-finalized, so
  // the low bits used for way selection are well mixed.
  Partition& p = partitions_[partition];
  const std::uint64_t h = hash_combine(0x57A9E5ull, key);
  return *p.ways[static_cast<std::size_t>(h % p.ways.size())];
}

bool ResponseCache::lookup(std::size_t partition, std::uint64_t epoch,
                           const std::string& key, serve::AdvisorResponse& out) {
  if (!enabled()) return false;
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Way& way = way_for(partition, key);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(key);
  if (it == way.index.end()) return false;
  if (it->second->epoch != epoch) {
    // Stale entry from a superseded epoch: erase in passing — no future
    // lookup can want it. A NEWER entry (the looker pinned an old bundle
    // mid-swap) is left alone; the post-swap traffic wants it.
    if (it->second->epoch < epoch) {
      way.lru.erase(it->second);
      way.index.erase(it);
    }
    return false;
  }
  way.lru.splice(way.lru.begin(), way.lru, it->second);  // refresh recency
  out = it->second->response;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResponseCache::insert(std::size_t partition, std::uint64_t epoch,
                           const std::string& key,
                           const serve::AdvisorResponse& response) {
  if (!enabled()) return;
  Way& way = way_for(partition, key);
  std::lock_guard<std::mutex> lock(way.mutex);
  const auto it = way.index.find(key);
  if (it != way.index.end()) {
    it->second->epoch = epoch;
    it->second->response = response;
    way.lru.splice(way.lru.begin(), way.lru, it->second);
    return;
  }
  if (way.lru.size() >= way.capacity) {
    way.index.erase(way.lru.back().key);  // evict least recently used
    way.lru.pop_back();
  }
  way.lru.emplace_front();
  way.lru.front().key = key;
  way.lru.front().epoch = epoch;
  way.lru.front().response = response;
  way.index.emplace(way.lru.front().key, way.lru.begin());
}

std::size_t ResponseCache::invalidate_stale(std::size_t partition,
                                            std::uint64_t keep_epoch) {
  if (!enabled() || partition >= partitions_.size()) return 0;
  std::size_t evicted = 0;
  for (const auto& way : partitions_[partition].ways) {
    std::lock_guard<std::mutex> lock(way->mutex);
    for (auto it = way->lru.begin(); it != way->lru.end();) {
      if (it->epoch < keep_epoch) {
        way->index.erase(it->key);
        it = way->lru.erase(it);
        ++evicted;
      } else {
        ++it;
      }
    }
  }
  return evicted;
}

std::size_t ResponseCache::size() const {
  std::size_t total = 0;
  for (const Partition& partition : partitions_)
    for (const auto& way : partition.ways) {
      std::lock_guard<std::mutex> lock(way->mutex);
      total += way->lru.size();
    }
  return total;
}

std::size_t ResponseCache::capacity() const {
  std::size_t total = 0;
  for (const Partition& partition : partitions_)
    for (const auto& way : partition.ways) total += way->capacity;
  return total;
}

std::size_t ResponseCache::partition_capacity(std::size_t partition) const {
  if (partition >= partitions_.size()) return 0;
  std::size_t total = 0;
  for (const auto& way : partitions_[partition].ways) total += way->capacity;
  return total;
}

}  // namespace isr::cluster
