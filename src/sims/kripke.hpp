// Kripke proxy: deterministic discrete-ordinates (Sn) particle transport on
// a 3-D uniform mesh. Simplified to one energy group and eight ordinates
// (one per octant), swept in wavefront order with upwind fluxes — enough to
// produce the characteristic beam/shadow structure in the scalar flux that
// the in situ renders show, with the zone-sweep compute pattern of the
// original.
#pragma once

#include <vector>

#include "conduit/node.hpp"

namespace isr::sims {

class Kripke {
 public:
  Kripke(int nx, int ny, int nz, int rank = 0, int nranks = 1);

  void step();

  int cycle() const { return cycle_; }
  double time() const { return time_; }
  std::size_t zone_count() const { return static_cast<std::size_t>(nx_) * ny_ * nz_; }

  const std::vector<double>& scalar_flux() const { return phi_; }

  void describe(conduit::Node& out) const;

 private:
  std::size_t idx(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(nx_) * (static_cast<std::size_t>(j) +
                                            static_cast<std::size_t>(ny_) * k);
  }

  int nx_, ny_, nz_;
  int rank_;
  float origin_[3];
  float spacing_[3];
  int cycle_ = 0;
  double time_ = 0.0;

  std::vector<double> sigma_t_;  // total cross-section per zone
  std::vector<double> source_;   // fixed source per zone
  std::vector<double> phi_;      // scalar flux (the visualized field)
  std::vector<double> psi_;      // angular flux scratch, one sweep at a time
};

}  // namespace isr::sims
