#include "sims/decompose.hpp"

namespace isr::sims {

Decomposition Decomposition::create(int nranks) {
  Decomposition d;
  d.ranks = nranks;
  // Greedy near-cubic factorization: repeatedly pull the largest prime
  // factor onto the currently smallest axis.
  int rem = nranks;
  int dims[3] = {1, 1, 1};
  while (rem > 1) {
    int f = rem;
    for (int p = 2; p * p <= rem; ++p)
      if (rem % p == 0) {
        f = p;
        break;
      }
    int smallest = 0;
    for (int a = 1; a < 3; ++a)
      if (dims[a] < dims[smallest]) smallest = a;
    dims[smallest] *= f;
    rem /= f;
  }
  d.blocks = {dims[0], dims[1], dims[2]};
  return d;
}

}  // namespace isr::sims
