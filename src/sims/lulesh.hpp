// LULESH proxy: Lagrangian shock hydrodynamics on a 3-D unstructured
// hexahedral mesh. A Sedov-type point blast deposits energy at a corner;
// nodes move with the flow, so the hex mesh deforms every cycle — which
// exercises the in situ path for explicit (unstructured) coordinates, like
// the original LULESH integration in the paper.
#pragma once

#include <vector>

#include "conduit/node.hpp"

namespace isr::sims {

class Lulesh {
 public:
  // edge_elems^3 hexahedra per rank.
  Lulesh(int edge_elems, int rank = 0, int nranks = 1);

  void step();

  int cycle() const { return cycle_; }
  double time() const { return time_; }
  std::size_t elem_count() const { return conn_.size() / 8; }
  std::size_t node_count() const { return x_.size(); }

  const std::vector<float>& x() const { return x_; }
  const std::vector<float>& y() const { return y_; }
  const std::vector<float>& z() const { return z_; }
  const std::vector<int>& nodelist() const { return conn_; }
  const std::vector<double>& e() const { return e_; }

  void describe(conduit::Node& out) const;

 private:
  std::size_t node_idx(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(ne_ + 1) *
               (static_cast<std::size_t>(j) + static_cast<std::size_t>(ne_ + 1) * k);
  }

  int ne_;  // elements per edge
  int rank_;
  int cycle_ = 0;
  double time_ = 0.0;
  double dt_ = 0.0;

  // Node-centered coordinates and velocities.
  std::vector<float> x_, y_, z_;
  std::vector<float> xd_, yd_, zd_;
  // Element-centered connectivity (8 per hex, VTK order), energy, pressure.
  std::vector<int> conn_;
  std::vector<double> e_;
  std::vector<double> p_;
  std::vector<double> volume0_;
};

}  // namespace isr::sims
