#include "sims/kripke.hpp"

#include <cmath>

#include "sims/decompose.hpp"

namespace isr::sims {

Kripke::Kripke(int nx, int ny, int nz, int rank, int nranks)
    : nx_(nx), ny_(ny), nz_(nz), rank_(rank) {
  const Decomposition dec = Decomposition::create(nranks);
  const Vec3i b = dec.block_of(rank);
  spacing_[0] = 1.0f / static_cast<float>(nx * dec.blocks.x);
  spacing_[1] = 1.0f / static_cast<float>(ny * dec.blocks.y);
  spacing_[2] = 1.0f / static_cast<float>(nz * dec.blocks.z);
  origin_[0] = static_cast<float>(b.x * nx) * spacing_[0];
  origin_[1] = static_cast<float>(b.y * ny) * spacing_[1];
  origin_[2] = static_cast<float>(b.z * nz) * spacing_[2];

  sigma_t_.assign(zone_count(), 0.5);
  source_.assign(zone_count(), 0.0);
  phi_.assign(zone_count(), 0.0);
  psi_.assign(zone_count(), 0.0);

  // A dense absorber slab and a localized source: sweeps cast shadows
  // through the absorber, which shows up clearly in renders.
  for (int k = 0; k < nz_; ++k)
    for (int j = 0; j < ny_; ++j)
      for (int i = 0; i < nx_; ++i) {
        const double x = origin_[0] + (i + 0.5) * spacing_[0];
        const double y = origin_[1] + (j + 0.5) * spacing_[1];
        const double z = origin_[2] + (k + 0.5) * spacing_[2];
        if (x > 0.45 && x < 0.6 && y > 0.2 && y < 0.8 && z > 0.2 && z < 0.8)
          sigma_t_[idx(i, j, k)] = 12.0;
        const double dx = x - 0.2, dy = y - 0.5, dz = z - 0.5;
        if (dx * dx + dy * dy + dz * dz < 0.012) source_[idx(i, j, k)] = 8.0;
      }
}

void Kripke::step() {
  // One source iteration: sweep all eight octants, accumulate scalar flux.
  // In-scatter couples iterations through phi from the previous cycle.
  std::vector<double> phi_new(zone_count(), 0.0);
  const double scatter = 0.35;

  for (int oct = 0; oct < 8; ++oct) {
    const int sx = (oct & 1) ? -1 : 1;
    const int sy = (oct & 2) ? -1 : 1;
    const int sz = (oct & 4) ? -1 : 1;
    // Diamond-difference-flavored upwind sweep in wavefront order.
    const double wt = 1.0 / 8.0;
    std::fill(psi_.begin(), psi_.end(), 0.0);
    for (int kk = 0; kk < nz_; ++kk) {
      const int k = sz > 0 ? kk : nz_ - 1 - kk;
      for (int jj = 0; jj < ny_; ++jj) {
        const int j = sy > 0 ? jj : ny_ - 1 - jj;
        for (int ii = 0; ii < nx_; ++ii) {
          const int i = sx > 0 ? ii : nx_ - 1 - ii;
          const std::size_t c = idx(i, j, k);
          const double up_x = (i - sx >= 0 && i - sx < nx_) ? psi_[idx(i - sx, j, k)] : 0.0;
          const double up_y = (j - sy >= 0 && j - sy < ny_) ? psi_[idx(i, j - sy, k)] : 0.0;
          const double up_z = (k - sz >= 0 && k - sz < nz_) ? psi_[idx(i, j, k - sz)] : 0.0;
          const double inflow = (up_x + up_y + up_z) / 3.0;
          const double q = source_[c] + scatter * sigma_t_[c] * phi_[c] * wt;
          // Implicit zone balance: psi = (q + streaming*inflow) / (streaming + sigma_t)
          const double streaming = 3.0 / (spacing_[0] + spacing_[1] + spacing_[2]);
          psi_[c] = (q + streaming * inflow) / (streaming + sigma_t_[c]);
          phi_new[c] += wt * psi_[c];
        }
      }
    }
  }
  phi_ = std::move(phi_new);
  time_ += 1.0;
  ++cycle_;
}

void Kripke::describe(conduit::Node& out) const {
  // [strawman-integration-begin]
  out["state/time"] = time_;
  out["state/cycle"] = cycle_;
  out["state/domain"] = rank_;
  out["coords/type"] = "uniform";
  out["coords/dims/i"] = nx_;
  out["coords/dims/j"] = ny_;
  out["coords/dims/k"] = nz_;
  out["coords/origin/x"] = static_cast<double>(origin_[0]);
  out["coords/origin/y"] = static_cast<double>(origin_[1]);
  out["coords/origin/z"] = static_cast<double>(origin_[2]);
  out["coords/spacing/dx"] = static_cast<double>(spacing_[0]);
  out["coords/spacing/dy"] = static_cast<double>(spacing_[1]);
  out["coords/spacing/dz"] = static_cast<double>(spacing_[2]);
  out["topology/type"] = "uniform";
  // The original Kripke stores angular flux in a layout that does not match
  // the visualization data model, so (like the paper's integration) the
  // field is copied, not zero-copied.
  out["fields/phi/association"] = "element";
  out["fields/phi/type"] = "scalar";
  out["fields/phi/values"].set(phi_.data(), phi_.size());
  // [strawman-integration-end]
}

}  // namespace isr::sims
