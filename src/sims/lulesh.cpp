#include "sims/lulesh.hpp"

#include <algorithm>
#include <cmath>

#include "sims/decompose.hpp"

namespace isr::sims {

Lulesh::Lulesh(int edge_elems, int rank, int nranks) : ne_(edge_elems), rank_(rank) {
  const Decomposition dec = Decomposition::create(nranks);
  const Vec3i b = dec.block_of(rank);
  const float block_w = 1.0f / static_cast<float>(dec.blocks.x);
  const float block_h = 1.0f / static_cast<float>(dec.blocks.y);
  const float block_d = 1.0f / static_cast<float>(dec.blocks.z);
  const float h = block_w / static_cast<float>(ne_);

  const int np = ne_ + 1;
  const std::size_t n_nodes = static_cast<std::size_t>(np) * np * np;
  x_.resize(n_nodes);
  y_.resize(n_nodes);
  z_.resize(n_nodes);
  xd_.assign(n_nodes, 0.0f);
  yd_.assign(n_nodes, 0.0f);
  zd_.assign(n_nodes, 0.0f);
  for (int k = 0; k < np; ++k)
    for (int j = 0; j < np; ++j)
      for (int i = 0; i < np; ++i) {
        const std::size_t n = node_idx(i, j, k);
        x_[n] = static_cast<float>(b.x) * block_w + static_cast<float>(i) * h;
        y_[n] = static_cast<float>(b.y) * block_h + static_cast<float>(j) * (block_h / ne_);
        z_[n] = static_cast<float>(b.z) * block_d + static_cast<float>(k) * (block_d / ne_);
      }

  conn_.reserve(static_cast<std::size_t>(ne_) * ne_ * ne_ * 8);
  for (int k = 0; k < ne_; ++k)
    for (int j = 0; j < ne_; ++j)
      for (int i = 0; i < ne_; ++i) {
        const int c[8] = {static_cast<int>(node_idx(i, j, k)),
                          static_cast<int>(node_idx(i + 1, j, k)),
                          static_cast<int>(node_idx(i + 1, j + 1, k)),
                          static_cast<int>(node_idx(i, j + 1, k)),
                          static_cast<int>(node_idx(i, j, k + 1)),
                          static_cast<int>(node_idx(i + 1, j, k + 1)),
                          static_cast<int>(node_idx(i + 1, j + 1, k + 1)),
                          static_cast<int>(node_idx(i, j + 1, k + 1))};
        conn_.insert(conn_.end(), c, c + 8);
      }

  e_.assign(elem_count(), 1e-6);
  p_.assign(elem_count(), 0.0);
  volume0_.assign(elem_count(), static_cast<double>(h) * h * h);

  // Sedov energy deposition in the element nearest the global origin.
  if (rank == 0) e_[0] = 3.0;
  dt_ = 0.12 * h;
}

void Lulesh::step() {
  // Staggered Lagrangian update: element pressure from energy (ideal gas),
  // nodal acceleration from pressure differences of adjacent elements,
  // advect nodes, then element energy work term from divergence.
  const std::size_t n_elems = elem_count();
  for (std::size_t c = 0; c < n_elems; ++c) p_[c] = 0.4 * e_[c];

  std::vector<float> fx(node_count(), 0.0f), fy(node_count(), 0.0f), fz(node_count(), 0.0f);
  for (std::size_t c = 0; c < n_elems; ++c) {
    // Element center.
    float cx = 0, cy = 0, cz = 0;
    for (int v = 0; v < 8; ++v) {
      const auto n = static_cast<std::size_t>(conn_[c * 8 + static_cast<std::size_t>(v)]);
      cx += x_[n];
      cy += y_[n];
      cz += z_[n];
    }
    cx /= 8;
    cy /= 8;
    cz /= 8;
    // Pressure pushes nodes radially away from the element center.
    const float pf = static_cast<float>(p_[c]);
    for (int v = 0; v < 8; ++v) {
      const auto n = static_cast<std::size_t>(conn_[c * 8 + static_cast<std::size_t>(v)]);
      const float dx = x_[n] - cx, dy = y_[n] - cy, dz = z_[n] - cz;
      const float len = std::sqrt(dx * dx + dy * dy + dz * dz) + 1e-12f;
      fx[n] += pf * dx / len;
      fy[n] += pf * dy / len;
      fz[n] += pf * dz / len;
    }
  }

  const float dt = static_cast<float>(dt_);
  const float damp = 0.995f;
  for (std::size_t n = 0; n < node_count(); ++n) {
    xd_[n] = damp * (xd_[n] + dt * fx[n]);
    yd_[n] = damp * (yd_[n] + dt * fy[n]);
    zd_[n] = damp * (zd_[n] + dt * fz[n]);
    x_[n] += dt * xd_[n];
    y_[n] += dt * yd_[n];
    z_[n] += dt * zd_[n];
  }

  // Energy update: compression work dV/V0 plus a small diffusion between
  // face-adjacent elements along i (cheap surrogate for q-viscosity).
  for (std::size_t c = 0; c < n_elems; ++c) {
    const auto n0 = static_cast<std::size_t>(conn_[c * 8 + 0]);
    const auto n6 = static_cast<std::size_t>(conn_[c * 8 + 6]);
    const double dx = x_[n6] - x_[n0];
    const double dy = y_[n6] - y_[n0];
    const double dz = z_[n6] - z_[n0];
    const double vol = std::abs(dx * dy * dz);
    const double strain = vol / volume0_[c] - 1.0;
    e_[c] = std::max(1e-8, e_[c] - 0.6 * p_[c] * strain * dt_ * 40.0);
  }
  for (std::size_t c = 0; c + 1 < n_elems; ++c) {
    const double d = 0.02 * (e_[c + 1] - e_[c]);
    e_[c] += d;
    e_[c + 1] -= d;
  }

  time_ += dt_;
  ++cycle_;
}

void Lulesh::describe(conduit::Node& out) const {
  // [strawman-integration-begin]
  out["state/time"] = time_;
  out["state/cycle"] = cycle_;
  out["state/domain"] = rank_;
  out["coords/type"] = "explicit";
  out["coords/x"].set_external(x_.data(), x_.size());
  out["coords/y"].set_external(y_.data(), y_.size());
  out["coords/z"].set_external(z_.data(), z_.size());
  out["topology/type"] = "unstructured";
  out["topology/coordset"] = "coords";
  out["topology/elements/shape"] = "hexs";
  out["topology/elements/connectivity"].set_external(conn_.data(), conn_.size());
  out["fields/e/association"] = "element";
  out["fields/e/type"] = "scalar";
  out["fields/e/values"].set_external(e_.data(), e_.size());
  // [strawman-integration-end]
}

}  // namespace isr::sims
