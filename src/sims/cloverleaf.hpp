// CloverLeaf3D proxy: compressible Euler hydrodynamics on a 3-D rectilinear
// grid (dissertation §4.4). This is a simplified explicit scheme — a
// Sedov-like energy deposition drives an expanding shock through an ideal
// gas — not a validated hydro code; what matters for the study is that it
// owns realistic cell-centered fields that evolve every cycle and that it
// integrates with the in situ API exactly like the original (Fortran
// CloverLeaf3D did: rectilinear mesh, element-centered fields).
#pragma once

#include <vector>

#include "conduit/node.hpp"

namespace isr::sims {

class CloverLeaf {
 public:
  // Each rank owns an nx*ny*nz cell block of the global domain.
  CloverLeaf(int nx, int ny, int nz, int rank = 0, int nranks = 1);

  void step();

  int cycle() const { return cycle_; }
  double time() const { return time_; }
  std::size_t cell_count() const { return static_cast<std::size_t>(nx_) * ny_ * nz_; }

  const std::vector<double>& density() const { return density_; }
  const std::vector<double>& energy() const { return energy_; }
  const std::vector<double>& pressure() const { return pressure_; }

  // Describes this rank's mesh + fields into `out` (zero-copy), following
  // the blueprint conventions. Mirrors Listing 4.1.
  void describe(conduit::Node& out) const;

 private:
  std::size_t idx(int i, int j, int k) const {
    return static_cast<std::size_t>(i) +
           static_cast<std::size_t>(nx_) * (static_cast<std::size_t>(j) +
                                            static_cast<std::size_t>(ny_) * k);
  }
  void compute_pressure();

  int nx_, ny_, nz_;
  int rank_;
  float origin_[3];
  float spacing_[3];
  int cycle_ = 0;
  double time_ = 0.0;
  double dt_ = 0.0;

  // Cell-centered conserved/derived fields.
  std::vector<double> density_;
  std::vector<double> energy_;
  std::vector<double> pressure_;
  std::vector<double> work_;  // scratch for the update
};

}  // namespace isr::sims
