// Domain decomposition shared by the proxy apps: factor the rank count into
// a 3-D block grid (as close to cubic as possible) and give each rank its
// block coordinates.
#pragma once

#include "math/vec.hpp"

namespace isr::sims {

struct Decomposition {
  int ranks = 1;
  Vec3i blocks{1, 1, 1};  // block counts per axis; x*y*z == ranks

  static Decomposition create(int nranks);

  // Block coordinates of `rank` in [0, blocks).
  Vec3i block_of(int rank) const {
    const int bx = rank % blocks.x;
    const int by = (rank / blocks.x) % blocks.y;
    const int bz = rank / (blocks.x * blocks.y);
    return {bx, by, bz};
  }
};

}  // namespace isr::sims
