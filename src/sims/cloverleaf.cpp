#include "sims/cloverleaf.hpp"

#include <algorithm>
#include <cmath>

#include "sims/decompose.hpp"

namespace isr::sims {

namespace {
constexpr double kGamma = 1.4;  // ideal gas
}

CloverLeaf::CloverLeaf(int nx, int ny, int nz, int rank, int nranks)
    : nx_(nx), ny_(ny), nz_(nz), rank_(rank) {
  const Decomposition dec = Decomposition::create(nranks);
  const Vec3i b = dec.block_of(rank);
  spacing_[0] = 1.0f / static_cast<float>(nx * dec.blocks.x);
  spacing_[1] = 1.0f / static_cast<float>(ny * dec.blocks.y);
  spacing_[2] = 1.0f / static_cast<float>(nz * dec.blocks.z);
  origin_[0] = static_cast<float>(b.x * nx) * spacing_[0];
  origin_[1] = static_cast<float>(b.y * ny) * spacing_[1];
  origin_[2] = static_cast<float>(b.z * nz) * spacing_[2];

  density_.assign(cell_count(), 1.0);
  energy_.assign(cell_count(), 1.0);
  pressure_.assign(cell_count(), 0.0);
  work_.assign(cell_count(), 0.0);

  // Sedov-like hot region at the global origin corner.
  for (int k = 0; k < nz_; ++k)
    for (int j = 0; j < ny_; ++j)
      for (int i = 0; i < nx_; ++i) {
        const double x = origin_[0] + (i + 0.5) * spacing_[0];
        const double y = origin_[1] + (j + 0.5) * spacing_[1];
        const double z = origin_[2] + (k + 0.5) * spacing_[2];
        const double r2 = x * x + y * y + z * z;
        if (r2 < 0.04) energy_[idx(i, j, k)] = 40.0;
      }
  compute_pressure();
  dt_ = 0.2 * std::min({spacing_[0], spacing_[1], spacing_[2]});
}

void CloverLeaf::compute_pressure() {
  for (std::size_t c = 0; c < cell_count(); ++c)
    pressure_[c] = (kGamma - 1.0) * density_[c] * energy_[c];
}

void CloverLeaf::step() {
  // Explicit diffusive update of energy and density driven by pressure
  // gradients (Lax-Friedrichs flavored): mass and energy flow from high to
  // low pressure, with a smoothing term for stability.
  auto flux_update = [&](std::vector<double>& field, double rate) {
    std::copy(field.begin(), field.end(), work_.begin());
    for (int k = 0; k < nz_; ++k)
      for (int j = 0; j < ny_; ++j)
        for (int i = 0; i < nx_; ++i) {
          const std::size_t c = idx(i, j, k);
          double lap = 0.0, pgrad = 0.0;
          const double pc = pressure_[c];
          auto accum = [&](int ii, int jj, int kk) {
            if (ii < 0 || jj < 0 || kk < 0 || ii >= nx_ || jj >= ny_ || kk >= nz_) return;
            const std::size_t nb = idx(ii, jj, kk);
            lap += work_[nb] - work_[c];
            pgrad += pressure_[nb] - pc;
          };
          accum(i - 1, j, k);
          accum(i + 1, j, k);
          accum(i, j - 1, k);
          accum(i, j + 1, k);
          accum(i, j, k - 1);
          accum(i, j, k + 1);
          field[c] = work_[c] + dt_ * (rate * lap - 0.4 * pgrad * work_[c] / (pc + 1.0));
          field[c] = std::max(field[c], 1e-6);
        }
  };
  flux_update(energy_, 1.2);
  flux_update(density_, 0.8);
  compute_pressure();
  time_ += dt_;
  ++cycle_;
}

void CloverLeaf::describe(conduit::Node& out) const {
  // [strawman-integration-begin]
  out["state/time"] = time_;
  out["state/cycle"] = cycle_;
  out["state/domain"] = rank_;
  out["coords/type"] = "uniform";
  out["coords/dims/i"] = nx_;
  out["coords/dims/j"] = ny_;
  out["coords/dims/k"] = nz_;
  out["coords/origin/x"] = static_cast<double>(origin_[0]);
  out["coords/origin/y"] = static_cast<double>(origin_[1]);
  out["coords/origin/z"] = static_cast<double>(origin_[2]);
  out["coords/spacing/dx"] = static_cast<double>(spacing_[0]);
  out["coords/spacing/dy"] = static_cast<double>(spacing_[1]);
  out["coords/spacing/dz"] = static_cast<double>(spacing_[2]);
  out["topology/type"] = "uniform";
  out["fields/energy/association"] = "element";
  out["fields/energy/type"] = "scalar";
  out["fields/energy/values"].set_external(energy_.data(), energy_.size());
  out["fields/density/association"] = "element";
  out["fields/density/type"] = "scalar";
  out["fields/density/values"].set_external(density_.data(), density_.size());
  out["fields/pressure/association"] = "element";
  out["fields/pressure/type"] = "scalar";
  out["fields/pressure/values"].set_external(pressure_.data(), pressure_.size());
  // [strawman-integration-end]
}

}  // namespace isr::sims
