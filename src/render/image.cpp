#include "render/image.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace isr::render {

std::size_t Image::active_pixel_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < pixels_.size(); ++i)
    if (pixels_[i].w > 0.0f || depth_[i] != kFarDepth) ++n;
  return n;
}

double Image::rms_difference(const Image& other) const {
  if (other.pixels_.size() != pixels_.size()) return std::numeric_limits<double>::max();
  double acc = 0.0;
  for (std::size_t i = 0; i < pixels_.size(); ++i) {
    const Vec4f d = pixels_[i] - other.pixels_[i];
    acc += d.x * d.x + d.y * d.y + d.z * d.z + d.w * d.w;
  }
  return std::sqrt(acc / (4.0 * static_cast<double>(pixels_.size())));
}

namespace {

std::uint8_t to_byte(float v) {
  return static_cast<std::uint8_t>(clamp01(v) * 255.0f + 0.5f);
}

// CRC-32 (PNG variant), bitwise; writers are not performance critical.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len, std::uint32_t crc = 0xFFFFFFFFu) {
  for (std::size_t i = 0; i < len; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
  }
  return crc;
}

std::uint32_t adler32(const std::uint8_t* data, std::size_t len) {
  std::uint32_t a = 1, b = 0;
  for (std::size_t i = 0; i < len; ++i) {
    a = (a + data[i]) % 65521u;
    b = (b + a) % 65521u;
  }
  return (b << 16) | a;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void write_chunk(std::ofstream& os, const char type[4], const std::vector<std::uint8_t>& data) {
  std::vector<std::uint8_t> head;
  put_u32(head, static_cast<std::uint32_t>(data.size()));
  head.insert(head.end(), type, type + 4);
  os.write(reinterpret_cast<const char*>(head.data()), static_cast<std::streamsize>(head.size()));
  if (!data.empty())
    os.write(reinterpret_cast<const char*>(data.data()), static_cast<std::streamsize>(data.size()));
  std::uint32_t crc = crc32(reinterpret_cast<const std::uint8_t*>(type), 4);
  crc = crc32(data.data(), data.size(), crc) ^ 0xFFFFFFFFu;
  std::vector<std::uint8_t> tail;
  put_u32(tail, crc);
  os.write(reinterpret_cast<const char*>(tail.data()), 4);
}

}  // namespace

bool Image::write_ppm(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  os << "P6\n" << width_ << " " << height_ << "\n255\n";
  std::vector<std::uint8_t> row(static_cast<std::size_t>(width_) * 3);
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const Vec4f c = pixel(x, y);
      row[static_cast<std::size_t>(x) * 3 + 0] = to_byte(c.x);
      row[static_cast<std::size_t>(x) * 3 + 1] = to_byte(c.y);
      row[static_cast<std::size_t>(x) * 3 + 2] = to_byte(c.z);
    }
    os.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(row.size()));
  }
  return static_cast<bool>(os);
}

bool Image::write_png(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  static const std::uint8_t magic[8] = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1A, '\n'};
  os.write(reinterpret_cast<const char*>(magic), 8);

  std::vector<std::uint8_t> ihdr;
  put_u32(ihdr, static_cast<std::uint32_t>(width_));
  put_u32(ihdr, static_cast<std::uint32_t>(height_));
  ihdr.push_back(8);   // bit depth
  ihdr.push_back(6);   // RGBA
  ihdr.push_back(0);   // compression
  ihdr.push_back(0);   // filter
  ihdr.push_back(0);   // interlace
  write_chunk(os, "IHDR", ihdr);

  // Raw scanlines with filter byte 0.
  std::vector<std::uint8_t> raw;
  raw.reserve(static_cast<std::size_t>(height_) * (1 + static_cast<std::size_t>(width_) * 4));
  for (int y = 0; y < height_; ++y) {
    raw.push_back(0);
    for (int x = 0; x < width_; ++x) {
      const Vec4f c = pixel(x, y);
      raw.push_back(to_byte(c.x));
      raw.push_back(to_byte(c.y));
      raw.push_back(to_byte(c.z));
      raw.push_back(to_byte(c.w > 0.0f ? c.w : 1.0f));
    }
  }

  // zlib stream with stored (uncompressed) deflate blocks.
  std::vector<std::uint8_t> z;
  z.push_back(0x78);
  z.push_back(0x01);
  const std::size_t kBlock = 65535;
  for (std::size_t off = 0; off < raw.size(); off += kBlock) {
    const std::size_t len = std::min(kBlock, raw.size() - off);
    const bool last = off + len >= raw.size();
    z.push_back(last ? 1 : 0);
    z.push_back(static_cast<std::uint8_t>(len & 0xFF));
    z.push_back(static_cast<std::uint8_t>(len >> 8));
    z.push_back(static_cast<std::uint8_t>(~len & 0xFF));
    z.push_back(static_cast<std::uint8_t>((~len >> 8) & 0xFF));
    z.insert(z.end(), raw.begin() + static_cast<std::ptrdiff_t>(off),
             raw.begin() + static_cast<std::ptrdiff_t>(off + len));
  }
  put_u32(z, adler32(raw.data(), raw.size()));
  write_chunk(os, "IDAT", z);
  write_chunk(os, "IEND", {});
  return static_cast<bool>(os);
}

}  // namespace isr::render
