#include "render/vr/volume.hpp"

#include <atomic>
#include <cmath>

#include "dpp/primitives.hpp"

namespace isr::render {

RenderStats StructuredVolumeRenderer::render(const Camera& camera,
                                             const TransferFunction& tf, Image& out,
                                             const VolumeRenderOptions& options) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear(options.background);

  RenderStats stats;
  stats.objects = static_cast<double>(grid_.cell_count());
  if (grid_.cell_count() == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const AABB bounds = grid_.bounds();
  const float diag = length(bounds.extent());
  const float dt = diag / static_cast<float>(std::max(options.samples, 1));
  const Vec3f spacing = grid_.spacing();
  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());

  std::atomic<long long> total_samples{0};
  std::atomic<long long> total_cell_steps{0};
  std::atomic<long long> active{0};
  std::atomic<long long> max_cells{0};

  {
    dpp::ScopedPhase phase(dev_, "volume_render");
    dpp::for_each_dyn(
        dev_, n_pixels,
        [&](std::size_t p) {
          const int px = static_cast<int>(p) % camera.width;
          const int py = static_cast<int>(p) / camera.width;
          const Vec3f dir =
              camera.ray_direction(static_cast<float>(px), static_cast<float>(py));
          const Vec3f inv_dir = {1.0f / dir.x, 1.0f / dir.y, 1.0f / dir.z};
          float t0, t1;
          if (!bounds.intersect(camera.position, inv_dir, camera.znear, camera.zfar, t0, t1))
            return;

          Vec4f accum{0, 0, 0, 0};
          long long samples = 0;
          long long cell_steps = 0;
          // Track the integer cell so cell-frequency work can be counted.
          int last_cx = -1, last_cy = -1, last_cz = -1;
          float first_t = -1.0f;
          for (float t = t0 + 0.5f * dt; t < t1; t += dt) {
            const Vec3f pos = camera.position + dir * t;
            float value;
            if (!grid_.sample(pos, value)) continue;
            ++samples;
            const int cx = static_cast<int>((pos.x - bounds.lo.x) / spacing.x);
            const int cy = static_cast<int>((pos.y - bounds.lo.y) / spacing.y);
            const int cz = static_cast<int>((pos.z - bounds.lo.z) / spacing.z);
            if (cx != last_cx || cy != last_cy || cz != last_cz) {
              ++cell_steps;
              last_cx = cx;
              last_cy = cy;
              last_cz = cz;
            }
            Vec4f s = tf.sample(value);
            // Opacity correction against the 400-sample reference shared by
            // all volume renderers (so images are comparable across them),
            // then front-to-back "over".
            const float alpha = TransferFunction::correct_alpha(
                                    s.w, 400.0f / static_cast<float>(options.samples)) *
                                (1.0f - accum.w);
            accum.x += s.x * alpha;
            accum.y += s.y * alpha;
            accum.z += s.z * alpha;
            accum.w += alpha;
            if (first_t < 0.0f && alpha > 0.001f) first_t = t;
            if (options.early_termination && accum.w >= options.termination_alpha) break;
          }
          total_samples.fetch_add(samples, std::memory_order_relaxed);
          total_cell_steps.fetch_add(cell_steps, std::memory_order_relaxed);
          long long prev = max_cells.load(std::memory_order_relaxed);
          while (cell_steps > prev &&
                 !max_cells.compare_exchange_weak(prev, cell_steps, std::memory_order_relaxed)) {
          }
          if (accum.w > 0.0f) {
            active.fetch_add(1, std::memory_order_relaxed);
            const Vec4f bg = options.background;
            const float rem = 1.0f - accum.w;
            out.pixels()[p] = {accum.x + bg.x * rem, accum.y + bg.y * rem,
                               accum.z + bg.z * rem, accum.w + bg.w * rem};
            out.depths()[p] = first_t >= 0.0f ? first_t : t0;
          }
        },
        [&] {
          const double np = static_cast<double>(std::max<std::size_t>(n_pixels, 1));
          const double spr = static_cast<double>(total_samples.load()) / np;
          const double cells = static_cast<double>(total_cell_steps.load()) / np;
          // Sample-frequency work: LUT lookup + blend. Cell-frequency work:
          // locate + load 8 corners.
          return dpp::KernelCost{.flops_per_elem = 30.0 * spr + 18.0 * cells + 20.0,
                                 .bytes_per_elem = 20.0 * spr + 44.0 * cells + 24.0,
                                 .divergence = 1.2};
        });
  }

  stats.active_pixels = static_cast<double>(active.load());
  stats.samples_per_ray = stats.active_pixels > 0
                              ? static_cast<double>(total_samples.load()) / stats.active_pixels
                              : 0.0;
  // Mean cells crossed per active ray: AP*CS is then exactly the total
  // cell-frequency work. (The paper's mapping estimates CS with the upper
  // bound N; the max is tracked too but too noisy to regress on.)
  stats.cells_spanned = stats.active_pixels > 0
                            ? static_cast<double>(total_cell_steps.load()) / stats.active_pixels
                            : static_cast<double>(max_cells.load());
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::render
