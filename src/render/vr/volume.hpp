// Structured-grid volume renderer (SC16 "a ray caster for regular grids").
//
// Image-order: one ray per pixel, front-to-back compositing of trilinear
// samples mapped through a transfer function, early ray termination. The
// kernel tallies in-volume samples (SPR) and cell transitions (CS) — the
// two groupings of the Eq. 5.3 model: sample-frequency work (interpolate +
// composite) and cell-frequency work (locate + load cell corners).
#pragma once

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/structured.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::render {

struct VolumeRenderOptions {
  // Number of samples across the volume diagonal; per-ray counts scale with
  // the ray's in-volume span (the study's "1000 samples in depth" default is
  // scaled down for small images).
  int samples = 400;
  bool early_termination = true;
  float termination_alpha = 0.98f;
  Vec4f background{0, 0, 0, 0};
};

class StructuredVolumeRenderer {
 public:
  StructuredVolumeRenderer(const mesh::StructuredGrid& grid, dpp::Device& dev)
      : grid_(grid), dev_(dev) {}

  RenderStats render(const Camera& camera, const TransferFunction& tf, Image& out,
                     const VolumeRenderOptions& options = {});

 private:
  const mesh::StructuredGrid& grid_;
  dpp::Device& dev_;
};

}  // namespace isr::render
