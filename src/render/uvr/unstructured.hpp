// Unstructured (tetrahedral) volume renderer — the dissertation's Chapter
// III algorithm, composed entirely of data-parallel primitives
// (Algorithm 2).
//
// Sampling-based: the view frustum is discretized into W*H*S samples; work
// is split into depth passes to bound the sample-buffer memory. Each pass
// runs four phases (all map/reduce/scan/reverse-index/gather chains):
//
//   "initialization"  — per-tet min/max depth (once, before the passes)
//   "pass_selection"  — flag + compact tets that can contribute this pass
//   "screen_space"    — transform active tets to screen space
//   "sampling"        — barycentric inside-out test over each tet's AABB
//   "compositing"     — front-to-back blend of this pass's samples
//
// Phase names feed Figures 4-5 and Tables 6-7/9.
#pragma once

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/unstructured.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::render {

struct UnstructuredVROptions {
  int samples_in_depth = 400;  // S: samples across the data's depth range
  int num_passes = 1;          // memory/time trade-off (Figures 4-5 sweep)
  bool early_termination = true;  // skip sampling for opaque pixels
  Vec4f background{0, 0, 0, 0};
};

class UnstructuredVolumeRenderer {
 public:
  UnstructuredVolumeRenderer(const mesh::TetMesh& mesh, dpp::Device& dev)
      : mesh_(mesh), dev_(dev) {}

  RenderStats render(const Camera& camera, const TransferFunction& tf, Image& out,
                     const UnstructuredVROptions& options = {});

 private:
  const mesh::TetMesh& mesh_;
  dpp::Device& dev_;
};

}  // namespace isr::render
