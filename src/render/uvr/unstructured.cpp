#include "render/uvr/unstructured.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "dpp/primitives.hpp"

namespace isr::render {

namespace {

constexpr float kEmptySample = -1e30f;

// A tetrahedron in screen space: vertex 0, the inverse edge matrix for
// barycentric extraction, per-corner scalars, and the sample-space AABB.
struct ScreenTet {
  Vec3f v0;
  float inv[9];  // row-major inverse of [v1-v0 | v2-v0 | v3-v0]
  float scalar[4];
  float min_x, max_x, min_y, max_y, min_s, max_s;
  bool valid;
};

bool invert3x3(const Vec3f c0, const Vec3f c1, const Vec3f c2, float out[9]) {
  const float det = c0.x * (c1.y * c2.z - c2.y * c1.z) - c1.x * (c0.y * c2.z - c2.y * c0.z) +
                    c2.x * (c0.y * c1.z - c1.y * c0.z);
  if (std::abs(det) < 1e-12f) return false;
  const float id = 1.0f / det;
  out[0] = (c1.y * c2.z - c2.y * c1.z) * id;
  out[1] = (c2.x * c1.z - c1.x * c2.z) * id;
  out[2] = (c1.x * c2.y - c2.x * c1.y) * id;
  out[3] = (c2.y * c0.z - c0.y * c2.z) * id;
  out[4] = (c0.x * c2.z - c2.x * c0.z) * id;
  out[5] = (c2.x * c0.y - c0.x * c2.y) * id;
  out[6] = (c0.y * c1.z - c1.y * c0.z) * id;
  out[7] = (c1.x * c0.z - c0.x * c1.z) * id;
  out[8] = (c0.x * c1.y - c1.x * c0.y) * id;
  return true;
}

}  // namespace

RenderStats UnstructuredVolumeRenderer::render(const Camera& camera,
                                               const TransferFunction& tf, Image& out,
                                               const UnstructuredVROptions& options) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear(options.background);

  RenderStats stats;
  const std::size_t n_tets = mesh_.cell_count();
  stats.objects = static_cast<double>(n_tets);
  if (n_tets == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const Mat4 vp = camera.view_projection();
  const int S = std::max(options.samples_in_depth, 1);
  const int n_passes = std::max(options.num_passes, 1);
  const int samples_per_pass = (S + n_passes - 1) / n_passes;
  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());

  // --- Initialization: depth range of the data, per-tet sample ranges -----
  std::vector<float> tet_min_s(n_tets), tet_max_s(n_tets);
  float depth_lo, depth_hi;
  {
    dpp::ScopedPhase phase(dev_, "initialization");
    std::vector<float> point_depth(mesh_.points.size());
    dpp::for_each(
        dev_, mesh_.points.size(),
        [&](std::size_t i) {
          const Vec4f s = camera.world_to_screen(mesh_.points[i], vp);
          point_depth[i] = s.w > 0.0f ? s.z : std::numeric_limits<float>::max();
        },
        dpp::KernelCost{.flops_per_elem = 24, .bytes_per_elem = 20});
    depth_lo = dpp::reduce_min(dev_, point_depth.data(), point_depth.size(),
                               std::numeric_limits<float>::max());
    depth_hi = dpp::transform_reduce(
        dev_, point_depth.size(), std::numeric_limits<float>::lowest(),
        [&](std::size_t i) {
          return point_depth[i] == std::numeric_limits<float>::max() ? std::numeric_limits<float>::lowest()
                                                                     : point_depth[i];
        },
        [](float a, float b) { return a > b ? a : b; });
    if (depth_hi <= depth_lo) depth_hi = depth_lo + 1.0f;
    const float sample_scale = static_cast<float>(S) / (depth_hi - depth_lo);

    dpp::for_each(
        dev_, n_tets,
        [&](std::size_t t) {
          float lo = std::numeric_limits<float>::max();
          float hi = std::numeric_limits<float>::lowest();
          for (int c = 0; c < 4; ++c) {
            const float d =
                point_depth[static_cast<std::size_t>(mesh_.conn[t * 4 + static_cast<std::size_t>(c)])];
            lo = std::min(lo, d);
            hi = std::max(hi, d);
          }
          tet_min_s[t] = (lo - depth_lo) * sample_scale;
          tet_max_s[t] = (hi - depth_lo) * sample_scale;
        },
        dpp::KernelCost{.flops_per_elem = 12, .bytes_per_elem = 36});
  }
  const float sample_scale = static_cast<float>(S) / (depth_hi - depth_lo);

  // Persistent per-pixel accumulation across passes (front-to-back).
  std::vector<Vec4f> accum(n_pixels, Vec4f{0, 0, 0, 0});
  std::vector<float> first_depth(n_pixels, -1.0f);
  std::vector<float> sample_buffer(n_pixels * static_cast<std::size_t>(samples_per_pass));

  std::atomic<long long> total_blended{0};
  long long total_considered = 0;

  for (int pass = 0; pass < n_passes; ++pass) {
    const float pass_lo = static_cast<float>(pass * samples_per_pass);
    const float pass_hi = std::min<float>(static_cast<float>(S),
                                          pass_lo + static_cast<float>(samples_per_pass));

    // --- Pass selection: flag + reduce/scan/reverse-index chain -----------
    std::vector<int> active;
    {
      dpp::ScopedPhase phase(dev_, "pass_selection");
      std::vector<std::uint8_t> flags(n_tets);
      dpp::for_each(
          dev_, n_tets,
          [&](std::size_t t) {
            flags[t] = (tet_max_s[t] >= pass_lo && tet_min_s[t] < pass_hi) ? 1 : 0;
          },
          dpp::KernelCost{.flops_per_elem = 3, .bytes_per_elem = 9});
      active = dpp::compact_indices(dev_, flags.data(), n_tets);
    }

    // --- Screen-space transformation ---------------------------------------
    std::vector<ScreenTet> st(active.size());
    {
      dpp::ScopedPhase phase(dev_, "screen_space");
      dpp::for_each(
          dev_, active.size(),
          [&](std::size_t k) {
            const std::size_t t = static_cast<std::size_t>(active[k]);
            Vec3f v[4];
            bool ok = true;
            ScreenTet& s = st[k];
            for (int c = 0; c < 4; ++c) {
              const int pid = mesh_.conn[t * 4 + static_cast<std::size_t>(c)];
              const Vec4f scr = camera.world_to_screen(mesh_.points[static_cast<std::size_t>(pid)], vp);
              if (scr.w <= 0.0f) {
                ok = false;
                break;
              }
              v[c] = {scr.x, scr.y, (scr.z - depth_lo) * sample_scale};
              s.scalar[c] = mesh_.scalars[static_cast<std::size_t>(pid)];
            }
            if (!ok) {
              s.valid = false;
              return;
            }
            s.v0 = v[0];
            s.valid = invert3x3(v[1] - v[0], v[2] - v[0], v[3] - v[0], s.inv);
            s.min_x = std::min({v[0].x, v[1].x, v[2].x, v[3].x});
            s.max_x = std::max({v[0].x, v[1].x, v[2].x, v[3].x});
            s.min_y = std::min({v[0].y, v[1].y, v[2].y, v[3].y});
            s.max_y = std::max({v[0].y, v[1].y, v[2].y, v[3].y});
            s.min_s = std::min({v[0].z, v[1].z, v[2].z, v[3].z});
            s.max_s = std::max({v[0].z, v[1].z, v[2].z, v[3].z});
          },
          dpp::KernelCost{.flops_per_elem = 140, .bytes_per_elem = 150});
    }

    // --- Sampling: AABB loop + barycentric inside-out test ----------------
    std::fill(sample_buffer.begin(), sample_buffer.end(), kEmptySample);
    std::atomic<long long> considered{0};
    {
      dpp::ScopedPhase phase(dev_, "sampling");
      dpp::for_each_dyn(
          dev_, active.size(),
          [&](std::size_t k) {
            const ScreenTet& s = st[k];
            if (!s.valid) return;
            const int x0 = std::max(0, static_cast<int>(std::floor(s.min_x)));
            const int x1 = std::min(camera.width - 1, static_cast<int>(std::ceil(s.max_x)));
            const int y0 = std::max(0, static_cast<int>(std::floor(s.min_y)));
            const int y1 = std::min(camera.height - 1, static_cast<int>(std::ceil(s.max_y)));
            const int s0 = std::max(static_cast<int>(pass_lo),
                                    static_cast<int>(std::floor(s.min_s)));
            const int s1 = std::min(static_cast<int>(pass_hi) - 1,
                                    static_cast<int>(std::ceil(s.max_s)));
            if (x1 < x0 || y1 < y0 || s1 < s0) return;
            long long local = 0;
            for (int y = y0; y <= y1; ++y) {
              for (int x = x0; x <= x1; ++x) {
                const std::size_t pixel =
                    static_cast<std::size_t>(y) * static_cast<std::size_t>(camera.width) + x;
                if (options.early_termination && accum[pixel].w >= 0.98f) continue;
                for (int sm = s0; sm <= s1; ++sm) {
                  ++local;
                  const Vec3f p = {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f,
                                   static_cast<float>(sm) + 0.5f};
                  const Vec3f d = p - s.v0;
                  const float b1 = s.inv[0] * d.x + s.inv[1] * d.y + s.inv[2] * d.z;
                  const float b2 = s.inv[3] * d.x + s.inv[4] * d.y + s.inv[5] * d.z;
                  const float b3 = s.inv[6] * d.x + s.inv[7] * d.y + s.inv[8] * d.z;
                  const float b0 = 1.0f - b1 - b2 - b3;
                  if (b0 < 0.0f || b1 < 0.0f || b2 < 0.0f || b3 < 0.0f) continue;
                  const float value = b0 * s.scalar[0] + b1 * s.scalar[1] + b2 * s.scalar[2] +
                                      b3 * s.scalar[3];
                  sample_buffer[static_cast<std::size_t>(sm - static_cast<int>(pass_lo)) *
                                    n_pixels +
                                pixel] = value;
                }
              }
            }
            considered.fetch_add(local, std::memory_order_relaxed);
          },
          [&] {
            const double n = static_cast<double>(std::max<std::size_t>(active.size(), 1));
            const double per = static_cast<double>(considered.load()) / n;
            return dpp::KernelCost{.flops_per_elem = 25.0 * per + 60.0,
                                   .bytes_per_elem = 8.0 * per + 140.0,
                                   .divergence = 1.3};
          });
    }
    total_considered += considered.load();

    // --- Compositing: blend this pass's samples front-to-back -------------
    {
      dpp::ScopedPhase phase(dev_, "compositing");
      const int pass_samples = static_cast<int>(pass_hi - pass_lo);
      std::atomic<long long> blended{0};
      dpp::for_each_dyn(
          dev_, n_pixels,
          [&](std::size_t pixel) {
            Vec4f acc = accum[pixel];
            if (options.early_termination && acc.w >= 0.98f) return;
            long long local = 0;
            for (int sm = 0; sm < pass_samples; ++sm) {
              const float value = sample_buffer[static_cast<std::size_t>(sm) * n_pixels + pixel];
              if (value == kEmptySample) continue;
              ++local;
              const Vec4f s = tf.sample(value);
              const float alpha =
                  TransferFunction::correct_alpha(s.w, 400.0f / static_cast<float>(S)) *
                  (1.0f - acc.w);
              acc.x += s.x * alpha;
              acc.y += s.y * alpha;
              acc.z += s.z * alpha;
              acc.w += alpha;
              if (first_depth[pixel] < 0.0f && alpha > 0.001f)
                first_depth[pixel] = pass_lo + static_cast<float>(sm);
              if (acc.w >= 0.98f) break;
            }
            accum[pixel] = acc;
            blended.fetch_add(local, std::memory_order_relaxed);
          },
          [&] {
            const double per = static_cast<double>(pass_samples);
            // The sample buffer is sample-major: consecutive samples of one
            // ray are n_pixels apart, so wide-SIMD devices pay uncoalesced
            // loads here (the paper's GPU compositing bottleneck, IPC 0.131).
            return dpp::KernelCost{.flops_per_elem = 4.0 * per + 14.0,
                                   .bytes_per_elem = 16.0 * per + 20.0,
                                   .divergence = 2.5};
          });
      total_blended.fetch_add(blended.load(), std::memory_order_relaxed);
    }
  }

  // Resolve to the image.
  std::size_t active_pixels = 0;
  for (std::size_t p = 0; p < n_pixels; ++p) {
    if (accum[p].w <= 0.0f) continue;
    ++active_pixels;
    const Vec4f bg = options.background;
    const float rem = 1.0f - accum[p].w;
    out.pixels()[p] = {accum[p].x + bg.x * rem, accum[p].y + bg.y * rem,
                       accum[p].z + bg.z * rem, accum[p].w + bg.w * rem};
    // Store eye-space depth of the first contribution for compositing.
    out.depths()[p] = depth_lo + first_depth[p] / sample_scale;
  }

  stats.active_pixels = static_cast<double>(active_pixels);
  stats.samples_per_ray =
      active_pixels > 0 ? static_cast<double>(total_blended.load()) / active_pixels : 0.0;
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::render
