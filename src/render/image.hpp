// Framebuffer with color and depth planes plus PPM/PNG writers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "math/vec.hpp"

namespace isr::render {

inline constexpr float kFarDepth = std::numeric_limits<float>::max();

class Image {
 public:
  Image() = default;
  Image(int width, int height) { resize(width, height); }

  void resize(int width, int height) {
    width_ = width;
    height_ = height;
    pixels_.assign(static_cast<std::size_t>(width) * height, Vec4f{0, 0, 0, 0});
    depth_.assign(static_cast<std::size_t>(width) * height, kFarDepth);
  }

  void clear(Vec4f background = {0, 0, 0, 0}) {
    std::fill(pixels_.begin(), pixels_.end(), background);
    std::fill(depth_.begin(), depth_.end(), kFarDepth);
  }

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const { return pixels_.size(); }

  Vec4f& pixel(int x, int y) { return pixels_[index(x, y)]; }
  Vec4f pixel(int x, int y) const { return pixels_[index(x, y)]; }
  float& depth(int x, int y) { return depth_[index(x, y)]; }
  float depth(int x, int y) const { return depth_[index(x, y)]; }

  std::vector<Vec4f>& pixels() { return pixels_; }
  const std::vector<Vec4f>& pixels() const { return pixels_; }
  std::vector<float>& depths() { return depth_; }
  const std::vector<float>& depths() const { return depth_; }

  // Pixels that received any contribution — the model's AP variable.
  std::size_t active_pixel_count() const;

  // Root-mean-square color difference against another image of equal size.
  double rms_difference(const Image& other) const;

  // Writers return false on I/O failure. The PNG writer emits uncompressed
  // (stored) deflate blocks so it needs no external zlib.
  bool write_ppm(const std::string& path) const;
  bool write_png(const std::string& path) const;

 private:
  std::size_t index(int x, int y) const {
    return static_cast<std::size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Vec4f> pixels_;
  std::vector<float> depth_;
};

}  // namespace isr::render
