#include "render/rast/rasterizer.hpp"

#include <atomic>
#include <cmath>

#include "dpp/primitives.hpp"
#include "math/bitcast.hpp"

namespace isr::render {

namespace {

constexpr std::uint64_t kFarPacked = ~0ull;

std::uint32_t pack_rgba8(Vec3f c, float a) {
  const auto b = [](float v) { return static_cast<std::uint32_t>(clamp01(v) * 255.0f + 0.5f); };
  return (b(a) << 24) | (b(c.z) << 16) | (b(c.y) << 8) | b(c.x);
}

Vec4f unpack_rgba8(std::uint32_t p) {
  return {static_cast<float>(p & 0xFF) / 255.0f, static_cast<float>((p >> 8) & 0xFF) / 255.0f,
          static_cast<float>((p >> 16) & 0xFF) / 255.0f,
          static_cast<float>((p >> 24) & 0xFF) / 255.0f};
}

}  // namespace

RenderStats Rasterizer::render(const Camera& camera, const ColorTable& colors, Image& out,
                               const RasterizerOptions& options) {
  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear(options.background);

  RenderStats stats;
  const std::size_t n_tris = mesh_.triangle_count();
  stats.objects = static_cast<double>(n_tris);
  if (n_tris == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  const Mat4 vp = camera.view_projection();
  const float w = static_cast<float>(camera.width);
  const float h = static_cast<float>(camera.height);

  // --- Cull stage: transform and flag (map), then compact ----------------
  struct ScreenTri {
    Vec2f p[3];
    float depth[3];   // eye-space w (distance along view axis)
    float inv_w[3];
  };
  std::vector<ScreenTri> screen(n_tris);
  std::vector<std::uint8_t> visible(n_tris, 0);
  {
    dpp::ScopedPhase phase(dev_, "cull");
    dpp::for_each(
        dev_, n_tris,
        [&](std::size_t t) {
          ScreenTri st;
          bool ok = true;
          for (int c = 0; c < 3 && ok; ++c) {
            const Vec4f s = camera.world_to_screen(mesh_.vertex(t, c), vp);
            if (s.w <= camera.znear) {
              ok = false;
              break;
            }
            st.p[c] = {s.x, s.y};
            st.depth[c] = s.z;
            st.inv_w[c] = 1.0f / s.w;
          }
          if (!ok) return;
          // Viewport reject.
          const float min_x = std::min({st.p[0].x, st.p[1].x, st.p[2].x});
          const float max_x = std::max({st.p[0].x, st.p[1].x, st.p[2].x});
          const float min_y = std::min({st.p[0].y, st.p[1].y, st.p[2].y});
          const float max_y = std::max({st.p[0].y, st.p[1].y, st.p[2].y});
          if (max_x < 0 || min_x >= w || max_y < 0 || min_y >= h) return;
          if (options.backface_cull) {
            const float area = (st.p[1].x - st.p[0].x) * (st.p[2].y - st.p[0].y) -
                               (st.p[2].x - st.p[0].x) * (st.p[1].y - st.p[0].y);
            if (area <= 0) return;
          }
          screen[t] = st;
          visible[t] = 1;
        },
        dpp::KernelCost{.flops_per_elem = 190, .bytes_per_elem = 300});
  }

  std::vector<int> vis_ids;
  {
    dpp::ScopedPhase phase(dev_, "cull");
    vis_ids = dpp::compact_indices(dev_, visible.data(), n_tris);
  }
  stats.visible_objects = static_cast<double>(vis_ids.size());

  // --- Raster stage: barycentric sampling with atomic depth test ---------
  const std::size_t n_pixels = out.pixel_count();
  std::vector<std::atomic<std::uint64_t>> fb(n_pixels);
  for (auto& c : fb) c.store(kFarPacked, std::memory_order_relaxed);

  // Shading setup shared with the ray tracer's Blinn-Phong so the two
  // renderers produce comparable pictures.
  const Vec3f light_dir = normalize(camera.forward() * -1.0f +
                                    normalize(cross(camera.forward(), camera.up)) * 0.5f +
                                    camera.up * 0.8f);

  std::atomic<long long> pixels_considered{0};
  {
    dpp::ScopedPhase phase(dev_, "raster");
    dpp::for_each_dyn(
        dev_, vis_ids.size(),
        [&](std::size_t k) {
          const std::size_t t = static_cast<std::size_t>(vis_ids[k]);
          const ScreenTri& st = screen[t];
          const int x0 = std::max(0, static_cast<int>(std::floor(
                                         std::min({st.p[0].x, st.p[1].x, st.p[2].x}))));
          const int x1 = std::min(camera.width - 1,
                                  static_cast<int>(std::ceil(
                                      std::max({st.p[0].x, st.p[1].x, st.p[2].x}))));
          const int y0 = std::max(0, static_cast<int>(std::floor(
                                         std::min({st.p[0].y, st.p[1].y, st.p[2].y}))));
          const int y1 = std::min(camera.height - 1,
                                  static_cast<int>(std::ceil(
                                      std::max({st.p[0].y, st.p[1].y, st.p[2].y}))));
          if (x1 < x0 || y1 < y0) return;
          pixels_considered.fetch_add(
              static_cast<long long>(x1 - x0 + 1) * (y1 - y0 + 1), std::memory_order_relaxed);

          const Vec2f a = st.p[0], b = st.p[1], c = st.p[2];
          const float area = (b.x - a.x) * (c.y - a.y) - (c.x - a.x) * (b.y - a.y);
          if (std::abs(area) < 1e-12f) return;
          const float inv_area = 1.0f / area;

          const int i0 = mesh_.tris[t * 3 + 0];
          const int i1 = mesh_.tris[t * 3 + 1];
          const int i2 = mesh_.tris[t * 3 + 2];

          for (int y = y0; y <= y1; ++y) {
            for (int x = x0; x <= x1; ++x) {
              const Vec2f p = {static_cast<float>(x) + 0.5f, static_cast<float>(y) + 0.5f};
              // Edge functions -> screen-space barycentrics.
              const float w0 =
                  ((b.x - p.x) * (c.y - p.y) - (c.x - p.x) * (b.y - p.y)) * inv_area;
              const float w1 =
                  ((c.x - p.x) * (a.y - p.y) - (a.x - p.x) * (c.y - p.y)) * inv_area;
              const float w2 = 1.0f - w0 - w1;
              if (w0 < 0 || w1 < 0 || w2 < 0) continue;
              // Perspective-correct weights.
              const float iw = w0 * st.inv_w[0] + w1 * st.inv_w[1] + w2 * st.inv_w[2];
              const float pw0 = w0 * st.inv_w[0] / iw;
              const float pw1 = w1 * st.inv_w[1] / iw;
              const float pw2 = 1.0f - pw0 - pw1;
              const float depth = 1.0f / iw;

              // Interpolate attributes and shade.
              float scalar = 0.5f;
              if (!mesh_.scalars.empty())
                scalar = pw0 * mesh_.scalars[static_cast<std::size_t>(i0)] +
                         pw1 * mesh_.scalars[static_cast<std::size_t>(i1)] +
                         pw2 * mesh_.scalars[static_cast<std::size_t>(i2)];
              Vec3f normal{0, 0, 1};
              if (!mesh_.normals.empty())
                normal = normalize(mesh_.normals[static_cast<std::size_t>(i0)] * pw0 +
                                   mesh_.normals[static_cast<std::size_t>(i1)] * pw1 +
                                   mesh_.normals[static_cast<std::size_t>(i2)] * pw2);
              const Vec3f world = mesh_.points[static_cast<std::size_t>(i0)] * pw0 +
                                  mesh_.points[static_cast<std::size_t>(i1)] * pw1 +
                                  mesh_.points[static_cast<std::size_t>(i2)] * pw2;

              Vec3f n = normal;
              const Vec3f view = normalize(camera.position - world);
              if (dot(n, view) < 0.0f) n = -n;
              const float diff = std::max(0.0f, dot(n, light_dir));
              const Vec3f half = normalize(light_dir + view);
              const float spec = std::pow(std::max(0.0f, dot(n, half)), 24.0f);
              const Vec3f base = colors.sample(scalar);
              const float lit = 0.25f + 0.65f * diff + 0.20f * spec;
              const Vec3f rgb = {clamp01(base.x * lit), clamp01(base.y * lit),
                                 clamp01(base.z * lit)};

              // Atomic min on packed (depth | rgba8): positive float bits
              // are monotonic, so integer compare orders by depth.
              const std::uint64_t packed =
                  (static_cast<std::uint64_t>(bit_cast<std::uint32_t>(depth)) << 32) |
                  pack_rgba8(rgb, 1.0f);
              auto& cell = fb[static_cast<std::size_t>(y) * static_cast<std::size_t>(camera.width) + x];
              std::uint64_t cur = cell.load(std::memory_order_relaxed);
              while (packed < cur &&
                     !cell.compare_exchange_weak(cur, packed, std::memory_order_relaxed)) {
              }
            }
          }
        },
        [&] {
          const double vo = static_cast<double>(std::max<std::size_t>(vis_ids.size(), 1));
          const double ppt = static_cast<double>(pixels_considered.load()) / vo;
          return dpp::KernelCost{.flops_per_elem = 20.0 + 60.0 * ppt,
                                 .bytes_per_elem = 60.0 + 24.0 * ppt,
                                 .divergence = 1.25};
        });
  }

  stats.pixels_per_tri =
      stats.visible_objects > 0
          ? static_cast<double>(pixels_considered.load()) / stats.visible_objects
          : 0.0;

  // --- Resolve packed buffer into the image -------------------------------
  std::size_t active = 0;
  {
    dpp::ScopedPhase phase(dev_, "raster");
    std::atomic<std::size_t> active_atomic{0};
    dpp::for_each(
        dev_, n_pixels,
        [&](std::size_t p) {
          const std::uint64_t v = fb[p].load(std::memory_order_relaxed);
          if (v == kFarPacked) return;
          out.pixels()[p] = unpack_rgba8(static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
          out.depths()[p] = bit_cast<float>(static_cast<std::uint32_t>(v >> 32));
          active_atomic.fetch_add(1, std::memory_order_relaxed);
        },
        dpp::KernelCost{.flops_per_elem = 4, .bytes_per_elem = 28});
    active = active_atomic.load();
  }
  stats.active_pixels = static_cast<double>(active);
  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::render
