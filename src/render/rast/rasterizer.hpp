// Data-parallel rasterizer (SC16 "an implementation based on sampling using
// barycentric coordinates").
//
// Two stages, matching the model terms of Eq. 5.2:
//   "cull"    — c0*O: transform + visibility flags + compaction
//   "raster"  — c1*(VO*PPT): per visible triangle, test every pixel in its
//               screen bounding box with edge functions; depth test via a
//               64-bit atomic min (packed depth|color), so triangle-parallel
//               execution is race-free.
#pragma once

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/trimesh.hpp"
#include "render/image.hpp"
#include "render/stats.hpp"

namespace isr::render {

struct RasterizerOptions {
  bool backface_cull = false;  // off by default: sci-vis surfaces are open
  Vec4f background{0, 0, 0, 0};
};

class Rasterizer {
 public:
  Rasterizer(const mesh::TriMesh& mesh, dpp::Device& dev) : mesh_(mesh), dev_(dev) {}

  RenderStats render(const Camera& camera, const ColorTable& colors, Image& out,
                     const RasterizerOptions& options = {});

 private:
  const mesh::TriMesh& mesh_;
  dpp::Device& dev_;
};

}  // namespace isr::render
