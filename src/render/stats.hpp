// Per-render measurements: the performance models' input variables
// (dissertation §5.3 "Model Input Variables") plus the phase timing log.
#pragma once

#include "dpp/device.hpp"

namespace isr::render {

struct RenderStats {
  // General input variables.
  double objects = 0;         // O: cells or triangles rendered
  double active_pixels = 0;   // AP: pixels updated by the render

  // View-specific variables for rasterization.
  double visible_objects = 0;   // VO: objects surviving culling
  double pixels_per_tri = 0;    // PPT: avg pixels considered per triangle

  // View-specific variables for volume rendering.
  double samples_per_ray = 0;   // SPR: avg in-volume samples along a ray
  double cells_spanned = 0;     // CS: max cells a ray can span

  // Phase-resolved timing from the device (wall clock or simulated).
  dpp::TimingLog timings;

  double total_seconds() const { return timings.total_seconds(); }
  double phase_seconds(const std::string& name) const {
    return timings.phase_seconds(name);
  }
};

}  // namespace isr::render
