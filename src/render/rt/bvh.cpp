#include "render/rt/bvh.hpp"

#include <atomic>

#include "dpp/primitives.hpp"
#include "math/bitcast.hpp"
#include "math/morton.hpp"

namespace isr::render {

namespace {

// Longest common prefix of 64-bit keys i and j; keys are (morton << 32) |
// index so they are always distinct, which removes the duplicate-code
// special cases of the Karras construction.
inline int delta(const std::vector<std::uint64_t>& keys, int i, int j) {
  const int n = static_cast<int>(keys.size());
  if (j < 0 || j >= n) return -1;
  const std::uint64_t x = keys[static_cast<std::size_t>(i)] ^ keys[static_cast<std::size_t>(j)];
  // Keys are distinct, so x != 0 as countl_zero64 requires.
  return countl_zero64(x);
}

}  // namespace

Bvh build_lbvh(dpp::Device& dev, const mesh::TriMesh& mesh) {
  Bvh bvh;
  const std::size_t n = mesh.triangle_count();
  if (n == 0) return bvh;

  // 1. Per-primitive bounds and centroids (map), scene bounds (reduce).
  std::vector<AABB> prim_bounds(n);
  std::vector<Vec3f> centroids(n);
  dpp::for_each(
      dev, n,
      [&](std::size_t i) {
        prim_bounds[i] = mesh.triangle_bounds(i);
        centroids[i] = prim_bounds[i].center();
      },
      dpp::KernelCost{.flops_per_elem = 18, .bytes_per_elem = 60});
  bvh.scene_bounds = dpp::transform_reduce(
      dev, n, AABB{}, [&](std::size_t i) { return prim_bounds[i]; },
      [](AABB a, const AABB& b) {
        a.expand(b);
        return a;
      },
      dpp::KernelCost{.flops_per_elem = 6, .bytes_per_elem = 24});

  // 2. Morton codes of centroids scaled into the scene bounds (map).
  std::vector<std::uint64_t> keys(n);
  std::vector<int> order(n);
  const Vec3f lo = bvh.scene_bounds.lo;
  const Vec3f ext = bvh.scene_bounds.extent();
  const Vec3f inv = {ext.x > 0 ? 1023.0f / ext.x : 0.0f, ext.y > 0 ? 1023.0f / ext.y : 0.0f,
                     ext.z > 0 ? 1023.0f / ext.z : 0.0f};
  dpp::for_each(
      dev, n,
      [&](std::size_t i) {
        const Vec3f c = centroids[i];
        const auto qx = static_cast<std::uint32_t>((c.x - lo.x) * inv.x);
        const auto qy = static_cast<std::uint32_t>((c.y - lo.y) * inv.y);
        const auto qz = static_cast<std::uint32_t>((c.z - lo.z) * inv.z);
        keys[i] = (static_cast<std::uint64_t>(morton3d(qx, qy, qz)) << 32) |
                  static_cast<std::uint32_t>(i);
        order[i] = static_cast<int>(i);
      },
      dpp::KernelCost{.flops_per_elem = 24, .bytes_per_elem = 28});

  // 3. Sort primitives along the Morton curve.
  dpp::sort_pairs64(dev, keys, order);
  bvh.prim_order = std::move(order);

  if (n == 1) return bvh;

  // 4. Karras hierarchy emission: one internal node per split (map).
  const int ni = static_cast<int>(n) - 1;
  bvh.nodes.assign(static_cast<std::size_t>(ni), BvhNode{});
  std::vector<int> parent(n + static_cast<std::size_t>(ni), -1);  // leaves then internals
  auto parent_of_leaf = [&](int leaf) -> int& { return parent[static_cast<std::size_t>(leaf)]; };
  auto parent_of_node = [&](int node) -> int& {
    return parent[n + static_cast<std::size_t>(node)];
  };

  dpp::for_each(
      dev, static_cast<std::size_t>(ni),
      [&](std::size_t idx) {
        const int i = static_cast<int>(idx);
        // Direction of the range containing i.
        const int d = delta(keys, i, i + 1) >= delta(keys, i, i - 1) ? 1 : -1;
        const int delta_min = delta(keys, i, i - d);
        // Exponential search for the range's other end.
        int lmax = 2;
        while (delta(keys, i, i + lmax * d) > delta_min) lmax *= 2;
        int l = 0;
        for (int t = lmax / 2; t >= 1; t /= 2)
          if (delta(keys, i, i + (l + t) * d) > delta_min) l += t;
        const int j = i + l * d;
        // Binary search for the split position.
        const int delta_node = delta(keys, i, j);
        int s = 0;
        for (int t = (l + 1) / 2;; t = (t + 1) / 2) {
          if (delta(keys, i, i + (s + t) * d) > delta_node) s += t;
          if (t == 1) break;
        }
        const int split = i + s * d + std::min(d, 0);

        const int lo_idx = std::min(i, j);
        const int hi_idx = std::max(i, j);
        BvhNode& node = bvh.nodes[idx];
        node.left = (lo_idx == split) ? ~split : split;
        node.right = (hi_idx == split + 1) ? ~(split + 1) : split + 1;
        if (node.left < 0)
          parent_of_leaf(~node.left) = i;
        else
          parent_of_node(node.left) = i;
        if (node.right < 0)
          parent_of_leaf(~node.right) = i;
        else
          parent_of_node(node.right) = i;
      },
      dpp::KernelCost{.flops_per_elem = 60, .bytes_per_elem = 64, .divergence = 1.4});

  // 5. Bottom-up AABB refit with per-node arrival counters: the second
  // thread to reach an internal node computes its bounds and proceeds.
  std::vector<std::atomic<int>> visits(static_cast<std::size_t>(ni));
  for (auto& v : visits) v.store(0, std::memory_order_relaxed);
  std::vector<AABB> node_bounds(static_cast<std::size_t>(ni));

  auto child_bounds = [&](int child) -> const AABB& {
    if (child < 0)
      return prim_bounds[static_cast<std::size_t>(bvh.prim_order[static_cast<std::size_t>(~child)])];
    return node_bounds[static_cast<std::size_t>(child)];
  };

  dpp::for_each(
      dev, n,
      [&](std::size_t leaf) {
        int node = parent_of_leaf(static_cast<int>(leaf));
        while (node >= 0) {
          if (visits[static_cast<std::size_t>(node)].fetch_add(1, std::memory_order_acq_rel) == 0)
            return;  // first arrival: the sibling subtree is not done yet
          BvhNode& nd = bvh.nodes[static_cast<std::size_t>(node)];
          nd.left_bounds = child_bounds(nd.left);
          nd.right_bounds = child_bounds(nd.right);
          AABB merged = nd.left_bounds;
          merged.expand(nd.right_bounds);
          node_bounds[static_cast<std::size_t>(node)] = merged;
          node = parent_of_node(node);
        }
      },
      dpp::KernelCost{.flops_per_elem = 30, .bytes_per_elem = 96, .divergence = 1.3});

  return bvh;
}

namespace {

struct TraversalFrame {
  int node;
};

inline bool aabb_hit(const AABB& box, Vec3f orig, Vec3f inv_dir, float tmin, float tmax) {
  float t0, t1;
  return box.intersect(orig, inv_dir, tmin, tmax, t0, t1);
}

}  // namespace

HitResult intersect_closest(const Bvh& bvh, const mesh::TriMesh& mesh, Vec3f orig,
                            Vec3f dir, float tmin, float tmax, long long& steps) {
  HitResult best;
  best.t = tmax;
  if (bvh.empty()) return best;

  const Vec3f inv_dir = {1.0f / dir.x, 1.0f / dir.y, 1.0f / dir.z};

  auto test_leaf = [&](int leaf) {
    const int prim = bvh.prim_order[static_cast<std::size_t>(leaf)];
    float t, u, v;
    ++steps;
    if (intersect_triangle(orig, dir,
                           mesh.vertex(static_cast<std::size_t>(prim), 0),
                           mesh.vertex(static_cast<std::size_t>(prim), 1),
                           mesh.vertex(static_cast<std::size_t>(prim), 2), tmin, best.t, t,
                           u, v)) {
      best.prim = prim;
      best.t = t;
      best.u = u;
      best.v = v;
    }
  };

  if (bvh.single_leaf()) {
    test_leaf(0);
    return best;
  }

  int stack[64];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const BvhNode& node = bvh.nodes[static_cast<std::size_t>(stack[--sp])];
    ++steps;
    const bool hit_l = aabb_hit(node.left_bounds, orig, inv_dir, tmin, best.t);
    const bool hit_r = aabb_hit(node.right_bounds, orig, inv_dir, tmin, best.t);
    if (hit_l) {
      if (node.left < 0)
        test_leaf(~node.left);
      else if (sp < 64)
        stack[sp++] = node.left;
    }
    if (hit_r) {
      if (node.right < 0)
        test_leaf(~node.right);
      else if (sp < 64)
        stack[sp++] = node.right;
    }
  }
  if (best.prim < 0) best.t = tmax;
  return best;
}

bool intersect_any(const Bvh& bvh, const mesh::TriMesh& mesh, Vec3f orig, Vec3f dir,
                   float tmin, float tmax, long long& steps) {
  if (bvh.empty()) return false;
  const Vec3f inv_dir = {1.0f / dir.x, 1.0f / dir.y, 1.0f / dir.z};

  auto test_leaf = [&](int leaf) {
    const int prim = bvh.prim_order[static_cast<std::size_t>(leaf)];
    float t, u, v;
    ++steps;
    return intersect_triangle(orig, dir, mesh.vertex(static_cast<std::size_t>(prim), 0),
                              mesh.vertex(static_cast<std::size_t>(prim), 1),
                              mesh.vertex(static_cast<std::size_t>(prim), 2), tmin, tmax, t,
                              u, v);
  };

  if (bvh.single_leaf()) return test_leaf(0);

  int stack[64];
  int sp = 0;
  stack[sp++] = 0;
  while (sp > 0) {
    const BvhNode& node = bvh.nodes[static_cast<std::size_t>(stack[--sp])];
    ++steps;
    if (aabb_hit(node.left_bounds, orig, inv_dir, tmin, tmax)) {
      if (node.left < 0) {
        if (test_leaf(~node.left)) return true;
      } else if (sp < 64) {
        stack[sp++] = node.left;
      }
    }
    if (aabb_hit(node.right_bounds, orig, inv_dir, tmin, tmax)) {
      if (node.right < 0) {
        if (test_leaf(~node.right)) return true;
      } else if (sp < 64) {
        stack[sp++] = node.right;
      }
    }
  }
  return false;
}

}  // namespace isr::render
