#include "render/rt/raytracer.hpp"

#include <atomic>
#include <cmath>

#include "dpp/primitives.hpp"
#include "math/morton.hpp"
#include "math/rng.hpp"

namespace isr::render {

namespace {

// Jittered 2x2 sub-pixel offsets for the anti-aliasing workload.
constexpr Vec2f kAaOffsets[4] = {{0.25f, 0.25f}, {0.75f, 0.25f}, {0.25f, 0.75f}, {0.75f, 0.75f}};

struct Shading {
  Vec3f light_dir;       // toward the light
  Vec3f view_pos;
  float ambient = 0.25f;
  float diffuse = 0.65f;
  float specular = 0.20f;
  float shininess = 24.0f;
};

Vec3f blinn_phong(const Shading& sh, Vec3f point, Vec3f normal, Vec3f base_color,
                  float occlusion, float shadow) {
  Vec3f n = normal;
  const Vec3f view = normalize(sh.view_pos - point);
  if (dot(n, view) < 0.0f) n = -n;  // two-sided shading for surfaces
  const float diff = std::max(0.0f, dot(n, sh.light_dir));
  const Vec3f half = normalize(sh.light_dir + view);
  const float spec = std::pow(std::max(0.0f, dot(n, half)), sh.shininess);
  const float direct = shadow * (sh.diffuse * diff + sh.specular * spec);
  const float lit = sh.ambient * occlusion + direct;
  return {clamp01(base_color.x * lit), clamp01(base_color.y * lit), clamp01(base_color.z * lit)};
}

}  // namespace

RayTracer::RayTracer(const mesh::TriMesh& mesh, dpp::Device& dev) : mesh_(mesh), dev_(dev) {
  dev_.reset_timings();
  {
    dpp::ScopedPhase phase(dev_, "bvh_build");
    bvh_ = build_lbvh(dev_, mesh_);
  }
  build_stats_.objects = static_cast<double>(mesh_.triangle_count());
  build_stats_.timings = dev_.timings();
  dev_.reset_timings();
}

RenderStats RayTracer::render(const Camera& camera, const ColorTable& colors, Image& out,
                              const RayTracerOptions& options) {
  using Workload = RayTracerOptions::Workload;
  const bool full = options.workload == Workload::kFull;
  const bool aa = full && options.anti_alias;
  const int rays_per_pixel = aa ? 4 : 1;

  dev_.reset_timings();
  out.resize(camera.width, camera.height);
  out.clear(options.background);

  const std::size_t n_pixels = static_cast<std::size_t>(camera.pixel_count());
  const std::size_t n_rays = n_pixels * static_cast<std::size_t>(rays_per_pixel);
  const std::size_t n_objects = mesh_.triangle_count();
  RenderStats stats;
  stats.objects = static_cast<double>(n_objects);
  if (n_objects == 0) {
    stats.timings = dev_.timings();
    return stats;
  }

  // --- Ray generation (map over rays, Morton pixel order) -----------------
  std::vector<Vec3f> dirs(n_rays);
  std::vector<int> ray_pixel(n_rays);
  {
    dpp::ScopedPhase phase(dev_, "trace");
    // Pixel traversal order follows the Morton curve: enumerate the square
    // power-of-two super-grid and skip out-of-range codes.
    std::uint32_t side = 1;
    while (side < static_cast<std::uint32_t>(std::max(camera.width, camera.height))) side <<= 1;
    std::vector<int> pixel_order;
    pixel_order.reserve(n_pixels);
    for (std::uint32_t code = 0; code < side * side; ++code) {
      std::uint32_t x, y;
      morton2d_decode(code, x, y);
      if (x < static_cast<std::uint32_t>(camera.width) &&
          y < static_cast<std::uint32_t>(camera.height))
        pixel_order.push_back(static_cast<int>(y) * camera.width + static_cast<int>(x));
    }

    dpp::for_each(
        dev_, n_rays,
        [&](std::size_t r) {
          const std::size_t p = r / static_cast<std::size_t>(rays_per_pixel);
          const int sub = static_cast<int>(r % static_cast<std::size_t>(rays_per_pixel));
          const int pixel = pixel_order[p];
          const int px = pixel % camera.width;
          const int py = pixel / camera.width;
          const Vec2f off = aa ? kAaOffsets[sub] : Vec2f{0.5f, 0.5f};
          dirs[r] = camera.ray_direction(static_cast<float>(px), static_cast<float>(py),
                                         off.x, off.y);
          ray_pixel[r] = pixel;
        },
        dpp::KernelCost{.flops_per_elem = 28, .bytes_per_elem = 20});
  }

  // --- Traversal + intersection (map; cost measured from real work) -------
  std::vector<HitResult> hits(n_rays);
  {
    dpp::ScopedPhase phase(dev_, "trace");
    std::atomic<long long> total_steps{0};
    dpp::for_each_dyn(
        dev_, n_rays,
        [&](std::size_t r) {
          long long steps = 0;
          hits[r] = intersect_closest(bvh_, mesh_, camera.position, dirs[r], camera.znear,
                                      camera.zfar, steps);
          total_steps.fetch_add(steps, std::memory_order_relaxed);
        },
        [&] {
          const double avg = static_cast<double>(total_steps.load()) /
                             static_cast<double>(std::max<std::size_t>(n_rays, 1));
          // ~12 flops per node visit / triangle test; divergence reflects
          // the incoherent control flow of the if-if traversal.
          return dpp::KernelCost{.flops_per_elem = 12.0 * avg,
                                 .bytes_per_elem = 24.0 + 4.0 * avg,
                                 .divergence = 1.6};
        });
  }

  // Active pixels: pixels whose primary ray(s) hit anything.
  std::size_t n_hit_rays = 0;
  {
    std::vector<std::uint8_t> pixel_hit(n_pixels, 0);
    for (std::size_t r = 0; r < n_rays; ++r)
      if (hits[r].hit()) {
        ++n_hit_rays;
        pixel_hit[static_cast<std::size_t>(ray_pixel[r])] = 1;
      }
    std::size_t ap = 0;
    for (const std::uint8_t h : pixel_hit) ap += h;
    stats.active_pixels = static_cast<double>(ap);
  }

  if (options.workload == Workload::kIntersect) {
    // WORKLOAD1: distance-only output (normalized inverse depth as gray).
    dpp::ScopedPhase phase(dev_, "shade");
    dpp::for_each(
        dev_, n_rays,
        [&](std::size_t r) {
          if (!hits[r].hit()) return;
          const float g = 1.0f / (1.0f + 0.1f * hits[r].t);
          const std::size_t p = static_cast<std::size_t>(ray_pixel[r]);
          out.pixels()[p] = {g, g, g, 1.0f};
          out.depths()[p] = hits[r].t;
        },
        dpp::KernelCost{.flops_per_elem = 6, .bytes_per_elem = 28});
    stats.timings = dev_.timings();
    return stats;
  }

  // --- Optional stream compaction of dead rays ----------------------------
  std::vector<int> live;  // indices into the ray arrays
  if (full && options.stream_compaction) {
    dpp::ScopedPhase phase(dev_, "trace");
    std::vector<std::uint8_t> alive(n_rays);
    dpp::for_each(
        dev_, n_rays, [&](std::size_t r) { alive[r] = hits[r].hit() ? 1 : 0; },
        dpp::KernelCost{.flops_per_elem = 1, .bytes_per_elem = 9});
    live = dpp::compact_indices(dev_, alive.data(), n_rays);
  } else {
    live.resize(n_rays);
    for (std::size_t r = 0; r < n_rays; ++r) live[r] = static_cast<int>(r);
  }
  const std::size_t n_live = live.size();
  const double live_fraction =
      n_live > 0 ? static_cast<double>(n_hit_rays) / static_cast<double>(n_live) : 1.0;

  // --- Hit attributes: position, interpolated normal / scalar -------------
  std::vector<Vec3f> hit_points(n_live);
  std::vector<Vec3f> hit_normals(n_live);
  std::vector<float> hit_scalars(n_live);
  {
    dpp::ScopedPhase phase(dev_, "shade");
    dpp::for_each(
        dev_, n_live,
        [&](std::size_t k) {
          const HitResult& h = hits[static_cast<std::size_t>(live[k])];
          if (!h.hit()) {
            hit_normals[k] = {0, 0, 1};
            return;
          }
          const std::size_t tri = static_cast<std::size_t>(h.prim);
          const int i0 = mesh_.tris[tri * 3 + 0];
          const int i1 = mesh_.tris[tri * 3 + 1];
          const int i2 = mesh_.tris[tri * 3 + 2];
          const float w0 = 1.0f - h.u - h.v;
          hit_points[k] = camera.position + dirs[static_cast<std::size_t>(live[k])] * h.t;
          if (!mesh_.normals.empty()) {
            hit_normals[k] = normalize(mesh_.normals[static_cast<std::size_t>(i0)] * w0 +
                                       mesh_.normals[static_cast<std::size_t>(i1)] * h.u +
                                       mesh_.normals[static_cast<std::size_t>(i2)] * h.v);
          } else {
            const Vec3f a = mesh_.points[static_cast<std::size_t>(i0)];
            const Vec3f b = mesh_.points[static_cast<std::size_t>(i1)];
            const Vec3f c = mesh_.points[static_cast<std::size_t>(i2)];
            hit_normals[k] = normalize(cross(b - a, c - a));
          }
          if (!mesh_.scalars.empty())
            hit_scalars[k] = mesh_.scalars[static_cast<std::size_t>(i0)] * w0 +
                             mesh_.scalars[static_cast<std::size_t>(i1)] * h.u +
                             mesh_.scalars[static_cast<std::size_t>(i2)] * h.v;
        },
        dpp::KernelCost{.flops_per_elem = 40 * live_fraction,
                        .bytes_per_elem = 12 + 108 * live_fraction});
  }

  // --- Ambient occlusion (scatter to samples, trace, gather) --------------
  std::vector<float> occlusion(n_live, 1.0f);
  if (full && options.ao_samples > 0) {
    dpp::ScopedPhase phase(dev_, "trace");
    const std::size_t s_per = static_cast<std::size_t>(options.ao_samples);
    const std::size_t n_occ = n_live * s_per;
    const float max_dist =
        options.ao_distance_fraction * length(bvh_.scene_bounds.extent());
    std::vector<Vec3f> occ_dirs(n_occ);
    dpp::for_each(
        dev_, n_occ,
        [&](std::size_t s) {
          const std::size_t k = s / s_per;
          Rng rng(0x9E3779B9u * (static_cast<std::uint64_t>(live[k]) + 1) + s % s_per);
          occ_dirs[s] = sample_hemisphere(hit_normals[k], rng.next_float(), rng.next_float());
        },
        dpp::KernelCost{.flops_per_elem = 30, .bytes_per_elem = 28});

    std::vector<std::uint8_t> occluded(n_occ, 0);
    std::atomic<long long> occ_steps{0};
    dpp::for_each_dyn(
        dev_, n_occ,
        [&](std::size_t s) {
          const std::size_t k = s / s_per;
          if (!hits[static_cast<std::size_t>(live[k])].hit()) return;
          long long steps = 0;
          const Vec3f origin = hit_points[k] + hit_normals[k] * (1e-4f * max_dist);
          occluded[s] =
              intersect_any(bvh_, mesh_, origin, occ_dirs[s], 0.0f, max_dist, steps) ? 1 : 0;
          occ_steps.fetch_add(steps, std::memory_order_relaxed);
        },
        [&] {
          const double avg = static_cast<double>(occ_steps.load()) /
                             static_cast<double>(std::max<std::size_t>(n_occ, 1));
          return dpp::KernelCost{.flops_per_elem = 12.0 * avg,
                                 .bytes_per_elem = 24.0 + 4.0 * avg,
                                 .divergence = 1.8};
        });

    dpp::for_each(
        dev_, n_live,
        [&](std::size_t k) {
          int hits_count = 0;
          for (std::size_t s = 0; s < s_per; ++s) hits_count += occluded[k * s_per + s];
          occlusion[k] =
              1.0f - static_cast<float>(hits_count) / static_cast<float>(s_per);
        },
        dpp::KernelCost{.flops_per_elem = static_cast<double>(s_per) + 2.0,
                        .bytes_per_elem = static_cast<double>(s_per) + 8.0});
  }

  // --- Shadows -------------------------------------------------------------
  const Vec3f light_dir = normalize(camera.forward() * -1.0f +
                                    normalize(cross(camera.forward(), camera.up)) * 0.5f +
                                    camera.up * 0.8f);
  std::vector<float> shadow(n_live, 1.0f);
  if (full && options.shadows) {
    dpp::ScopedPhase phase(dev_, "trace");
    std::atomic<long long> sh_steps{0};
    dpp::for_each_dyn(
        dev_, n_live,
        [&](std::size_t k) {
          if (!hits[static_cast<std::size_t>(live[k])].hit()) return;
          long long steps = 0;
          const Vec3f origin = hit_points[k] + hit_normals[k] * 1e-4f;
          if (intersect_any(bvh_, mesh_, origin, light_dir, 1e-4f, camera.zfar, steps))
            shadow[k] = 0.35f;  // attenuated, not black: direct term only
          sh_steps.fetch_add(steps, std::memory_order_relaxed);
        },
        [&] {
          const double avg = static_cast<double>(sh_steps.load()) /
                             static_cast<double>(std::max<std::size_t>(n_live, 1));
          return dpp::KernelCost{.flops_per_elem = 12.0 * avg,
                                 .bytes_per_elem = 24.0 + 4.0 * avg,
                                 .divergence = 1.6};
        });
  }

  // --- Shading (map) + optional one-generation specular reflection --------
  std::vector<Vec3f> ray_color(n_rays, {0, 0, 0});
  std::vector<std::uint8_t> ray_valid(n_rays, 0);
  const Shading sh{light_dir, camera.position};
  {
    dpp::ScopedPhase phase(dev_, "shade");
    dpp::for_each(
        dev_, n_live,
        [&](std::size_t k) {
          const std::size_t r = static_cast<std::size_t>(live[k]);
          if (!hits[r].hit()) return;
          const Vec3f base = colors.sample(hit_scalars[k]);
          ray_color[r] = blinn_phong(sh, hit_points[k], hit_normals[k], base, occlusion[k],
                                     shadow[k]);
          ray_valid[r] = 1;
        },
        dpp::KernelCost{.flops_per_elem = 45 * live_fraction,
                        .bytes_per_elem = 8 + 72 * live_fraction});
  }

  if (options.max_specular_depth > 0 && options.specular_reflectance > 0.0f) {
    // One reflection generation per depth level; rays are regenerated from
    // the previous hit set (paper: reflected rays processed per generation).
    dpp::ScopedPhase phase(dev_, "trace");
    std::atomic<long long> rf_steps{0};
    dpp::for_each_dyn(
        dev_, n_live,
        [&](std::size_t k) {
          const std::size_t r = static_cast<std::size_t>(live[k]);
          if (!hits[r].hit()) return;
          const Vec3f in_dir = dirs[r];
          const Vec3f n = hit_normals[k];
          const Vec3f refl = in_dir - n * (2.0f * dot(in_dir, n));
          long long steps = 0;
          const Vec3f origin = hit_points[k] + n * 1e-4f;
          HitResult h2 = intersect_closest(bvh_, mesh_, origin, refl, 1e-4f, camera.zfar, steps);
          rf_steps.fetch_add(steps, std::memory_order_relaxed);
          if (!h2.hit()) return;
          const std::size_t tri = static_cast<std::size_t>(h2.prim);
          const int i0 = mesh_.tris[tri * 3];
          float s2 = mesh_.scalars.empty() ? 0.5f : mesh_.scalars[static_cast<std::size_t>(i0)];
          const Vec3f c2 = colors.sample(s2);
          ray_color[r] = lerp(ray_color[r], c2, options.specular_reflectance);
        },
        [&] {
          const double avg = static_cast<double>(rf_steps.load()) /
                             static_cast<double>(std::max<std::size_t>(n_live, 1));
          return dpp::KernelCost{.flops_per_elem = 12.0 * avg,
                                 .bytes_per_elem = 24.0 + 4.0 * avg,
                                 .divergence = 2.0};
        });
  }

  // --- Resolve to the framebuffer (gather for anti-aliasing) --------------
  {
    dpp::ScopedPhase phase(dev_, "shade");
    // Accumulate per-pixel; serial-safe because each ray maps to one pixel
    // and we iterate rays grouped by pixel below.
    std::vector<Vec3f> accum(n_pixels, {0, 0, 0});
    std::vector<float> weight(n_pixels, 0.0f);
    std::vector<float> min_t(n_pixels, kFarDepth);
    for (std::size_t r = 0; r < n_rays; ++r) {
      const std::size_t p = static_cast<std::size_t>(ray_pixel[r]);
      if (!ray_valid[r]) continue;
      accum[p] += ray_color[r];
      weight[p] += 1.0f;
      min_t[p] = std::min(min_t[p], hits[r].t);
    }
    dpp::for_each(
        dev_, n_pixels,
        [&](std::size_t p) {
          if (weight[p] <= 0.0f) return;
          // Blend hit coverage against the background for edge anti-aliasing.
          const float cov = weight[p] / static_cast<float>(rays_per_pixel);
          const Vec3f c = accum[p] / weight[p];
          const Vec4f bg = options.background;
          out.pixels()[p] = {c.x * cov + bg.x * (1 - cov), c.y * cov + bg.y * (1 - cov),
                             c.z * cov + bg.z * (1 - cov), std::max(cov, bg.w)};
          out.depths()[p] = min_t[p];
        },
        dpp::KernelCost{.flops_per_elem = 12, .bytes_per_elem = 44});
  }

  stats.timings = dev_.timings();
  return stats;
}

}  // namespace isr::render
