// Linear BVH over triangles, built with data-parallel primitives in the
// style of Karras (the paper's "variant of a Linear Bounding Volume
// Hierarchy (LBVH), which has a build-time complexity of O(n)", §5.5):
// Morton-code the primitive centroids, radix sort, emit the hierarchy with
// the longest-common-prefix construction, then refit AABBs bottom-up.
#pragma once

#include <vector>

#include "dpp/device.hpp"
#include "math/aabb.hpp"
#include "mesh/trimesh.hpp"

namespace isr::render {

struct BvhNode {
  AABB left_bounds;
  AABB right_bounds;
  // Child links: >= 0 is an internal node index, < 0 is a leaf whose
  // primitive is prim_order[~child].
  int left = 0;
  int right = 0;
};

struct Bvh {
  std::vector<BvhNode> nodes;   // n-1 internal nodes; root is node 0
  std::vector<int> prim_order;  // leaf i references triangle prim_order[i]
  AABB scene_bounds;

  bool empty() const { return prim_order.empty(); }
  bool single_leaf() const { return prim_order.size() == 1; }
};

// Builds the LBVH on the device; all stages are recorded under the caller's
// current phase (renderers wrap this in a "bvh_build" scope).
Bvh build_lbvh(dpp::Device& dev, const mesh::TriMesh& mesh);

// Watertight-enough Moller-Trumbore; on hit fills t and barycentrics (u, v)
// of corners 1 and 2.
inline bool intersect_triangle(Vec3f orig, Vec3f dir, Vec3f a, Vec3f b, Vec3f c,
                               float tmin, float tmax, float& t, float& u, float& v) {
  const Vec3f e1 = b - a;
  const Vec3f e2 = c - a;
  const Vec3f pvec = cross(dir, e2);
  const float det = dot(e1, pvec);
  if (std::abs(det) < 1e-12f) return false;
  const float inv_det = 1.0f / det;
  const Vec3f tvec = orig - a;
  const float uu = dot(tvec, pvec) * inv_det;
  if (uu < 0.0f || uu > 1.0f) return false;
  const Vec3f qvec = cross(tvec, e1);
  const float vv = dot(dir, qvec) * inv_det;
  if (vv < 0.0f || uu + vv > 1.0f) return false;
  const float tt = dot(e2, qvec) * inv_det;
  if (tt < tmin || tt > tmax) return false;
  t = tt;
  u = uu;
  v = vv;
  return true;
}

struct HitResult {
  int prim = -1;
  float t = 0.0f;
  float u = 0.0f, v = 0.0f;
  bool hit() const { return prim >= 0; }
};

// Closest-hit traversal (if-if style with an explicit stack). `steps`
// accumulates node visits + triangle tests for cost accounting.
HitResult intersect_closest(const Bvh& bvh, const mesh::TriMesh& mesh, Vec3f orig,
                            Vec3f dir, float tmin, float tmax, long long& steps);

// Any-hit traversal (shadows, ambient occlusion).
bool intersect_any(const Bvh& bvh, const mesh::TriMesh& mesh, Vec3f orig, Vec3f dir,
                   float tmin, float tmax, long long& steps);

}  // namespace isr::render
