// Data-parallel ray tracer (dissertation Chapter II / SC16 "ray tracing").
//
// The pipeline follows Algorithm 1: Morton-ordered primary ray generation
// (map), BVH traversal + intersection (map), optional stream compaction of
// dead rays (reduce/scan/reverse-index/gather), ambient occlusion (scatter +
// map + gather), shadows (map), Blinn-Phong shading with a color map (map),
// anti-aliasing resolve (gather), and optional specular reflection
// generations.
//
// Phase names (consumed by the performance models, Eq. 5.1):
//   "bvh_build"  — c0*O + c1 (amortizable across frames)
//   "trace"      — c2*(AP*log2 O) + c3*AP
//   "shade"      — folded into the trace-side constants
#pragma once

#include <memory>

#include "dpp/device.hpp"
#include "math/camera.hpp"
#include "math/colormap.hpp"
#include "mesh/trimesh.hpp"
#include "render/image.hpp"
#include "render/rt/bvh.hpp"
#include "render/stats.hpp"

namespace isr::render {

struct RayTracerOptions {
  // The three Chapter II workloads.
  enum class Workload {
    kIntersect,  // WORKLOAD1: nearest hit + distance only
    kShaded,     // WORKLOAD2: Blinn-Phong + color map (rasterizer-equivalent)
    kFull,       // WORKLOAD3: AO + shadows + anti-aliasing + compaction
  };

  Workload workload = Workload::kShaded;
  int ao_samples = 4;
  float ao_distance_fraction = 0.07f;  // AO ray length, fraction of scene diagonal
  bool shadows = true;                 // kFull only
  bool anti_alias = true;              // kFull only: 4 rays per pixel
  bool stream_compaction = true;       // kFull only
  int max_specular_depth = 0;          // reflection generations (extension)
  float specular_reflectance = 0.25f;  // blend factor when reflections are on
  Vec4f background{0, 0, 0, 0};
};

class RayTracer {
 public:
  // Builds the BVH on the device (recorded under phase "bvh_build").
  RayTracer(const mesh::TriMesh& mesh, dpp::Device& dev);

  const Bvh& bvh() const { return bvh_; }

  // Renders into `out` (resized to the camera dimensions) and returns the
  // model input variables + phase timings for this frame. BVH build time is
  // NOT included (the paper separates it; see bvh_build_stats()).
  RenderStats render(const Camera& camera, const ColorTable& colors, Image& out,
                     const RayTracerOptions& options = {});

  // Timings of the constructor's build, for the c0*O + c1 model term.
  const RenderStats& bvh_build_stats() const { return build_stats_; }

 private:
  const mesh::TriMesh& mesh_;
  dpp::Device& dev_;
  Bvh bvh_;
  RenderStats build_stats_;
};

}  // namespace isr::render
