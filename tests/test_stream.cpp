// Tests for the streaming admission pipeline: the ordered shard queue's
// scheduling order (strict priority, EDF within a class, admission-order
// tiebreak), blocking bounded admission, kick flushes, session lifecycle
// (close flushes in-flight requests; submit-after-close throws), replay-
// mode byte-identity under concurrent producers, deterministic shedding
// under a replayed 2x overload, metrics readability during live streams,
// and a seeded randomized-interleaving fuzz loop (the TSan CI job's
// stress surface — every failure prints its seed).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "cluster/metrics.hpp"
#include "cluster/stream.hpp"
#include "core/batch_queue.hpp"
#include "core/env.hpp"
#include "math/rng.hpp"
#include "serve/registry.hpp"

namespace isr::cluster {
namespace {

using serve::AdvisorRequest;
using serve::AdvisorResponse;

// The same fast calibration corpus test_cluster uses.
model::StudyConfig tiny_calibration() {
  model::StudyConfig cfg;
  cfg.archs = {"CPU1", "GPU1"};
  cfg.sims = {"cloverleaf"};
  cfg.tasks = {1, 2};
  cfg.samples_per_config = 3;
  cfg.min_image = 96;
  cfg.max_image = 192;
  cfg.min_n = 16;
  cfg.max_n = 28;
  cfg.vr_samples = 120;
  cfg.sim_steps = 1;
  cfg.seed = 123;
  return cfg;
}

ClusterConfig stream_config(int shards, std::size_t cache_entries) {
  ClusterConfig cfg;
  cfg.service.calibration = tiny_calibration();
  cfg.shards = shards;
  cfg.cache_entries = cache_entries;
  cfg.batch_size = 4;
  return cfg;
}

// A StreamItem with only the scheduling key filled in — enough for the
// queue-order tests, which never evaluate anything.
StreamItem keyed_item(int priority, std::int64_t deadline_at_us, std::uint64_t admit_seq) {
  StreamItem item;
  item.priority = priority;
  item.deadline_at_us = deadline_at_us;
  item.admit_seq = admit_seq;
  return item;
}

// --- Ordered batch queue ----------------------------------------------------

TEST(OrderedQueueTest, PopsStrictPriorityThenEdfThenAdmissionOrder) {
  core::OrderedBatchQueue<StreamItem, StreamBefore> queue(32);
  const std::int64_t none = std::numeric_limits<std::int64_t>::max();
  // Scrambled push order; the pop order must be the scheduling order:
  // priority class first, earliest deadline within it, admit_seq last.
  ASSERT_TRUE(queue.try_push(keyed_item(3, none, 0)));
  ASSERT_TRUE(queue.try_push(keyed_item(0, 900, 1)));
  ASSERT_TRUE(queue.try_push(keyed_item(1, 50, 2)));
  ASSERT_TRUE(queue.try_push(keyed_item(0, 100, 3)));
  ASSERT_TRUE(queue.try_push(keyed_item(3, none, 4)));
  ASSERT_TRUE(queue.try_push(keyed_item(1, 200, 5)));
  ASSERT_TRUE(queue.try_push(keyed_item(0, none, 6)));

  std::vector<StreamItem> batch;
  const core::BatchFlush flush =
      queue.pop_batch(7, std::chrono::nanoseconds(0), batch);
  EXPECT_EQ(flush, core::BatchFlush::kSize);
  ASSERT_EQ(batch.size(), 7u);
  const std::uint64_t expected_seq[] = {3, 1, 6, 2, 5, 0, 4};
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch[i].admit_seq, expected_seq[i]) << "position " << i;
}

TEST(OrderedQueueTest, KickFlushesPartialBatchWithoutDeadlineWait) {
  core::OrderedBatchQueue<StreamItem, StreamBefore> queue(32);
  ASSERT_TRUE(queue.try_push(keyed_item(1, 10, 0)));
  ASSERT_TRUE(queue.try_push(keyed_item(1, 5, 1)));
  queue.kick();
  std::vector<StreamItem> batch;
  const auto start = std::chrono::steady_clock::now();
  // A 10-second coalescing deadline that the kick must preempt.
  const core::BatchFlush flush =
      queue.pop_batch(8, std::chrono::seconds(10), batch);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(flush, core::BatchFlush::kKicked);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].admit_seq, 1u);  // EDF within the partial batch
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
}

TEST(OrderedQueueTest, BlockingPushWaitsForRoomAndFailsOnClose) {
  core::OrderedBatchQueue<StreamItem, StreamBefore> queue(2);
  ASSERT_TRUE(queue.try_push(keyed_item(1, 10, 0)));
  ASSERT_TRUE(queue.try_push(keyed_item(1, 20, 1)));
  EXPECT_FALSE(queue.try_push(keyed_item(1, 30, 2)));  // full

  std::thread drainer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<StreamItem> batch;
    queue.pop_batch(2, std::chrono::nanoseconds(0), batch);
  });
  // Blocks until the drainer makes room, then succeeds.
  EXPECT_TRUE(queue.push(keyed_item(1, 30, 2)));
  drainer.join();

  queue.close();
  EXPECT_FALSE(queue.push(keyed_item(1, 40, 3)));  // closed: refused, loudly
}

// --- Admission schedules ----------------------------------------------------

TEST(ScheduleIoTest, SaveLoadRoundTripsAndRejectsGarbage) {
  AdmissionSchedule schedule = {{0, 0, 10}, {1, 0, 12}, {0, 1, 15}};
  std::ostringstream out;
  save_schedule(schedule, out);

  AdmissionSchedule loaded;
  std::string error;
  std::istringstream in(out.str());
  ASSERT_TRUE(load_schedule(in, loaded, error)) << error;
  ASSERT_EQ(loaded.size(), schedule.size());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(loaded[i].stream, schedule[i].stream);
    EXPECT_EQ(loaded[i].seq, schedule[i].seq);
    EXPECT_EQ(loaded[i].t_us, schedule[i].t_us);
  }

  std::istringstream bad("0 0 10\nnot a record\n");
  EXPECT_FALSE(load_schedule(bad, loaded, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --- Stream sessions over a live cluster ------------------------------------

// Clusters share one primary registry so the whole suite pays for a single
// calibration fit (replicas adopt, never refit) — same as test_cluster.
class StreamFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    primary_ = std::make_shared<serve::ModelRegistry>();
  }
  static void TearDownTestSuite() { primary_.reset(); }
  static std::shared_ptr<serve::ModelRegistry> primary_;

  // Stream k's workload: distinct shapes per stream AND per index, so a
  // cross-stream response mixup can never pass the byte compare.
  static std::vector<AdvisorRequest> stream_requests(int k, int count) {
    std::vector<AdvisorRequest> requests;
    requests.reserve(static_cast<std::size_t>(count));
    for (int j = 0; j < count; ++j) {
      AdvisorRequest req;
      req.arch = (j % 2 == 0) ? "CPU1" : "GPU1";
      req.renderer = (j % 3 == 0) ? model::RendererKind::kRayTrace
                                  : (j % 3 == 1) ? model::RendererKind::kRasterize
                                                 : model::RendererKind::kVolume;
      req.n_per_task = 16 + 2 * k + (j % 4);
      req.image_edge = 96 + 16 * k + 8 * j;
      req.tasks = 1 + (j % 2);
      requests.push_back(req);
    }
    return requests;
  }
};

std::shared_ptr<serve::ModelRegistry> StreamFixture::primary_;

TEST_F(StreamFixture, ReplayReproducesConcurrentProducersByteIdentically) {
  // Four concurrent producer threads against a recording cluster, then the
  // SAME flow against a replaying cluster, and a 1-shard serial reference
  // for each stream's slice: all three must agree byte-for-byte. Cache off
  // so the only interleaving-sensitive machinery is admission itself.
  constexpr int kStreams = 4;
  constexpr int kPerStream = 12;
  std::vector<std::vector<AdvisorRequest>> workload;
  workload.reserve(kStreams);
  for (int k = 0; k < kStreams; ++k) workload.push_back(stream_requests(k, kPerStream));

  // Serial reference, one stream slice at a time.
  std::vector<std::vector<AdvisorResponse>> expected;
  {
    ServingCluster reference(stream_config(1, 0), primary_);
    for (int k = 0; k < kStreams; ++k) expected.push_back(reference.serve_batch(workload[static_cast<std::size_t>(k)]));
  }

  const auto run_concurrent = [&workload](ServingCluster& cluster) {
    // Sessions open in deterministic order (ids 0..N-1) on the test
    // thread; only the submissions race.
    std::vector<StreamSession> sessions;
    sessions.reserve(kStreams);
    for (int k = 0; k < kStreams; ++k) sessions.push_back(cluster.open_stream());
    std::vector<std::thread> producers;
    producers.reserve(kStreams);
    for (int k = 0; k < kStreams; ++k)
      producers.emplace_back([&workload, &sessions, k] {
        for (const AdvisorRequest& req : workload[static_cast<std::size_t>(k)])
          sessions[static_cast<std::size_t>(k)].submit(req);
      });
    for (std::thread& producer : producers) producer.join();
    std::vector<std::vector<AdvisorResponse>> responses;
    responses.reserve(kStreams);
    for (int k = 0; k < kStreams; ++k)
      responses.push_back(sessions[static_cast<std::size_t>(k)].close());
    return responses;
  };

  ServingCluster recorder(stream_config(3, 0), primary_);
  recorder.enable_recording();
  const auto live = run_concurrent(recorder);
  const AdmissionSchedule schedule = recorder.take_recording();
  EXPECT_EQ(schedule.size(), static_cast<std::size_t>(kStreams * kPerStream));

  ServingCluster replayer(stream_config(3, 0), primary_);
  replayer.begin_replay(schedule);
  const auto replayed = run_concurrent(replayer);

  for (int k = 0; k < kStreams; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    ASSERT_EQ(live[ks].size(), static_cast<std::size_t>(kPerStream));
    ASSERT_EQ(replayed[ks].size(), static_cast<std::size_t>(kPerStream));
    for (int j = 0; j < kPerStream; ++j) {
      const auto js = static_cast<std::size_t>(j);
      EXPECT_EQ(serve::to_jsonl(expected[ks][js]), serve::to_jsonl(live[ks][js]))
          << "stream " << k << " slot " << j << " (live vs serial)";
      EXPECT_EQ(serve::to_jsonl(expected[ks][js]), serve::to_jsonl(replayed[ks][js]))
          << "stream " << k << " slot " << j << " (replay vs serial)";
    }
  }
  EXPECT_EQ(recorder.registry_fits(), 1);  // replicas adopted, never refitted
}

TEST_F(StreamFixture, PriorityFloodDoesNotStarveOrDropUrgentWork) {
  // A background flood at the weakest priority and a trickle of urgent
  // requests: everyone's close() must return every response. (The ordered
  // queue serves urgent first; starvation-freedom for the flood comes from
  // close()'s flush-and-drain, which this asserts end to end.)
  ClusterConfig config = stream_config(1, 0);
  config.queue_capacity = 16;  // small: the flood keeps the queue saturated
  ServingCluster cluster(std::move(config), primary_);

  StreamSession flood = cluster.open_stream();
  StreamSession urgent = cluster.open_stream();
  const std::vector<AdvisorRequest> flood_reqs = stream_requests(0, 48);
  const std::vector<AdvisorRequest> urgent_reqs = stream_requests(1, 8);

  std::thread flooder([&flood, &flood_reqs] {
    for (AdvisorRequest req : flood_reqs) {
      req.priority = 7;
      flood.submit(req);
    }
  });
  std::thread sender([&urgent, &urgent_reqs] {
    for (AdvisorRequest req : urgent_reqs) {
      req.priority = 0;
      urgent.submit(req);
    }
  });
  flooder.join();
  sender.join();
  const std::vector<AdvisorResponse> urgent_got = urgent.close();
  const std::vector<AdvisorResponse> flood_got = flood.close();

  ASSERT_EQ(urgent_got.size(), urgent_reqs.size());
  ASSERT_EQ(flood_got.size(), flood_reqs.size());
  for (const AdvisorResponse& r : urgent_got) EXPECT_TRUE(r.ok()) << r.error;
  for (const AdvisorResponse& r : flood_got) EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(cluster.metrics().queries,
            static_cast<long>(flood_reqs.size() + urgent_reqs.size()));
}

TEST_F(StreamFixture, ShedUnderReplayedOverloadIsDeterministicAndBounded) {
  // A synthetic 2x-overload schedule: arrivals every service/2 virtual
  // microseconds, each with a deadline of 6x service. Shedding is a pure
  // function of (schedule, requests) in replay mode, so two clusters given
  // the same schedule must shed the same requests — and the shed fraction
  // must hover near the overload's steady state (half), never 0, never 1.
  constexpr int kRequests = 160;
  constexpr long kDeadlineUs = 24;  // 6x the 4us replay service cost
  AdmissionSchedule schedule;
  schedule.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i)
    schedule.push_back({0, static_cast<std::uint64_t>(i),
                        static_cast<std::int64_t>(2 * i)});

  const std::vector<AdvisorRequest> base = stream_requests(2, kRequests);
  const auto run_replay = [&schedule, &base]() {
    ServingCluster cluster(stream_config(1, 0), primary_);
    cluster.begin_replay(schedule);
    StreamSession session = cluster.open_stream();
    for (AdvisorRequest req : base) {
      req.deadline_us = kDeadlineUs;
      session.submit(req);
    }
    std::vector<AdvisorResponse> responses = session.close();
    EXPECT_EQ(cluster.metrics().shed_queries,
              static_cast<long>(std::count_if(
                  responses.begin(), responses.end(),
                  [](const AdvisorResponse& r) { return r.shed(); })));
    return responses;
  };

  const std::vector<AdvisorResponse> first = run_replay();
  const std::vector<AdvisorResponse> second = run_replay();
  ASSERT_EQ(first.size(), static_cast<std::size_t>(kRequests));
  ASSERT_EQ(second.size(), first.size());

  int shed = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(serve::to_jsonl(first[i]), serve::to_jsonl(second[i])) << "slot " << i;
    if (first[i].shed()) {
      ++shed;
      EXPECT_FALSE(first[i].ok());
      EXPECT_NE(first[i].error.find("shed:"), std::string::npos);
    }
  }
  EXPECT_FALSE(first[0].shed());  // an empty backlog always admits
  EXPECT_GT(shed, kRequests / 4);      // a real 2x overload must shed...
  EXPECT_LT(shed, 3 * kRequests / 4);  // ...but admit its sustainable half
}

TEST_F(StreamFixture, CloseFlushesInFlightTailPromptly) {
  // A long coalescing deadline and a batch size the tail never reaches:
  // only close()'s kick can flush these five requests promptly.
  ClusterConfig config = stream_config(1, 0);
  config.batch_size = 64;
  config.batch_deadline_ms = 2000.0;
  ServingCluster cluster(std::move(config), primary_);

  StreamSession session = cluster.open_stream();
  const std::vector<AdvisorRequest> requests = stream_requests(1, 5);
  for (const AdvisorRequest& req : requests) session.submit(req);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<AdvisorResponse> responses = session.close();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  ASSERT_EQ(responses.size(), requests.size());
  for (const AdvisorResponse& r : responses) EXPECT_TRUE(r.ok()) << r.error;
  EXPECT_LT(elapsed, 1.0);  // the 2s coalescing deadline never fired
  EXPECT_GE(cluster.metrics().kick_flushes, 1);
}

TEST_F(StreamFixture, SessionLifecycleEdges) {
  ServingCluster cluster(stream_config(1, 0), primary_);
  // Closing an empty session returns an empty vector, promptly.
  StreamSession empty = cluster.open_stream();
  EXPECT_TRUE(empty.close().empty());
  EXPECT_FALSE(empty.open());

  // Submit-after-close is a client bug and throws.
  StreamSession session = cluster.open_stream();
  session.submit(stream_requests(0, 1)[0]);
  EXPECT_EQ(session.close().size(), 1u);
  EXPECT_THROW(session.submit(stream_requests(0, 1)[0]), std::logic_error);

  // serve_batch rides the same pipeline: stream ids keep advancing.
  cluster.serve_batch(stream_requests(0, 2));
  EXPECT_EQ(cluster.metrics().streams, 3);
}

TEST_F(StreamFixture, MetricsStaySaneDuringALiveStream) {
  // The satellite race fix: metrics() must be callable — and consistent —
  // while a producer is mid-stream. TSan (the CI matrix) watches the
  // synchronization; this test watches the values.
  ServingCluster cluster(stream_config(2, 64), primary_);
  constexpr int kRequests = 600;
  std::atomic<bool> done{false};

  std::thread producer([&cluster, &done] {
    StreamSession session = cluster.open_stream();
    const std::vector<AdvisorRequest> requests = stream_requests(3, kRequests);
    for (const AdvisorRequest& req : requests) session.submit(req);
    session.close();
    done.store(true);
  });

  long last_queries = 0;
  std::uint64_t last_e2e = 0;
  while (!done.load()) {
    const ClusterMetrics m = cluster.metrics();
    EXPECT_GE(m.queries, last_queries);  // monotone under one lock
    EXPECT_LE(m.queries, kRequests);
    // The stage histograms are cumulative merges of per-shard state: their
    // counts grow monotonically too, never outrun admissions, and stay
    // internally consistent (every serviced request waited in a queue and
    // finished end-to-end; transient retries can only add extra waits).
    EXPECT_GE(m.e2e.count(), last_e2e);
    EXPECT_LE(m.e2e.count(), static_cast<std::uint64_t>(kRequests));
    EXPECT_GE(m.queue_wait.count(), m.service.count());
    EXPECT_EQ(m.service.count(), m.e2e.count());
    EXPECT_GE(m.e2e.percentile_us(100.0), m.e2e.percentile_us(0.0));
    EXPECT_FALSE(m.to_jsonl().empty());
    last_queries = m.queries;
    last_e2e = m.e2e.count();
  }
  producer.join();
  const ClusterMetrics settled = cluster.metrics();
  EXPECT_EQ(settled.queries, kRequests);
  // All 600 requests are distinct (no cache hits), none carry deadlines
  // (no shedding), so every one of them must land in the e2e histogram.
  EXPECT_EQ(settled.e2e.count(), static_cast<std::uint64_t>(kRequests));
  EXPECT_NE(settled.to_jsonl().find("\"queue_wait_us\":{"), std::string::npos);
  EXPECT_NE(settled.to_jsonl().find("\"e2e_us\":{\"count\":600,"), std::string::npos);
}

// --- Randomized interleaving fuzz (the TSan job's stress surface) -----------

TEST_F(StreamFixture, FuzzedInterleavingsDeliverEveryResponse) {
  // Seeded random schedules over concurrent open/submit/close/metrics.
  // Every submitted request must come back exactly once, whatever the
  // interleaving; ISR_STRESS_ITERS (default 3) scales the rounds, and a
  // failure prints its seed for replay.
  const long rounds = core::env_long("ISR_STRESS_ITERS", 3);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 80;

  for (long seed = 0; seed < rounds; ++seed) {
    SCOPED_TRACE("fuzz seed " + std::to_string(seed));
    ClusterConfig config = stream_config(2, 32);
    config.queue_capacity = 16;
    config.batch_deadline_ms = 0.1;
    ServingCluster cluster(std::move(config), primary_);

    std::atomic<long> submitted{0};
    std::atomic<long> answered{0};
    std::atomic<long> shed{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      clients.emplace_back([&, t] {
        Rng rng(hash_seed(static_cast<std::uint64_t>(seed), t, 0xF022ull));
        std::vector<StreamSession> open;
        long mine = 0;
        const auto close_one = [&](std::size_t idx) {
          const std::vector<AdvisorResponse> responses = open[idx].close();
          answered.fetch_add(static_cast<long>(responses.size()));
          for (const AdvisorResponse& r : responses)
            if (r.shed()) shed.fetch_add(1);
          open.erase(open.begin() + static_cast<std::ptrdiff_t>(idx));
        };
        for (int op = 0; op < kOpsPerThread; ++op) {
          const int roll = rng.uniform_int(0, 99);
          if (open.empty() || (roll < 15 && open.size() < 2)) {
            open.push_back(cluster.open_stream());
          } else if (roll < 25 && !open.empty()) {
            close_one(static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(open.size()) - 1)));
          } else if (roll < 30) {
            cluster.metrics();
          } else {
            AdvisorRequest req;
            req.arch = rng.uniform_int(0, 1) == 0 ? "CPU1" : "GPU1";
            if (rng.uniform_int(0, 9) == 0) req.corpus = "ghost";  // unknown
            req.image_edge = 96 + 8 * rng.uniform_int(0, 11);
            req.n_per_task = 16 + rng.uniform_int(0, 7);
            req.priority = rng.uniform_int(0, 7);
            const int dice = rng.uniform_int(0, 9);
            if (dice == 0) req.deadline_us = 1;  // likely shed under load
            else if (dice < 4) req.deadline_us = 100000;
            open[static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<int>(open.size()) - 1))]
                .submit(req);
            ++mine;
          }
        }
        while (!open.empty()) close_one(open.size() - 1);
        submitted.fetch_add(mine);
      });
    for (std::thread& client : clients) client.join();

    EXPECT_EQ(answered.load(), submitted.load());
    const ClusterMetrics m = cluster.metrics();
    EXPECT_EQ(m.queries, submitted.load());
    EXPECT_EQ(m.shed_queries, shed.load());
  }
}

}  // namespace
}  // namespace isr::cluster
