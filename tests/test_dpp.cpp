// Tests for the data-parallel primitive layer: correctness of every
// primitive against serial references (parameterized over sizes that cover
// both the serial and the OpenMP chunked code paths), plus the device
// timing/cost-model contract.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "dpp/primitives.hpp"
#include "dpp/profiles.hpp"
#include "math/rng.hpp"

namespace isr::dpp {
namespace {

class PrimitiveSizes : public ::testing::TestWithParam<std::size_t> {};

// Sizes straddle the kParallelThreshold (4096) so both code paths run; the
// multi-thread device forces the OpenMP path even on small hosts.
INSTANTIATE_TEST_SUITE_P(Sweep, PrimitiveSizes,
                         ::testing::Values<std::size_t>(0, 1, 2, 17, 1000, 4096, 10000));

TEST_P(PrimitiveSizes, ForEachTouchesEveryIndexOnce) {
  const std::size_t n = GetParam();
  for (Device dev : {Device::serial(), Device::host(4)}) {
    std::vector<int> hits(n, 0);
    for_each(dev, n, [&](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1);
  }
}

TEST_P(PrimitiveSizes, ReduceSumMatchesStd) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<long long> data(n);
  for (auto& v : data) v = rng.uniform_int(-100, 100);
  const long long expect = std::accumulate(data.begin(), data.end(), 0LL);
  for (Device dev : {Device::serial(), Device::host(4)})
    EXPECT_EQ(reduce_sum(dev, data.data(), n), expect);
}

TEST_P(PrimitiveSizes, ReduceMinMax) {
  const std::size_t n = GetParam();
  if (n == 0) return;
  Rng rng(n + 2);
  std::vector<float> data(n);
  for (auto& v : data) v = rng.uniform(-5.0f, 5.0f);
  Device dev = Device::host(4);
  EXPECT_FLOAT_EQ(reduce_min(dev, data.data(), n, 1e30f),
                  *std::min_element(data.begin(), data.end()));
  EXPECT_FLOAT_EQ(reduce_max(dev, data.data(), n, -1e30f),
                  *std::max_element(data.begin(), data.end()));
}

TEST_P(PrimitiveSizes, ExclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  Rng rng(n + 3);
  std::vector<int> data(n);
  for (auto& v : data) v = rng.uniform_int(0, 9);
  std::vector<int> expect(n);
  int run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = run;
    run += data[i];
  }
  for (Device dev : {Device::serial(), Device::host(4)}) {
    std::vector<int> out(n);
    const int total = scan_exclusive(dev, data.data(), out.data(), n);
    EXPECT_EQ(out, expect);
    if (n > 0) {
      EXPECT_EQ(total, run);
    }
  }
}

TEST_P(PrimitiveSizes, InclusiveScanMatchesSerial) {
  const std::size_t n = GetParam();
  Rng rng(n + 4);
  std::vector<int> data(n);
  for (auto& v : data) v = rng.uniform_int(0, 9);
  std::vector<int> expect(n);
  int run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run += data[i];
    expect[i] = run;
  }
  Device dev = Device::host(4);
  std::vector<int> out(n);
  scan_inclusive(dev, data.data(), out.data(), n);
  EXPECT_EQ(out, expect);
}

TEST(Primitives, GatherScatterRoundTrip) {
  Device dev = Device::serial();
  const std::size_t n = 1000;
  std::vector<float> data(n);
  std::iota(data.begin(), data.end(), 0.0f);
  // Permutation via gather, inverse via scatter.
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(5);
  for (std::size_t i = n - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.next_u64() % (i + 1)]);
  std::vector<float> gathered(n), restored(n);
  gather(dev, perm.data(), n, data.data(), gathered.data());
  scatter(dev, perm.data(), n, gathered.data(), restored.data());
  EXPECT_EQ(restored, data);
}

TEST(Primitives, CompactIndicesMatchesManual) {
  Device dev = Device::host(4);
  const std::size_t n = 9000;
  Rng rng(6);
  std::vector<std::uint8_t> flags(n);
  for (auto& f : flags) f = rng.next_float() < 0.3f ? 1 : 0;
  const std::vector<int> got = compact_indices(dev, flags.data(), n);
  std::vector<int> expect;
  for (std::size_t i = 0; i < n; ++i)
    if (flags[i]) expect.push_back(static_cast<int>(i));
  EXPECT_EQ(got, expect);
}

TEST(Primitives, CompactAllAndNone) {
  Device dev = Device::serial();
  std::vector<std::uint8_t> all(100, 1), none(100, 0);
  EXPECT_EQ(compact_indices(dev, all.data(), 100).size(), 100u);
  EXPECT_TRUE(compact_indices(dev, none.data(), 100).empty());
}

TEST(Sort, SortsRandomKeys32) {
  Device dev = Device::serial();
  Rng rng(7);
  std::vector<std::uint32_t> keys(5000);
  std::vector<int> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.next_u32();
    vals[i] = static_cast<int>(i);
  }
  const std::vector<std::uint32_t> orig = keys;
  sort_pairs(dev, keys, vals);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // Payload permuted consistently.
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_EQ(orig[static_cast<std::size_t>(vals[i])], keys[i]);
}

TEST(Sort, SortsRandomKeys64) {
  Device dev = Device::serial();
  Rng rng(8);
  std::vector<std::uint64_t> keys(3000);
  std::vector<int> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.next_u64();
    vals[i] = static_cast<int>(i);
  }
  sort_pairs64(dev, keys, vals);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(Sort, FloatKeysIncludingNegatives) {
  Device dev = Device::serial();
  Rng rng(9);
  std::vector<float> keys(4000);
  std::vector<int> vals(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.uniform(-100.0f, 100.0f);
    vals[i] = static_cast<int>(i);
  }
  const std::vector<float> orig = keys;
  sort_pairs_by_float(dev, keys, vals);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_FLOAT_EQ(orig[static_cast<std::size_t>(vals[i])], keys[i]);
}

TEST(Sort, StableForEqualKeys) {
  Device dev = Device::serial();
  std::vector<std::uint32_t> keys = {5, 1, 5, 1, 5};
  std::vector<int> vals = {0, 1, 2, 3, 4};
  sort_pairs(dev, keys, vals);
  EXPECT_EQ(vals, (std::vector<int>{1, 3, 0, 2, 4}));
}

TEST(Device, SimulatedTimeScalesWithWork) {
  Device dev = Device::simulated(profile_gpu1());
  const KernelCost cost{.flops_per_elem = 100, .bytes_per_elem = 100, .divergence = 1.0};
  dev.begin_phase("a");
  dev.record_kernel(1000, cost, 0.0);
  dev.end_phase();
  dev.begin_phase("b");
  dev.record_kernel(1000000, cost, 0.0);
  dev.end_phase();
  EXPECT_GT(dev.timings().phase_seconds("b"), dev.timings().phase_seconds("a") * 10);
}

TEST(Device, SimulatedLaunchOverheadDominatesSmallKernels) {
  DeviceProfile p = profile_gpu1();
  p.jitter_sigma = 0.0;
  Device dev = Device::simulated(p);
  const double t1 = dev.model_kernel_seconds(1, {});
  EXPECT_NEAR(t1, p.launch_us * 1e-6, t1 * 0.5);
}

TEST(Device, JitterIsDeterministicPerSeed) {
  Device a = Device::simulated(profile_cpu1(), 123);
  Device b = Device::simulated(profile_cpu1(), 123);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.model_kernel_seconds(10000, {}), b.model_kernel_seconds(10000, {}));
}

TEST(Device, PhasesAccumulateAndReset) {
  Device dev = Device::serial();
  dev.begin_phase("x");
  dev.record_kernel(10, {}, 0.25);
  dev.record_kernel(10, {}, 0.25);
  dev.end_phase();
  EXPECT_DOUBLE_EQ(dev.timings().phase_seconds("x"), 0.5);
  EXPECT_EQ(dev.timings().phases.at("x").kernels, 2u);
  dev.reset_timings();
  EXPECT_DOUBLE_EQ(dev.timings().total_seconds(), 0.0);
}

TEST(Device, NestedPhasesAttributeToInnermost) {
  Device dev = Device::serial();
  {
    ScopedPhase outer(dev, "outer");
    dev.record_kernel(1, {}, 0.1);
    {
      ScopedPhase inner(dev, "inner");
      dev.record_kernel(1, {}, 0.2);
    }
    dev.record_kernel(1, {}, 0.1);
  }
  EXPECT_NEAR(dev.timings().phase_seconds("outer"), 0.2, 1e-12);
  EXPECT_NEAR(dev.timings().phase_seconds("inner"), 0.2, 1e-12);
}

TEST(Device, RealDeviceUsesWallClock) {
  Device dev = Device::serial();
  dev.record_kernel(10, {}, 0.125);
  EXPECT_DOUBLE_EQ(dev.timings().total_seconds(), 0.125);
}

TEST(Device, IpcEstimateIsFinite) {
  Device dev = Device::simulated(profile_cpu1());
  dev.begin_phase("k");
  dev.record_kernel(100000, {.flops_per_elem = 10, .bytes_per_elem = 8, .divergence = 1.0}, 0.0);
  dev.end_phase();
  const double ipc = dev.timings().phase_ipc("k", dev.profile().clock_ghz);
  EXPECT_GT(ipc, 0.0);
  EXPECT_LT(ipc, 1000.0);
}

TEST(Profiles, AllNamedProfilesResolve) {
  for (const std::string& name : all_profile_names()) {
    const DeviceProfile p = profile_by_name(name);
    EXPECT_EQ(p.name, name);
    EXPECT_GT(p.gflops, 0.0);
    EXPECT_GT(p.bandwidth_gbs, 0.0);
  }
  EXPECT_THROW(profile_by_name("nonsense"), std::invalid_argument);
}

TEST(Profiles, RelativeOrderingMatchesPaper) {
  // Titan Black > K40 (GPU1) > 750Ti > 620M; Xeon > i7; ISPC-MIC >> OMP-MIC.
  EXPECT_GT(profile_titan_black().gflops, profile_gpu1().gflops);
  EXPECT_GT(profile_gpu1().gflops, profile_gtx750ti().gflops);
  EXPECT_GT(profile_gtx750ti().gflops, profile_gt620m().gflops);
  EXPECT_GT(profile_xeon().gflops, profile_i7().gflops);
  EXPECT_GT(profile_mic_ispc().gflops, 4.0 * profile_mic_omp().gflops);
}

TEST(Profiles, ThreadScalingIsSublinear) {
  const double t1 = profile_cpu_threads(1).gflops;
  const double t24 = profile_cpu_threads(24).gflops;
  EXPECT_GT(t24, t1 * 10);   // scales well...
  EXPECT_LT(t24, t1 * 24);   // ...but not perfectly (Table 8's observation)
}

}  // namespace
}  // namespace isr::dpp
