// End-to-end in situ runtime tests: the Open/Publish/Execute/Close loop of
// Listings 4.1-4.3 against all three proxies, action validation, image
// output, and the performance log.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "insitu/strawman.hpp"
#include "sims/cloverleaf.hpp"
#include "sims/kripke.hpp"
#include "sims/lulesh.hpp"

namespace isr::insitu {
namespace {

conduit::Node save_actions(const std::string& stem, int size = 64,
                           const std::string& renderer = "") {
  conduit::Node actions;
  conduit::Node& add = actions.append();
  add["action"] = "AddPlot";
  add["var"] = "energy";
  if (!renderer.empty()) add["renderer"] = renderer;
  conduit::Node& draw = actions.append();
  draw["action"] = "DrawPlots";
  conduit::Node& save = actions.append();
  save["action"] = "SaveImage";
  save["fileName"] = stem;
  save["format"] = "ppm";
  save["width"] = size;
  save["height"] = size;
  return actions;
}

bool file_nonempty(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return is && is.tellg() > 0;
}

TEST(Strawman, CloverleafEndToEnd) {
  sims::CloverLeaf sim(12, 12, 12);
  sim.step();
  conduit::Node data;
  sim.describe(data);

  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);
  strawman.execute(save_actions("isr_clover"));
  strawman.close();

  EXPECT_TRUE(file_nonempty("/tmp/isr_clover.ppm"));
  ASSERT_EQ(strawman.perf_log().records().size(), 1u);
  const PerfRecord& rec = strawman.perf_log().records().front();
  EXPECT_EQ(rec.renderer, "raytracer");
  EXPECT_GT(rec.stats.active_pixels, 0.0);
  EXPECT_GT(rec.total_seconds, 0.0);
}

TEST(Strawman, KripkeVolumePlot) {
  sims::Kripke sim(12, 12, 12);
  sim.step();
  conduit::Node data;
  sim.describe(data);

  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);

  conduit::Node actions = save_actions("isr_kripke", 48, "volume");
  actions.child(0)["var"] = "phi";
  strawman.execute(actions);
  EXPECT_TRUE(file_nonempty("/tmp/isr_kripke.ppm"));
  EXPECT_GT(strawman.last_stats().samples_per_ray, 0.0);
  strawman.close();
}

TEST(Strawman, LuleshUnstructuredPaths) {
  sims::Lulesh sim(6);
  for (int i = 0; i < 3; ++i) sim.step();
  conduit::Node data;
  sim.describe(data);

  for (const std::string renderer : {"raytracer", "rasterizer", "volume"}) {
    Strawman strawman;
    conduit::Node options;
    options["output_dir"] = "/tmp";
    strawman.open(options);
    strawman.publish(data);
    conduit::Node actions = save_actions("isr_lulesh_" + renderer, 48, renderer);
    actions.child(0)["var"] = "e";
    strawman.execute(actions);
    EXPECT_TRUE(file_nonempty("/tmp/isr_lulesh_" + renderer + ".ppm")) << renderer;
    EXPECT_EQ(strawman.perf_log().records().front().renderer, renderer);
    strawman.close();
  }
}

TEST(Strawman, RenderersProduceDifferentImagesSameCoverage) {
  sims::CloverLeaf sim(10, 10, 10);
  sim.step();
  conduit::Node data;
  sim.describe(data);

  render::Image rt, vol;
  {
    Strawman s;
    conduit::Node opt;
    opt["output_dir"] = "/tmp";
    s.open(opt);
    s.publish(data);
    s.execute(save_actions("isr_rt_img", 48, "raytracer"));
    rt = s.last_image();
  }
  {
    Strawman s;
    conduit::Node opt;
    opt["output_dir"] = "/tmp";
    s.open(opt);
    s.publish(data);
    s.execute(save_actions("isr_vol_img", 48, "volume"));
    vol = s.last_image();
  }
  EXPECT_GT(rt.rms_difference(vol), 0.01);
}

TEST(Strawman, ActionValidation) {
  sims::CloverLeaf sim(6, 6, 6);
  conduit::Node data;
  sim.describe(data);
  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);

  // SaveImage without AddPlot/DrawPlots.
  conduit::Node bad;
  conduit::Node& save = bad.append();
  save["action"] = "SaveImage";
  save["fileName"] = "isr_bad";
  EXPECT_THROW(strawman.execute(bad), std::runtime_error);

  conduit::Node unknown;
  unknown.append()["action"] = "FlyToTheMoon";
  EXPECT_THROW(strawman.execute(unknown), std::runtime_error);
}

TEST(Strawman, LifecycleValidation) {
  Strawman strawman;
  conduit::Node data;
  EXPECT_THROW(strawman.publish(data), std::runtime_error);  // before open

  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  conduit::Node broken;
  broken["coords/type"] = "uniform";  // incomplete description
  EXPECT_THROW(strawman.publish(broken), std::runtime_error);
}

TEST(Strawman, SimulatedDeviceOption) {
  sims::CloverLeaf sim(10, 10, 10);
  sim.step();
  conduit::Node data;
  sim.describe(data);
  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  options["device"] = "GPU1";
  strawman.open(options);
  strawman.publish(data);
  strawman.execute(save_actions("isr_gpu1", 48));
  // Simulated-device timings are modeled, not wall clock, but present.
  EXPECT_GT(strawman.last_stats().total_seconds(), 0.0);
}

TEST(Strawman, WebStreamIndexWritten) {
  sims::CloverLeaf sim(8, 8, 8);
  conduit::Node data;
  sim.describe(data);
  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  options["web/stream"] = "true";
  strawman.open(options);
  strawman.publish(data);
  strawman.execute(save_actions("isr_stream0", 32));
  EXPECT_TRUE(file_nonempty("/tmp/stream.html"));
  std::ifstream is("/tmp/stream.html");
  std::string html((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  EXPECT_NE(html.find("isr_stream0.ppm"), std::string::npos);
}

TEST(Strawman, PerfLogCsvHasHeaderAndRows) {
  sims::CloverLeaf sim(8, 8, 8);
  conduit::Node data;
  sim.describe(data);
  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);
  strawman.execute(save_actions("isr_csv", 32));
  strawman.execute(save_actions("isr_csv2", 32));
  const std::string csv = strawman.perf_log().to_csv();
  EXPECT_NE(csv.find("cycle,renderer,field"), std::string::npos);
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(Strawman, MultiCyclePublishOnce) {
  // The zero-copy contract: publish once, execute every cycle; the node
  // keeps seeing fresh simulation data.
  sims::CloverLeaf sim(10, 10, 10);
  conduit::Node data;
  sim.describe(data);
  Strawman strawman;
  conduit::Node options;
  options["output_dir"] = "/tmp";
  strawman.open(options);
  strawman.publish(data);

  // Volume rendering sees the interior, where the blast actually moves (the
  // camera-facing exterior faces stay cold).
  render::Image first, second;
  strawman.execute(save_actions("isr_cycle0", 48, "volume"));
  first = strawman.last_image();
  for (int i = 0; i < 40; ++i) sim.step();
  strawman.execute(save_actions("isr_cycle1", 48, "volume"));
  second = strawman.last_image();
  EXPECT_GT(first.rms_difference(second), 1e-7);  // the field moved
}

}  // namespace
}  // namespace isr::insitu
