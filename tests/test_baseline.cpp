// Comparator-renderer tests: the tuned ray tracer must agree with the DPP
// tracer on what is visible (while doing less traversal work), and the
// three unstructured-volume comparators must produce images consistent with
// our sampling renderer on the same field.
#include <gtest/gtest.h>

#include "baseline/bunyk.hpp"
#include "dpp/profiles.hpp"
#include "baseline/havs.hpp"
#include "baseline/tuned_rt.hpp"
#include "baseline/visit_sampler.hpp"
#include "math/colormap.hpp"
#include "mesh/fields.hpp"
#include "mesh/scenes.hpp"
#include "mesh/tetrahedralize.hpp"
#include "render/rt/raytracer.hpp"
#include "render/uvr/unstructured.hpp"

namespace isr::baseline {
namespace {

TEST(TunedRayTracer, MatchesDppTracerCoverage) {
  const mesh::TriMesh scene = mesh::make_sphere_flake({0.5f, 0.5f, 0.5f}, 0.2f, 2);
  const Camera cam = Camera::framing(scene.bounds(), 128, 128);
  dpp::Device dev = dpp::Device::host();

  render::RayTracer dpp_rt(scene, dev);
  render::Image dpp_img;
  render::RayTracerOptions opt;
  opt.workload = render::RayTracerOptions::Workload::kIntersect;
  const render::RenderStats dpp_stats = dpp_rt.render(cam, ColorTable::grayscale(), dpp_img, opt);

  TunedRayTracer tuned(scene, dev);
  render::Image tuned_img;
  const render::RenderStats tuned_stats = tuned.render_intersect(cam, &tuned_img);

  EXPECT_EQ(tuned_stats.active_pixels, dpp_stats.active_pixels);
  EXPECT_LT(tuned_img.rms_difference(dpp_img), 1e-4);
}

TEST(TunedRayTracer, TraversalWorkIsComparableToLbvh) {
  // The tuned BVH uses 4-triangle leaves (Embree-style): it trades node
  // visits for batched triangle tests, so its raw step count is the same
  // order as the LBVH's — the Tables 3-4 gap comes from per-step SIMD
  // efficiency (covered by FasterThanDppOnSimulatedDevice), not from doing
  // asymptotically less traversal.
  const mesh::TriMesh scene = mesh::make_scene("RM 350K", 0.2f);
  const Camera cam = Camera::framing(scene.bounds(), 96, 96);
  dpp::Device dev = dpp::Device::host();

  TunedRayTracer tuned(scene, dev);
  tuned.render_intersect(cam);

  // Count LBVH steps over the same rays.
  render::RayTracer dpp_rt(scene, dev);
  long long lbvh_steps = 0;
  for (int y = 0; y < cam.height; ++y)
    for (int x = 0; x < cam.width; ++x)
      render::intersect_closest(dpp_rt.bvh(), scene, cam.position,
                                cam.ray_direction(static_cast<float>(x), static_cast<float>(y)),
                                cam.znear, cam.zfar, lbvh_steps);
  const double lbvh_avg = static_cast<double>(lbvh_steps) / cam.pixel_count();
  EXPECT_GT(tuned.avg_steps_per_ray(), 0.0);
  EXPECT_LT(tuned.avg_steps_per_ray(), lbvh_avg * 3.0);
}

TEST(TunedRayTracer, FasterThanDppOnSimulatedDevice) {
  // On a simulated architecture the tuned kernels model SIMD-efficient
  // traversal: the whole-frame time must beat the DPP pipeline (the paper's
  // 1.6-2.6x Embree/OptiX gap).
  const mesh::TriMesh scene = mesh::make_scene("RM 350K", 0.18f);
  const Camera cam = Camera::framing(scene.bounds(), 160, 160);
  dpp::Device dev = dpp::Device::simulated(dpp::profile_xeon());

  render::RayTracer dpp_rt(scene, dev);
  render::Image img;
  render::RayTracerOptions opt;
  opt.workload = render::RayTracerOptions::Workload::kIntersect;
  const double dpp_time = dpp_rt.render(cam, ColorTable::grayscale(), img, opt).total_seconds();

  TunedRayTracer tuned(scene, dev);
  const double tuned_time = tuned.render_intersect(cam).total_seconds();

  EXPECT_LT(tuned_time, dpp_time);
  EXPECT_GT(dpp_time / tuned_time, 1.2);
  EXPECT_LT(dpp_time / tuned_time, 6.0);
}

struct TetFixture {
  TetFixture() : grid(24, 24, 24, {0, 0, 0}, {1 / 24.f, 1 / 24.f, 1 / 24.f}) {
    mesh::fields::fill_radial(grid);
    tets = mesh::tetrahedralize(grid);
    cam = Camera::framing(grid.bounds(), 96, 96);
  }
  mesh::StructuredGrid grid;
  mesh::TetMesh tets;
  Camera cam;
  ColorTable colors = ColorTable::cool_warm();
};

TEST(Havs, ImageConsistentWithSamplingRenderer) {
  TetFixture f;
  dpp::Device dev = dpp::Device::host();
  const TransferFunction tf(f.colors, 0.0f, 0.3f);

  render::UnstructuredVolumeRenderer uvr(f.tets, dev);
  render::Image sampled;
  render::UnstructuredVROptions uopt;
  uopt.samples_in_depth = 200;
  uvr.render(f.cam, tf, sampled, uopt);

  HavsRenderer havs(f.tets, dev);
  render::Image projected;
  const render::RenderStats stats = havs.render(f.cam, tf, projected, 200);

  // Projected tetrahedra integrate exactly where sampling approximates:
  // allow a generous but bounded tolerance, and identical footprints.
  EXPECT_LT(sampled.rms_difference(projected), 0.08);
  EXPECT_NEAR(stats.active_pixels, sampled.active_pixel_count(),
              0.06 * static_cast<double>(sampled.active_pixel_count()));
}

TEST(Havs, SortPhaseIsReported) {
  TetFixture f;
  dpp::Device dev = dpp::Device::host();
  HavsRenderer havs(f.tets, dev);
  render::Image img;
  const render::RenderStats stats =
      havs.render(f.cam, TransferFunction(f.colors, 0.0f, 0.3f), img);
  EXPECT_GT(stats.phase_seconds("sort"), 0.0);
  EXPECT_GT(stats.phase_seconds("raster"), 0.0);
}

TEST(Bunyk, ConnectivityIsSymmetric) {
  TetFixture f;
  dpp::Device dev = dpp::Device::host();
  BunykRayCaster bunyk(f.tets, dev);
  EXPECT_GT(bunyk.preprocess_seconds(), 0.0);
}

TEST(Bunyk, ImageConsistentWithSamplingRenderer) {
  TetFixture f;
  dpp::Device dev = dpp::Device::host();
  const TransferFunction tf(f.colors, 0.0f, 0.3f);

  render::UnstructuredVolumeRenderer uvr(f.tets, dev);
  render::Image sampled;
  render::UnstructuredVROptions uopt;
  uopt.samples_in_depth = 200;
  uvr.render(f.cam, tf, sampled, uopt);

  BunykRayCaster bunyk(f.tets, dev);
  render::Image walked;
  const render::RenderStats stats = bunyk.render(f.cam, tf, walked, 200);

  EXPECT_LT(sampled.rms_difference(walked), 0.08);
  EXPECT_GT(stats.cells_spanned, 5.0);  // rays really walk cell to cell
}

TEST(VisItSampler, ImageConsistentWithSamplingRenderer) {
  TetFixture f;
  dpp::Device dev = dpp::Device::host();
  const TransferFunction tf(f.colors, 0.0f, 0.3f);

  render::UnstructuredVolumeRenderer uvr(f.tets, dev);
  render::Image ours;
  render::UnstructuredVROptions uopt;
  uopt.samples_in_depth = 160;
  uopt.early_termination = false;
  uvr.render(f.cam, tf, ours, uopt);

  VisItSampler visit(f.tets, dev);
  render::Image theirs;
  const render::RenderStats stats = visit.render(f.cam, tf, theirs, 160);

  EXPECT_LT(ours.rms_difference(theirs), 0.05);
  for (const char* phase : {"screen_space", "sampling", "compositing"})
    EXPECT_GT(stats.phase_seconds(phase), 0.0) << phase;
}

TEST(VisItSampler, EmptyMeshIsSafe) {
  mesh::TetMesh empty;
  dpp::Device dev = dpp::Device::serial();
  VisItSampler visit(empty, dev);
  render::Image img;
  Camera cam;
  cam.width = cam.height = 16;
  const render::RenderStats stats =
      visit.render(cam, TransferFunction(ColorTable::grayscale(), 0, 0.3f), img);
  EXPECT_EQ(stats.active_pixels, 0.0);
}

}  // namespace
}  // namespace isr::baseline
