#!/usr/bin/env python3
"""Tests for scripts/check_bench_regression.py — the CI bench gate.

The gate is the last line of defense for the throughput benches (including
bench_recal_swap's during-refit floor), so its failure modes are tested
like product code: a clean FAIL line and exit 1 for every way a truncated
artifact or interrupted bench can corrupt a record — missing current file,
malformed JSON, a JSON value that is not an object, throughput fields
absent — and exit 0 only when every field of every baseline holds up.

Run directly (python3 tests/test_check_bench_regression.py) or via ctest
(registered in tests/CMakeLists.txt when a python3 interpreter is found).
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "scripts" / "check_bench_regression.py"
BASELINE_DIR = REPO_ROOT / "bench" / "baselines"


def run_gate(baseline_dir, current_dir, max_regression=None):
    cmd = [
        sys.executable,
        str(SCRIPT),
        "--baseline-dir",
        str(baseline_dir),
        "--current-dir",
        str(current_dir),
    ]
    if max_regression is not None:
        cmd += ["--max-regression", str(max_regression)]
    return subprocess.run(cmd, capture_output=True, text=True)


class CheckBenchRegressionTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.baselines = root / "baselines"
        self.current = root / "current"
        self.baselines.mkdir()
        self.current.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, name, payload):
        path = directory / name
        text = payload if isinstance(payload, str) else json.dumps(payload)
        path.write_text(text)
        return path

    def test_healthy_result_passes(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0, "obs_per_sec_y": 50.0})
        self.write(self.current, "a.json", {"qps_x": 90.0, "obs_per_sec_y": 60.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("all bench regression checks passed", result.stdout)

    def test_improvement_never_fails(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", {"qps_x": 100000.0})
        self.assertEqual(run_gate(self.baselines, self.current).returncode, 0)

    def test_collapse_below_half_baseline_fails(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", {"qps_x": 49.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("FAIL a.json: qps_x", result.stdout)

    def test_max_regression_flag_widens_the_floor(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", {"qps_x": 49.0})
        self.assertEqual(
            run_gate(self.baselines, self.current, max_regression=4.0).returncode, 0
        )

    def test_missing_current_file_fails(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no current result", result.stdout)

    def test_malformed_current_json_fails_without_traceback(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", '{"qps_x": 100.0')  # truncated
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("malformed JSON", result.stdout)
        self.assertNotIn("Traceback", result.stderr)

    def test_malformed_baseline_json_fails(self):
        self.write(self.baselines, "a.json", "not json at all")
        self.write(self.current, "a.json", {"qps_x": 100.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("baseline malformed JSON", result.stdout)

    def test_non_dict_json_fails(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", "[1, 2, 3]")
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("expected a JSON object, got list", result.stdout)

    def test_baseline_without_throughput_fields_fails(self):
        self.write(self.baselines, "a.json", {"identical": True, "queries": 5})
        self.write(self.current, "a.json", {"identical": True})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no qps_*/obs_per_sec_* fields", result.stdout)

    def test_field_missing_from_current_fails(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0, "qps_y": 10.0})
        self.write(self.current, "a.json", {"qps_x": 100.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("qps_y missing from current result", result.stdout)

    def test_zero_baseline_field_cannot_regress(self):
        self.write(self.baselines, "a.json", {"qps_x": 0.0, "qps_y": 10.0})
        self.write(self.current, "a.json", {"qps_y": 10.0})  # no qps_x at all
        self.assertEqual(run_gate(self.baselines, self.current).returncode, 0)

    def test_empty_baseline_dir_fails(self):
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("no baselines found", result.stderr)

    def test_blown_p99_warns_but_never_fails(self):
        # Latency tails are advisory: 2x above baseline prints WARN, exit 0.
        self.write(self.baselines, "a.json", {"qps_x": 100.0, "p99_e2e_us": 50.0})
        self.write(self.current, "a.json", {"qps_x": 100.0, "p99_e2e_us": 500.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("WARN a.json: p99_e2e_us", result.stdout)
        self.assertIn("advisory only", result.stdout)

    def test_p99_within_2x_stays_silent(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0, "p99_e2e_us": 50.0})
        self.write(self.current, "a.json", {"qps_x": 100.0, "p99_e2e_us": 99.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 0)
        self.assertNotIn("WARN", result.stdout)

    def test_p99_missing_from_current_is_not_a_failure(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0, "p99_e2e_us": 50.0})
        self.write(self.current, "a.json", {"qps_x": 100.0})
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 0)
        self.assertNotIn("WARN", result.stdout)

    def test_one_bad_record_fails_the_whole_run(self):
        self.write(self.baselines, "a.json", {"qps_x": 100.0})
        self.write(self.baselines, "b.json", {"qps_x": 100.0})
        self.write(self.current, "a.json", {"qps_x": 100.0})
        self.write(self.current, "b.json", {"qps_x": 1.0})  # collapsed
        result = run_gate(self.baselines, self.current)
        self.assertEqual(result.returncode, 1)
        self.assertIn("ok a.json", result.stdout)
        self.assertIn("FAIL b.json", result.stdout)


class CommittedBaselinesTest(unittest.TestCase):
    """The baselines the repo actually ships must satisfy the gate's shape
    requirements — a committed baseline the gate cannot parse would turn
    every CI run red."""

    def test_every_committed_baseline_is_gateable(self):
        paths = sorted(BASELINE_DIR.glob("*.json"))
        self.assertTrue(paths, f"no baselines in {BASELINE_DIR}")
        for path in paths:
            record = json.loads(path.read_text())
            self.assertIsInstance(record, dict, path.name)
            throughput = [
                key
                for key, value in record.items()
                if key.startswith(("qps_", "obs_per_sec_"))
                and isinstance(value, (int, float))
            ]
            self.assertTrue(throughput, f"{path.name} has no throughput fields")

    def test_recal_swap_baseline_covers_the_swap_phases(self):
        record = json.loads((BASELINE_DIR / "recal_swap.json").read_text())
        for key in ("qps_warm", "qps_during_refit", "qps_post_swap_warm"):
            self.assertIn(key, record)
            self.assertGreater(record[key], 0)
        self.assertEqual(record["warm_hit_rate"], 1.0)
        self.assertEqual(record["post_swap_warm_hit_rate"], 1.0)
        self.assertTrue(record["identical"])


if __name__ == "__main__":
    unittest.main()
